/// Application-specific peering in the wide area — the deployment of paper
/// §5.2 / Figure 4a, reproduced over the emulated data plane.
///
/// AS C hosts a client that sends three 1 Mbps UDP flows toward an AWS
/// prefix reachable via both AS A and AS B. The timeline follows Figure 5a:
///
///   t=565 s   AS C installs `match(dstport=80) >> fwd(B)`: port-80 traffic
///             shifts from the BGP default (via A) to AS B;
///   t=1253 s  AS B withdraws its route (emulating a failure): the SDX
///             resynchronizes the data plane and all traffic returns to A.
///
/// Output: one CSV row per 10-second bucket with the traffic rate seen on
/// each path, i.e. the series plotted in Figure 5a.

#include <cstdio>

#include "sdx/runtime.hpp"

using namespace sdx;

int main() {
  core::SdxRuntime sdx;
  const auto A = sdx.add_participant("A", 65001);   // Transit Portal @ Wisconsin
  const auto B = sdx.add_participant("B", 65002);   // Transit Portal @ Clemson
  const auto C = sdx.add_participant("C", 65003);   // ISP hosting the client

  const auto aws = net::Ipv4Prefix::parse("72.252.0.0/16");
  sdx.announce(A, aws, net::AsPath{65001, 16509});
  sdx.announce(B, aws, net::AsPath{65002, 7018, 16509});  // longer: backup
  sdx.announce(C, net::Ipv4Prefix::parse("198.51.100.0/24"),
               net::AsPath{65003});
  sdx.install();

  constexpr double kDuration = 1800.0;
  constexpr double kPolicyInstall = 565.0;
  constexpr double kWithdrawal = 1253.0;
  constexpr double kBucket = 10.0;
  constexpr double kFlowMbps = 1.0;

  // Three 1 Mbps UDP flows, per Figure 4a: port 80, port 443 and port 8080.
  const std::uint64_t flow_ports[3] = {80, 443, 8080};

  std::printf("# Figure 5a — application-specific peering\n");
  std::printf("time_s,via_AS_A_mbps,via_AS_B_mbps\n");

  bool policy_installed = false;
  bool withdrawn = false;
  for (double t = 0; t < kDuration; t += kBucket) {
    if (!policy_installed && t >= kPolicyInstall) {
      sdx.set_outbound(
          C, {core::OutboundClause{core::ClauseMatch{}.dst_port(80), B}});
      sdx.install();  // participant pushes a new policy to the controller
      policy_installed = true;
      std::fprintf(stderr, "[t=%4.0f] AS C installed application-specific "
                           "peering policy\n", t);
    }
    if (!withdrawn && t >= kWithdrawal) {
      sdx.withdraw(B, aws);  // route withdrawal → fast-path resync
      withdrawn = true;
      std::fprintf(stderr, "[t=%4.0f] AS B withdrew its route to AWS "
                           "(%zu fast-path rules)\n",
                   t, sdx.update_log().empty()
                          ? std::size_t{0}
                          : sdx.update_log().back().additional_rules);
    }

    double via_a = 0, via_b = 0;
    for (std::uint64_t port : flow_ports) {
      auto deliveries = sdx.send(C, net::PacketBuilder()
                                           .src_ip("198.51.100.7")
                                           .dst_ip("72.252.1.1")
                                           .proto(net::kProtoUdp)
                                           .dst_port(port)
                                           .build());
      if (deliveries.empty()) continue;
      if (deliveries[0].port == sdx.participant(A).primary_port().id) via_a += kFlowMbps;
      if (deliveries[0].port == sdx.participant(B).primary_port().id) via_b += kFlowMbps;
    }
    std::printf("%.0f,%.1f,%.1f\n", t, via_a, via_b);
  }
  return 0;
}
