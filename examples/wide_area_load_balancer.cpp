/// Wide-area server load balancing — paper §5.2 / Figure 4b.
///
/// An AWS tenant with no physical presence at the exchange (a *remote
/// participant*) balances anycast request traffic across two instances by
/// rewriting the destination address at the SDX, keyed on the client's
/// source block. The timeline follows Figure 5b: at t=246 s the tenant
/// installs the load-balance policy and traffic that all went to instance
/// #1 splits across both instances.
///
/// Output: one CSV row per 10-second bucket with the rate reaching each
/// AWS instance — the series plotted in Figure 5b.

#include <cstdio>

#include "sdx/runtime.hpp"

using namespace sdx;

int main() {
  core::SdxRuntime sdx;
  const auto A = sdx.add_participant("A", 65001);  // network hosting the clients
  const auto B = sdx.add_participant("B", 65002);  // transit toward AWS
  const auto T = sdx.add_remote_participant("aws-tenant", 65010);
  (void)A;

  const auto aws16 = net::Ipv4Prefix::parse("74.125.0.0/16");
  const auto anycast = net::Ipv4Address::parse("74.125.1.1");
  const auto instance1 = net::Ipv4Address::parse("74.125.224.161");
  const auto instance2 = net::Ipv4Address::parse("74.125.137.139");

  sdx.announce(B, aws16, net::AsPath{65002, 16509});
  sdx.announce(A, net::Ipv4Prefix::parse("204.57.0.0/16"),
               net::AsPath{65001});
  sdx.install();

  constexpr double kDuration = 600.0;
  constexpr double kPolicyInstall = 246.0;
  constexpr double kBucket = 10.0;

  // Two client populations, 1.5 Mbps each, all requesting the anycast IP.
  struct Client {
    const char* src;
    double mbps;
  };
  const Client clients[2] = {{"96.25.160.10", 1.5}, {"204.57.0.67", 1.5}};

  std::printf("# Figure 5b — wide-area load balance\n");
  std::printf("time_s,instance1_mbps,instance2_mbps\n");

  bool installed = false;
  for (double t = 0; t < kDuration; t += kBucket) {
    if (!installed && t >= kPolicyInstall) {
      // The remote tenant installs its rewrite policy (paper §3.1):
      //   match(dstip=74.125.1.1) >> (match(srcip=...) >> mod(dstip=...)) + ...
      sdx.set_inbound(
          T,
          {core::InboundClause{
               core::ClauseMatch{}
                   .dst(net::Ipv4Prefix::host(anycast))
                   .src(net::Ipv4Prefix::parse("96.25.160.0/24")),
               {{net::Field::kDstIp, instance1.value()}},
               std::nullopt},
           core::InboundClause{
               core::ClauseMatch{}
                   .dst(net::Ipv4Prefix::host(anycast))
                   .src(net::Ipv4Prefix::parse("204.57.0.0/16")),
               {{net::Field::kDstIp, instance2.value()}},
               std::nullopt}});
      sdx.install();
      installed = true;
      std::fprintf(stderr, "[t=%4.0f] AWS tenant installed the "
                           "load-balance policy remotely\n", t);
    }

    double to_1 = 0, to_2 = 0;
    for (const auto& c : clients) {
      auto deliveries = sdx.send(A, net::PacketBuilder()
                                           .src_ip(c.src)
                                           .dst_ip(anycast)
                                           .proto(net::kProtoTcp)
                                           .dst_port(80)
                                           .build());
      if (deliveries.empty()) continue;
      // Before the policy: requests keep the anycast address and land on
      // whatever host terminates it — instance #1 in the deployment.
      const auto final_dst = deliveries[0].frame.dst_ip();
      if (final_dst == instance2) {
        to_2 += c.mbps;
      } else {
        to_1 += c.mbps;
      }
    }
    std::printf("%.0f,%.1f,%.1f\n", t, to_1, to_2);
  }
  return 0;
}
