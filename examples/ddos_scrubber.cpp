/// Reactive DoS scrubbing — the fourth §2 application, end to end: "when
/// traffic measurements suggest a possible denial-of-service attack, an
/// ISP can ... forward it through a traffic scrubber", except at the SDX
/// the redirect hits only the offending flows instead of hijacking whole
/// prefixes.
///
/// A transit network carries a mix of legitimate clients and one abusive
/// /24 hammering the victim. The TrafficMonitor watches per-source-block
/// rates; when the attacker crosses the threshold, the transit installs a
/// surgical clause steering *only that block* through the scrubber — the
/// scrubber re-advertises the victim's prefix, keeping the redirect
/// BGP-consistent. Legitimate traffic never changes path.

#include <cstdio>

#include "netbase/rng.hpp"
#include "sdx/monitor.hpp"
#include "sdx/runtime.hpp"

using namespace sdx;

int main() {
  core::SdxRuntime sdx;
  const auto transit = sdx.add_participant("transit", 65001);
  const auto victim = sdx.add_participant("victim", 65002);
  const auto scrubber = sdx.add_participant("scrubber", 65003);

  const auto victim_net = net::Ipv4Prefix::parse("203.0.113.0/24");
  sdx.announce(victim, victim_net, net::AsPath{65002});
  // The scrubber advertises a (longer) cleaning path for the victim — the
  // re-advertisement that makes surgical redirection BGP-consistent.
  sdx.announce(scrubber, victim_net, net::AsPath{65003, 65002});
  sdx.install();

  core::TrafficMonitor monitor(/*window_s=*/10.0);
  constexpr std::uint64_t kThreshold = 200;  // pkts per window per /24
  const auto attacker_block = net::Ipv4Prefix::parse("198.18.7.0/24");

  net::SplitMix64 rng(4);
  bool mitigated = false;
  std::printf("t_s,legit_pps_direct,attack_pps_direct,attack_pps_scrubbed\n");
  for (double t = 0; t < 30; t += 1.0) {
    std::uint64_t legit_direct = 0, attack_direct = 0, attack_scrubbed = 0;
    // 50 legitimate packets per second from scattered sources...
    for (int i = 0; i < 50; ++i) {
      auto pkt = net::PacketBuilder()
                     .src_ip(net::Ipv4Address(
                         static_cast<std::uint32_t>(rng())))
                     .dst_ip("203.0.113.10")
                     .proto(net::kProtoTcp)
                     .dst_port(443)
                     .build();
      auto d = sdx.send(transit, pkt);
      if (d.empty()) continue;
      monitor.observe(t, pkt, sdx.ports().phys_owner(d[0].port));
      legit_direct += d[0].port == sdx.participant(victim).ports[0].id;
    }
    // ...and, from t=8s, a 100-pps flood out of one /24.
    if (t >= 8.0) {
      for (int i = 0; i < 100; ++i) {
        auto pkt = net::PacketBuilder()
                       .src_ip(net::Ipv4Address(
                           attacker_block.network().value() |
                           static_cast<std::uint32_t>(rng.below(256))))
                       .dst_ip("203.0.113.10")
                       .proto(net::kProtoUdp)
                       .dst_port(53)
                       .build();
        auto d = sdx.send(transit, pkt);
        if (d.empty()) continue;
        monitor.observe(t, pkt, sdx.ports().phys_owner(d[0].port));
        attack_direct += d[0].port == sdx.participant(victim).ports[0].id;
        attack_scrubbed +=
            d[0].port == sdx.participant(scrubber).ports[0].id;
      }
    }

    // The control loop: redirect heavy hitters through the scrubber.
    if (!mitigated) {
      for (const auto& hh : monitor.heavy_hitters(t, kThreshold)) {
        if (hh.victim != victim) continue;
        core::OutboundClause steer;
        steer.match.src(hh.source_block);
        steer.match.dst(victim_net);
        steer.to = scrubber;
        auto clauses = sdx.participant(transit).outbound;
        clauses.push_back(steer);
        sdx.set_outbound(transit, std::move(clauses));
        sdx.install();
        mitigated = true;
        std::fprintf(stderr,
                     "[t=%2.0f] %s -> scrubber (%llu pkts in window)\n", t,
                     hh.source_block.to_string().c_str(),
                     static_cast<unsigned long long>(hh.packets));
      }
    }
    std::printf("%.0f,%llu,%llu,%llu\n", t,
                static_cast<unsigned long long>(legit_direct),
                static_cast<unsigned long long>(attack_direct),
                static_cast<unsigned long long>(attack_scrubbed));
  }
  return mitigated ? 0 : 1;
}
