/// Quickstart: the paper's Figure 1 scenario in ~60 lines.
///
/// Three ASes meet at the SDX. AS A peers with B and C and installs
/// application-specific peering (web via B, HTTPS via C); AS B steers its
/// inbound traffic across its two ports by source half-space. We compile,
/// inspect what the controller produced, and trace a few packets end to
/// end — border-router FIB, VMAC tagging, fabric rules, egress rewrite.

#include <cstdio>
#include <string>

#include "sdx/runtime.hpp"

using namespace sdx;

int main() {
  core::SdxRuntime sdx;

  const auto A = sdx.add_participant("A", 65001);
  const auto B = sdx.add_participant("B", 65002, /*port_count=*/2);
  const auto C = sdx.add_participant("C", 65003);

  // AS A: application-specific peering (paper §3.1):
  //   (match(dstport=80) >> fwd(B)) + (match(dstport=443) >> fwd(C))
  sdx.set_outbound(A,
                   {core::OutboundClause{core::ClauseMatch{}.dst_port(80), B},
                    core::OutboundClause{core::ClauseMatch{}.dst_port(443), C}});

  // AS B: inbound traffic engineering over source halves:
  //   (match(srcip=0.0.0.0/1) >> fwd(B1)) + (match(srcip=128.0.0.0/1) >> fwd(B2))
  sdx.set_inbound(
      B,
      {core::InboundClause{
           core::ClauseMatch{}.src(net::Ipv4Prefix::parse("0.0.0.0/1")),
           {},
           0},
       core::InboundClause{
           core::ClauseMatch{}.src(net::Ipv4Prefix::parse("128.0.0.0/1")),
           {},
           1}});

  // BGP: B and C advertise overlapping prefixes; A originates one of its own.
  const auto p1 = net::Ipv4Prefix::parse("100.1.0.0/16");
  const auto p2 = net::Ipv4Prefix::parse("100.2.0.0/16");
  sdx.announce(B, p1, net::AsPath{65002, 900, 10});
  sdx.announce(C, p1, net::AsPath{65003, 10});  // shorter: A's default
  sdx.announce(C, p2, net::AsPath{65003, 20});

  const auto& compiled = sdx.install();
  std::printf("compiled: %zu prefixes -> %zu groups, %zu flow rules "
              "(%.1f ms total)\n",
              compiled.stats.prefixes_total, compiled.stats.prefix_groups,
              compiled.stats.final_rules,
              compiled.stats.total_seconds * 1e3);

  std::printf("\nfirst rules of the fabric policy:\n");
  for (std::size_t i = 0; i < compiled.fabric.size() && i < 8; ++i) {
    std::printf("  %zu: %s\n", i, compiled.fabric.rules()[i].to_string().c_str());
  }

  auto trace = [&](const char* label, net::PacketHeader payload) {
    auto deliveries = sdx.send(A, payload);
    if (deliveries.empty()) {
      std::printf("%-28s -> dropped\n", label);
      return;
    }
    const auto& d = deliveries.front();
    std::printf("%-28s -> port %u (%s), dstmac %s\n", label, d.port,
                d.receiver ? "accepted" : "no router",
                d.frame.dst_mac().to_string().c_str());
  };

  std::printf("\npacket traces from AS A:\n");
  trace("web to p1 (low src)", net::PacketBuilder()
                                   .src_ip("96.25.160.5")
                                   .dst_ip("100.1.2.3")
                                   .proto(net::kProtoTcp)
                                   .dst_port(80)
                                   .build());
  trace("web to p1 (high src)", net::PacketBuilder()
                                    .src_ip("200.1.1.1")
                                    .dst_ip("100.1.2.3")
                                    .proto(net::kProtoTcp)
                                    .dst_port(80)
                                    .build());
  trace("https to p2", net::PacketBuilder()
                           .src_ip("96.25.160.5")
                           .dst_ip("100.2.9.9")
                           .proto(net::kProtoTcp)
                           .dst_port(443)
                           .build());
  trace("dns to p1 (BGP default)", net::PacketBuilder()
                                       .src_ip("96.25.160.5")
                                       .dst_ip("100.1.2.3")
                                       .proto(net::kProtoUdp)
                                       .dst_port(53)
                                       .build());

  // Everything above was measured as it ran: dump the controller-wide
  // Prometheus exposition (route-server churn, per-stage compile latency,
  // flow-table hits) and the span trace — save the latter as trace.json
  // and load it in about:tracing or https://ui.perfetto.dev to see the
  // compiler stages nested under the install.
  std::printf("\nmetrics (%zu trace spans recorded):\n",
              sdx.telemetry().tracer.records().size());
  const std::string metrics = sdx.dump_metrics();
  std::printf("%s", metrics.c_str());
  return 0;
}
