/// sdx_shell — run SDX scenario scripts (or drive the exchange
/// interactively from stdin). The scenario language covers the full
/// lifecycle: participants, policies, BGP events, deployment, traffic
/// injection, assertions and durability (`save <dir>` checkpoints the
/// exchange to a journal directory, `recover <dir>` rebuilds a fresh
/// session from one — warm-restarting when the persisted tables still
/// match — and `journal` prints the LSN/bytes/checkpoint status line); see
/// src/sdx/scenario.cpp for the grammar.
///
/// Usage:
///   sdx_shell <script.sdx>     # run a script, exit non-zero on failures
///   sdx_shell                  # read commands from stdin
///   sdx_shell --demo           # run the built-in Figure-1 walkthrough

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sdx/scenario.hpp"

namespace {

constexpr const char* kDemo = R"(# Figure 1 walkthrough (paper §3)
participant A 65001
participant B 65002 ports 2
participant C 65003
announce B 100.1.0.0/16 path 65002 900 10
announce C 100.1.0.0/16 path 65003 10
announce C 100.2.0.0/16 path 65003 20
outbound A match dstport=80 -> B
outbound A match dstport=443 -> C
inbound B match srcip=0.0.0.0/1 port 0
inbound B match srcip=128.0.0.0/1 port 1
install
show stats
send A srcip=96.25.160.5 dstip=100.1.2.3 ipproto=6 dstport=80
expect port B 0
send A srcip=200.1.1.1 dstip=100.1.2.3 ipproto=6 dstport=80
expect port B 1
send A srcip=96.25.160.5 dstip=100.2.9.9 ipproto=6 dstport=443
expect port C 0
send A srcip=96.25.160.5 dstip=100.1.2.3 ipproto=17 dstport=53
expect port C 0
audit
explain A srcip=96.25.160.5 dstip=100.1.2.3 ipproto=6 dstport=80
withdraw B 100.1.0.0/16
send A srcip=96.25.160.5 dstip=100.1.2.3 ipproto=6 dstport=80
expect port C 0
show log
)";

}  // namespace

int main(int argc, char** argv) {
  sdx::core::ScenarioInterpreter interpreter;
  if (argc > 1 && std::string(argv[1]) == "--demo") {
    std::istringstream script(kDemo);
    const auto failures = interpreter.run(script, std::cout,
                                          /*echo_commands=*/true);
    return failures == 0 ? 0 : 1;
  }
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    const auto failures = interpreter.run(file, std::cout);
    return failures == 0 ? 0 : 1;
  }
  const auto failures = interpreter.run(std::cin, std::cout);
  return failures == 0 ? 0 : 1;
}
