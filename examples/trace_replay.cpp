/// trace_replay — end-to-end churn pipeline: generate a RIS-like BGP
/// update trace (§4.3 calibrated), export it as MRT (RFC 6396), read it
/// back, and replay it into a live SDX deployment, reporting what the
/// two-stage incremental compiler did with every burst.
///
/// Usage: trace_replay [minutes-of-trace]   (default 120)

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "bgp/mrt.hpp"
#include "ixp/ixp_generator.hpp"
#include "ixp/update_trace.hpp"
#include "sdx/runtime.hpp"

using namespace sdx;

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 120.0;

  // A small IXP: 8 participants, app-specific peering at two of them.
  core::SdxRuntime rt;
  std::vector<bgp::ParticipantId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(rt.add_participant("AS" + std::to_string(65001 + i),
                                     static_cast<net::Asn>(65001 + i)));
  }
  std::vector<net::Ipv4Prefix> universe;
  for (std::uint32_t i = 0; i < 64; ++i) {
    universe.push_back(
        net::Ipv4Prefix(net::Ipv4Address((100u << 24) | (i << 16)), 16));
    rt.announce(ids[i % ids.size()], universe.back());
  }
  rt.set_outbound(
      ids[0], {core::OutboundClause{core::ClauseMatch{}.dst_port(80),
                                    ids[1]},
               core::OutboundClause{core::ClauseMatch{}.dst_port(443),
                                    ids[2]}});
  rt.set_outbound(
      ids[3], {core::OutboundClause{core::ClauseMatch{}.dst_port(80),
                                    ids[2]}});
  const auto& compiled = rt.install();
  std::printf("installed: %zu prefixes, %zu groups, %zu rules\n",
              compiled.stats.prefixes_total, compiled.stats.prefix_groups,
              compiled.stats.final_rules);

  // Generate the churn trace and round-trip it through MRT.
  ixp::TraceConfig cfg;
  cfg.seed = 2014;
  cfg.duration_s = minutes * 60.0;
  cfg.prefix_count = universe.size();
  cfg.frac_prefixes_updated = 0.4;
  std::stringstream mrt_stream;
  std::size_t written = 0;
  ixp::generate_trace(cfg, [&](const ixp::TraceEvent& ev) {
    bgp::Bgp4mpMessage msg;
    const auto& who = rt.participant(ids[ev.prefix_index % ids.size()]);
    msg.peer_as = who.asn;
    msg.local_as = 64999;
    msg.peer_ip = who.primary_port().router_ip;
    bgp::UpdateMessage update;
    if (ev.withdrawal) {
      update.withdrawn = {universe[ev.prefix_index]};
    } else {
      bgp::RouteAttributes attrs;
      attrs.as_path = net::AsPath{
          who.asn, static_cast<net::Asn>(1000 + ev.prefix_index)};
      attrs.next_hop = who.primary_port().router_ip;
      update.attrs = attrs;
      update.nlri = {universe[ev.prefix_index]};
    }
    msg.message = update;
    bgp::write_record(mrt_stream,
                      bgp::encode_bgp4mp(
                          static_cast<std::uint32_t>(ev.timestamp), msg));
    ++written;
  });
  std::printf("trace: %zu updates written to MRT (%zu bytes)\n", written,
              mrt_stream.str().size());

  // Replay: every record goes through the wire decoder and into the SDX.
  std::size_t replayed = 0, withdrawals = 0;
  double last_burst_ts = 0;
  std::size_t bursts = 0;
  while (auto record = bgp::read_record(mrt_stream)) {
    auto msg = bgp::decode_bgp4mp(*record);
    const auto& update = std::get<bgp::UpdateMessage>(msg.message);
    bgp::ParticipantId from = 0;
    for (auto id : ids) {
      if (rt.participant(id).asn == msg.peer_as) from = id;
    }
    if (record->timestamp - last_burst_ts >= 5.0) ++bursts;
    last_burst_ts = record->timestamp;
    for (auto prefix : update.withdrawn) {
      rt.withdraw(from, prefix);
      ++withdrawals;
    }
    if (update.attrs) {
      for (auto prefix : update.nlri) {
        rt.announce(from, prefix,
                    update.attrs->as_path);
      }
    }
    ++replayed;
    // Between bursts the background pass coalesces (paper §4.3.2).
    if (replayed % 200 == 0) rt.background_recompile();
  }

  double total_ms = 0, max_ms = 0;
  std::size_t extra_rules = 0;
  for (const auto& e : rt.update_log()) {
    total_ms += e.fast_seconds * 1e3;
    max_ms = std::max(max_ms, e.fast_seconds * 1e3);
    extra_rules += e.additional_rules;
  }
  const auto& final_compiled = rt.background_recompile();
  std::printf(
      "replayed: %zu updates (%zu withdrawals) across ~%zu bursts\n"
      "fast path: %zu events, %.3f ms mean, %.3f ms max, %zu rules added\n"
      "after background recompilation: %zu rules, %zu groups\n",
      replayed, withdrawals, bursts, rt.update_log().size(),
      rt.update_log().empty() ? 0.0
                              : total_ms / static_cast<double>(
                                    rt.update_log().size()),
      max_ms, extra_rules, final_compiled.stats.final_rules,
      final_compiled.stats.prefix_groups);
  return 0;
}
