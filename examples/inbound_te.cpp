/// Inbound traffic engineering — paper §2.
///
/// AS B has two ports at the exchange and wants to control which one its
/// inbound traffic uses — something BGP can only approximate with AS-path
/// prepending or selective advertisements. At the SDX, B simply installs
/// inbound policies on source blocks (or any other header field) and the
/// fabric steers traffic before it ever reaches B's routers.
///
/// The demo sends traffic from two peers, shows the default port
/// selection, then installs and flips an inbound TE policy and prints the
/// per-port packet counters after each phase.

#include <cstdio>

#include "sdx/runtime.hpp"

using namespace sdx;

namespace {

void blast(core::SdxRuntime& sdx, bgp::ParticipantId from, const char* src,
           int packets) {
  for (int i = 0; i < packets; ++i) {
    sdx.send(from, net::PacketBuilder()
                       .src_ip(src)
                       .dst_ip("100.1.2.3")
                       .proto(net::kProtoTcp)
                       .src_port(40000 + static_cast<std::uint64_t>(i))
                       .dst_port(443)
                       .build());
  }
}

void report(core::SdxRuntime& sdx, bgp::ParticipantId b,
            const char* phase) {
  const auto& sw = sdx.fabric().sdx_switch();
  const auto& ports = sdx.participant(b).ports;
  std::printf("%-34s  B1: %4llu pkts   B2: %4llu pkts\n", phase,
              static_cast<unsigned long long>(sw.tx_packets(ports[0].id)),
              static_cast<unsigned long long>(sw.tx_packets(ports[1].id)));
  sdx.fabric().sdx_switch().reset_counters();
}

}  // namespace

int main() {
  core::SdxRuntime sdx;
  const auto A = sdx.add_participant("A", 65001);
  const auto B = sdx.add_participant("B", 65002, /*port_count=*/2);
  const auto C = sdx.add_participant("C", 65003);

  sdx.announce(B, net::Ipv4Prefix::parse("100.1.0.0/16"),
               net::AsPath{65002});
  sdx.announce(A, net::Ipv4Prefix::parse("20.0.0.0/16"),
               net::AsPath{65001});
  sdx.announce(C, net::Ipv4Prefix::parse("30.0.0.0/16"),
               net::AsPath{65003});
  sdx.install();

  std::printf("AS B is reachable on two ports: B1=%u, B2=%u\n\n",
              sdx.participant(B).ports[0].id, sdx.participant(B).ports[1].id);

  // Phase 1: no inbound policy — BGP's next hop (B's primary port) wins.
  blast(sdx, A, "20.0.0.7", 50);
  blast(sdx, C, "30.0.0.7", 50);
  report(sdx, B, "no policy (BGP default):");

  // Phase 2: split by peer — A's traffic on B1, C's on B2.
  sdx.set_inbound(
      B,
      {core::InboundClause{
           core::ClauseMatch{}.src(net::Ipv4Prefix::parse("20.0.0.0/16")),
           {},
           0},
       core::InboundClause{
           core::ClauseMatch{}.src(net::Ipv4Prefix::parse("30.0.0.0/16")),
           {},
           1}});
  sdx.install();
  blast(sdx, A, "20.0.0.7", 50);
  blast(sdx, C, "30.0.0.7", 50);
  report(sdx, B, "split by source network:");

  // Phase 3: drain B1 for maintenance — everything over B2.
  sdx.set_inbound(B, {core::InboundClause{core::ClauseMatch{}, {}, 1}});
  sdx.install();
  blast(sdx, A, "20.0.0.7", 50);
  blast(sdx, C, "30.0.0.7", 50);
  report(sdx, B, "drain port B1:");

  return 0;
}
