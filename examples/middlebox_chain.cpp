/// Redirection through middleboxes with BGP-attribute grouping — paper §2
/// and §3.2.
///
/// A transit network carries YouTube traffic into the exchange and must
/// steer exactly that traffic through a transcoding middlebox, without
/// enumerating YouTube's prefixes by hand. It asks the route server for
/// every prefix whose AS path originates at YouTube's ASN (the paper's
///   YouTubePrefixes = RIB.filter('as_path', .*43515$)
/// idiom), then installs match(srcip={YouTubePrefixes}) >> fwd(M).
///
/// The middlebox participant M re-advertises the eyeball's prefixes (as a
/// scrubbing/transcoding transit would), which is what makes the redirect
/// consistent with BGP: the SDX only ever forwards along advertised paths.
/// After processing, M re-injects the traffic and default forwarding
/// carries it to the eyeball.

#include <cstdio>

#include "bgp/aspath_regex.hpp"
#include "sdx/runtime.hpp"

using namespace sdx;

int main() {
  constexpr net::Asn kYouTube = 43515;

  core::SdxRuntime sdx;
  const auto T = sdx.add_participant("transit", 65001);
  const auto E = sdx.add_participant("eyeball", 65002);
  const auto M = sdx.add_participant("middlebox", 65003);

  // The eyeball's prefix, plus the middlebox re-advertising it (longer
  // path, so plain BGP still prefers the direct route).
  const auto eyeball_net = net::Ipv4Prefix::parse("203.0.113.0/24");
  sdx.announce(E, eyeball_net, net::AsPath{65002});
  sdx.announce(M, eyeball_net, net::AsPath{65003, 65002});

  // The transit carries YouTube and one unrelated content network.
  sdx.announce(T, net::Ipv4Prefix::parse("208.65.152.0/22"),
               net::AsPath{65001, kYouTube});
  sdx.announce(T, net::Ipv4Prefix::parse("151.101.0.0/16"),
               net::AsPath{65001, 54113});

  // §3.2: derive the match set from BGP attributes.
  auto youtube_prefixes = bgp::filter_rib(
      sdx.route_server(), E, bgp::AsPathFilter::originated_by(kYouTube));
  std::printf("RIB.filter('as_path', .*%u$) -> %zu prefix(es):\n", kYouTube,
              youtube_prefixes.size());
  for (auto p : youtube_prefixes) {
    std::printf("  %s\n", p.to_string().c_str());
  }

  core::ClauseMatch yt_match;
  for (auto p : youtube_prefixes) yt_match.src(p);
  sdx.set_outbound(T, {core::OutboundClause{yt_match, M}});
  sdx.install();

  auto hop = [&](bgp::ParticipantId from, const char* src) {
    auto deliveries = sdx.send(from, net::PacketBuilder()
                                         .src_ip(src)
                                         .dst_ip("203.0.113.50")
                                         .proto(net::kProtoTcp)
                                         .dst_port(443)
                                         .build());
    return deliveries;
  };

  // YouTube-sourced traffic: transit → middlebox → (re-inject) → eyeball.
  auto first = hop(T, "208.65.153.9");
  std::printf("\nYouTube flow, first hop : egress port %u (%s)\n",
              first[0].port,
              first[0].port == sdx.participant(M).primary_port().id ? "middlebox"
                                                   : "UNEXPECTED");
  auto second = hop(M, "208.65.153.9");
  std::printf("after transcoding, hop 2: egress port %u (%s)\n",
              second[0].port,
              second[0].port == sdx.participant(E).primary_port().id ? "eyeball"
                                                    : "UNEXPECTED");

  // Unrelated traffic bypasses the middlebox entirely.
  auto direct = hop(T, "151.101.1.1");
  std::printf("non-YouTube flow        : egress port %u (%s)\n",
              direct[0].port,
              direct[0].port == sdx.participant(E).primary_port().id ? "eyeball, direct"
                                                    : "UNEXPECTED");
  return 0;
}
