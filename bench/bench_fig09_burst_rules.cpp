/// Figure 9 — number of additional forwarding rules installed by the fast
/// path as a function of BGP update burst size, for 100/200/300
/// participants.
///
/// Worst-case scenario as in the paper: every update in the burst changes
/// the best path of a distinct policy-covered prefix, so each one gets a
/// fresh VNH and its own restricted recompilation. Paper result: additional
/// rules grow linearly with burst size, steeper with more participants
/// (~2.5k rules for a 100-update burst at 300 participants).
///
/// The `mode` column contrasts the two fast-path execution strategies over
/// the *same* burst: `per-update` (one restricted compilation per update,
/// the paper's Figure 9 setting) and `batched` (one fast_update_batch pass
/// whose mini-FEC shares bindings across equal-signature prefixes and
/// de-duplicates the installed rules).

#include <algorithm>

#include "bench_common.hpp"
#include "netbase/rng.hpp"
#include "sdx/incremental.hpp"

int main() {
  using namespace sdx;
  const bool smoke = bench::smoke();
  std::printf("# Figure 9 — additional (fast-path) rules vs burst size\n");
  std::printf("participants,burst_size,mode,additional_rules\n");
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  const std::size_t prefixes = smoke ? 2000 : 25000;
  const auto participant_counts =
      smoke ? std::vector<std::size_t>{20}
            : std::vector<std::size_t>{100, 200, 300};
  const auto bursts = smoke
                          ? std::vector<std::size_t>{10, 50}
                          : std::vector<std::size_t>{10, 20, 30, 40, 50,
                                                     60, 70, 80, 90, 100};
  const int kTrials = smoke ? 1 : 3;
  for (std::size_t participants : participant_counts) {
    auto ixp = bench::make_workload(participants, prefixes, prefixes);
    core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                               options);
    core::IncrementalEngine engine(compiler);
    core::VnhAllocator vnh;
    engine.full_recompile(vnh);

    // Policy-covered prefixes (the grouped ones) — updating one of these
    // is the worst case, forcing a new VNH.
    std::vector<net::Ipv4Prefix> covered;
    for (const auto& [prefix, _] : engine.current().fecs.group_of) {
      covered.push_back(prefix);
    }
    std::sort(covered.begin(), covered.end());
    net::SplitMix64 rng(9 + participants);

    for (std::size_t burst : bursts) {
      std::size_t per_update = 0;
      std::size_t batched = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        // One burst of best-path changes, applied to the RIB up front so
        // both modes recompile the identical post-burst state.
        std::vector<net::Ipv4Prefix> updated;
        updated.reserve(burst);
        for (std::size_t i = 0; i < burst; ++i) {
          const auto prefix = covered[rng.below(covered.size())];
          const auto& who =
              ixp.participants[rng.below(ixp.participants.size())];
          bgp::Route r;
          r.prefix = prefix;
          r.attrs.as_path = net::AsPath{who.asn};
          r.attrs.local_pref = 200;
          r.attrs.next_hop = who.is_remote()
                                 ? net::Ipv4Address{}
                                 : who.primary_port().router_ip;
          r.learned_from = who.id;
          r.peer_router_id = net::Ipv4Address(1);
          ixp.server.announce(std::move(r));
          updated.push_back(prefix);
        }
        for (auto prefix : updated) {
          per_update += engine.fast_update(prefix, vnh).additional_rules;
        }
        // Background pass between bursts (the paper's two-stage design) —
        // also the reset that lets the batched mode replay the same burst.
        engine.full_recompile(vnh);
        batched += engine.fast_update_batch(updated, vnh).additional_rules;
        engine.full_recompile(vnh);
      }
      std::printf("%zu,%zu,per-update,%zu\n", participants, burst,
                  per_update / static_cast<std::size_t>(kTrials));
      std::printf("%zu,%zu,batched,%zu\n", participants, burst,
                  batched / static_cast<std::size_t>(kTrials));
      std::fflush(stdout);
    }
  }
  return 0;
}
