/// Figure 9 — number of additional forwarding rules installed by the fast
/// path as a function of BGP update burst size, for 100/200/300
/// participants.
///
/// Worst-case scenario as in the paper: every update in the burst changes
/// the best path of a distinct policy-covered prefix, so each one gets a
/// fresh VNH and its own restricted recompilation. Paper result: additional
/// rules grow linearly with burst size, steeper with more participants
/// (~2.5k rules for a 100-update burst at 300 participants).

#include <algorithm>

#include "bench_common.hpp"
#include "netbase/rng.hpp"
#include "sdx/incremental.hpp"

int main() {
  using namespace sdx;
  std::printf("# Figure 9 — additional (fast-path) rules vs burst size\n");
  std::printf("participants,burst_size,additional_rules\n");
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  for (std::size_t participants : {100, 200, 300}) {
    auto ixp = bench::make_workload(participants, 25000, 25000);
    core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                               options);
    core::IncrementalEngine engine(compiler);
    core::VnhAllocator vnh;
    engine.full_recompile(vnh);

    // Policy-covered prefixes (the grouped ones) — updating one of these
    // is the worst case, forcing a new VNH.
    std::vector<net::Ipv4Prefix> covered;
    for (const auto& [prefix, _] : engine.current().fecs.group_of) {
      covered.push_back(prefix);
    }
    std::sort(covered.begin(), covered.end());
    net::SplitMix64 rng(9 + participants);

    constexpr int kTrials = 3;
    for (std::size_t burst : {10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u,
                              100u}) {
      std::size_t additional = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        for (std::size_t i = 0; i < burst; ++i) {
          const auto prefix = covered[rng.below(covered.size())];
          // Emulate a best-path change: a new, better route from a random
          // participant.
          const auto& who =
              ixp.participants[rng.below(ixp.participants.size())];
          bgp::Route r;
          r.prefix = prefix;
          r.attrs.as_path = net::AsPath{who.asn};
          r.attrs.local_pref = 200;
          r.attrs.next_hop = who.is_remote()
                                 ? net::Ipv4Address{}
                                 : who.primary_port().router_ip;
          r.learned_from = who.id;
          r.peer_router_id = net::Ipv4Address(1);
          ixp.server.announce(std::move(r));
          additional += engine.fast_update(prefix, vnh).additional_rules;
        }
        // Background pass between bursts (the paper's two-stage design).
        engine.full_recompile(vnh);
      }
      std::printf("%zu,%zu,%zu\n", participants, burst,
                  additional / kTrials);
      std::fflush(stdout);
    }
  }
  return 0;
}
