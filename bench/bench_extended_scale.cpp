/// Extended scale — beyond the paper's evaluation envelope: the paper
/// stops at 300 participants; AMS-IX had 639 members in 2014 and ~900
/// today. This bench pushes the full pipeline to 600 participants with a
/// full policy-prefix set and reports compilation cost, rule count and
/// fast-path latency, demonstrating headroom for a full-size IXP.

#include <algorithm>

#include "bench_common.hpp"
#include "netbase/rng.hpp"
#include "sdx/incremental.hpp"

int main() {
  using namespace sdx;
  std::printf("# Extended scale — full pipeline beyond the paper's 300\n");
  std::printf(
      "participants,prefix_groups,final_rules,total_ms,"
      "fast_path_p50_us,fast_path_p99_us\n");
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  for (std::size_t participants : {300u, 450u, 600u}) {
    auto ixp = bench::make_workload(participants, 25000, 25000);
    core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                               options);
    core::IncrementalEngine engine(compiler);
    core::VnhAllocator vnh;
    bench::Stopwatch watch;
    engine.full_recompile(vnh);
    const double total_ms = watch.seconds() * 1e3;
    const auto& stats = engine.current().stats;

    std::vector<net::Ipv4Prefix> covered;
    for (const auto& [prefix, _] : engine.current().fecs.group_of) {
      covered.push_back(prefix);
    }
    std::sort(covered.begin(), covered.end());
    net::SplitMix64 rng(600 + participants);
    std::vector<double> fast_us;
    for (int i = 0; i < 200; ++i) {
      const auto prefix = covered[rng.below(covered.size())];
      const auto& who = ixp.participants[rng.below(ixp.participants.size())];
      bgp::Route r;
      r.prefix = prefix;
      r.attrs.as_path = net::AsPath{who.asn};
      r.attrs.local_pref = 200;
      r.attrs.next_hop = who.primary_port().router_ip;
      r.learned_from = who.id;
      r.peer_router_id = net::Ipv4Address(1);
      ixp.server.announce(std::move(r));
      fast_us.push_back(engine.fast_update(prefix, vnh).seconds * 1e6);
    }
    std::sort(fast_us.begin(), fast_us.end());
    std::printf("%zu,%zu,%zu,%.1f,%.1f,%.1f\n", participants,
                stats.prefix_groups, stats.final_rules, total_ms,
                fast_us[fast_us.size() / 2],
                fast_us[fast_us.size() * 99 / 100]);
    std::fflush(stdout);
  }
  return 0;
}
