/// Table 1 — the IXP datasets (AMS-IX, DE-CIX, LINX, Jan 1–6 2014), plus
/// the §4.3 burst statistics the two-stage compiler design rests on.
///
/// Substitution (DESIGN.md §2): the RIPE RIS traces are proprietary-scale
/// captures; we regenerate synthetic traces calibrated to the same
/// aggregate statistics. The "BGP updates" column in the paper counts
/// updates across all collector peer sessions; we generate unique routing
/// events and model the per-session amplification as events ×
/// collector-peers. The prefix universe is scaled 1:10 so the bench runs in
/// seconds; counters are reported at both scales.

#include <cstdio>

#include "ixp/ixp_generator.hpp"
#include "ixp/trace_stats.hpp"
#include "ixp/update_trace.hpp"

int main() {
  using namespace sdx;
  constexpr double kScale = 10.0;  // prefix/update downscale for runtime

  std::printf("# Table 1 — IXP datasets (synthetic, calibrated; scale 1:%g)\n",
              kScale);
  std::printf(
      "collector,peers,prefixes_paper,prefixes_modeled,updates_paper,"
      "updates_modeled,pct_prefixes_updated_paper,"
      "pct_prefixes_updated_modeled\n");

  for (const auto& profile :
       {ixp::IxpProfile::amsix(), ixp::IxpProfile::decix(),
        ixp::IxpProfile::linx()}) {
    ixp::TraceConfig cfg;
    cfg.seed = 20140101;
    cfg.duration_s = 6 * 86400.0;
    cfg.prefix_count =
        static_cast<std::size_t>(profile.prefixes / kScale);
    // Small compensation: coverage of the hot pool is ~95% at this draw
    // rate, so the pool is sized slightly above the target fraction.
    cfg.frac_prefixes_updated = profile.frac_prefixes_updated * 1.05;
    // Per-IXP churn: updates per routing event = paper update count /
    // (collector peers × unique events at this burst cadence). DE-CIX saw
    // ~3× the per-event churn of AMS-IX in the measurement week.
    cfg.churn_per_prefix =
        static_cast<double>(profile.updates_per_week) /
        (static_cast<double>(profile.collector_peers) * kScale * 9800.0);

    ixp::TraceAnalyzer analyzer(5.0);
    const std::size_t events =
        ixp::generate_trace(cfg, [&analyzer](const ixp::TraceEvent& ev) {
          analyzer.feed(ev);
        });
    auto stats = analyzer.finish();

    const double updates_modeled = static_cast<double>(events) *
                                   static_cast<double>(profile.collector_peers) *
                                   kScale;
    std::printf("%s,%zu/%zu,%zu,%zu,%zu,%.0f,%.2f%%,%.2f%%\n",
                profile.name.c_str(), profile.collector_peers,
                profile.total_peers, profile.prefixes,
                cfg.prefix_count, profile.updates_per_week, updates_modeled,
                profile.frac_prefixes_updated * 100,
                100.0 * static_cast<double>(stats.distinct_prefixes) /
                    static_cast<double>(cfg.prefix_count));

    std::fprintf(stderr,
                 "  [%s] events=%zu bursts=%zu p75_burst=%.0f "
                 "max_burst=%.0f median_gap=%.0fs p25_gap=%.0fs "
                 "withdrawals=%zu\n",
                 profile.name.c_str(), events, stats.burst_count,
                 stats.p75_burst_size, stats.max_burst_size,
                 stats.median_interarrival_s, stats.p25_interarrival_s,
                 stats.withdrawal_count);
  }

  std::printf(
      "\n# §4.3 burst characteristics backing two-stage compilation "
      "(AMS-IX-like trace):\n");
  ixp::TraceConfig cfg;
  cfg.seed = 20140101;
  cfg.duration_s = 6 * 86400.0;
  cfg.prefix_count = 51808;
  cfg.frac_prefixes_updated = 0.104;
  ixp::TraceAnalyzer analyzer(5.0);
  ixp::generate_trace(cfg, [&analyzer](const ixp::TraceEvent& ev) {
    analyzer.feed(ev);
  });
  auto s = analyzer.finish();
  std::printf("metric,paper,measured\n");
  std::printf("p75 burst size (prefixes),<=3,%.0f\n", s.p75_burst_size);
  std::printf("max burst size (prefixes),>1000 once a week,%.0f\n",
              s.max_burst_size);
  std::printf("p25 inter-burst gap (s),>=10,%.1f\n", s.p25_interarrival_s);
  std::printf("median inter-burst gap (s),>=60 (half the time),%.1f\n",
              s.median_interarrival_s);
  return 0;
}
