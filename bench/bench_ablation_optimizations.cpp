/// Ablation — pricing each §4.2/§4.3 design choice individually:
///
///   * VMAC grouping off  → clause rules match destination prefixes
///     directly: data-plane state explodes (the §4.2 claim);
///   * pair pruning off   → every stage-1 rule is composed against the
///     concatenation of all participants' stage-2 policies instead of only
///     its target's: wasted compositions (the §4.3.1 claim);
///   * memoization off    → stage-2 classifiers are rebuilt per composed
///     rule (the §4.3.1 caching claim);
///   * reference compiler → the paper's literal (ΣPX'')>>(ΣPX'') formula
///     through the generic classifier compiler, at a small scale where it
///     is feasible at all.

#include "bench_common.hpp"
#include "policy/compile.hpp"
#include "sdx/default_forwarding.hpp"

using namespace sdx;

namespace {

void run_variant(const char* name, const ixp::GeneratedIxp& ixp,
                 core::CompileOptions options) {
  options.threads = bench::bench_threads();  // same width for every variant
  core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                             options);
  core::VnhAllocator vnh;
  auto compiled = compiler.compile(vnh);
  const auto& s = compiled.stats;
  std::printf("%-22s,%zu,%zu,%zu,%.1f\n", name, s.prefix_groups,
              s.final_rules, s.pair_compositions, s.total_seconds * 1e3);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("# Ablation of the SDX compiler optimizations\n");
  std::printf("# workload: 100 participants, 10000 prefixes, px=10000\n");
  std::printf("variant,prefix_groups,final_rules,pair_compositions,"
              "time_ms\n");
  auto ixp = bench::make_workload(100, 10000, 10000);
  run_variant("optimized", ixp, {});
  {
    core::CompileOptions o;
    o.memoize_stage2 = false;
    run_variant("no-memoization", ixp, o);
  }
  {
    core::CompileOptions o;
    o.prune_pairs = false;
    run_variant("no-pair-pruning", ixp, o);
  }
  {
    core::CompileOptions o;
    o.vmac_grouping = false;
    run_variant("no-vmac-grouping", ixp, o);
  }

  // The reference compiler executes the paper's unoptimized formula; it is
  // only tractable on toy instances — which is itself the ablation result.
  std::printf("\n# reference (paper-literal) compiler vs optimized, tiny "
              "scale\n");
  std::printf("variant,participants,prefixes,rules,time_ms\n");
  for (std::size_t participants : {5u, 10u, 15u}) {
    ixp::GeneratorConfig cfg;
    cfg.participants = participants;
    cfg.prefixes = 40;
    cfg.seed = 3;
    auto tiny = ixp::generate_ixp(cfg);
    ixp::PolicySynthConfig pcfg;
    pcfg.seed = 5;
    ixp::synthesize_policies(tiny, pcfg);

    bench::Stopwatch ref_watch;
    auto policy =
        core::reference_sdx_policy(tiny.participants, tiny.ports,
                                   tiny.server);
    auto classifier = policy::compile(policy);
    std::printf("reference,%zu,%zu,%zu,%.1f\n", participants,
                cfg.prefixes, classifier.size(), ref_watch.seconds() * 1e3);

    bench::Stopwatch opt_watch;
    core::SdxCompiler compiler(tiny.participants, tiny.ports, tiny.server);
    core::VnhAllocator vnh;
    auto compiled = compiler.compile(vnh);
    std::printf("optimized,%zu,%zu,%zu,%.1f\n", participants, cfg.prefixes,
                compiled.stats.final_rules, opt_watch.seconds() * 1e3);
    std::fflush(stdout);
  }
  return 0;
}
