/// Figure 10 — CDF of the time to process a single BGP update (the §4.3.2
/// fast path: assume a fresh VNH, recompile only the parts of the policy
/// related to the updated prefix, compose through the memoized stage-2
/// classifiers).
///
/// Paper result: under 100 ms most of the time, growing with participant
/// count. Expected here: the same shape at far lower absolute numbers
/// (optimized C++ vs Python).

#include <algorithm>

#include "bench_common.hpp"
#include "netbase/rng.hpp"
#include "sdx/incremental.hpp"

int main() {
  using namespace sdx;
  constexpr int kUpdates = 500;
  std::printf("# Figure 10 — single-update fast-path processing time\n");
  std::printf("participants,percentile,time_ms\n");
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  telemetry::Telemetry telemetry;
  auto& fast_seconds = telemetry.metrics.histogram(
      "sdx_fast_path_seconds", "per-update fast-path latency (seconds)");
  auto& fast_rules = telemetry.metrics.counter(
      "sdx_fast_path_rules_total",
      "additional higher-priority rules installed by the fast path");
  for (std::size_t participants : {100, 200, 300}) {
    auto ixp = bench::make_workload(participants, 25000, 25000);
    core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                               options);
    core::IncrementalEngine engine(compiler);
    engine.set_telemetry(&telemetry);
    core::VnhAllocator vnh;
    engine.full_recompile(vnh);

    std::vector<net::Ipv4Prefix> covered;
    for (const auto& [prefix, _] : engine.current().fecs.group_of) {
      covered.push_back(prefix);
    }
    std::sort(covered.begin(), covered.end());
    net::SplitMix64 rng(10 + participants);

    std::vector<double> times_ms;
    times_ms.reserve(kUpdates);
    for (int i = 0; i < kUpdates; ++i) {
      const auto prefix = covered[rng.below(covered.size())];
      const auto& who = ixp.participants[rng.below(ixp.participants.size())];
      bgp::Route r;
      r.prefix = prefix;
      r.attrs.as_path = net::AsPath{who.asn};
      r.attrs.local_pref = 150 + static_cast<std::uint32_t>(i % 50);
      r.attrs.next_hop = who.is_remote() ? net::Ipv4Address{}
                                         : who.primary_port().router_ip;
      r.learned_from = who.id;
      r.peer_router_id = net::Ipv4Address(1);
      ixp.server.announce(std::move(r));
      auto result = engine.fast_update(prefix, vnh);
      fast_seconds.observe(result.seconds);
      fast_rules.inc(result.additional_rules);
      times_ms.push_back(result.seconds * 1e3);
    }
    std::sort(times_ms.begin(), times_ms.end());
    for (int pct : {10, 25, 50, 75, 90, 95, 99}) {
      const auto idx = std::min<std::size_t>(
          times_ms.size() - 1,
          static_cast<std::size_t>(pct / 100.0 *
                                   static_cast<double>(times_ms.size())));
      std::printf("%zu,p%d,%.3f\n", participants, pct, times_ms[idx]);
    }
    std::fflush(stdout);
  }
  // Fast-path latency histogram and rule counters across all updates, in
  // comment-prefixed Prometheus form.
  bench::emit_metrics_snapshot(telemetry.metrics);
  return 0;
}
