/// Figure 10 — CDF of the time to process a single BGP update (the §4.3.2
/// fast path: assume a fresh VNH, recompile only the parts of the policy
/// related to the updated prefix, compose through the memoized stage-2
/// classifiers).
///
/// Paper result: under 100 ms most of the time, growing with participant
/// count. Expected here: the same shape at far lower absolute numbers
/// (optimized C++ vs Python).
///
/// Three `mode` series per participant count:
///   per-update      — one restricted compilation per update (the paper's
///                     setting);
///   batched         — updates flushed in batches of 32 through
///                     fast_update_batch; the per-update figure is the
///                     batch latency amortized over its members;
///   async-recompile — per-update latency of the inline fast path while a
///                     full optimal recompilation of a snapshot runs
///                     concurrently on a pool worker (the §4.3.2 background
///                     stage actually in the background).

#include <algorithm>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "netbase/parallel.hpp"
#include "netbase/rng.hpp"
#include "sdx/incremental.hpp"

namespace {

void print_percentiles(std::size_t participants, const char* mode,
                       std::vector<double> times_ms) {
  std::sort(times_ms.begin(), times_ms.end());
  for (int pct : {10, 25, 50, 75, 90, 95, 99}) {
    const auto idx = std::min<std::size_t>(
        times_ms.size() - 1,
        static_cast<std::size_t>(pct / 100.0 *
                                 static_cast<double>(times_ms.size())));
    std::printf("%zu,%s,p%d,%.3f\n", participants, mode, pct, times_ms[idx]);
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace sdx;
  const bool smoke = bench::smoke();
  const int kUpdates = smoke ? 64 : 500;
  constexpr std::size_t kBatch = 32;
  std::printf("# Figure 10 — single-update fast-path processing time\n");
  std::printf("participants,mode,percentile,time_ms\n");
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  telemetry::Telemetry telemetry;
  auto& fast_seconds = telemetry.metrics.histogram(
      "sdx_fast_path_seconds", "per-update fast-path latency (seconds)");
  auto& fast_rules = telemetry.metrics.counter(
      "sdx_fast_path_rules_total",
      "additional higher-priority rules installed by the fast path");
  const std::size_t prefixes = smoke ? 2000 : 25000;
  const auto participant_counts =
      smoke ? std::vector<std::size_t>{20}
            : std::vector<std::size_t>{100, 200, 300};
  for (std::size_t participants : participant_counts) {
    auto ixp = bench::make_workload(participants, prefixes, prefixes);
    core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                               options);
    core::IncrementalEngine engine(compiler);
    engine.set_telemetry(&telemetry);
    core::VnhAllocator vnh;
    engine.full_recompile(vnh);

    std::vector<net::Ipv4Prefix> covered;
    for (const auto& [prefix, _] : engine.current().fecs.group_of) {
      covered.push_back(prefix);
    }
    std::sort(covered.begin(), covered.end());
    net::SplitMix64 rng(10 + participants);

    auto announce_update = [&](int i) {
      const auto prefix = covered[rng.below(covered.size())];
      const auto& who = ixp.participants[rng.below(ixp.participants.size())];
      bgp::Route r;
      r.prefix = prefix;
      r.attrs.as_path = net::AsPath{who.asn};
      r.attrs.local_pref = 150 + static_cast<std::uint32_t>(i % 50);
      r.attrs.next_hop = who.is_remote() ? net::Ipv4Address{}
                                         : who.primary_port().router_ip;
      r.learned_from = who.id;
      r.peer_router_id = net::Ipv4Address(1);
      ixp.server.announce(std::move(r));
      return prefix;
    };

    // --- per-update: one restricted compilation per update ---------------
    std::vector<double> times_ms;
    times_ms.reserve(static_cast<std::size_t>(kUpdates));
    for (int i = 0; i < kUpdates; ++i) {
      const auto prefix = announce_update(i);
      auto result = engine.fast_update(prefix, vnh);
      fast_seconds.observe(result.seconds);
      fast_rules.inc(result.additional_rules);
      times_ms.push_back(result.seconds * 1e3);
    }
    print_percentiles(participants, "per-update", std::move(times_ms));
    engine.full_recompile(vnh);

    // --- batched: flushes of kBatch, amortized per-update latency ---------
    times_ms.clear();
    for (int i = 0; i < kUpdates; i += static_cast<int>(kBatch)) {
      std::vector<net::Ipv4Prefix> burst;
      for (std::size_t k = 0; k < kBatch; ++k) {
        burst.push_back(announce_update(i + static_cast<int>(k)));
      }
      auto batch = engine.fast_update_batch(burst, vnh);
      fast_rules.inc(batch.additional_rules);
      const double amortized_ms =
          batch.items.empty()
              ? 0.0
              : batch.seconds * 1e3 / static_cast<double>(batch.items.size());
      for (std::size_t k = 0; k < batch.items.size(); ++k) {
        fast_seconds.observe(amortized_ms / 1e3);
        times_ms.push_back(amortized_ms);
      }
    }
    print_percentiles(participants, "batched", std::move(times_ms));
    engine.full_recompile(vnh);

    // --- async-recompile: inline fast path racing a background compile ----
    // Snapshot the compiler inputs (as SdxRuntime::start_background_
    // recompile does) and run the full pipeline on a pool worker while the
    // control loop keeps absorbing updates through the fast path.
    auto snap_participants = ixp.participants;
    auto snap_ports = ixp.ports;
    auto snap_server = ixp.server.snapshot();
    net::ThreadPool async_pool(2);
    core::VnhAllocator snap_vnh;
    core::CompiledSdx background;
    std::future<void> done = async_pool.submit([&] {
      core::SdxCompiler snap_compiler(snap_participants, snap_ports,
                                      snap_server, options);
      background = snap_compiler.compile(snap_vnh);
    });
    times_ms.clear();
    for (int i = 0; i < kUpdates; ++i) {
      const auto prefix = announce_update(i);
      auto result = engine.fast_update(prefix, vnh);
      fast_seconds.observe(result.seconds);
      fast_rules.inc(result.additional_rules);
      times_ms.push_back(result.seconds * 1e3);
    }
    done.wait();
    print_percentiles(participants, "async-recompile", std::move(times_ms));
    std::printf("# async-recompile background table: %zu rules\n",
                background.fabric.rules().size());
    engine.full_recompile(vnh);
  }
  // Fast-path latency histogram and rule counters across all updates, in
  // comment-prefixed Prometheus form.
  bench::emit_metrics_snapshot(telemetry.metrics);
  return 0;
}
