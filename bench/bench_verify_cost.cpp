/// Verification-cost benchmark — what the safety checker charges for its
/// proofs, across exchange sizes and policy densities, in two modes:
///
///   full        — a from-scratch pass over every packet equivalence class
///                 (every known prefix × sender × header variant), the cost
///                 the runtime pays after a full recompilation;
///   incremental — re-checking only the classes of a dirty prefix while
///                 cached findings cover the rest, the cost charged on the
///                 §4.3.2 fast path and on partitioned policy updates.
///
/// The interesting gap is full vs incremental: the incremental re-check
/// touches O(senders × variants) classes instead of O(prefixes × senders ×
/// variants), so its cost must stay roughly flat in the prefix count while
/// the full pass grows linearly — the property that makes it affordable to
/// verify after every update.
///
/// CSV: mode,participants,prefixes,clauses,classes,edges,checks,check_ms
///
/// check_ms is the per-check mean, so the full and incremental rows are
/// directly comparable. classes/edges in the incremental rows describe the
/// whole cached proof the report covers (the checker re-walks only the
/// dirty prefix; the rest is served from its per-prefix cache), not the
/// work done — the time column is the honest work measure.
///
/// The metrics snapshot (last configuration) captures the runtime-staged
/// verification counters: one full run from enable_verification(), one
/// incremental run from a post-install announcement, and zero violations —
/// the stock workloads must verify clean.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sdx/runtime.hpp"
#include "verify/safety.hpp"

namespace {

using namespace sdx;

/// Deterministic /24 universe: index i → 100.<i/256>.<i%256>.0/24.
net::Ipv4Prefix prefix_of(std::size_t i) {
  return net::Ipv4Prefix(
      net::Ipv4Address((100u << 24) | static_cast<std::uint32_t>(i << 8)),
      24);
}

/// Builds the exchange through the runtime API. Every `clause_stride`-th
/// participant steers port-80/443 traffic to its clockwise neighbour, so
/// the clause count (and with it the checker's header-variant fan-out)
/// scales with the stride knob.
std::size_t build_base(core::SdxRuntime& rt, std::size_t participants,
                       std::size_t prefixes, std::size_t clause_stride) {
  std::size_t clauses = 0;
  for (std::size_t j = 1; j <= participants; ++j) {
    rt.add_participant("P" + std::to_string(j),
                       static_cast<net::Asn>(65000 + j));
  }
  for (std::size_t j = 1; j <= participants; j += clause_stride) {
    const auto to = static_cast<bgp::ParticipantId>(j % participants + 1);
    rt.set_outbound(
        static_cast<bgp::ParticipantId>(j),
        {core::OutboundClause{core::ClauseMatch{}.dst_port(80), to},
         core::OutboundClause{core::ClauseMatch{}.dst_port(443), to}});
    clauses += 2;
  }
  for (std::size_t i = 0; i < prefixes; ++i) {
    const auto owner = static_cast<bgp::ParticipantId>(i % participants + 1);
    rt.announce(owner, prefix_of(i),
                net::AsPath{static_cast<net::Asn>(65000 + owner),
                            static_cast<net::Asn>(1000 + i % 7)});
  }
  rt.install();
  return clauses;
}

}  // namespace

int main() {
  const bool smoke = bench::smoke();
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  const std::size_t incremental_checks = smoke ? 4 : 16;

  struct Config {
    std::size_t participants;
    std::size_t prefixes;
    std::size_t clause_stride;
  };
  const auto configs = smoke
                           ? std::vector<Config>{{10, 100, 3}}
                           : std::vector<Config>{{20, 500, 3},
                                                 {50, 500, 3},
                                                 {50, 2000, 3},
                                                 {50, 500, 1}};

  std::printf("# verification cost — full pass vs incremental re-check\n");
  std::printf("mode,participants,prefixes,clauses,classes,edges,checks,check_ms\n");

  for (const auto& cfg : configs) {
    core::SdxRuntime rt(bgp::DecisionConfig{}, options);
    const std::size_t clauses =
        build_base(rt, cfg.participants, cfg.prefixes, cfg.clause_stride);

    // full: a from-scratch proof over every class (report.seconds is the
    // checker's own wall time, excluding the audit that verify_now folds in).
    const auto full = rt.verify_now();
    std::printf("full,%zu,%zu,%zu,%zu,%zu,1,%.3f\n", cfg.participants,
                cfg.prefixes, clauses, full.classes_checked,
                full.edges_walked, full.seconds * 1e3);
    std::fflush(stdout);

    // incremental: prime a standalone checker with the full pass, then
    // re-check one dirty prefix at a time — the per-update re-verify cost.
    const auto view = rt.deployment_view();
    verify::SafetyChecker checker;
    checker.full(view);
    bench::Stopwatch timer;
    std::size_t classes = 0;
    std::size_t edges = 0;
    for (std::size_t k = 0; k < incremental_checks; ++k) {
      const auto report =
          checker.incremental(view, {prefix_of(k % cfg.prefixes)});
      classes += report.classes_checked;
      edges += report.edges_walked;
    }
    std::printf("incremental,%zu,%zu,%zu,%zu,%zu,%zu,%.3f\n",
                cfg.participants, cfg.prefixes, clauses, classes, edges,
                incremental_checks,
                timer.seconds() * 1e3 / static_cast<double>(incremental_checks));
    std::fflush(stdout);

    // The snapshot of the last configuration is the artifact CI scrapes:
    // one full stage (enable at an installed state), one incremental stage
    // (a post-install announcement), zero violations of any kind.
    if (&cfg == &configs.back()) {
      rt.enable_verification();
      rt.announce(1, prefix_of(0),
                  net::AsPath{static_cast<net::Asn>(65001)});
      bench::emit_metrics_snapshot(rt.telemetry().metrics);
    }
  }
  return 0;
}
