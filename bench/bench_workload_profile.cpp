/// Workload characterization — prints the §6.1 distributions the synthetic
/// IXP generator is calibrated to, so the Figure 6–10 inputs can be
/// sanity-checked at a glance:
///
///   * the prefix-count skew ("1% of ASes announce >50% of prefixes, the
///     bottom 90% combined announce <1%");
///   * the category mix and which members install policies;
///   * export-table sizes (origination + transit cones);
///   * clause counts per policy-installing category.

#include <algorithm>
#include <numeric>

#include "bench_common.hpp"

int main() {
  using namespace sdx;
  for (std::size_t participants : {100, 300}) {
    ixp::GeneratorConfig cfg;
    cfg.participants = participants;
    cfg.prefixes = 25000;
    cfg.seed = 1;
    auto ixp = ixp::generate_ixp(cfg);
    ixp::PolicySynthConfig pcfg;
    pcfg.seed = 38;
    pcfg.policy_prefixes = ixp::sample_policy_prefixes(ixp, 25000, 20);
    ixp::synthesize_policies(ixp, pcfg);

    std::printf("# workload profile — %zu participants, %zu prefixes\n",
                participants, cfg.prefixes);

    // Origination skew.
    auto counts = ixp.announced_counts;
    std::sort(counts.rbegin(), counts.rend());
    std::size_t top1 = 0, bottom90 = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i <= counts.size() / 100) top1 += counts[i];
      if (i >= counts.size() / 10) bottom90 += counts[i];
    }
    std::printf("origination: top1%%=%.1f%% of table, bottom90%%=%.1f%%\n",
                100.0 * static_cast<double>(top1) / 25000.0,
                100.0 * static_cast<double>(bottom90) / 25000.0);

    // Export sizes (origination + cones), percentiles.
    std::vector<double> exports;
    for (const auto& p : ixp.participants) {
      exports.push_back(
          static_cast<double>(ixp.server.advertised_by(p.id).size()));
    }
    std::sort(exports.begin(), exports.end());
    std::printf("export-table size: p50=%.0f p90=%.0f max=%.0f\n",
                exports[exports.size() / 2],
                exports[exports.size() * 9 / 10], exports.back());

    // Category mix and policy installers.
    std::size_t by_cat[3] = {0, 0, 0};
    std::size_t clauses_by_cat[3] = {0, 0, 0};
    std::size_t installers = 0, multiport = 0;
    for (std::size_t i = 0; i < ixp.participants.size(); ++i) {
      const auto c = static_cast<std::size_t>(ixp.categories[i]);
      ++by_cat[c];
      const auto& p = ixp.participants[i];
      clauses_by_cat[c] += p.outbound.size() + p.inbound.size();
      installers += !p.outbound.empty() || !p.inbound.empty();
      multiport += p.ports.size() > 1;
    }
    std::printf("categories: eyeball=%zu transit=%zu content=%zu; "
                "%zu install policies; %zu multi-port\n",
                by_cat[0], by_cat[1], by_cat[2], installers, multiport);
    std::printf("clauses: eyeball=%zu transit=%zu content=%zu\n\n",
                clauses_by_cat[0], clauses_by_cat[1], clauses_by_cat[2]);
  }
  return 0;
}
