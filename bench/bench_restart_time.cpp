/// Restart-time benchmark — the price of coming back after a crash, across
/// Table-1-sized RIBs, in three modes:
///
///   cold       — genesis WAL only: recovery replays every mutation since
///                birth, including the full install() compilation;
///   ckpt-only  — a checkpoint and an empty tail: recovery decodes the
///                checkpoint and (fingerprint permitting) adopts the
///                compiled tables without compiling — the warm restart;
///   warm       — checkpoint plus a WAL tail of post-install updates:
///                adoption followed by one batched fast-path replay pass.
///
/// The interesting gap is cold vs warm: a warm restart skips the full
/// pipeline entirely (`sdx_compile_runs_total` stays 0 — visible in the
/// metrics snapshot) and reuses every persisted VNH→VMAC binding, so
/// border-router ARP caches survive the restart.
///
/// CSV: mode,participants,prefixes,tail_updates,recover_ms,replayed,warm

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "netbase/rng.hpp"
#include "sdx/runtime.hpp"

namespace {

using namespace sdx;

/// Deterministic /24 universe: index i → 100.<i/256>.<i%256>.0/24.
net::Ipv4Prefix prefix_of(std::size_t i) {
  return net::Ipv4Prefix(
      net::Ipv4Address((100u << 24) | static_cast<std::uint32_t>(i << 8)),
      24);
}

/// Builds the exchange through the runtime API (the journal records runtime
/// mutations, so the workload must be driven through the runtime — a
/// pre-generated IXP snapshot would bypass the WAL). Participants are
/// registered with deterministic ids/MACs/IPs, prefixes are originated
/// round-robin, and every third participant installs outbound clauses so
/// compilation has policy work to do.
void build_base(core::SdxRuntime& rt, std::size_t participants,
                std::size_t prefixes) {
  for (std::size_t j = 1; j <= participants; ++j) {
    rt.add_participant("P" + std::to_string(j),
                       static_cast<net::Asn>(65000 + j));
  }
  for (std::size_t j = 1; j <= participants; j += 3) {
    const auto to = static_cast<bgp::ParticipantId>(j % participants + 1);
    rt.set_outbound(
        static_cast<bgp::ParticipantId>(j),
        {core::OutboundClause{core::ClauseMatch{}.dst_port(80), to},
         core::OutboundClause{core::ClauseMatch{}.dst_port(443), to}});
  }
  for (std::size_t i = 0; i < prefixes; ++i) {
    const auto owner = static_cast<bgp::ParticipantId>(i % participants + 1);
    rt.announce(owner, prefix_of(i),
                net::AsPath{static_cast<net::Asn>(65000 + owner),
                            static_cast<net::Asn>(1000 + i % 7)});
  }
  rt.install();
}

/// Post-install churn: announcements from rotating participants (best-route
/// flips) with an occasional withdrawal, mirroring the §4.3 burst mix.
void apply_tail(core::SdxRuntime& rt, std::size_t participants,
                std::size_t prefixes, std::size_t updates) {
  net::SplitMix64 rng(99);
  for (std::size_t u = 0; u < updates; ++u) {
    const std::size_t i = rng.below(prefixes);
    const auto owner = static_cast<bgp::ParticipantId>(i % participants + 1);
    if (rng.below(10) < 3) {
      rt.withdraw(owner, prefix_of(i));
    } else {
      const auto via =
          static_cast<bgp::ParticipantId>(rng.below(participants) + 1);
      rt.announce(via, prefix_of(i),
                  net::AsPath{static_cast<net::Asn>(65000 + via)});
    }
  }
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/sdx_bench_restart_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

}  // namespace

int main() {
  const bool smoke = bench::smoke();
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  const std::size_t prefixes = smoke ? 2000 : 25000;
  const std::size_t tail_updates = smoke ? 32 : 512;
  const auto participant_counts = smoke ? std::vector<std::size_t>{20}
                                        : std::vector<std::size_t>{100, 300};

  std::printf("# restart time — cold vs warm vs checkpoint-only recovery\n");
  std::printf("mode,participants,prefixes,tail_updates,recover_ms,replayed,warm\n");

  for (const std::size_t participants : participant_counts) {
    // cold: the journal is attached before any state exists, so recovery
    // is a full genesis replay (every announce plus the install compile).
    {
      TempDir dir;
      {
        core::SdxRuntime rt(bgp::DecisionConfig{}, options);
        rt.attach_journal(dir.path,
                          {persist::Journal::Options::Fsync::kNever});
        build_base(rt, participants, prefixes);
        apply_tail(rt, participants, prefixes, tail_updates);
      }
      core::SdxRuntime rt(bgp::DecisionConfig{}, options);
      const auto report = rt.recover(dir.path);
      std::printf("cold,%zu,%zu,%zu,%.3f,%zu,%d\n", participants, prefixes,
                  tail_updates, report.seconds * 1e3, report.replayed,
                  report.warm ? 1 : 0);
      std::fflush(stdout);
    }
    // ckpt-only: checkpoint at the installed state, empty tail — the pure
    // warm-restart cost (decode + fingerprint check + table adoption).
    {
      TempDir dir;
      {
        core::SdxRuntime rt(bgp::DecisionConfig{}, options);
        build_base(rt, participants, prefixes);
        apply_tail(rt, participants, prefixes, tail_updates);
        rt.attach_journal(dir.path,
                          {persist::Journal::Options::Fsync::kNever});
      }
      core::SdxRuntime rt(bgp::DecisionConfig{}, options);
      const auto report = rt.recover(dir.path);
      std::printf("ckpt-only,%zu,%zu,%zu,%.3f,%zu,%d\n", participants,
                  prefixes, tail_updates, report.seconds * 1e3,
                  report.replayed, report.warm ? 1 : 0);
      std::fflush(stdout);
    }
    // warm: checkpoint at install, then a churn tail — adoption plus one
    // batched fast-path replay of the tail.
    {
      TempDir dir;
      {
        core::SdxRuntime rt(bgp::DecisionConfig{}, options);
        build_base(rt, participants, prefixes);
        rt.attach_journal(dir.path,
                          {persist::Journal::Options::Fsync::kNever});
        apply_tail(rt, participants, prefixes, tail_updates);
      }
      core::SdxRuntime rt(bgp::DecisionConfig{}, options);
      const auto report = rt.recover(dir.path);
      std::printf("warm,%zu,%zu,%zu,%.3f,%zu,%d\n", participants, prefixes,
                  tail_updates, report.seconds * 1e3, report.replayed,
                  report.warm ? 1 : 0);
      std::fflush(stdout);
      // The snapshot of the last warm recovery is the artifact CI scrapes:
      // sdx_recovery_warm_total=1 and sdx_compile_runs_total absent/0
      // prove the restart skipped the pipeline.
      if (participants == participant_counts.back()) {
        bench::emit_metrics_snapshot(rt.telemetry().metrics);
      }
    }
  }
  return 0;
}
