/// Figure 5 — traffic patterns for the two "live" SDX applications
/// (§5.2), regenerated over the emulated data plane.
///
/// 5a: application-specific peering. Policy install at t=565 s shifts
///     port-80 traffic from AS A to AS B; B's route withdrawal at t=1253 s
///     shifts everything back to A. Each 30 s tick offers a generated
///     96-packet traffic mix (12 flows × {80, 443, 8080}, every flow
///     repeated 8× per burst) through the batched data-plane path
///     (send_batch → process_batch), with a TrafficMonitor tallying the
///     deliveries the way the DDoS-scrubber application would.
/// 5b: wide-area load balance. Policy install at t=246 s splits anycast
///     request traffic across the two AWS instances.
///
/// Output: both CSV series (coarse 30 s buckets; the standalone examples
/// app_specific_peering / wide_area_load_balancer print the full-resolution
/// versions), followed by a shape check of the step transitions.

#include <cstdio>
#include <vector>

#include "sdx/monitor.hpp"
#include "sdx/runtime.hpp"

using namespace sdx;

namespace {

bool fig5a() {
  core::SdxRuntime sdx;
  const auto A = sdx.add_participant("A", 65001);
  const auto B = sdx.add_participant("B", 65002);
  const auto C = sdx.add_participant("C", 65003);
  const auto aws = net::Ipv4Prefix::parse("72.252.0.0/16");
  sdx.announce(A, aws, net::AsPath{65001, 16509});
  sdx.announce(B, aws, net::AsPath{65002, 7018, 16509});
  sdx.announce(C, net::Ipv4Prefix::parse("198.51.100.0/24"),
               net::AsPath{65003});
  sdx.install();

  // The per-tick traffic mix: 12 flows (4 per application port), each flow
  // repeated 8× per burst — the duplicate structure the batched lookup's
  // dedup/memo pass exploits.
  constexpr std::uint64_t kPorts[3] = {80, 443, 8080};
  constexpr std::size_t kBurst = 96;
  std::vector<net::PacketHeader> burst;
  burst.reserve(kBurst);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t k = 0; k < 32; ++k) {
      const std::size_t flow = c * 4 + k % 4;
      burst.push_back(net::PacketBuilder()
                          .src_ip(net::Ipv4Address(
                              net::Ipv4Address::parse("198.51.100.0").value() +
                              7 + static_cast<std::uint32_t>(flow)))
                          .src_port(1024 + flow)
                          .dst_ip("72.252.1.1")
                          .proto(net::kProtoUdp)
                          .dst_port(kPorts[c])
                          .build());
    }
  }

  const auto port_a = sdx.participant(A).primary_port().id;
  const auto port_b = sdx.participant(B).primary_port().id;
  core::TrafficMonitor monitor(3600.0);
  std::uint64_t delivered = 0;

  std::printf("# Figure 5a — application-specific peering\n");
  std::printf("time_s,via_AS_A_mbps,via_AS_B_mbps\n");
  bool policy = false, withdrawn = false;
  double pre_a = -1, mid_b = -1, post_a = -1;
  for (double t = 0; t < 1800; t += 30) {
    if (!policy && t >= 565) {
      sdx.set_outbound(
          C, {core::OutboundClause{core::ClauseMatch{}.dst_port(80), B}});
      sdx.install();
      policy = true;
    }
    if (!withdrawn && t >= 1253) {
      sdx.withdraw(B, aws);
      withdrawn = true;
    }
    double via_a = 0, via_b = 0;
    const auto res = sdx.send_batch(C, burst);
    for (std::size_t i = 0; i < res.packets(); ++i) {
      const auto d = res.of(i);
      if (d.empty()) continue;
      via_a += d[0].port == port_a ? 1 : 0;
      via_b += d[0].port == port_b ? 1 : 0;
      monitor.observe(t, d[0].frame, d[0].port == port_b ? B : A);
      ++delivered;
    }
    std::printf("%.0f,%.1f,%.1f\n", t, via_a, via_b);
    if (t < 565) pre_a = via_a;
    if (t > 600 && t < 1253) mid_b = via_b;
    if (t > 1290) post_a = via_a;
  }
  const bool shape = pre_a == 96 && mid_b == 32 && post_a == 96;
  const bool counted = monitor.observed_total() == delivered;
  const auto hh = monitor.heavy_hitters(1800.0, delivered / 4 + 1);
  std::printf(
      "# shape: pre=96 pkts via A (%s), policy diverts the 32 port-80 pkts "
      "to B (%s), withdrawal restores A (%s); monitor saw %llu/%llu (%s), "
      "top block %s\n",
      pre_a == 96 ? "ok" : "FAIL", mid_b == 32 ? "ok" : "FAIL",
      post_a == 96 ? "ok" : "FAIL",
      static_cast<unsigned long long>(monitor.observed_total()),
      static_cast<unsigned long long>(delivered), counted ? "ok" : "FAIL",
      hh.empty() ? "none" : hh[0].source_block.to_string().c_str());
  return shape && counted && !hh.empty();
}

bool fig5b() {
  core::SdxRuntime sdx;
  const auto A = sdx.add_participant("A", 65001);
  const auto B = sdx.add_participant("B", 65002);
  const auto T = sdx.add_remote_participant("aws-tenant", 65010);
  (void)B;
  const auto anycast = net::Ipv4Address::parse("74.125.1.1");
  const auto i1 = net::Ipv4Address::parse("74.125.224.161");
  const auto i2 = net::Ipv4Address::parse("74.125.137.139");
  sdx.announce(B, net::Ipv4Prefix::parse("74.125.0.0/16"),
               net::AsPath{65002, 16509});
  sdx.announce(A, net::Ipv4Prefix::parse("204.57.0.0/16"),
               net::AsPath{65001});
  sdx.install();

  std::printf("\n# Figure 5b — wide-area load balance\n");
  std::printf("time_s,instance1_mbps,instance2_mbps\n");
  bool policy = false;
  double pre_1 = -1, post_1 = -1, post_2 = -1;
  for (double t = 0; t < 600; t += 30) {
    if (!policy && t >= 246) {
      sdx.set_inbound(
          T, {core::InboundClause{
                  core::ClauseMatch{}
                      .dst(net::Ipv4Prefix::host(anycast))
                      .src(net::Ipv4Prefix::parse("204.57.0.0/16")),
                  {{net::Field::kDstIp, i2.value()}},
                  std::nullopt}});
      sdx.install();
      policy = true;
    }
    double to_1 = 0, to_2 = 0;
    for (const char* src : {"96.25.160.10", "204.57.0.67"}) {
      auto d = sdx.send(A, net::PacketBuilder()
                               .src_ip(src)
                               .dst_ip(anycast)
                               .proto(net::kProtoTcp)
                               .dst_port(80)
                               .build());
      if (d.empty()) continue;
      (d[0].frame.dst_ip() == i2 ? to_2 : to_1) += 1.5;
    }
    std::printf("%.0f,%.1f,%.1f\n", t, to_1, to_2);
    if (t < 246) pre_1 = to_1;
    if (t > 270) {
      post_1 = to_1;
      post_2 = to_2;
    }
  }
  const bool ok = pre_1 == 3.0 && post_1 == 1.5 && post_2 == 1.5;
  std::printf("# shape: pre-policy all to instance 1 (%s), post-policy "
              "split 1.5/1.5 (%s)\n",
              pre_1 == 3.0 ? "ok" : "FAIL",
              post_1 == 1.5 && post_2 == 1.5 ? "ok" : "FAIL");
  return ok;
}

}  // namespace

int main() {
  const bool a = fig5a();
  const bool b = fig5b();
  return a && b ? 0 : 1;
}
