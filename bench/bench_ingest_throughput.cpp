/// Ingest throughput benchmark — the event-driven ingest subsystem end to
/// end: real loopback BGP sessions (and an MRT trace replay) through the
/// reactor, the spill queue and the batched fast path of an installed
/// runtime. Two sources, one row each:
///
///   tcp — N BgpReplayClients send UPDATEs concurrently while the control
///         thread drains; backpressure (not drops) absorbs any mismatch
///         between offered load and drain rate;
///   mrt — a synthesized BGP4MP trace replays at line rate into the same
///         spill queue through MrtReplaySource.
///
/// The acceptance bar is sustained throughput ≥ 1M updates/minute with the
/// ingest→install latency visible as a histogram
/// (sdx_ingest_install_latency_seconds); the CSV reports the interpolated
/// per-phase p99 from its buckets.
///
/// Smoke mode trades concurrency for determinism: each phase enqueues its
/// whole workload (the queue is sized above the offered load, every update
/// touches a distinct prefix) before the control thread drains, so the
/// counter series of the committed baseline
/// (bench/baselines/ingest-metrics.prom) are byte-stable run to run —
/// sheds and drops pinned at zero, one flush per full drain batch.
///
/// CSV: source,sessions,updates,seconds,updates_per_min,p99_ms,sheds,drops

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bgp/mrt.hpp"
#include "ingest/mrt_source.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/replay_client.hpp"
#include "sdx/runtime.hpp"

namespace {

using namespace sdx;
using namespace std::chrono_literals;

/// Churn universe: 256 /24s per session under \p base. Smoke sends each
/// prefix exactly once (per_session <= 256), so the dirty set — and with it
/// every fast-path counter — is identical run to run; full mode wraps and
/// flips best routes, the §4.3 churn shape.
bgp::UpdateMessage churn_update(net::Asn asn, unsigned seq,
                                std::uint32_t base) {
  bgp::UpdateMessage u;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{asn};
  attrs.next_hop = net::Ipv4Address::parse("10.0.0.1");
  u.attrs = attrs;
  u.nlri = {net::Ipv4Prefix(
      net::Ipv4Address(base | ((asn & 0xffu) << 16) | ((seq & 0xffu) << 8)),
      24)};
  return u;
}

/// Interpolated p99 of the observations made since \p before (a
/// cumulative() snapshot taken at phase start). The +Inf bucket degrades
/// to the largest finite edge, like the regression gate's median.
double p99_ms(const telemetry::Histogram& h,
              const std::vector<std::uint64_t>& before) {
  const auto after = h.cumulative();
  const auto& bounds = h.bounds();
  std::vector<std::uint64_t> cum(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    cum[i] = after[i] - (i < before.size() ? before[i] : 0);
  }
  const auto total = cum.empty() ? 0 : cum.back();
  if (total == 0) return 0.0;
  const double need = 0.99 * static_cast<double>(total);
  double prev_le = 0.0, prev_cum = 0.0;
  for (std::size_t i = 0; i < cum.size(); ++i) {
    const bool inf = i >= bounds.size();
    const double le = inf ? 0.0 : bounds[i];
    const double c = static_cast<double>(cum[i]);
    if (c >= need) {
      if (inf) return prev_le * 1e3;
      const double span = c - prev_cum;
      const double frac = span > 0 ? (need - prev_cum) / span : 0.0;
      return (prev_le + frac * (le - prev_le)) * 1e3;
    }
    prev_le = le;
    prev_cum = c;
  }
  return prev_le * 1e3;
}

void print_row(const char* source, std::size_t sessions, std::size_t updates,
               double seconds, double p99, std::uint64_t sheds,
               std::uint64_t drops) {
  const double per_min = seconds > 0 ? updates / seconds * 60.0 : 0.0;
  std::printf("%s,%zu,%zu,%.3f,%.0f,%.3f,%llu,%llu\n", source, sessions,
              updates, seconds, per_min, p99,
              static_cast<unsigned long long>(sheds),
              static_cast<unsigned long long>(drops));
  std::fflush(stdout);
}

}  // namespace

int main() {
  const bool smoke = bench::smoke();
  core::CompileOptions options;
  options.threads = bench::bench_threads();

  const std::size_t sessions = smoke ? 2 : 4;
  const std::size_t per_session = smoke ? 192 : 75000;
  const std::size_t mrt_peers = 2;
  const std::size_t per_peer = smoke ? 192 : 150000;

  core::SdxRuntime rt(bgp::DecisionConfig{}, options);
  std::vector<core::ParticipantId> ids;
  for (std::size_t j = 0; j < std::max(sessions, mrt_peers); ++j) {
    ids.push_back(rt.add_participant("P" + std::to_string(j + 1),
                                     static_cast<net::Asn>(65001 + j)));
  }
  // A little policy so the fast path compiles real clauses, and a small
  // installed base so ingest lands on the post-install path from update 1.
  rt.set_outbound(ids[0],
                  {core::OutboundClause{core::ClauseMatch{}.dst_port(80),
                                        ids[1]}});
  for (std::size_t j = 0; j < ids.size(); ++j) {
    for (unsigned i = 0; i < 4; ++i) {
      rt.announce(ids[j],
                  net::Ipv4Prefix(
                      net::Ipv4Address((99u << 24) |
                                       (static_cast<std::uint32_t>(j) << 16) |
                                       (i << 8)),
                      24),
                  net::AsPath{static_cast<net::Asn>(65001 + j)});
    }
  }
  rt.install();
  rt.enable_batching();

  ingest::IngestPipeline::Options opt;
  opt.listener.hold_time = 0;  // deterministic byte streams
  if (smoke) {
    // Above the offered load: nothing sheds, nothing blocks, the whole
    // workload sits queued before the first drain.
    opt.queue.capacity = 8192;
    opt.queue.per_peer_quota = 4096;
  } else {
    opt.drain_batch = 1024;
  }
  ingest::IngestPipeline pipeline(rt, opt);
  const auto port = pipeline.start();
  auto& latency = rt.telemetry().metrics.histogram(
      "sdx_ingest_install_latency_seconds", "", telemetry::time_buckets());

  std::printf(
      "# ingest throughput — TCP sessions and MRT replay into the batched "
      "fast path\n");
  std::printf("source,sessions,updates,seconds,updates_per_min,p99_ms,sheds,drops\n");

  // --- tcp: concurrent loopback sessions ------------------------------------
  {
    const std::size_t total = sessions * per_session;
    const auto target = pipeline.applied() + total;
    const auto sheds0 = pipeline.queue().shed_events();
    const auto before = latency.cumulative();

    std::vector<std::unique_ptr<ingest::BgpReplayClient>> clients;
    for (std::size_t j = 0; j < sessions; ++j) {
      ingest::BgpReplayClient::Options o;
      o.asn = static_cast<net::Asn>(65001 + j);
      o.router_id = net::Ipv4Address(0x0a000000u | o.asn);
      clients.push_back(std::make_unique<ingest::BgpReplayClient>(o));
      clients.back()->connect(port);
    }

    bench::Stopwatch sw;
    if (smoke) {
      for (unsigned seq = 0; seq < per_session; ++seq) {
        for (std::size_t j = 0; j < sessions; ++j) {
          clients[j]->send_update(churn_update(
              static_cast<net::Asn>(65001 + j), seq, 100u << 24));
        }
      }
      while (pipeline.queue().depth() < total) std::this_thread::sleep_for(1ms);
      pipeline.drain_until_idle();
    } else {
      std::vector<std::thread> producers;
      for (std::size_t j = 0; j < sessions; ++j) {
        producers.emplace_back([&, j] {
          for (unsigned seq = 0; seq < per_session; ++seq) {
            clients[j]->send_update(churn_update(
                static_cast<net::Asn>(65001 + j), seq, 100u << 24));
          }
        });
      }
      while (pipeline.applied() < target) {
        if (pipeline.drain() == 0) std::this_thread::sleep_for(100us);
      }
      for (auto& t : producers) t.join();
    }
    const double seconds = sw.seconds();
    print_row("tcp", sessions, total, seconds, p99_ms(latency, before),
              pipeline.queue().shed_events() - sheds0,
              pipeline.queue().drops());
    for (auto& c : clients) c->close();
  }

  // --- mrt: trace replay at line rate ----------------------------------------
  {
    const std::size_t total = mrt_peers * per_peer;
    std::stringstream trace;
    for (unsigned seq = 0; seq < per_peer; ++seq) {
      for (std::size_t p = 0; p < mrt_peers; ++p) {
        const auto asn = static_cast<net::Asn>(65001 + p);
        bgp::Bgp4mpMessage m;
        m.peer_as = asn;
        m.local_as = 64999;
        m.peer_ip = net::Ipv4Address(0x0a000000u | asn);
        m.local_ip = net::Ipv4Address::parse("10.0.0.254");
        m.message = churn_update(asn, seq, 101u << 24);
        bgp::write_record(trace, bgp::encode_bgp4mp(seq, m));
      }
    }
    ingest::MrtReplaySource source(
        {}, [&](net::Asn as,
                net::Ipv4Address) -> std::optional<core::ParticipantId> {
          const std::size_t p = as - 65001;
          if (p >= ids.size()) return std::nullopt;
          return ids[p];
        });

    const auto target = pipeline.applied() + total;
    const auto sheds0 = pipeline.queue().shed_events();
    const auto before = latency.cumulative();
    bench::Stopwatch sw;
    if (smoke) {
      const auto result = source.replay_trace(trace, pipeline.queue());
      if (!result.ok() || result.updates != total) {
        std::fprintf(stderr, "mrt replay fell short: %llu/%zu (%s)\n",
                     static_cast<unsigned long long>(result.updates), total,
                     result.error.c_str());
        return 1;
      }
      pipeline.drain_until_idle();
    } else {
      std::thread replay([&] { source.replay_trace(trace, pipeline.queue()); });
      while (pipeline.applied() < target) {
        if (pipeline.drain() == 0) std::this_thread::sleep_for(100us);
      }
      replay.join();
    }
    const double seconds = sw.seconds();
    print_row("mrt", mrt_peers, total, seconds, p99_ms(latency, before),
              pipeline.queue().shed_events() - sheds0,
              pipeline.queue().drops());
  }

  pipeline.stop();
  bench::emit_metrics_snapshot(rt.telemetry().metrics);
  return 0;
}
