/// Packet-throughput benchmark for the data-plane classification pipeline:
/// millions of lookups per second (Mpps) over rule-count × traffic-mix
/// sweeps, classified vs the linear reference scan over identical tables.
///
/// The installed population mirrors what the compiler actually emits
/// (see ARCHITECTURE.md "Data-plane classification"): exact per-group VMAC
/// defaults, masked attribute-bit clause rules with a dst-port leg, and
/// /24 dst-IP prefix rules. Traffic mixes steer packets at each lane:
///
///   vmac   — VMAC-tagged packets hitting the exact-match fast lane;
///   clause — tagged packets with the policy attribute bit set and
///            dst_port 80, hitting the attribute-bit lane;
///   prefix — untagged packets hitting the prefix tuple (trie-pruned);
///   miss   — untagged packets matching nothing (full pruning path);
///   mixed  — the four above round-robin.
///
/// Modes: `classified` and `linear` time single-threaded lookup(); `mt`
/// runs the classified table through process() from N concurrent threads —
/// the thread-safe counter path (Σ matched+missed and Σ per-rule
/// packet_count must equal the offered load; the bench asserts it).
///
/// Lookup counts are FIXED per phase (not timed loops), so the counter
/// series in the metrics snapshot are byte-stable run to run and the CI
/// bench-regression job gates them with --require-equal-counters. Timing
/// (mpps, ns_per_lookup) is reported in the CSV only.
///
/// CSV: mix,rules,mode,threads,lookups,matched,seconds,mpps,ns_per_lookup

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dataplane/flow_table.hpp"
#include "netbase/rng.hpp"
#include "policy/compile.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace sdx;

/// The iSDX default VMAC geometry, as the runtime wires it.
dp::VmacLaneSpec vmac_spec() {
  dp::VmacLaneSpec s;
  s.enabled = true;
  s.top_value = 0x02ull << 40;
  s.top_mask = 0xFFull << 40;
  s.group_bits = 20;
  s.nexthop_bits = 12;
  s.attr_bits = 8;
  return s;
}

/// Compiled-table-shaped population: per 8 rules, five exact per-group
/// VMAC defaults, one masked attribute-bit clause rule (with a dst-port
/// leg, higher priority — outbound policy beats the default), and two /24
/// dst-IP prefix rules. No catch-all, so the miss mix truly misses.
void fill_rules(dp::FlowTable& table, std::size_t n) {
  const auto spec = vmac_spec();
  for (std::size_t i = 0; i < n; ++i) {
    dp::FlowRule r;
    if (i % 8 == 5) {
      const std::uint64_t bit =
          1ull << (spec.attr_shift() + (i / 8) % spec.attr_bits);
      r.priority = static_cast<std::uint32_t>(2000 + (n - i));
      r.match.set(net::Field::kDstMac,
                  net::FieldMatch::masked(spec.top_value | bit,
                                          spec.top_mask | bit));
      r.match.set(net::Field::kDstPort, net::FieldMatch::exact(80));
    } else if (i % 4 == 3) {
      r.priority = static_cast<std::uint32_t>(500 + (n - i));
      r.match = net::FlowMatch::on_prefix(
          net::Field::kDstIp,
          net::Ipv4Prefix(
              net::Ipv4Address(0x0A000000u |
                               (static_cast<std::uint32_t>(i) << 8)),
              24));
    } else {
      r.priority = static_cast<std::uint32_t>(1000 + (n - i));
      r.match = net::FlowMatch::on(net::Field::kDstMac,
                                   spec.top_value | (i & 0xFFFFF));
    }
    r.actions = {policy::ActionSeq::set(net::Field::kPort, 2)};
    table.install(std::move(r));
  }
}

/// 256 packets per mix, drawn over the installed rule indices with a
/// fixed seed — the same packet stream every run.
std::vector<net::PacketHeader> make_packets(const std::string& mix,
                                            std::size_t n) {
  const auto spec = vmac_spec();
  net::SplitMix64 rng(0x5D2Full ^ n);
  std::vector<net::PacketHeader> out;
  out.reserve(256);
  for (std::size_t k = 0; k < 256; ++k) {
    static const char* kRoundRobin[4] = {"vmac", "clause", "prefix", "miss"};
    const std::string kind = mix == "mixed" ? kRoundRobin[k % 4] : mix;
    if (kind == "vmac") {
      std::uint64_t i = rng.below(n);
      while (i % 8 == 5 || i % 4 == 3) i = (i + 1) % n;  // land on a default
      out.push_back(net::PacketBuilder()
                        .dst_mac(net::MacAddress(spec.top_value | (i & 0xFFFFF)))
                        .build());
    } else if (kind == "clause") {
      const std::uint64_t i = 5 + 8 * rng.below(n / 8);
      const std::uint64_t bit =
          1ull << (spec.attr_shift() + (i / 8) % spec.attr_bits);
      out.push_back(net::PacketBuilder()
                        .dst_mac(net::MacAddress(spec.top_value | bit |
                                                 rng.below(1u << 10)))
                        .dst_port(80)
                        .build());
    } else if (kind == "prefix") {
      const std::uint64_t i = 3 + 4 * rng.below(n / 4);
      out.push_back(
          net::PacketBuilder()
              .dst_ip(net::Ipv4Address(
                  0x0A000000u | (static_cast<std::uint32_t>(i) << 8) |
                  static_cast<std::uint32_t>(rng.below(256))))
              .build());
    } else {  // miss: untagged MAC, dst IP outside every installed /24
      out.push_back(net::PacketBuilder()
                        .dst_mac(net::MacAddress(0x00163Eull << 24 | k))
                        .dst_ip(net::Ipv4Address(0xC0A80000u |
                                                 static_cast<std::uint32_t>(k)))
                        .build());
    }
  }
  return out;
}

struct PhaseResult {
  std::size_t lookups = 0;
  std::uint64_t matched = 0;
  double seconds = 0.0;
};

/// Single-threaded lookup() loop, fixed iteration count.
PhaseResult run_lookup(const dp::FlowTable& table,
                       const std::vector<net::PacketHeader>& pkts,
                       std::size_t lookups) {
  PhaseResult res;
  res.lookups = lookups;
  bench::Stopwatch sw;
  for (std::size_t i = 0; i < lookups; ++i) {
    res.matched += table.lookup(pkts[i & 255]) != nullptr;
  }
  res.seconds = sw.seconds();
  return res;
}

/// N threads hammering process() — the atomic-counter path. The offered
/// load is fixed in total (per_thread * threads), so the counter series
/// stay byte-stable at a pinned thread count.
PhaseResult run_process_mt(const dp::FlowTable& table,
                           const std::vector<net::PacketHeader>& pkts,
                           std::size_t lookups, unsigned threads) {
  PhaseResult res;
  const std::size_t per_thread = lookups / threads;
  res.lookups = per_thread * threads;
  const auto matched0 = table.total_matched();
  const auto missed0 = table.total_missed();
  std::atomic<std::size_t> sink{0};  // keeps process() output observable
  bench::Stopwatch sw;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::size_t local = 0;
      for (std::size_t i = 0; i < per_thread; ++i) {
        local += table.process(pkts[(t * per_thread + i) & 255]).size();
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  res.seconds = sw.seconds();
  res.matched = table.total_matched() - matched0;
  const auto missed = table.total_missed() - missed0;
  if (res.matched + missed != res.lookups) {
    std::fprintf(stderr,
                 "counter mismatch: matched %llu + missed %llu != %zu\n",
                 static_cast<unsigned long long>(res.matched),
                 static_cast<unsigned long long>(missed), res.lookups);
    std::exit(1);
  }
  return res;
}

void print_row(const std::string& mix, std::size_t rules,
               const std::string& mode, unsigned threads,
               const PhaseResult& r) {
  const double mpps =
      r.seconds > 0 ? static_cast<double>(r.lookups) / r.seconds / 1e6 : 0.0;
  const double ns =
      r.lookups > 0 ? r.seconds * 1e9 / static_cast<double>(r.lookups) : 0.0;
  std::printf("%s,%zu,%s,%u,%zu,%llu,%.4f,%.2f,%.1f\n", mix.c_str(), rules,
              mode.c_str(), threads, r.lookups,
              static_cast<unsigned long long>(r.matched), r.seconds, mpps, ns);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const bool smoke = bench::smoke();
  const unsigned threads =
      bench::bench_threads() ? bench::bench_threads() : 4;

  const std::vector<std::size_t> rule_counts =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{256, 1024, 4096};
  const std::size_t classified_lookups = smoke ? 40000 : 4000000;
  const std::size_t linear_lookups = smoke ? 8000 : 100000;
  const std::size_t mt_lookups = smoke ? 40000 : 2000000;
  const std::vector<std::string> mixes = {"vmac", "clause", "prefix", "miss",
                                          "mixed"};

  telemetry::MetricRegistry metrics;

  std::printf(
      "# packet throughput — classification pipeline vs linear reference\n");
  std::printf("mix,rules,mode,threads,lookups,matched,seconds,mpps,ns_per_lookup\n");

  for (const std::size_t n : rule_counts) {
    dp::FlowTable table;
    table.set_vmac_lanes(vmac_spec());
    fill_rules(table, n);
    metrics
        .counter("sdx_packet_bench_rules_total",
                 "flow rules installed across bench tables")
        .inc(table.size());

    for (const auto& mix : mixes) {
      const auto pkts = make_packets(mix, n);
      const auto record = [&](const char* mode, unsigned width,
                              const PhaseResult& r) {
        print_row(mix, n, mode, width, r);
        telemetry::Labels labels = {{"mix", mix}, {"mode", mode}};
        metrics
            .counter("sdx_packet_bench_lookups_total",
                     "lookups performed per mix and mode", labels)
            .inc(r.lookups);
        metrics
            .counter("sdx_packet_bench_matched_total",
                     "lookups that matched a rule per mix and mode", labels)
            .inc(r.matched);
      };

      table.set_lookup_mode(dp::FlowTable::LookupMode::kClassified);
      record("classified", 1, run_lookup(table, pkts, classified_lookups));
      record("mt", threads, run_process_mt(table, pkts, mt_lookups, threads));
      table.set_lookup_mode(dp::FlowTable::LookupMode::kLinear);
      record("linear", 1, run_lookup(table, pkts, linear_lookups));
      table.set_lookup_mode(dp::FlowTable::LookupMode::kClassified);
    }
  }

  bench::emit_metrics_snapshot(metrics);
  return 0;
}
