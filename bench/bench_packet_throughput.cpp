/// Packet-throughput benchmark for the data-plane classification pipeline:
/// millions of lookups per second (Mpps) over rule-count × traffic-mix
/// sweeps, classified vs the linear reference scan over identical tables.
///
/// The installed population mirrors what the compiler actually emits
/// (see ARCHITECTURE.md "Data-plane classification"): exact per-group VMAC
/// defaults, masked attribute-bit clause rules with a dst-port leg, and
/// /24 dst-IP prefix rules. Traffic mixes steer packets at each lane:
///
///   vmac    — VMAC-tagged packets hitting the exact-match fast lane;
///   clause  — tagged packets with the policy attribute bit set and
///             dst_port 80, hitting the attribute-bit lane;
///   prefix  — untagged packets hitting the prefix tuple (trie-pruned);
///   miss    — untagged packets matching nothing (full pruning path);
///   mixed   — the four above round-robin;
///   traffic — a 32-flow generated mix with linear-decay rank skew: the
///             same flow headers recur across the stream, so consecutive
///             bursts carry the duplicate structure real inter-domain
///             traffic has (the batch dedup/memo path's home turf).
///
/// Miss packets use the reserved top octet 0x0C — unicast and globally
/// administered, so no VMAC encoding (top octet 0x02, locally
/// administered) or future lane spec can alias it and the miss-rate
/// columns stay exact by construction.
///
/// Modes: `classified` and `linear` time single-threaded lookup();
/// `batch<B>` (B in {8, 64, 1024}) times lookup_batch() over consecutive
/// B-packet windows of the same stream; `mt` runs the classified table
/// through process() from N concurrent threads and `mtbatch` through
/// process_batch() in 64-packet bursts — the thread-safe counter paths
/// (Σ matched+missed and Σ per-rule packet_count must equal the offered
/// load; the bench asserts it). The linear reference is skipped at rule
/// counts ≥ 100k, where a full scan per packet is pointlessly slow.
///
/// Lookup counts are FIXED per phase (not timed loops), so the counter
/// series in the metrics snapshot are byte-stable run to run and the CI
/// bench-regression job gates them with --require-equal-counters. Timing
/// (mpps, ns_per_lookup) is reported in the CSV only.
///
/// CSV: mix,rules,mode,threads,lookups,matched,seconds,mpps,ns_per_lookup

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dataplane/flow_table.hpp"
#include "netbase/rng.hpp"
#include "policy/compile.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace sdx;

/// The iSDX default VMAC geometry, as the runtime wires it.
dp::VmacLaneSpec vmac_spec() {
  dp::VmacLaneSpec s;
  s.enabled = true;
  s.top_value = 0x02ull << 40;
  s.top_mask = 0xFFull << 40;
  s.group_bits = 20;
  s.nexthop_bits = 12;
  s.attr_bits = 8;
  return s;
}

/// Compiled-table-shaped population: per 8 rules, five exact per-group
/// VMAC defaults, one masked attribute-bit clause rule (with a dst-port
/// leg, higher priority — outbound policy beats the default), and two /24
/// dst-IP prefix rules. No catch-all, so the miss mix truly misses.
void fill_rules(dp::FlowTable& table, std::size_t n) {
  const auto spec = vmac_spec();
  for (std::size_t i = 0; i < n; ++i) {
    dp::FlowRule r;
    if (i % 8 == 5) {
      const std::uint64_t bit =
          1ull << (spec.attr_shift() + (i / 8) % spec.attr_bits);
      r.priority = static_cast<std::uint32_t>(2000 + (n - i));
      r.match.set(net::Field::kDstMac,
                  net::FieldMatch::masked(spec.top_value | bit,
                                          spec.top_mask | bit));
      r.match.set(net::Field::kDstPort, net::FieldMatch::exact(80));
    } else if (i % 4 == 3) {
      r.priority = static_cast<std::uint32_t>(500 + (n - i));
      r.match = net::FlowMatch::on_prefix(
          net::Field::kDstIp,
          net::Ipv4Prefix(
              net::Ipv4Address(0x0A000000u |
                               (static_cast<std::uint32_t>(i) << 8)),
              24));
    } else {
      r.priority = static_cast<std::uint32_t>(1000 + (n - i));
      r.match = net::FlowMatch::on(net::Field::kDstMac,
                                   spec.top_value | (i & 0xFFFFF));
    }
    r.actions = {policy::ActionSeq::set(net::Field::kPort, 2)};
    table.install(std::move(r));
  }
}

/// One lane-targeted packet, drawn over the installed rule indices.
net::PacketHeader make_packet(const char* kind, net::SplitMix64& rng,
                              std::size_t n, std::size_t k) {
  const auto spec = vmac_spec();
  if (std::string_view(kind) == "vmac") {
    std::uint64_t i = rng.below(n);
    while (i % 8 == 5 || i % 4 == 3) i = (i + 1) % n;  // land on a default
    return net::PacketBuilder()
        .dst_mac(net::MacAddress(spec.top_value | (i & 0xFFFFF)))
        .build();
  }
  if (std::string_view(kind) == "clause") {
    const std::uint64_t i = 5 + 8 * rng.below(n / 8);
    const std::uint64_t bit =
        1ull << (spec.attr_shift() + (i / 8) % spec.attr_bits);
    return net::PacketBuilder()
        .dst_mac(
            net::MacAddress(spec.top_value | bit | rng.below(1u << 10)))
        .dst_port(80)
        .build();
  }
  if (std::string_view(kind) == "prefix") {
    const std::uint64_t i = 3 + 4 * rng.below(n / 4);
    return net::PacketBuilder()
        .dst_ip(net::Ipv4Address(0x0A000000u |
                                 (static_cast<std::uint32_t>(i) << 8) |
                                 static_cast<std::uint32_t>(rng.below(256))))
        .build();
  }
  // miss: reserved top octet 0x0C (unicast, globally administered — can
  // never alias the locally-administered VMAC space), dst IP outside
  // every installed /24.
  return net::PacketBuilder()
      .dst_mac(net::MacAddress(0x0Cull << 40 | k))
      .dst_ip(
          net::Ipv4Address(0xC0A80000u | static_cast<std::uint32_t>(k)))
      .build();
}

/// 256 packets per mix, drawn over the installed rule indices with a
/// fixed seed — the same packet stream every run. The `traffic` mix
/// replays 32 generated flow headers with linear-decay rank skew, so the
/// stream contains exact duplicates the way a real port's burst does.
std::vector<net::PacketHeader> make_packets(const std::string& mix,
                                            std::size_t n) {
  net::SplitMix64 rng(0x5D2Full ^ n);
  std::vector<net::PacketHeader> out;
  out.reserve(256);
  if (mix == "traffic") {
    constexpr std::size_t kFlows = 32;
    static const char* kFlowKind[5] = {"vmac", "vmac", "clause", "prefix",
                                       "miss"};
    std::vector<net::PacketHeader> flows;
    flows.reserve(kFlows);
    for (std::size_t f = 0; f < kFlows; ++f) {
      flows.push_back(make_packet(kFlowKind[f % 5], rng, n, f));
    }
    // Linear-decay rank sampling: flow r carries weight (kFlows - r), so
    // a handful of heavy flows dominate — the same skew the scenario
    // `traffic` command and TrafficMonitor assume. Each draw emits a
    // short train of 1–4 back-to-back packets of the sampled flow, the
    // way TCP windows arrive on a real port.
    const std::uint64_t total = kFlows * (kFlows + 1) / 2;
    while (out.size() < 256) {
      std::uint64_t t = rng.below(total);
      std::size_t r = 0;
      while (t >= kFlows - r) t -= kFlows - r, ++r;
      const std::size_t train = 1 + rng.below(4);
      for (std::size_t p = 0; p < train && out.size() < 256; ++p) {
        out.push_back(flows[r]);
      }
    }
    return out;
  }
  for (std::size_t k = 0; k < 256; ++k) {
    static const char* kRoundRobin[4] = {"vmac", "clause", "prefix", "miss"};
    const char* kind = mix == "mixed" ? kRoundRobin[k % 4] : mix.c_str();
    out.push_back(make_packet(kind, rng, n, k));
  }
  return out;
}

struct PhaseResult {
  std::size_t lookups = 0;
  std::uint64_t matched = 0;
  double seconds = 0.0;
};

/// Single-threaded lookup() loop, fixed iteration count.
PhaseResult run_lookup(const dp::FlowTable& table,
                       const std::vector<net::PacketHeader>& pkts,
                       std::size_t lookups) {
  PhaseResult res;
  res.lookups = lookups;
  bench::Stopwatch sw;
  for (std::size_t i = 0; i < lookups; ++i) {
    res.matched += table.lookup(pkts[i & 255]) != nullptr;
  }
  res.seconds = sw.seconds();
  return res;
}

/// Consecutive `burst`-sized windows of the 256-packet stream, the way a
/// switch drains its rx ring. Built once so the timed loop only calls
/// lookup_batch.
std::vector<std::vector<net::PacketHeader>> burst_windows(
    const std::vector<net::PacketHeader>& pkts, std::size_t burst) {
  std::vector<std::vector<net::PacketHeader>> windows;
  std::size_t off = 0;
  do {
    std::vector<net::PacketHeader> w(burst);
    for (std::size_t i = 0; i < burst; ++i) w[i] = pkts[(off + i) & 255];
    windows.push_back(std::move(w));
    off = (off + burst) & 255;
  } while (off != 0);
  return windows;
}

/// Single-threaded lookup_batch() loop over fixed burst windows.
PhaseResult run_lookup_batch(const dp::FlowTable& table,
                             const std::vector<net::PacketHeader>& pkts,
                             std::size_t lookups, std::size_t burst) {
  const auto windows = burst_windows(pkts, burst);
  std::vector<const dp::FlowRule*> hits(burst, nullptr);
  PhaseResult res;
  const std::size_t iters = lookups / burst;
  res.lookups = iters * burst;
  bench::Stopwatch sw;
  for (std::size_t it = 0; it < iters; ++it) {
    table.lookup_batch(windows[it % windows.size()], hits);
    for (const auto* r : hits) res.matched += r != nullptr;
  }
  res.seconds = sw.seconds();
  return res;
}

/// N threads hammering process() — the atomic-counter path. The offered
/// load is fixed in total (per_thread * threads), so the counter series
/// stay byte-stable at a pinned thread count.
PhaseResult run_process_mt(const dp::FlowTable& table,
                           const std::vector<net::PacketHeader>& pkts,
                           std::size_t lookups, unsigned threads) {
  PhaseResult res;
  const std::size_t per_thread = lookups / threads;
  res.lookups = per_thread * threads;
  const auto matched0 = table.total_matched();
  const auto missed0 = table.total_missed();
  std::atomic<std::size_t> sink{0};  // keeps process() output observable
  bench::Stopwatch sw;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::size_t local = 0;
      for (std::size_t i = 0; i < per_thread; ++i) {
        local += table.process(pkts[(t * per_thread + i) & 255]).size();
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  res.seconds = sw.seconds();
  res.matched = table.total_matched() - matched0;
  const auto missed = table.total_missed() - missed0;
  if (res.matched + missed != res.lookups) {
    std::fprintf(stderr,
                 "counter mismatch: matched %llu + missed %llu != %zu\n",
                 static_cast<unsigned long long>(res.matched),
                 static_cast<unsigned long long>(missed), res.lookups);
    std::exit(1);
  }
  return res;
}

/// N threads draining 64-packet bursts through process_batch() — the
/// batched flavor of the counter path, with the same offered-load
/// reconciliation check.
PhaseResult run_process_batch_mt(const dp::FlowTable& table,
                                 const std::vector<net::PacketHeader>& pkts,
                                 std::size_t lookups, unsigned threads) {
  constexpr std::size_t kBurst = 64;
  const auto windows = burst_windows(pkts, kBurst);
  PhaseResult res;
  const std::size_t per_thread = lookups / threads / kBurst * kBurst;
  res.lookups = per_thread * threads;
  const auto matched0 = table.total_matched();
  const auto missed0 = table.total_missed();
  std::atomic<std::size_t> sink{0};
  bench::Stopwatch sw;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::size_t local = 0;
      for (std::size_t i = 0; i < per_thread / kBurst; ++i) {
        local +=
            table.process_batch(windows[(t + i) % windows.size()]).frames.size();
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  res.seconds = sw.seconds();
  res.matched = table.total_matched() - matched0;
  const auto missed = table.total_missed() - missed0;
  if (res.matched + missed != res.lookups) {
    std::fprintf(stderr,
                 "batch counter mismatch: matched %llu + missed %llu != %zu\n",
                 static_cast<unsigned long long>(res.matched),
                 static_cast<unsigned long long>(missed), res.lookups);
    std::exit(1);
  }
  return res;
}

void print_row(const std::string& mix, std::size_t rules,
               const std::string& mode, unsigned threads,
               const PhaseResult& r) {
  const double mpps =
      r.seconds > 0 ? static_cast<double>(r.lookups) / r.seconds / 1e6 : 0.0;
  const double ns =
      r.lookups > 0 ? r.seconds * 1e9 / static_cast<double>(r.lookups) : 0.0;
  std::printf("%s,%zu,%s,%u,%zu,%llu,%.4f,%.2f,%.1f\n", mix.c_str(), rules,
              mode.c_str(), threads, r.lookups,
              static_cast<unsigned long long>(r.matched), r.seconds, mpps, ns);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const bool smoke = bench::smoke();
  const unsigned threads =
      bench::bench_threads() ? bench::bench_threads() : 4;

  // 262144 rules is the ablation-scale phase: the ungrouped table the
  // partitioned compiler avoids emitting must still build and sustain
  // classified lookups. The linear reference is skipped there (a 256k-rule
  // scan per packet proves nothing except patience).
  const std::vector<std::size_t> rule_counts =
      smoke ? std::vector<std::size_t>{256, 262144}
            : std::vector<std::size_t>{256, 1024, 4096, 262144};
  constexpr std::size_t kLinearCutoff = 100000;
  const std::size_t classified_lookups = smoke ? 40000 : 4000000;
  const std::size_t linear_lookups = smoke ? 8000 : 100000;
  const std::size_t mt_lookups = smoke ? 40000 : 2000000;
  const std::vector<std::size_t> bursts = {8, 64, 1024};
  const std::vector<std::string> mixes = {"vmac", "clause", "prefix",
                                          "miss",  "mixed", "traffic"};

  telemetry::MetricRegistry metrics;

  std::printf(
      "# packet throughput — classification pipeline vs linear reference\n");
  std::printf("mix,rules,mode,threads,lookups,matched,seconds,mpps,ns_per_lookup\n");

  for (const std::size_t n : rule_counts) {
    dp::FlowTable table;
    table.set_vmac_lanes(vmac_spec());
    fill_rules(table, n);
    metrics
        .counter("sdx_packet_bench_rules_total",
                 "flow rules installed across bench tables")
        .inc(table.size());

    for (const auto& mix : mixes) {
      const auto pkts = make_packets(mix, n);
      const auto record = [&](const char* mode, unsigned width,
                              const PhaseResult& r) {
        print_row(mix, n, mode, width, r);
        telemetry::Labels labels = {{"mix", mix}, {"mode", mode}};
        metrics
            .counter("sdx_packet_bench_lookups_total",
                     "lookups performed per mix and mode", labels)
            .inc(r.lookups);
        metrics
            .counter("sdx_packet_bench_matched_total",
                     "lookups that matched a rule per mix and mode", labels)
            .inc(r.matched);
      };

      table.set_lookup_mode(dp::FlowTable::LookupMode::kClassified);
      record("classified", 1, run_lookup(table, pkts, classified_lookups));
      for (const std::size_t b : bursts) {
        const std::string mode = "batch" + std::to_string(b);
        record(mode.c_str(), 1,
               run_lookup_batch(table, pkts, classified_lookups, b));
      }
      record("mt", threads, run_process_mt(table, pkts, mt_lookups, threads));
      record("mtbatch", threads,
             run_process_batch_mt(table, pkts, mt_lookups, threads));
      if (n < kLinearCutoff) {
        table.set_lookup_mode(dp::FlowTable::LookupMode::kLinear);
        record("linear", 1, run_lookup(table, pkts, linear_lookups));
        table.set_lookup_mode(dp::FlowTable::LookupMode::kClassified);
      }
    }
  }

  bench::emit_metrics_snapshot(metrics);
  return 0;
}
