/// Figure 7 — number of forwarding rules as a function of the number of
/// prefix groups, for 100/200/300 participants.
///
/// Paper result: rules grow roughly linearly with prefix groups (each group
/// occupies a disjoint slice of flow space), reaching ~30k rules at 1000
/// groups with 300 participants. We sweep the §6.2 policy-prefix knob to
/// vary the group count and report the rule count the compiler actually
/// installs.

#include "bench_common.hpp"

int main() {
  using namespace sdx;
  std::printf("# Figure 7 — flow rules vs prefix groups\n");
  std::printf(
      "participants,policy_prefixes,prefix_groups,flow_rules,"
      "rules_per_group\n");
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  for (std::size_t participants : {100, 200, 300}) {
    for (std::size_t px : {2000u, 5000u, 10000u, 15000u, 20000u, 25000u}) {
      auto ixp = bench::make_workload(participants, 25000, px);
      core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                                 options);
      core::VnhAllocator vnh;
      auto compiled = compiler.compile(vnh);
      const auto& s = compiled.stats;
      std::printf("%zu,%zu,%zu,%zu,%.1f\n", participants, px,
                  s.prefix_groups, s.final_rules,
                  s.prefix_groups
                      ? static_cast<double>(s.final_rules) /
                            static_cast<double>(s.prefix_groups)
                      : 0.0);
      std::fflush(stdout);
    }
  }
  return 0;
}
