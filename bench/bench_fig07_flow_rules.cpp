/// Figure 7 — number of forwarding rules as a function of the number of
/// prefix groups, for 100/200/300 participants — plus the participant
/// sweep that motivated partitioned compilation.
///
/// Paper result: rules grow roughly linearly with prefix groups (each group
/// occupies a disjoint slice of flow space), reaching ~30k rules at 1000
/// groups with 300 participants. The iSDX follow-up's result is the
/// `mode` column: the pairwise pipeline materializes the sender×receiver
/// cross product (rules and compile time grow super-linearly with
/// participants), while the partitioned pipeline compiles each
/// participant's policies into an independent partition of masked
/// attribute-bit rules — sub-linear growth at the full prefix universe,
/// benchmarked here up to 1000 participants (the pairwise side is capped
/// at 300: beyond that the cross product is exactly the wall this bench
/// documents).
///
/// Two sweeps, both tagged in the `sweep` column:
///   groups        — the paper's fig 7 x-axis (policy-prefix knob) at fixed
///                   participant counts, pairwise and partitioned;
///   participants  — fixed full prefix universe, growing participant count.
///
/// Smoke mode (SDX_BENCH_SMOKE=1) shrinks both sweeps and emits the
/// telemetry snapshot the CI bench-regression job diffs against
/// bench/baselines/fig07-metrics.prom.

#include <vector>

#include "bench_common.hpp"

namespace {

void run_one(const char* sweep, bool partitioned, std::size_t participants,
             std::size_t prefixes, std::size_t px,
             sdx::telemetry::Telemetry& telemetry) {
  using namespace sdx;
  auto ixp = bench::make_workload(participants, prefixes, px);
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  options.partitioned = partitioned;
  core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                             options);
  compiler.set_telemetry(&telemetry);
  core::VnhAllocator vnh;
  auto compiled = compiler.compile(vnh);
  const auto& s = compiled.stats;
  std::printf("%s,%s,%zu,%zu,%zu,%zu,%zu,%.3f\n",
              partitioned ? "partitioned" : "pairwise", sweep, participants,
              prefixes, px, s.prefix_groups, s.final_rules, s.total_seconds);
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace sdx;
  const bool smoke = bench::smoke();
  std::printf("# Figure 7 — flow rules vs prefix groups and participants\n");
  std::printf(
      "mode,sweep,participants,prefixes,policy_prefixes,prefix_groups,"
      "flow_rules,compile_seconds\n");
  telemetry::Telemetry telemetry;

  // The paper's prefix-group sweep at fixed participant counts.
  const auto group_participants =
      smoke ? std::vector<std::size_t>{40}
            : std::vector<std::size_t>{100, 200, 300};
  const auto group_px =
      smoke ? std::vector<std::size_t>{100, 200}
            : std::vector<std::size_t>{2000, 5000, 10000, 15000, 20000,
                                       25000};
  const std::size_t group_universe = smoke ? 600 : 25000;
  for (bool partitioned : {false, true}) {
    for (std::size_t participants : group_participants) {
      for (std::size_t px : group_px) {
        run_one("groups", partitioned, participants, group_universe, px,
                telemetry);
      }
    }
  }

  // The participant sweep at the full prefix universe (no 1:10 scaling):
  // the partitioned pipeline holds sub-linear rule and compile-time growth
  // where the pairwise cross product cannot be run at all.
  const std::size_t sweep_universe = smoke ? 600 : 25000;
  const std::size_t sweep_px = smoke ? 200 : 10000;
  const auto pairwise_counts =
      smoke ? std::vector<std::size_t>{20, 40, 60}
            : std::vector<std::size_t>{100, 200, 300};
  const auto partitioned_counts =
      smoke ? std::vector<std::size_t>{20, 40, 60}
            : std::vector<std::size_t>{100, 200, 300, 500, 1000};
  for (std::size_t participants : pairwise_counts) {
    run_one("participants", false, participants, sweep_universe, sweep_px,
            telemetry);
  }
  for (std::size_t participants : partitioned_counts) {
    run_one("participants", true, participants, sweep_universe, sweep_px,
            telemetry);
  }

  bench::emit_metrics_snapshot(telemetry.metrics);
  return 0;
}
