/// Figure 8 — initial compilation time as a function of the number of
/// prefix groups, for 100/200/300 participants.
///
/// Paper result: minutes of (Python) compilation, growing super-linearly
/// with prefix groups and with participant count. Expected shape here:
/// time grows with both axes; absolute numbers are far lower (optimized
/// C++ vs Python Pyretic). The stats break compilation into the paper's
/// stages (VNH computation vs policy compilation).

#include "bench_common.hpp"

int main() {
  using namespace sdx;
  std::printf("# Figure 8 — initial compilation time vs prefix groups\n");
  std::printf(
      "participants,prefixes,prefix_groups,threads,vnh_ms,synth_ms,"
      "compose_ms,total_ms,final_rules\n");
  core::CompileOptions options;
  options.threads = bench::bench_threads();
  telemetry::Telemetry telemetry;
  for (std::size_t participants : {100, 200, 300}) {
    for (std::size_t policy_prefixes :
         {2000u, 5000u, 10000u, 15000u, 20000u, 25000u}) {
      auto ixp =
          bench::make_workload(participants, 25000, policy_prefixes);
      core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server,
                                 options);
      compiler.set_telemetry(&telemetry);
      core::VnhAllocator vnh;
      auto compiled = compiler.compile(vnh);
      const auto& s = compiled.stats;
      std::printf("%zu,%zu,%zu,%u,%.2f,%.2f,%.2f,%.2f,%zu\n", participants,
                  policy_prefixes, s.prefix_groups, s.threads_used,
                  s.vnh_seconds * 1e3, s.synth_seconds * 1e3,
                  s.compose_seconds * 1e3, s.total_seconds * 1e3,
                  s.final_rules);
      std::fflush(stdout);
    }
  }
  // Aggregate per-stage latency histograms and rule counters across every
  // row above, in comment-prefixed Prometheus form.
  bench::emit_metrics_snapshot(telemetry.metrics);
  return 0;
}
