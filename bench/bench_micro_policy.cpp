/// Micro-benchmarks (google-benchmark) for the policy-compiler primitives
/// the SDX pipeline is built from: predicate compilation (including the
/// linear-size BGP prefix-list path), parallel/sequential classifier
/// composition, pull-back, and flow-table lookup.

#include <benchmark/benchmark.h>

#include "dataplane/flow_table.hpp"
#include "netbase/rng.hpp"
#include "policy/compile.hpp"

namespace {

using namespace sdx;
using policy::Classifier;
using policy::Policy;
using policy::Predicate;

Policy app_peering_policy() {
  return (policy::match(net::Field::kDstPort, 80) >> policy::fwd(10)) +
         (policy::match(net::Field::kDstPort, 443) >> policy::fwd(11));
}

std::vector<net::Ipv4Prefix> prefix_list(std::size_t n) {
  std::vector<net::Ipv4Prefix> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(net::Ipv4Prefix(
        net::Ipv4Address(0x0A000000u + (static_cast<std::uint32_t>(i) << 8)),
        24));
  }
  return out;
}

void BM_CompileAppPeeringPolicy(benchmark::State& state) {
  Policy p = app_peering_policy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::compile(p));
  }
}
BENCHMARK(BM_CompileAppPeeringPolicy);

void BM_CompileBgpPrefixFilter(benchmark::State& state) {
  auto prefixes = prefix_list(static_cast<std::size_t>(state.range(0)));
  Policy p = policy::match(Predicate::any_of(net::Field::kDstIp, prefixes)) >>
             policy::fwd(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::compile(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompileBgpPrefixFilter)->Range(16, 4096)->Complexity();

void BM_ParCompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = policy::compile(policy::match(
      Predicate::any_of(net::Field::kDstIp, prefix_list(n))) >>
      policy::fwd(1));
  auto b = policy::compile(policy::match(net::Field::kDstPort, 80) >>
                           policy::fwd(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::par_compose(a, b));
  }
}
BENCHMARK(BM_ParCompose)->Range(16, 1024);

void BM_SeqCompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = policy::compile(policy::match(
      Predicate::any_of(net::Field::kDstIp, prefix_list(n))) >>
      policy::fwd(1));
  auto b = policy::compile(
      (policy::match(net::Field::kPort, 1) >>
       policy::modify(net::Field::kDstMac, std::uint64_t{42}) >>
       policy::fwd(7)) +
      policy::drop());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::seq_compose(a, b));
  }
}
BENCHMARK(BM_SeqCompose)->Range(16, 1024);

void BM_PullBack(benchmark::State& state) {
  auto through = policy::compile(
      (policy::match(net::Field::kPort, 9) >> policy::fwd(3)) +
      (policy::match(net::Field::kDstPort, 80) >> policy::fwd(4)));
  net::FlowMatch domain = net::FlowMatch::on(net::Field::kPort, 1);
  policy::ActionSeq act = policy::ActionSeq::set(net::Field::kPort, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::pull_back(domain, act, through));
  }
}
BENCHMARK(BM_PullBack);

/// The iSDX default geometry, as the runtime would wire it.
dp::VmacLaneSpec vmac_spec() {
  dp::VmacLaneSpec s;
  s.enabled = true;
  s.top_value = 0x02ull << 40;
  s.top_mask = 0xFFull << 40;
  s.group_bits = 20;
  s.nexthop_bits = 12;
  s.attr_bits = 8;
  return s;
}

/// n FIB-style /24 dst-IP prefix rules (all land in one tuple).
void fill_prefix_rules(dp::FlowTable& table, std::size_t n) {
  auto prefixes = prefix_list(n);
  for (std::size_t i = 0; i < n; ++i) {
    dp::FlowRule r;
    r.priority = static_cast<std::uint32_t>(n - i);
    r.match = net::FlowMatch::on_prefix(net::Field::kDstIp, prefixes[i]);
    r.actions = {policy::ActionSeq::set(net::Field::kPort, 2)};
    table.install(std::move(r));
  }
}

/// n compiled-stage-1-shaped VMAC rules: mostly exact per-group defaults,
/// plus masked attribute-bit clause rules — the population the exact-match
/// fast lane is built for.
void fill_vmac_rules(dp::FlowTable& table, std::size_t n) {
  const auto spec = vmac_spec();
  for (std::size_t i = 0; i < n; ++i) {
    dp::FlowRule r;
    r.priority = static_cast<std::uint32_t>(1000 + (n - i));
    if (i % 8 == 7) {  // one masked clause rule per 8 group defaults
      const std::uint64_t bit = 1ull << (spec.attr_shift() + i % 8);
      r.match.set(net::Field::kDstMac,
                  net::FieldMatch::masked(spec.top_value | bit,
                                          spec.top_mask | bit));
    } else {
      r.match = net::FlowMatch::on(net::Field::kDstMac,
                                   spec.top_value | (i & 0xFFFFF));
    }
    r.actions = {policy::ActionSeq::set(net::Field::kPort, 2)};
    table.install(std::move(r));
  }
}

void lookup_loop(benchmark::State& state, dp::FlowTable& table,
                 dp::FlowTable::LookupMode mode,
                 const net::PacketHeader& packet) {
  table.set_lookup_mode(mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(packet));
  }
  state.SetComplexityN(state.range(0));
}

/// Linear vs classified over the same tables: the crossover (and the ≥10×
/// gap at 4096 VMAC-tagged rules) shows up in one table with Complexity().
void BM_FlowTableLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dp::FlowTable table;
  fill_prefix_rules(table, n);
  net::SplitMix64 rng(5);
  auto packet = net::PacketBuilder()
                    .dst_ip(net::Ipv4Address(
                        0x0A000000u + (static_cast<std::uint32_t>(
                                           rng.below(n)) << 8)))
                    .build();
  lookup_loop(state, table, dp::FlowTable::LookupMode::kLinear, packet);
}
BENCHMARK(BM_FlowTableLookup)->Range(64, 4096)->Complexity();

void BM_FlowTableLookupClassified(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dp::FlowTable table;
  fill_prefix_rules(table, n);
  net::SplitMix64 rng(5);
  auto packet = net::PacketBuilder()
                    .dst_ip(net::Ipv4Address(
                        0x0A000000u + (static_cast<std::uint32_t>(
                                           rng.below(n)) << 8)))
                    .build();
  lookup_loop(state, table, dp::FlowTable::LookupMode::kClassified, packet);
}
BENCHMARK(BM_FlowTableLookupClassified)->Range(64, 4096)->Complexity();

void BM_FlowTableLookupVmacLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dp::FlowTable table;
  table.set_vmac_lanes(vmac_spec());
  fill_vmac_rules(table, n);
  net::SplitMix64 rng(5);
  std::uint64_t group = rng.below(n);
  if (group % 8 == 7) --group;  // land on an installed per-group default
  auto packet =
      net::PacketBuilder()
          .dst_mac(net::MacAddress(vmac_spec().top_value | group))
          .build();
  lookup_loop(state, table, dp::FlowTable::LookupMode::kLinear, packet);
}
BENCHMARK(BM_FlowTableLookupVmacLinear)->Range(64, 4096)->Complexity();

void BM_FlowTableLookupVmacClassified(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dp::FlowTable table;
  table.set_vmac_lanes(vmac_spec());
  fill_vmac_rules(table, n);
  net::SplitMix64 rng(5);
  std::uint64_t group = rng.below(n);
  if (group % 8 == 7) --group;  // land on an installed per-group default
  auto packet =
      net::PacketBuilder()
          .dst_mac(net::MacAddress(vmac_spec().top_value | group))
          .build();
  lookup_loop(state, table, dp::FlowTable::LookupMode::kClassified, packet);
}
BENCHMARK(BM_FlowTableLookupVmacClassified)->Range(64, 4096)->Complexity();

}  // namespace

BENCHMARK_MAIN();
