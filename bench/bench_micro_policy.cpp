/// Micro-benchmarks (google-benchmark) for the policy-compiler primitives
/// the SDX pipeline is built from: predicate compilation (including the
/// linear-size BGP prefix-list path), parallel/sequential classifier
/// composition, pull-back, and flow-table lookup.

#include <benchmark/benchmark.h>

#include "dataplane/flow_table.hpp"
#include "netbase/rng.hpp"
#include "policy/compile.hpp"

namespace {

using namespace sdx;
using policy::Classifier;
using policy::Policy;
using policy::Predicate;

Policy app_peering_policy() {
  return (policy::match(net::Field::kDstPort, 80) >> policy::fwd(10)) +
         (policy::match(net::Field::kDstPort, 443) >> policy::fwd(11));
}

std::vector<net::Ipv4Prefix> prefix_list(std::size_t n) {
  std::vector<net::Ipv4Prefix> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(net::Ipv4Prefix(
        net::Ipv4Address(0x0A000000u + (static_cast<std::uint32_t>(i) << 8)),
        24));
  }
  return out;
}

void BM_CompileAppPeeringPolicy(benchmark::State& state) {
  Policy p = app_peering_policy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::compile(p));
  }
}
BENCHMARK(BM_CompileAppPeeringPolicy);

void BM_CompileBgpPrefixFilter(benchmark::State& state) {
  auto prefixes = prefix_list(static_cast<std::size_t>(state.range(0)));
  Policy p = policy::match(Predicate::any_of(net::Field::kDstIp, prefixes)) >>
             policy::fwd(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::compile(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompileBgpPrefixFilter)->Range(16, 4096)->Complexity();

void BM_ParCompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = policy::compile(policy::match(
      Predicate::any_of(net::Field::kDstIp, prefix_list(n))) >>
      policy::fwd(1));
  auto b = policy::compile(policy::match(net::Field::kDstPort, 80) >>
                           policy::fwd(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::par_compose(a, b));
  }
}
BENCHMARK(BM_ParCompose)->Range(16, 1024);

void BM_SeqCompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = policy::compile(policy::match(
      Predicate::any_of(net::Field::kDstIp, prefix_list(n))) >>
      policy::fwd(1));
  auto b = policy::compile(
      (policy::match(net::Field::kPort, 1) >>
       policy::modify(net::Field::kDstMac, std::uint64_t{42}) >>
       policy::fwd(7)) +
      policy::drop());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::seq_compose(a, b));
  }
}
BENCHMARK(BM_SeqCompose)->Range(16, 1024);

void BM_PullBack(benchmark::State& state) {
  auto through = policy::compile(
      (policy::match(net::Field::kPort, 9) >> policy::fwd(3)) +
      (policy::match(net::Field::kDstPort, 80) >> policy::fwd(4)));
  net::FlowMatch domain = net::FlowMatch::on(net::Field::kPort, 1);
  policy::ActionSeq act = policy::ActionSeq::set(net::Field::kPort, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::pull_back(domain, act, through));
  }
}
BENCHMARK(BM_PullBack);

void BM_FlowTableLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dp::FlowTable table;
  auto prefixes = prefix_list(n);
  for (std::size_t i = 0; i < n; ++i) {
    dp::FlowRule r;
    r.priority = static_cast<std::uint32_t>(n - i);
    r.match = net::FlowMatch::on_prefix(net::Field::kDstIp, prefixes[i]);
    r.actions = {policy::ActionSeq::set(net::Field::kPort, 2)};
    table.install(std::move(r));
  }
  net::SplitMix64 rng(5);
  auto packet = net::PacketBuilder()
                    .dst_ip(net::Ipv4Address(
                        0x0A000000u + (static_cast<std::uint32_t>(
                                           rng.below(n)) << 8)))
                    .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(packet));
  }
}
BENCHMARK(BM_FlowTableLookup)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();
