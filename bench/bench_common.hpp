#pragma once

/// Shared helpers for the figure/table benchmarks: workload construction
/// per §6.1 and small formatting utilities. Each bench binary regenerates
/// one table or figure of the paper (see DESIGN.md §4) and prints the same
/// rows/series the paper reports.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "ixp/ixp_generator.hpp"
#include "sdx/compiler.hpp"
#include "sdx/vnh_allocator.hpp"
#include "telemetry/telemetry.hpp"

namespace sdx::bench {

/// Compile-pipeline width for the benchmarks: the SDX_BENCH_THREADS
/// environment variable when set (1 = serial, N = N threads), else 0 =
/// one thread per hardware thread. Output is identical at any width, so
/// serial-vs-parallel speedup is a one-liner:
///   SDX_BENCH_THREADS=1 bench_fig08_compile_time   # serial baseline
///   SDX_BENCH_THREADS=4 bench_fig08_compile_time   # 4-thread pipeline
inline unsigned bench_threads() {
  if (const char* env = std::getenv("SDX_BENCH_THREADS")) {
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

/// Smoke mode (SDX_BENCH_SMOKE=1): benches shrink their workloads and
/// iteration counts so CI can exercise every code path end-to-end in
/// seconds. The rows keep their shape (same columns, fewer/smaller
/// configurations) — useful as an artifact, not as a measurement.
inline bool smoke() {
  const char* env = std::getenv("SDX_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// A generated IXP with §6.1 policies installed. \p policy_prefix_count is
/// the paper's x knob — the number of randomly-selected prefixes that SDX
/// policies apply to (0 = clauses unrestricted).
inline ixp::GeneratedIxp make_workload(std::size_t participants,
                                       std::size_t prefixes,
                                       std::size_t policy_prefix_count = 0,
                                       std::uint64_t seed = 1) {
  ixp::GeneratorConfig cfg;
  cfg.participants = participants;
  cfg.prefixes = prefixes;
  cfg.seed = seed;
  auto ixp = ixp::generate_ixp(cfg);
  ixp::PolicySynthConfig pcfg;
  pcfg.seed = seed * 31 + 7;
  if (policy_prefix_count > 0) {
    pcfg.policy_prefixes =
        ixp::sample_policy_prefixes(ixp, policy_prefix_count, seed * 17 + 3);
  }
  ixp::synthesize_policies(ixp, pcfg);
  return ixp;
}

/// Prints the registry's Prometheus exposition after the CSV rows, each
/// line prefixed with "# " so CSV consumers skip it, and additionally
/// writes the raw exposition to the file named by SDX_BENCH_METRICS when
/// that variable is set (for scraping or diffing runs). The counter series
/// are byte-stable across thread widths, so two runs of the same bench at
/// different SDX_BENCH_THREADS settings must produce identical `_total`
/// lines — a free determinism check on every bench run.
inline void emit_metrics_snapshot(telemetry::MetricRegistry& metrics) {
  const std::string dump = metrics.render_prometheus();
  std::printf("# --- metrics snapshot ---\n");
  std::istringstream is(dump);
  for (std::string line; std::getline(is, line);) {
    std::printf("# %s\n", line.c_str());
  }
  if (const char* path = std::getenv("SDX_BENCH_METRICS")) {
    std::ofstream out(path);
    out << dump;
  }
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace sdx::bench
