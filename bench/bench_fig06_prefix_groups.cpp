/// Figure 6 — number of prefix groups as a function of the number of
/// prefixes with SDX policies, for 100/200/300 participants.
///
/// Methodology exactly as §6.2: take the top-N ASes by announced prefix
/// count (those announcing more than one prefix); pick |px| = x prefixes at
/// random from the table; let p'_i = p_i ∩ px; run minimum-disjoint-subsets
/// over the collection P' = {p'_1 … p'_N}. Paper result: sub-linear growth,
/// with the ratio groups/prefixes falling as x grows.

#include <algorithm>
#include <unordered_set>

#include "bench_common.hpp"
#include "sdx/fec.hpp"

int main() {
  using namespace sdx;
  std::printf("# Figure 6 — prefix groups vs prefixes with SDX policies\n");
  std::printf("prefixes,groups_100,groups_200,groups_300\n");

  // One AMS-IX-like table; N selects how many top announcers participate.
  ixp::GeneratorConfig cfg;
  cfg.participants = 300;
  cfg.prefixes = 25000;
  cfg.seed = 42;
  auto ixp = ixp::generate_ixp(cfg);

  // Announce sets, ranked by size, ASes with >1 prefix only (§6.2).
  std::vector<std::vector<net::Ipv4Prefix>> announce_sets;
  for (const auto& p : ixp.participants) {
    auto adv = ixp.server.advertised_by(p.id);
    if (adv.size() > 1) announce_sets.push_back(std::move(adv));
  }
  std::sort(announce_sets.begin(), announce_sets.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });

  for (std::size_t x : {2500u, 5000u, 10000u, 15000u, 20000u, 25000u}) {
    auto px_vec = ixp::sample_policy_prefixes(ixp, x, 1000 + x);
    std::unordered_set<net::Ipv4Prefix> px(px_vec.begin(), px_vec.end());
    std::printf("%zu", x);
    for (std::size_t n : {100u, 200u, 300u}) {
      std::vector<core::ClauseReach> subsets;
      for (std::size_t i = 0; i < n && i < announce_sets.size(); ++i) {
        core::ClauseReach cr;
        for (auto p : announce_sets[i]) {
          if (px.contains(p)) cr.prefixes.push_back(p);
        }
        if (!cr.prefixes.empty()) subsets.push_back(std::move(cr));
      }
      auto fecs = core::compute_fecs(
          subsets, [](net::Ipv4Prefix) { return core::DefaultVector{}; });
      std::printf(",%zu", fecs.group_count());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
