/// \file make_corpus.cpp
/// Regenerates the checked-in seed corpora under fuzz/corpus/<target>/
/// from the deterministic generators in src/fuzz/corpus.cpp:
///
///   fuzz_make_corpus <corpus-root> [target...]
///
/// Inputs are named seed-NNN.bin; stale seed-*.bin files for a regenerated
/// target are removed first so the directory mirrors the generator output
/// exactly. Regression inputs (fuzz/corpus/regressions/) are never touched.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/harness.hpp"

namespace {

void clear_seeds(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("seed-", 0) == 0) {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

int write_target(const std::string& root, std::string_view target) {
  const std::string dir = root + "/" + std::string(target);
  ::mkdir(dir.c_str(), 0755);
  clear_seeds(dir);
  const auto seeds = sdx::fuzz::seed_corpus(target);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "seed-%03zu.bin", i);
    const std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    if (!seeds[i].empty()) {
      std::fwrite(seeds[i].data(), 1, seeds[i].size(), f);
    }
    std::fclose(f);
  }
  std::fprintf(stderr, "%s: %zu seeds\n", dir.c_str(), seeds.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-root> [target...]\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  ::mkdir(root.c_str(), 0755);

  std::vector<std::string> targets;
  for (int i = 2; i < argc; ++i) targets.emplace_back(argv[i]);
  if (targets.empty()) {
    for (const auto& t : sdx::fuzz::fuzz_targets()) {
      targets.emplace_back(t.name);
    }
  }
  for (const auto& target : targets) {
    if (write_target(root, target) != 0) return 1;
  }
  return 0;
}
