/// libFuzzer entry for the differential oracle: the input decodes (totally)
/// into an update trace — announces, withdrawals, session drops, and
/// cross-participant steering — that is replayed through the oracle's
/// standing equivalences (fast path, parallel compile, crash recovery,
/// partitioning, classification, and safety verification). The custom
/// mutator works on the decoded trace — resizing the exchange,
/// adding/removing/perturbing ops — so every mutant is a semantically
/// meaningful trace rather than a reframed byte string.

#include <algorithm>
#include <cstdint>

#include "fuzz/diff_oracle.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/mutator.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sdx::fuzz::run_diff_oracle(data, size);
}

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  using sdx::fuzz::Trace;
  using sdx::fuzz::TraceOp;

  sdx::net::SplitMix64 rng(seed);
  Trace t = sdx::fuzz::decode_trace({data, size});

  switch (rng.below(6)) {
    case 0:  // resize the exchange
      t.participants = static_cast<std::uint8_t>(rng());
      t.prefixes = static_cast<std::uint8_t>(rng());
      break;
    case 1: {  // append an op
      TraceOp op;
      op.kind = static_cast<TraceOp::Kind>(rng.below(4));
      op.participant = static_cast<std::uint8_t>(rng());
      op.prefix = static_cast<std::uint8_t>(rng());
      op.variant = static_cast<std::uint8_t>(rng());
      if (t.ops.size() < sdx::fuzz::kMaxTraceOps) t.ops.push_back(op);
      break;
    }
    case 2:  // drop an op
      if (!t.ops.empty()) t.ops.erase(t.ops.begin() + rng.below(t.ops.size()));
      break;
    case 3:  // duplicate an op (re-announce churn)
      if (!t.ops.empty() && t.ops.size() < sdx::fuzz::kMaxTraceOps) {
        t.ops.push_back(t.ops[rng.below(t.ops.size())]);
      }
      break;
    case 4:  // perturb one op in place
      if (!t.ops.empty()) {
        TraceOp& op = t.ops[rng.below(t.ops.size())];
        switch (rng.below(4)) {
          case 0: op.kind = static_cast<TraceOp::Kind>(rng.below(4)); break;
          case 1: op.participant = static_cast<std::uint8_t>(rng()); break;
          case 2: op.prefix = static_cast<std::uint8_t>(rng()); break;
          default: op.variant = static_cast<std::uint8_t>(rng()); break;
        }
      }
      break;
    default:  // swap two ops (ordering sensitivity)
      if (t.ops.size() >= 2) {
        std::swap(t.ops[rng.below(t.ops.size())],
                  t.ops[rng.below(t.ops.size())]);
      }
      break;
  }

  const auto bytes = sdx::fuzz::encode_trace(t);
  const std::size_t n = std::min(bytes.size(), max_size);
  std::copy_n(bytes.begin(), n, data);
  return n;
}
