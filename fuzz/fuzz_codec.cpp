/// libFuzzer entry for the persist state codec (src/persist/codec.cpp).
/// The first input byte selects which of the twelve decoders runs; the
/// remainder is the payload.

#include <cstdint>

#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sdx::fuzz::run_codec(data, size);
}
