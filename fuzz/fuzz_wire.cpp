/// libFuzzer entry for the BGP wire codec (src/bgp/wire.cpp). The custom
/// mutator keeps a large fraction of mutants structurally well-formed:
/// it either re-samples a valid message with field-level perturbations or
/// applies the shared byte operators (bit flips, truncation, length-field
/// corruption) to the current input.

#include <algorithm>
#include <cstdint>

#include "fuzz/harness.hpp"
#include "fuzz/mutator.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sdx::fuzz::run_wire(data, size);
}

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  sdx::fuzz::ByteMutator mutator(seed);
  sdx::fuzz::Bytes bytes;
  if (mutator.rng().chance(0.4)) {
    // Fresh field-mutated valid message: reaches past the framing checks.
    bytes = sdx::fuzz::sample_wire_bytes(
        mutator.rng(), static_cast<int>(mutator.rng().below(4)));
  } else {
    bytes.assign(data, data + size);
    mutator.mutate(bytes, static_cast<int>(1 + mutator.rng().below(4)));
  }
  const std::size_t n = std::min(bytes.size(), max_size);
  std::copy_n(bytes.begin(), n, data);
  return n;
}
