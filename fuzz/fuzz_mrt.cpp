/// libFuzzer entry for the MRT reader (src/bgp/mrt.cpp): record framing,
/// BGP4MP decapsulation, and stream truncation handling.

#include <cstdint>

#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sdx::fuzz::run_mrt(data, size);
}
