/// libFuzzer entry for the ingest wire framer (src/ingest/framer.cpp):
/// torn TCP reads through the ring buffer must yield byte-identical
/// frames to a whole-buffer scan.

#include <cstdint>

#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sdx::fuzz::run_framer(data, size);
}
