/// libFuzzer entry for the policy text parser (src/policy/parser.cpp):
/// parse arbitrary text, and require every accepted policy to reach a
/// parse/pretty-print fixpoint.

#include <cstdint>

#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sdx::fuzz::run_policy(data, size);
}
