/// libFuzzer entry for WAL torn-frame replay (src/persist/wal.cpp): the
/// input is materialized as a segment file, read back with
/// read_wal_segment, and then reopened for append — exercising header
/// validation, CRC rejection, torn-tail accounting and truncation.

#include <cstdint>

#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sdx::fuzz::run_wal(data, size);
}
