/// \file standalone_main.cpp
/// Corpus driver for toolchains without libFuzzer (gcc). Linked into each
/// fuzz target instead of -fsanitize=fuzzer; speaks enough of the libFuzzer
/// command line (-runs=, -max_total_time=, -seed=, -artifact_prefix=,
/// positional corpus dirs/files) that the ctest smoke entries and the CI
/// job run unchanged under either front end.
///
/// Loop: replay every corpus input once, then mutate corpus picks with the
/// shared ByteMutator (and the target's LLVMFuzzerCustomMutator when the
/// wrapper defines one) until the run or time budget is exhausted. The
/// current input is persisted to <artifact_prefix>crash-<target> before
/// each execution and removed on clean exit, so a crashing input survives
/// the abort exactly like a libFuzzer artifact.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/mutator.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed)
    __attribute__((weak));

namespace {

using sdx::fuzz::Bytes;

constexpr std::size_t kMaxInput = 1 << 16;

bool read_file(const std::string& path, Bytes& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.insert(out.end(), buf, buf + n);
    if (out.size() > kMaxInput) break;
  }
  std::fclose(f);
  out.resize(std::min(out.size(), kMaxInput));
  return true;
}

void load_corpus_path(const std::string& path, std::vector<Bytes>& corpus) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "warning: cannot stat corpus path %s\n",
                 path.c_str());
    return;
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return;
    std::vector<std::string> names;
    while (const dirent* entry = ::readdir(dir)) {
      if (entry->d_name[0] == '.') continue;
      names.emplace_back(entry->d_name);
    }
    ::closedir(dir);
    // Deterministic replay order regardless of directory hash order.
    std::sort(names.begin(), names.end());
    for (const auto& name : names) {
      load_corpus_path(path + "/" + name, corpus);
    }
    return;
  }
  Bytes bytes;
  if (read_file(path, bytes)) corpus.push_back(std::move(bytes));
}

bool parse_flag(const char* arg, const char* name, long long& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  value = std::atoll(arg + len);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = -1;
  long long max_total_time = 0;
  long long seed = 1;
  std::string artifact_prefix;
  std::vector<std::string> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long long value = 0;
    if (parse_flag(arg, "-runs=", runs) ||
        parse_flag(arg, "-max_total_time=", max_total_time) ||
        parse_flag(arg, "-seed=", seed)) {
      continue;
    }
    if (std::strncmp(arg, "-artifact_prefix=", 17) == 0) {
      artifact_prefix = arg + 17;
      continue;
    }
    if (arg[0] == '-') {
      // Unknown libFuzzer flag: accepted and ignored so command lines stay
      // portable between the two front ends.
      (void)value;
      continue;
    }
    corpus_paths.emplace_back(arg);
  }

  std::vector<Bytes> corpus;
  for (const auto& path : corpus_paths) load_corpus_path(path, corpus);
  std::fprintf(stderr, "standalone fuzz driver: %zu corpus inputs\n",
               corpus.size());

  const std::string artifact = artifact_prefix + "crash-standalone";
  const auto persist = [&artifact](const Bytes& input) {
    std::FILE* f = std::fopen(artifact.c_str(), "wb");
    if (f == nullptr) return;
    if (!input.empty()) std::fwrite(input.data(), 1, input.size(), f);
    std::fclose(f);
  };

  const auto start = std::chrono::steady_clock::now();
  const auto expired = [&] {
    if (max_total_time <= 0) return false;
    return std::chrono::steady_clock::now() - start >=
           std::chrono::seconds(max_total_time);
  };

  long long executed = 0;
  const auto run_one = [&](const Bytes& input) {
    persist(input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  };

  // Pass 1: replay the corpus verbatim.
  for (const auto& input : corpus) {
    if ((runs >= 0 && executed >= runs) || expired()) break;
    run_one(input);
  }

  // Pass 2: mutation loop over corpus picks.
  sdx::fuzz::ByteMutator mutator(static_cast<std::uint64_t>(seed));
  Bytes scratch;
  while ((runs < 0 || executed < runs) && !expired()) {
    if (runs < 0 && max_total_time <= 0) break;  // nothing bounds the loop
    if (corpus.empty()) {
      scratch = mutator.random_bytes(512);
    } else {
      scratch = corpus[mutator.rng().below(corpus.size())];
    }
    if (LLVMFuzzerCustomMutator != nullptr && mutator.rng().chance(0.5)) {
      scratch.resize(std::max<std::size_t>(scratch.size(), 1));
      const std::size_t cap = std::max<std::size_t>(scratch.size() * 2, 64);
      scratch.resize(cap, 0);
      const std::size_t n = LLVMFuzzerCustomMutator(
          scratch.data(), std::min(scratch.size(), cap), cap,
          static_cast<unsigned int>(mutator.rng()()));
      scratch.resize(std::min(n, cap));
    } else {
      mutator.mutate(scratch, static_cast<int>(1 + mutator.rng().below(4)));
    }
    run_one(scratch);
  }

  std::fprintf(stderr, "standalone fuzz driver: %lld executions, clean\n",
               executed);
  ::unlink(artifact.c_str());
  return 0;
}
