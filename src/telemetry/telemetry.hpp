#pragma once

/// \file telemetry.hpp
/// The bundle a component hands around to be measured: one metric registry
/// plus one span tracer. SdxRuntime owns a Telemetry and threads a pointer
/// to it through the compiler and incremental engine; standalone users
/// (benchmarks, tests) construct their own. All members are individually
/// thread-safe, so one bundle can serve every layer of the controller at
/// once.

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace sdx::telemetry {

struct Telemetry {
  MetricRegistry metrics;
  SpanTracer tracer;
};

}  // namespace sdx::telemetry
