#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sdx::telemetry {

namespace {

/// Numbers render deterministically: integral values without a decimal
/// point, everything else with enough digits to round-trip shapes we care
/// about. (Counter series must be byte-stable across runs; %g would print
/// 3 as "3" anyway, but keep the rule explicit.)
std::string fmt_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// `{k="v",k2="v2"}` — empty string for no labels. Doubles as the
/// instrument's sort/identity key inside its family.
std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += "\"";
  }
  out.push_back('}');
  return out;
}

/// Label string with one extra pair spliced in (for histogram `le`).
std::string render_labels_with(const Labels& labels, std::string_view key,
                               std::string_view value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return render_labels(extended);
}

std::string_view kind_name(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must ascend");
  }
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::cumulative() const {
  std::vector<std::uint64_t> out(buckets_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

std::vector<double> time_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

MetricRegistry::Family& MetricRegistry::family(std::string_view name,
                                               std::string_view help,
                                               Kind kind) {
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = help;
  } else if (fam.kind != kind) {
    throw std::invalid_argument(
        std::string(name) + " already registered as " +
        std::string(kind_name(static_cast<int>(fam.kind))));
  }
  return fam;
}

MetricRegistry::Instrument& MetricRegistry::instrument(Family& fam,
                                                       Labels labels) {
  std::sort(labels.begin(), labels.end());
  auto [it, _] = fam.instruments.try_emplace(render_labels(labels));
  Instrument& inst = it->second;
  inst.labels = std::move(labels);
  return inst;
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view help,
                                 Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst =
      instrument(family(name, help, Kind::kCounter), std::move(labels));
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view help,
                             Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst =
      instrument(family(name, help, Kind::kGauge), std::move(labels));
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::string_view help,
                                     std::vector<double> bounds,
                                     Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bounds.empty()) bounds = time_buckets();
  Family& fam = family(name, help, Kind::kHistogram);
  if (fam.instruments.empty()) {
    fam.bounds = bounds;
  } else if (fam.bounds != bounds) {
    throw std::invalid_argument(std::string(name) +
                                ": histogram bounds differ from family");
  }
  Instrument& inst = instrument(fam, std::move(labels));
  if (!inst.histogram) inst.histogram = std::make_unique<Histogram>(bounds);
  return *inst.histogram;
}

std::string MetricRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) os << "# HELP " << name << " " << fam.help << "\n";
    os << "# TYPE " << name << " "
       << kind_name(static_cast<int>(fam.kind)) << "\n";
    for (const auto& [label_str, inst] : fam.instruments) {
      switch (fam.kind) {
        case Kind::kCounter:
          os << name << label_str << " " << inst.counter->value() << "\n";
          break;
        case Kind::kGauge:
          os << name << label_str << " " << fmt_number(inst.gauge->value())
             << "\n";
          break;
        case Kind::kHistogram: {
          const auto cumulative = inst.histogram->cumulative();
          const auto& bounds = inst.histogram->bounds();
          for (std::size_t i = 0; i < cumulative.size(); ++i) {
            const std::string le = i < bounds.size()
                                       ? fmt_number(bounds[i])
                                       : std::string("+Inf");
            os << name << "_bucket"
               << render_labels_with(inst.labels, "le", le) << " "
               << cumulative[i] << "\n";
          }
          os << name << "_sum" << label_str << " "
             << fmt_number(inst.histogram->sum()) << "\n";
          os << name << "_count" << label_str << " "
             << inst.histogram->count() << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

std::string MetricRegistry::render_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  auto labels_json = [](const Labels& labels) {
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += "\"" + json_escape(labels[i].first) + "\":\"" +
             json_escape(labels[i].second) + "\"";
    }
    out.push_back('}');
    return out;
  };
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& [name, fam] : families_) {
    if (fam.kind != Kind::kCounter) continue;
    for (const auto& [_, inst] : fam.instruments) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << json_escape(name)
         << "\",\"labels\":" << labels_json(inst.labels)
         << ",\"value\":" << inst.counter->value() << "}";
    }
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [name, fam] : families_) {
    if (fam.kind != Kind::kGauge) continue;
    for (const auto& [_, inst] : fam.instruments) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << json_escape(name)
         << "\",\"labels\":" << labels_json(inst.labels)
         << ",\"value\":" << fmt_number(inst.gauge->value()) << "}";
    }
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [name, fam] : families_) {
    if (fam.kind != Kind::kHistogram) continue;
    for (const auto& [_, inst] : fam.instruments) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << json_escape(name)
         << "\",\"labels\":" << labels_json(inst.labels)
         << ",\"count\":" << inst.histogram->count()
         << ",\"sum\":" << fmt_number(inst.histogram->sum())
         << ",\"buckets\":[";
      const auto cumulative = inst.histogram->cumulative();
      const auto& bounds = inst.histogram->bounds();
      for (std::size_t i = 0; i < cumulative.size(); ++i) {
        if (i > 0) os << ",";
        os << "{\"le\":\""
           << (i < bounds.size() ? fmt_number(bounds[i]) : "+Inf")
           << "\",\"count\":" << cumulative[i] << "}";
      }
      os << "]}";
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace sdx::telemetry
