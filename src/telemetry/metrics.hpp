#pragma once

/// \file metrics.hpp
/// The SDX measurement plane: a thread-safe metrics registry with the three
/// classic instrument kinds — monotonic counters, gauges, and fixed-bucket
/// histograms — plus Prometheus-style text exposition and a JSON snapshot.
///
/// Design constraints:
///
///   * fast-path safe: updating an instrument is a relaxed atomic op (or a
///     short CAS loop for doubles), never a lock — instruments may be
///     hammered from inside the PR-1 thread pool and must be TSan-clean;
///   * handles are stable: the registry hands out references that remain
///     valid for its lifetime (instruments live behind unique_ptr), so hot
///     paths cache `Counter&` once and never re-probe the registry;
///   * get-or-create: registering the same (name, labels) twice returns the
///     same instrument, so instrumentation points need no global setup
///     phase;
///   * deterministic exposition: families and label sets render in sorted
///     order, counters print as integers — two runs that performed the same
///     logical work produce byte-identical counter series regardless of
///     thread count (the contract tests/test_runtime_telemetry.cpp holds
///     the whole stack to).
///
/// Naming follows the Prometheus conventions the exposition format implies:
/// counters end in `_total`, timings are `_seconds` histograms.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdx::telemetry {

/// Label set of one instrument, e.g. {{"stage", "compose"}}. Order given at
/// registration is normalized (sorted by key) so equal sets are equal keys.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. inc() is a relaxed fetch_add — safe from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Gauge: a value that goes both ways (table occupancy, RIB size).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: per-bucket atomic counts plus sum. Bounds are
/// upper bucket edges (ascending); an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative counts per bucket, ending with the +Inf bucket (== count()).
  std::vector<std::uint64_t> cumulative() const;

 private:
  std::vector<double> bounds_;
  /// Non-cumulative per-bucket hits; bounds_.size() + 1 slots (+Inf last).
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Power-of-ten latency buckets (1 µs … 10 s) — the default for the
/// `_seconds` histograms across the stack.
std::vector<double> time_buckets();

class MetricRegistry {
 public:
  /// Get-or-create. Throws std::invalid_argument when \p name is already
  /// registered as a different kind (or, for histograms, with different
  /// bounds). \p help is kept from the first registration.
  Counter& counter(std::string_view name, std::string_view help = "",
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = "",
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help = "",
                       std::vector<double> bounds = {}, Labels labels = {});

  /// Prometheus text exposition (version 0.0.4): `# HELP`/`# TYPE` per
  /// family, samples sorted by (name, labels). Counters print as integers.
  std::string render_prometheus() const;

  /// One JSON object: {"counters": [...], "gauges": [...],
  /// "histograms": [...]}, same deterministic order as the text format.
  std::string render_json() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;  ///< histogram families only
    /// Keyed by the rendered label string, so iteration is sorted.
    std::map<std::string, Instrument> instruments;
  };

  Family& family(std::string_view name, std::string_view help, Kind kind);
  Instrument& instrument(Family& fam, Labels labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace sdx::telemetry
