#pragma once

/// \file trace.hpp
/// Scoped span tracing for the SDX pipelines: named, nested, timed spans
/// recorded against one steady-clock epoch and serialized as Chrome
/// trace-event JSON ("X" complete events), loadable in about:tracing or
/// https://ui.perfetto.dev. A span is an RAII value — construct to open,
/// destroy (or finish()) to record — and a null tracer makes it a no-op,
/// so instrumentation points need no `if (telemetry)` guards.
///
/// Nesting is positional, as in the Chrome format itself: spans on the same
/// thread whose [start, start+dur] intervals contain one another render as
/// parent/child. The compiler opens one "compile" span and a child span per
/// pipeline stage on the calling thread; the parallel workers inside a
/// stage are invisible here (the registry's histograms price them).

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace sdx::telemetry {

class SpanTracer;

/// One open span. Records itself into the tracer on destruction (or the
/// first finish() call). Move-only; a default-constructed or null-tracer
/// span is inert.
class Span {
 public:
  Span() = default;
  Span(SpanTracer* tracer, std::string name);
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Ends the span now (idempotent).
  void finish();

 private:
  SpanTracer* tracer_ = nullptr;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

class SpanTracer {
 public:
  SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Opens a span; it records when the returned value dies.
  Span span(std::string name) { return Span(this, std::move(name)); }

  struct Record {
    std::string name;
    double start_us = 0;  ///< microseconds since the tracer's epoch
    double dur_us = 0;
    std::uint32_t tid = 0;  ///< small per-thread id, stable within a tracer

    double end_us() const { return start_us + dur_us; }
    /// Positional nesting test: true when \p inner lies inside this span on
    /// the same thread (what the Chrome viewer renders as a child row).
    bool encloses(const Record& inner) const {
      return tid == inner.tid && start_us <= inner.start_us &&
             inner.end_us() <= end_us();
    }
  };

  /// Completed spans, in completion order.
  std::vector<Record> records() const;

  /// Chrome trace-event JSON: {"traceEvents": [{"ph":"X", ...}, ...]}.
  std::string render_chrome_json() const;

  void clear();

 private:
  friend class Span;
  void record(const std::string& name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Record> records_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

}  // namespace sdx::telemetry
