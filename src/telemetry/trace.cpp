#include "telemetry/trace.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

namespace sdx::telemetry {

Span::Span(SpanTracer* tracer, std::string name)
    : tracer_(tracer), name_(std::move(name)) {
  if (tracer_ != nullptr) start_ = std::chrono::steady_clock::now();
}

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      start_(other.start_) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = std::exchange(other.tracer_, nullptr);
    name_ = std::move(other.name_);
    start_ = other.start_;
  }
  return *this;
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  tracer_->record(name_, start_, std::chrono::steady_clock::now());
  tracer_ = nullptr;
}

void SpanTracer::record(const std::string& name,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, _] = tids_.try_emplace(std::this_thread::get_id(),
                                   static_cast<std::uint32_t>(tids_.size()));
  Record r;
  r.name = name;
  r.start_us = std::chrono::duration<double, std::micro>(start - epoch_).count();
  r.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  r.tid = it->second;
  records_.push_back(std::move(r));
}

std::vector<SpanTracer::Record> SpanTracer::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::string SpanTracer::render_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i > 0) os << ",";
    std::string name;
    name.reserve(r.name.size());
    for (char c : r.name) {
      if (c == '"' || c == '\\') name.push_back('\\');
      name.push_back(c);
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"ts\":%.3f,\"dur\":%.3f", r.start_us,
                  r.dur_us);
    os << "{\"name\":\"" << name << "\",\"cat\":\"sdx\",\"ph\":\"X\","
       << buf << ",\"pid\":1,\"tid\":" << r.tid << "}";
  }
  os << "]}";
  return os.str();
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  tids_.clear();
}

}  // namespace sdx::telemetry
