#pragma once

/// \file replay_client.hpp
/// The active side of an ingest session: a blocking loopback dialer that
/// speaks real RFC 4271 BGP toward the listener — OPEN handshake through
/// a bgp::Session FSM, then UPDATE frames over TCP. This is what a
/// participant's border router looks like to the ingest subsystem; tests
/// and benches run many of them against one reactor.
///
/// Resilience: when the transport dies (listener restart, hold-timer
/// expiry, RST mid-stream) the client redials with capped exponential
/// backoff and replays the in-flight UPDATE, counting each re-established
/// session in reconnects(). Intentionally blocking and simple — the
/// event-driven machinery lives on the server side.

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/session.hpp"

namespace sdx::ingest {

class BgpReplayClient {
 public:
  struct Options {
    net::Asn asn = 64512;
    net::Ipv4Address router_id;
    /// 0 (default) disables keepalive/hold ticking — deterministic byte
    /// streams for benches.
    std::uint16_t hold_time = 0;
    /// Reconnect backoff: first wait, doubling to the cap.
    double initial_backoff_seconds = 0.02;
    double max_backoff_seconds = 1.0;
    /// Dial attempts per connect()/reconnect before giving up.
    int max_attempts = 10;
  };

  explicit BgpReplayClient(Options options) : options_(options) {}
  ~BgpReplayClient() { close(); }

  BgpReplayClient(const BgpReplayClient&) = delete;
  BgpReplayClient& operator=(const BgpReplayClient&) = delete;

  /// Dials 127.0.0.1:\p port and completes the OPEN handshake. Throws
  /// std::runtime_error when every attempt fails.
  void connect(std::uint16_t port);

  /// Sends one UPDATE, transparently reconnecting (and re-sending) when
  /// the transport has died. Throws std::runtime_error once reconnecting
  /// is exhausted.
  void send_update(const bgp::UpdateMessage& update);

  /// Drains any bytes the peer sent (keepalives, notifications) without
  /// blocking, feeding them through the FSM. Returns false when the peer
  /// closed the session.
  bool poll_input();

  void close();

  bool established() const;
  std::uint64_t updates_sent() const { return updates_sent_; }
  /// Sessions re-established after a transport loss.
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  bool dial_once();
  /// Dial + handshake with backoff; returns false when exhausted.
  bool establish(bool counts_as_reconnect);
  bool send_all(const std::vector<std::uint8_t>& bytes);

  Options options_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
  /// Rebuilt per transport connection (BGP sessions do not survive TCP).
  std::optional<bgp::Session> session_;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t reconnects_ = 0;
  bool ever_connected_ = false;
};

}  // namespace sdx::ingest
