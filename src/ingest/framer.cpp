#include "ingest/framer.hpp"

namespace sdx::ingest {

WireFramer::Status WireFramer::next(std::span<const std::uint8_t>& frame,
                                    std::string& error) {
  // Consume the frame handed out by the previous call — its span is dead
  // from here on.
  if (pending_consume_ != 0) {
    ring_.consume(pending_consume_);
    pending_consume_ = 0;
  }

  if (frame_len_ == 0) {
    // The length field sits at bytes 16–17; cache it as soon as it is
    // visible so later partial reads never re-scan the header.
    if (ring_.size() < kBgpLengthOffset + 2) return Status::kNeedMore;
    const std::size_t len =
        (static_cast<std::size_t>(ring_.at(kBgpLengthOffset)) << 8) |
        ring_.at(kBgpLengthOffset + 1);
    if (len < kBgpHeaderSize || len > kBgpMaxMessageSize) {
      error = "bad message length " + std::to_string(len);
      return Status::kError;
    }
    frame_len_ = len;
  }

  if (ring_.size() < frame_len_) return Status::kNeedMore;

  const auto contiguous = ring_.read_span();
  if (contiguous.size() >= frame_len_) {
    frame = contiguous.first(frame_len_);
  } else {
    // The frame straddles the physical wrap point: assemble it once.
    scratch_.resize(frame_len_);
    ring_.copy_out(0, scratch_);
    frame = scratch_;
    ++wrap_copies_;
  }
  pending_consume_ = frame_len_;
  frame_len_ = 0;
  ++frames_;
  return Status::kFrame;
}

}  // namespace sdx::ingest
