#include "ingest/spill_queue.hpp"

#include <algorithm>

namespace sdx::ingest {

SpillQueue::SpillQueue(Options options) : options_(options) {}

bool SpillQueue::has_space_locked(const Peer& peer) const {
  return total_ < options_.capacity && peer.q.size() < options_.per_peer_quota;
}

bool SpillQueue::try_push(core::ParticipantId peer, IngestedUpdate& update) {
  std::lock_guard lock(mu_);
  auto& p = peers_[peer];
  if (!has_space_locked(p)) {
    p.blocked = true;
    ++sheds_;
    return false;
  }
  if (p.q.empty()) active_.push_back(peer);
  p.q.push_back(std::move(update));
  ++total_;
  ++pushed_;
  return true;
}

bool SpillQueue::push_blocking(core::ParticipantId peer,
                               IngestedUpdate update,
                               const std::function<bool()>& give_up) {
  std::unique_lock lock(mu_);
  auto& p = peers_[peer];
  while (!has_space_locked(p)) {
    if (give_up && give_up()) return false;
    space_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  if (p.q.empty()) active_.push_back(peer);
  p.q.push_back(std::move(update));
  ++total_;
  ++pushed_;
  return true;
}

std::size_t SpillQueue::drain(std::size_t max,
                              std::vector<IngestedUpdate>& out) {
  std::vector<core::ParticipantId> resumable;
  std::size_t moved = 0;
  {
    std::lock_guard lock(mu_);
    // Deficit round robin over the active rotation: every backlogged peer
    // earns drr_quantum credits per round, unspent credits carry only
    // while the peer still has backlog (classic DRR).
    while (moved < max && !active_.empty()) {
      std::vector<core::ParticipantId> next_round;
      next_round.reserve(active_.size());
      for (std::size_t i = 0; i < active_.size() && moved < max; ++i) {
        const auto id = active_[i];
        auto& p = peers_[id];
        p.deficit += options_.drr_quantum;
        while (p.deficit > 0 && !p.q.empty() && moved < max) {
          out.push_back(std::move(p.q.front()));
          p.q.pop_front();
          --p.deficit;
          --total_;
          ++moved;
        }
        if (p.q.empty()) {
          p.deficit = 0;
        } else {
          next_round.push_back(id);
        }
        if (p.blocked && p.q.size() <= options_.per_peer_quota / 2 &&
            total_ <= options_.capacity / 2) {
          p.blocked = false;
          resumable.push_back(id);
        }
      }
      // Peers left un-visited this round (max reached) keep their place at
      // the front of the next rotation.
      if (moved >= max) {
        std::vector<core::ParticipantId> rest;
        for (auto id : active_) {
          if (!peers_[id].q.empty() &&
              std::find(next_round.begin(), next_round.end(), id) ==
                  next_round.end()) {
            rest.push_back(id);
          }
        }
        next_round.insert(next_round.end(), rest.begin(), rest.end());
        active_ = std::move(next_round);
        break;
      }
      active_ = std::move(next_round);
    }
    drained_ += moved;
    // A global-bound shed may have blocked peers that never re-entered the
    // loop above (empty backlog): resume them too once space exists.
    if (total_ <= options_.capacity / 2) {
      for (auto& [id, p] : peers_) {
        if (p.blocked && p.q.size() <= options_.per_peer_quota / 2) {
          p.blocked = false;
          resumable.push_back(id);
        }
      }
    }
  }
  if (moved > 0) space_cv_.notify_all();
  if (space_cb_) {
    for (auto id : resumable) space_cb_(id);
  }
  return moved;
}

void SpillQueue::set_space_callback(
    std::function<void(core::ParticipantId)> cb) {
  space_cb_ = std::move(cb);
}

std::size_t SpillQueue::depth() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::size_t SpillQueue::peer_depth(core::ParticipantId peer) const {
  std::lock_guard lock(mu_);
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.q.size();
}

bool SpillQueue::blocked(core::ParticipantId peer) const {
  std::lock_guard lock(mu_);
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.blocked;
}

std::uint64_t SpillQueue::pushed() const {
  std::lock_guard lock(mu_);
  return pushed_;
}

std::uint64_t SpillQueue::drained() const {
  std::lock_guard lock(mu_);
  return drained_;
}

std::uint64_t SpillQueue::shed_events() const {
  std::lock_guard lock(mu_);
  return sheds_;
}

}  // namespace sdx::ingest
