#pragma once

/// \file ring_buffer.hpp
/// A fixed-capacity byte ring for per-connection receive buffering on the
/// ingest path. The contract that makes the framer zero-copy:
///
///   * write_span() exposes the contiguous free region at the write head,
///     so recv(2) deposits bytes straight into the ring (no staging
///     buffer) and commit() publishes them;
///   * read_span() exposes the contiguous readable region at the read
///     head, so a frame that does not straddle the wrap point is parsed
///     in place — the framer copies only wrap-straddling frames.
///
/// Single-threaded by design: each connection's ring is touched only from
/// the reactor thread that owns the connection.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace sdx::ingest {

class RingBuffer {
 public:
  /// \p capacity is rounded up to a power of two (masking beats modulo on
  /// the per-byte accessors). Must be at least as large as the largest
  /// frame the framer may yield.
  explicit RingBuffer(std::size_t capacity) {
    std::size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return tail_ - head_; }
  std::size_t free() const { return capacity() - size(); }
  bool empty() const { return head_ == tail_; }

  /// The contiguous free region at the write head (possibly shorter than
  /// free() when the head is near the physical end of the buffer). Write
  /// into it, then commit() the bytes actually written.
  std::span<std::uint8_t> write_span() {
    const std::size_t off = tail_ & mask_;
    const std::size_t contiguous = capacity() - off;
    return {buf_.data() + off, std::min(contiguous, free())};
  }

  void commit(std::size_t n) {
    if (n > free()) throw std::logic_error("RingBuffer: commit past free");
    tail_ += n;
  }

  /// The contiguous readable region at the read head.
  std::span<const std::uint8_t> read_span() const {
    const std::size_t off = head_ & mask_;
    const std::size_t contiguous = capacity() - off;
    return {buf_.data() + off, std::min(contiguous, size())};
  }

  /// The \p i-th readable byte (0 = oldest).
  std::uint8_t at(std::size_t i) const { return buf_[(head_ + i) & mask_]; }

  /// Copies readable bytes [offset, offset + out.size()) into \p out —
  /// the wrap-straddling-frame path.
  void copy_out(std::size_t offset, std::span<std::uint8_t> out) const {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = at(offset + i);
  }

  void consume(std::size_t n) {
    if (n > size()) throw std::logic_error("RingBuffer: consume past size");
    head_ += n;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t mask_ = 0;
  /// Monotonic positions; physical index = position & mask_.
  std::size_t head_ = 0;  ///< read position
  std::size_t tail_ = 0;  ///< write position
};

}  // namespace sdx::ingest
