#pragma once

/// \file mrt_source.hpp
/// MRT replay as a first-class ingest source: streams a BGP4MP update
/// trace or a TABLE_DUMP_V2 RIB snapshot (RFC 6396, the format RIPE RIS
/// publishes) straight into the SpillQueue the TCP listener feeds — one
/// backpressure point for both live sessions and trace replay.
///
/// Replay never drops: it pushes with push_blocking(), so when the
/// control thread falls behind the replay thread simply waits on the
/// drain (the file is its own retransmit buffer). Pacing is either
/// line-rate (as fast as the queue accepts) or recorded (sleep out the
/// inter-record timestamp gaps, optionally scaled).
///
/// Uses the streaming readers (read_record status API,
/// read_rib_dump_stream), so arbitrarily large dumps replay in constant
/// memory and a torn trailing record is reported, not thrown.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "bgp/mrt.hpp"
#include "ingest/spill_queue.hpp"

namespace sdx::ingest {

class MrtReplaySource {
 public:
  enum class Pacing {
    kLineRate,  ///< push as fast as the queue accepts (throughput mode)
    kRecorded,  ///< reproduce the trace's inter-record gaps
  };

  struct Options {
    Pacing pacing = Pacing::kLineRate;
    /// Recorded pacing speed-up: 2.0 replays a 60 s trace in 30 s.
    double time_scale = 1.0;
  };

  /// Maps a trace peer (AS + address as recorded by the collector) to the
  /// participant whose updates it carries; nullopt skips the record.
  using PeerMapper = std::function<std::optional<core::ParticipantId>(
      net::Asn peer_as, net::Ipv4Address peer_ip)>;

  struct Result {
    std::uint64_t records = 0;  ///< MRT records consumed
    std::uint64_t updates = 0;  ///< UPDATEs pushed into the queue
    /// Records carrying no UPDATE for the fast path: non-BGP4MP types,
    /// OPEN/KEEPALIVE/NOTIFICATION wrappers, unmapped peers.
    std::uint64_t skipped = 0;
    /// How the stream ended: kEof is a clean record boundary; kTruncated /
    /// kOversized / kCorrupt describe the trailing record.
    bgp::MrtReadStatus tail = bgp::MrtReadStatus::kEof;
    std::string error;  ///< description when tail != kEof
    bool gave_up = false;  ///< the give_up predicate stopped the replay

    bool ok() const { return tail == bgp::MrtReadStatus::kEof && !gave_up; }
  };

  MrtReplaySource(Options options, PeerMapper mapper)
      : options_(options), mapper_(std::move(mapper)) {}

  /// Replays a BGP4MP update trace into \p queue. Honors pacing; blocks on
  /// backpressure. \p give_up (checked while waiting and between records)
  /// aborts the replay early.
  Result replay_trace(std::istream& is, SpillQueue& queue,
                      const std::function<bool()>& give_up = {});

  /// Replays a TABLE_DUMP_V2 RIB snapshot as one announcement per route
  /// (the bootstrap flavor: load a RIB, then stream a trace on top).
  /// Peers are mapped through the same PeerMapper using the dump's peer
  /// index. Always line-rate — a snapshot has one timestamp.
  Result replay_rib(std::istream& is, SpillQueue& queue,
                    const std::function<bool()>& give_up = {});

 private:
  Options options_;
  PeerMapper mapper_;
};

}  // namespace sdx::ingest
