#include "ingest/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace sdx::ingest {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wakeup)");
  }
}

Reactor::~Reactor() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void Reactor::add(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(add)");
  }
  std::lock_guard lock(mu_);
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void Reactor::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void Reactor::remove(int fd) {
  // The fd may already be closed by the caller; a failed DEL is harmless.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard lock(mu_);
  handlers_.erase(fd);
}

std::size_t Reactor::fd_count() const {
  std::lock_guard lock(mu_);
  return handlers_.size();
}

std::uint64_t Reactor::add_timer(double delay_seconds,
                                 std::function<void()> fn) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_timer_id_++;
  timers_.push_back(Timer{
      id,
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(delay_seconds)),
      std::move(fn)});
  return id;
}

void Reactor::cancel_timer(std::uint64_t id) {
  std::lock_guard lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->id == id) {
      timers_.erase(it);
      return;
    }
  }
}

int Reactor::next_timeout_ms(int requested) const {
  std::lock_guard lock(mu_);
  if (timers_.empty()) return requested;
  auto soonest = timers_.front().deadline;
  for (const auto& t : timers_) soonest = std::min(soonest, t.deadline);
  const auto now = Clock::now();
  int ms = 0;
  if (soonest > now) {
    ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(soonest - now)
            .count() +
        1);
  }
  if (requested < 0) return ms;
  return std::min(requested, ms);
}

void Reactor::drain_wakeup() {
  std::uint64_t v = 0;
  while (::read(wake_fd_, &v, sizeof v) == sizeof v) {
  }
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& fn : tasks) fn();
}

void Reactor::fire_due_timers() {
  std::vector<std::function<void()>> due;
  {
    std::lock_guard lock(mu_);
    const auto now = Clock::now();
    for (auto it = timers_.begin(); it != timers_.end();) {
      if (it->deadline <= now) {
        due.push_back(std::move(it->fn));
        it = timers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& fn : due) fn();
}

int Reactor::run_once(int timeout_ms) {
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64,
                             next_timeout_ms(timeout_ms));
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait");
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      drain_wakeup();
      continue;
    }
    std::shared_ptr<FdHandler> handler;
    {
      std::lock_guard lock(mu_);
      if (auto it = handlers_.find(fd); it != handlers_.end()) {
        handler = it->second;
      }
    }
    if (handler) {
      (*handler)(events[i].events);
      ++dispatched;
    }
  }
  fire_due_timers();
  return dispatched;
}

void Reactor::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    run_once(-1);
  }
}

void Reactor::restart() { stop_.store(false, std::memory_order_release); }

void Reactor::stop() {
  stop_.store(true, std::memory_order_release);
  wakeup();
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wakeup();
}

void Reactor::wakeup() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace sdx::ingest
