#include "ingest/replay_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace sdx::ingest {

namespace {

constexpr int kHandshakeTimeoutMs = 5000;

}  // namespace

bool BgpReplayClient::dial_once() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return true;
}

bool BgpReplayClient::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool BgpReplayClient::establish(bool counts_as_reconnect) {
  double backoff = options_.initial_backoff_seconds;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options_.max_backoff_seconds);
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (!dial_once()) continue;
    session_.emplace(bgp::Session::Config{options_.asn, options_.router_id,
                                          options_.hold_time});
    session_->start();
    if (!send_all(session_->take_output())) continue;
    // Blocking handshake: read until Established, closed, or timeout.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kHandshakeTimeoutMs);
    bool done = false;
    bool dead = false;
    while (!done && !dead) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) break;
      pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
      if (pr <= 0) {
        if (pr < 0 && errno == EINTR) continue;
        break;  // timeout
      }
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        dead = true;
        break;
      }
      auto events = session_->receive({buf, static_cast<std::size_t>(n)});
      if (!send_all(session_->take_output())) {
        dead = true;
        break;
      }
      for (const auto& ev : events) {
        if (ev.kind == bgp::Session::Event::Kind::kEstablished) done = true;
        if (ev.kind == bgp::Session::Event::Kind::kClosed ||
            ev.kind == bgp::Session::Event::Kind::kNotificationReceived) {
          dead = true;
        }
      }
    }
    if (done && !dead) {
      if (counts_as_reconnect && ever_connected_) ++reconnects_;
      ever_connected_ = true;
      return true;
    }
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_.reset();
  return false;
}

void BgpReplayClient::connect(std::uint16_t port) {
  port_ = port;
  if (!establish(/*counts_as_reconnect=*/true)) {
    throw std::runtime_error("BgpReplayClient: connect to 127.0.0.1:" +
                             std::to_string(port) + " failed");
  }
}

void BgpReplayClient::send_update(const bgp::UpdateMessage& update) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!established() && !establish(/*counts_as_reconnect=*/true)) break;
    session_->send_update(update);
    if (send_all(session_->take_output())) {
      ++updates_sent_;
      return;
    }
    // Transport died under us: redial and replay this update once.
    session_.reset();
  }
  throw std::runtime_error("BgpReplayClient: send_update failed");
}

bool BgpReplayClient::poll_input() {
  if (fd_ < 0 || !session_) return false;
  for (;;) {
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, 0);
    if (pr == 0) return true;
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) {
      // Peer closed: drop the session so established() reports the truth
      // and the next send_update() redials instead of writing into a dead
      // socket.
      session_.reset();
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      session_.reset();
      return false;
    }
    auto events = session_->receive({buf, static_cast<std::size_t>(n)});
    send_all(session_->take_output());
    for (const auto& ev : events) {
      if (ev.kind == bgp::Session::Event::Kind::kClosed ||
          ev.kind == bgp::Session::Event::Kind::kNotificationReceived) {
        session_.reset();
        return false;
      }
    }
  }
}

void BgpReplayClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_.reset();
}

bool BgpReplayClient::established() const {
  return fd_ >= 0 && session_ &&
         session_->state() == bgp::Session::State::kEstablished;
}

}  // namespace sdx::ingest
