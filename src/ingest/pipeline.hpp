#pragma once

/// \file pipeline.hpp
/// The assembled ingest subsystem: reactor + TCP listener + spill queue
/// wired into an SdxRuntime's batched fast path, with the threading model
/// the design demands —
///
///   * the reactor thread owns every socket (accept, framing, FSMs,
///     backpressure shedding);
///   * the control thread calls drain(): DRR-drains the queue, applies
///     announce()/withdraw() through the runtime, flush()es the batch and
///     observes the ingest→install latency of every update it landed;
///   * MRT replay threads push into the same queue via MrtReplaySource.
///
/// Backpressure closes the loop across threads: the queue's space
/// callback (fired on the control thread inside drain()) posts a
/// resume_peer() to the reactor, which re-arms EPOLLIN for the shed
/// connections. Nothing is dropped anywhere on the path; CI asserts
/// `sdx_ingest_dropped_total 0`.
///
/// Telemetry (registered on the runtime's registry, exported with all
/// other series by dump_metrics): sdx_ingest_sessions,
/// sdx_ingest_bytes_total, sdx_ingest_updates_total,
/// sdx_ingest_applied_total, sdx_ingest_queue_depth,
/// sdx_ingest_sheds_total, sdx_ingest_dropped_total,
/// sdx_ingest_reconnects_total, sdx_ingest_open_rejected_total and the
/// sdx_ingest_install_latency_seconds histogram.

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ingest/listener.hpp"
#include "ingest/reactor.hpp"
#include "ingest/spill_queue.hpp"
#include "sdx/runtime.hpp"

namespace sdx::ingest {

class IngestPipeline {
 public:
  struct Options {
    BgpListener::Options listener;
    SpillQueue::Options queue;
    /// Max updates one drain() pass moves into a batch.
    std::size_t drain_batch = 256;
  };

  /// Binds to \p rt (which must outlive the pipeline) and registers the
  /// ingest telemetry on its registry. Peers are resolved by ASN against
  /// the participants registered at start() time.
  explicit IngestPipeline(core::SdxRuntime& rt)
      : IngestPipeline(rt, Options{}) {}
  IngestPipeline(core::SdxRuntime& rt, Options options);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Snapshots the runtime's participant table (ASN → participant),
  /// binds the listener on 127.0.0.1:\p port (0 = ephemeral) and starts
  /// the reactor thread. Returns the bound port.
  std::uint16_t start(std::uint16_t port = 0);

  /// Stops the reactor thread and tears down every session.
  void stop();
  bool running() const { return thread_.joinable(); }

  /// Control thread: one DRR drain of up to drain_batch updates, applied
  /// through the runtime (announce/withdraw + flush when batching).
  /// Returns the number of updates applied; 0 means the queue was empty.
  std::size_t drain();

  /// Drains until a pass comes up empty. Returns total updates applied.
  std::size_t drain_until_idle();

  /// Re-syncs the listener/queue statistics into the telemetry series
  /// (drain() does this automatically; call before dump_metrics() when
  /// idle).
  void refresh_metrics();

  std::uint64_t applied() const { return applied_total_; }

  SpillQueue& queue() { return queue_; }
  BgpListener& listener() { return *listener_; }
  Reactor& reactor() { return reactor_; }
  std::uint16_t port() const { return port_; }

 private:
  void apply(IngestedUpdate& update);

  core::SdxRuntime& rt_;
  Options options_;
  Reactor reactor_;
  SpillQueue queue_;
  std::unique_ptr<BgpListener> listener_;
  std::unordered_map<net::Asn, core::ParticipantId> by_asn_;
  std::thread thread_;
  std::uint16_t port_ = 0;
  std::vector<IngestedUpdate> batch_;  ///< drain() scratch
  std::uint64_t applied_total_ = 0;

  // Cached instrument handles (registry handles are stable) and the
  // last-synced listener readings (counters only move forward).
  telemetry::Gauge* sessions_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  telemetry::Counter* bytes_total_ = nullptr;
  telemetry::Counter* updates_total_ = nullptr;
  telemetry::Counter* applied_ = nullptr;
  telemetry::Counter* sheds_ = nullptr;
  telemetry::Counter* dropped_ = nullptr;
  telemetry::Counter* reconnects_ = nullptr;
  telemetry::Counter* open_rejected_ = nullptr;
  telemetry::Histogram* install_latency_ = nullptr;
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t synced_updates_ = 0;
  std::uint64_t synced_sheds_ = 0;
  std::uint64_t synced_reconnects_ = 0;
  std::uint64_t synced_rejected_ = 0;
};

}  // namespace sdx::ingest
