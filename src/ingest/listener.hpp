#pragma once

/// \file listener.hpp
/// The passive side of the ingest subsystem: a loopback/LAN TCP listener
/// that terminates many concurrent eBGP sessions on the reactor.
///
/// Per accepted connection: a non-blocking socket, a RingBuffer the
/// kernel's bytes land in directly, a WireFramer that yields complete
/// frames without copying (see framer.hpp) and a bgp::Session FSM fed
/// through its process() entry point. Decoded UPDATEs from Established
/// sessions are tagged with the participant resolved from the peer's OPEN
/// and pushed into the SpillQueue.
///
/// Backpressure: when the queue refuses a push, the connection stashes
/// the refused update, drops EPOLLIN interest (the kernel socket buffer
/// fills, TCP pushes back on the sender) and waits for resume_peer() —
/// posted to the reactor by the pipeline once the drain frees space.
/// Nothing is dropped at this layer, ever.
///
/// All methods except the stats accessors run on the reactor thread (or
/// before it starts); stats are atomics, readable from anywhere.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "bgp/session.hpp"
#include "ingest/framer.hpp"
#include "ingest/reactor.hpp"
#include "ingest/ring_buffer.hpp"
#include "ingest/spill_queue.hpp"
#include "netbase/ip.hpp"

namespace sdx::ingest {

class BgpListener {
 public:
  struct Options {
    net::Asn server_asn = 64999;
    net::Ipv4Address server_id = net::Ipv4Address::parse("192.0.2.254");
    /// Session hold time (seconds); 0 disables keepalive/hold ticking —
    /// the deterministic choice for benches.
    std::uint16_t hold_time = 90;
    /// Per-connection receive ring; must hold one max frame (4 KiB).
    std::size_t ring_capacity = 1 << 16;
    /// Granularity of the session-clock tick timer (hold_time > 0 only).
    double tick_seconds = 1.0;
  };

  /// Maps a peer's OPEN to the participant it speaks for; nullopt rejects
  /// the session (Cease NOTIFICATION).
  using PeerResolver =
      std::function<std::optional<core::ParticipantId>(const bgp::OpenMessage&)>;

  BgpListener(Reactor& reactor, SpillQueue& queue, Options options,
              PeerResolver resolver);
  ~BgpListener();

  BgpListener(const BgpListener&) = delete;
  BgpListener& operator=(const BgpListener&) = delete;

  /// Binds 127.0.0.1:\p port (0 = ephemeral) and registers the accept
  /// handler. Returns the bound port. Call before the reactor runs.
  std::uint16_t listen(std::uint16_t port = 0);
  std::uint16_t port() const { return port_; }

  /// Tears down the listening socket and every connection.
  void close_all();

  /// Re-evaluates backpressure for \p peer's connections: pushes the
  /// stashed update, resumes framing and re-arms EPOLLIN when the queue
  /// accepts again. Reactor thread only (the pipeline posts it).
  void resume_peer(core::ParticipantId peer);

  // --- stats (atomics; safe from any thread) -------------------------------

  std::size_t sessions() const { return sessions_.load(); }
  std::uint64_t accepted() const { return accepted_.load(); }
  std::uint64_t bytes_received() const { return bytes_.load(); }
  std::uint64_t updates_received() const { return updates_.load(); }
  /// Established sessions for a participant already seen before — the
  /// server-visible face of peer auto-reconnect.
  std::uint64_t reconnects() const { return reconnects_.load(); }
  std::uint64_t open_rejected() const { return open_rejected_.load(); }
  std::uint64_t sessions_closed() const { return closed_.load(); }
  std::uint64_t hold_expirations() const { return hold_expirations_.load(); }
  /// Aggregate framer stats (live + closed connections).
  std::uint64_t frames() const { return frames_.load(); }
  std::uint64_t wrap_copies() const { return wrap_copies_.load(); }

 private:
  struct Connection {
    explicit Connection(int fd_in, std::size_t ring_capacity,
                        bgp::Session::Config config)
        : fd(fd_in), ring(ring_capacity), framer(ring), session(config) {}

    int fd;
    RingBuffer ring;
    WireFramer framer;
    bgp::Session session;
    std::optional<core::ParticipantId> participant;
    std::vector<std::uint8_t> out;  ///< bytes queued toward the peer
    std::size_t out_off = 0;
    bool want_write = false;
    bool shed = false;        ///< EPOLLIN dropped, queue full
    bool closing = false;     ///< close once `out` flushes
    bool counted = false;     ///< contributes to sessions_
    std::optional<IngestedUpdate> stalled;  ///< update the queue refused
  };

  void on_accept();
  void on_event(int fd, std::uint32_t events);
  void on_readable(Connection& c);
  void process_frames(Connection& c);
  /// Handles one session event; returns false when the connection died.
  bool handle_event(Connection& c, bgp::Session::Event ev);
  void flush_output(Connection& c);
  void update_interest(Connection& c);
  void close_connection(int fd);
  void tick();

  Reactor& reactor_;
  SpillQueue& queue_;
  Options options_;
  PeerResolver resolver_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t tick_timer_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::unordered_set<core::ParticipantId> seen_;

  std::atomic<std::size_t> sessions_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> updates_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> open_rejected_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> hold_expirations_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> wrap_copies_{0};
};

}  // namespace sdx::ingest
