#pragma once

/// \file framer.hpp
/// Incremental BGP-4 frame extraction over a connection's RingBuffer.
///
/// The framer is the state that makes partial TCP reads cheap: once the
/// first 18 bytes of a frame are visible it caches the wire length and
/// never re-scans the header on later reads — each poll either completes
/// the cached frame or waits for more bytes. A completed frame is handed
/// out as a span into the ring (zero-copy) unless it straddles the ring's
/// physical wrap point, in which case it is assembled once into a scratch
/// buffer owned by the framer.
///
/// Validation here is the minimum needed for framing (length within RFC
/// 4271 bounds); full marker/body validation stays in bgp::decode, so the
/// framer and the whole-buffer parser reject exactly the same streams —
/// a property the framing fuzz target (src/fuzz harness, "framer")
/// enforces against torn reads.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ingest/ring_buffer.hpp"

namespace sdx::ingest {

/// RFC 4271 framing bounds (mirrors src/bgp/wire.cpp).
inline constexpr std::size_t kBgpHeaderSize = 19;
inline constexpr std::size_t kBgpMaxMessageSize = 4096;
/// Offset of the 2-byte length field in the common header.
inline constexpr std::size_t kBgpLengthOffset = 16;

class WireFramer {
 public:
  enum class Status : std::uint8_t {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< \p frame holds one complete message
    kError,     ///< unrecoverable framing error (bad length)
  };

  explicit WireFramer(RingBuffer& ring) : ring_(ring) {}

  /// Extracts the next complete frame. The returned span stays valid until
  /// the next call to next() (which consumes the previous frame from the
  /// ring). After kError the stream is unframeable and the connection must
  /// be torn down; \p error carries the diagnostic.
  Status next(std::span<const std::uint8_t>& frame, std::string& error);

  /// Wire length of the frame currently being accumulated (0 = header not
  /// yet complete).
  std::size_t pending_frame_length() const { return frame_len_; }

  /// Frames yielded so far, and how many of them straddled the ring wrap
  /// (the only copies the framer ever makes).
  std::uint64_t frames() const { return frames_; }
  std::uint64_t wrap_copies() const { return wrap_copies_; }

 private:
  RingBuffer& ring_;
  std::size_t frame_len_ = 0;       ///< cached once 18 bytes are visible
  std::size_t pending_consume_ = 0; ///< bytes of the last yielded frame
  std::vector<std::uint8_t> scratch_;
  std::uint64_t frames_ = 0;
  std::uint64_t wrap_copies_ = 0;
};

}  // namespace sdx::ingest
