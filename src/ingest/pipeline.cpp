#include "ingest/pipeline.hpp"

#include <chrono>

namespace sdx::ingest {

IngestPipeline::IngestPipeline(core::SdxRuntime& rt, Options options)
    : rt_(rt), options_(options), queue_(options.queue) {
  auto& m = rt_.telemetry().metrics;
  sessions_ = &m.gauge("sdx_ingest_sessions",
                       "Established ingest BGP sessions");
  queue_depth_ = &m.gauge("sdx_ingest_queue_depth",
                          "Updates waiting in the ingest spill queue");
  bytes_total_ = &m.counter("sdx_ingest_bytes_total",
                            "Bytes received by the ingest reactor");
  updates_total_ = &m.counter("sdx_ingest_updates_total",
                              "UPDATEs decoded from ingest sessions");
  applied_ = &m.counter("sdx_ingest_applied_total",
                        "Ingested updates applied through the fast path");
  sheds_ = &m.counter("sdx_ingest_sheds_total",
                      "Read-interest sheds caused by queue backpressure");
  dropped_ = &m.counter("sdx_ingest_dropped_total",
                        "Updates dropped by the ingest path (held at 0)");
  reconnects_ = &m.counter("sdx_ingest_reconnects_total",
                           "BGP sessions automatically re-established");
  open_rejected_ = &m.counter("sdx_ingest_open_rejected_total",
                              "OPENs refused (no matching participant)");
  install_latency_ = &m.histogram(
      "sdx_ingest_install_latency_seconds",
      "Latency from ingest enqueue to fast-path install",
      telemetry::time_buckets());

  // Drain() (control thread) fires this; the actual re-arm must happen on
  // the reactor thread, so it is posted.
  queue_.set_space_callback([this](core::ParticipantId peer) {
    reactor_.post([this, peer] {
      if (listener_) listener_->resume_peer(peer);
    });
  });
}

IngestPipeline::~IngestPipeline() { stop(); }

std::uint16_t IngestPipeline::start(std::uint16_t port) {
  if (thread_.joinable()) return port_;
  by_asn_.clear();
  for (const auto& p : rt_.participants()) by_asn_.emplace(p.asn, p.id);
  listener_ = std::make_unique<BgpListener>(
      reactor_, queue_, options_.listener,
      [this](const bgp::OpenMessage& open)
          -> std::optional<core::ParticipantId> {
        auto it = by_asn_.find(open.my_as);
        if (it == by_asn_.end()) return std::nullopt;
        return it->second;
      });
  port_ = listener_->listen(port);
  reactor_.restart();
  thread_ = std::thread([this] { reactor_.run(); });
  return port_;
}

void IngestPipeline::stop() {
  if (!thread_.joinable()) return;
  reactor_.stop();
  thread_.join();
  listener_->close_all();
  refresh_metrics();
}

void IngestPipeline::apply(IngestedUpdate& u) {
  for (const auto prefix : u.update.withdrawn) {
    rt_.withdraw(u.participant, prefix);
  }
  if (u.update.attrs) {
    for (const auto prefix : u.update.nlri) {
      std::optional<net::AsPath> path;
      if (!u.update.attrs->as_path.empty()) path = u.update.attrs->as_path;
      rt_.announce(u.participant, prefix, std::move(path),
                   u.update.attrs->communities);
    }
  }
}

std::size_t IngestPipeline::drain() {
  batch_.clear();
  queue_.drain(options_.drain_batch, batch_);
  if (!batch_.empty()) {
    for (auto& u : batch_) apply(u);
    if (rt_.batching()) rt_.flush();
    const auto now = std::chrono::steady_clock::now();
    for (const auto& u : batch_) {
      install_latency_->observe(
          std::chrono::duration<double>(now - u.enqueued).count());
    }
    applied_->inc(batch_.size());
    applied_total_ += batch_.size();
  }
  refresh_metrics();
  return batch_.size();
}

std::size_t IngestPipeline::drain_until_idle() {
  std::size_t total = 0;
  for (;;) {
    const auto n = drain();
    if (n == 0) return total;
    total += n;
  }
}

void IngestPipeline::refresh_metrics() {
  queue_depth_->set(static_cast<double>(queue_.depth()));
  if (!listener_) return;
  sessions_->set(static_cast<double>(listener_->sessions()));
  // Counters are monotonic: publish the growth since the last sync.
  const auto sync = [](telemetry::Counter* c, std::uint64_t now_v,
                       std::uint64_t& last) {
    if (now_v > last) {
      c->inc(now_v - last);
      last = now_v;
    }
  };
  sync(bytes_total_, listener_->bytes_received(), synced_bytes_);
  sync(updates_total_, listener_->updates_received(), synced_updates_);
  sync(sheds_, queue_.shed_events(), synced_sheds_);
  sync(reconnects_, listener_->reconnects(), synced_reconnects_);
  sync(open_rejected_, listener_->open_rejected(), synced_rejected_);
  dropped_->inc(queue_.drops());  // contractually 0
}

}  // namespace sdx::ingest
