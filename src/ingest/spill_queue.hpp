#pragma once

/// \file spill_queue.hpp
/// The bounded spill queue between the ingest reactor and the control
/// thread's batched fast path — the backpressure point of the subsystem.
///
///   * Producers (socket handlers, the MRT replay source) push decoded
///     UPDATEs tagged with their peer. try_push() refuses when the global
///     bound or the peer's quota is hit; socket producers react by
///     shedding read interest (TCP backpressure reaches the sender),
///     push_blocking() producers wait on the drain condition. Nothing is
///     ever dropped — drops_ exists so tests and CI can assert it stays 0.
///
///   * The consumer drains with deficit round robin across peers: each
///     round gives every backlogged peer `drr_quantum` credits (plus its
///     carried deficit), so one noisy peer with a deep backlog cannot
///     starve quiet peers out of the batch — their updates ride the next
///     flush regardless of the noisy peer's depth.
///
/// Thread-safe (one mutex + condition variable); designed for one
/// producer thread (the reactor) plus blocking replay producers, and one
/// consumer (the control thread).

#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bgp/wire.hpp"
#include "sdx/participant.hpp"

namespace sdx::ingest {

/// One decoded UPDATE on its way from a session into the fast path.
struct IngestedUpdate {
  core::ParticipantId participant = 0;
  bgp::UpdateMessage update;
  /// Enqueue instant — the start of the ingest→install latency measure.
  std::chrono::steady_clock::time_point enqueued;
};

class SpillQueue {
 public:
  struct Options {
    std::size_t capacity = 65536;        ///< global bound (entries)
    std::size_t per_peer_quota = 16384;  ///< max entries one peer may hold
    std::size_t drr_quantum = 64;        ///< drain credits per peer, per round
  };

  SpillQueue() : SpillQueue(Options{}) {}
  explicit SpillQueue(Options options);

  /// Producer. Moves \p update in and returns true, or returns false —
  /// leaving \p update untouched — when the global bound or the peer quota
  /// is exhausted; the peer is marked blocked and will be reported through
  /// the space callback once drained below the half-full watermark.
  bool try_push(core::ParticipantId peer, IngestedUpdate& update);

  /// Producer, blocking flavor (MRT replay): waits for space instead of
  /// failing. Returns false only when \p give_up (checked on every wait
  /// wakeup) says to stop.
  bool push_blocking(core::ParticipantId peer, IngestedUpdate update,
                     const std::function<bool()>& give_up = {});

  /// Consumer: moves up to \p max entries into \p out using deficit round
  /// robin across backlogged peers. Fires the space callback (outside the
  /// lock) for every blocked peer that dropped below its watermark.
  std::size_t drain(std::size_t max, std::vector<IngestedUpdate>& out);

  /// Invoked from drain() — outside the lock — with each peer whose
  /// producers may resume after backpressure. The pipeline posts a
  /// read-interest re-arm to the reactor here.
  void set_space_callback(std::function<void(core::ParticipantId)> cb);

  std::size_t depth() const;
  std::size_t peer_depth(core::ParticipantId peer) const;
  bool blocked(core::ParticipantId peer) const;

  std::uint64_t pushed() const;
  std::uint64_t drained() const;
  /// try_push refusals (read-interest sheds), and entries actually lost
  /// (always 0 — the queue never drops; asserted by tests and CI).
  std::uint64_t shed_events() const;
  std::uint64_t drops() const { return 0; }

 private:
  struct Peer {
    std::deque<IngestedUpdate> q;
    std::size_t deficit = 0;
    bool blocked = false;
  };

  bool has_space_locked(const Peer& peer) const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;
  std::unordered_map<core::ParticipantId, Peer> peers_;
  /// Round-robin order over peers with backlog; rotated by drain().
  std::vector<core::ParticipantId> active_;
  std::size_t total_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t sheds_ = 0;
  std::function<void(core::ParticipantId)> space_cb_;
};

}  // namespace sdx::ingest
