#pragma once

/// \file reactor.hpp
/// The epoll event loop the ingest subsystem runs on: fd readiness
/// dispatch, monotonic-deadline timers (reconnect backoff, keepalive
/// ticks) and a cross-thread post queue backed by an eventfd wakeup.
///
/// Threading contract: add()/modify()/remove()/add_timer() and the
/// callbacks they install all run on the thread driving run()/run_once()
/// (the "reactor thread"). Other threads interact only through post(),
/// stop() and wakeup(), which are safe from anywhere — this is how the
/// control thread re-arms read interest after draining the spill queue
/// without racing the socket handlers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sdx::ingest {

class Reactor {
 public:
  /// Receives the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using FdHandler = std::function<void(std::uint32_t events)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers \p fd for \p events. The fd should be non-blocking; the
  /// handler may add/modify/remove fds (including its own) freely.
  void add(int fd, std::uint32_t events, FdHandler handler);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  std::size_t fd_count() const;

  /// One-shot deadline timer; returns an id usable with cancel_timer().
  std::uint64_t add_timer(double delay_seconds, std::function<void()> fn);
  void cancel_timer(std::uint64_t id);

  /// Runs one poll iteration: waits up to \p timeout_ms (-1 = until the
  /// next timer or wakeup), dispatches ready fds, fires due timers and
  /// posted tasks. Returns the number of fd events dispatched.
  int run_once(int timeout_ms = -1);

  /// Loops run_once() until stop().
  void run();

  /// Thread-safe: makes run() return after the current iteration.
  void stop();
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Clears a previous stop() so run() can be entered again. Call before
  /// relaunching the reactor thread (asio-style restart), never while
  /// run() is still in flight.
  void restart();

  /// Thread-safe: enqueues \p fn for execution on the reactor thread and
  /// wakes the poll.
  void post(std::function<void()> fn);

  /// Thread-safe: interrupts a blocking run_once().
  void wakeup();

 private:
  using Clock = std::chrono::steady_clock;

  struct Timer {
    std::uint64_t id = 0;
    Clock::time_point deadline;
    std::function<void()> fn;
  };

  int next_timeout_ms(int requested) const;
  void drain_wakeup();
  void fire_due_timers();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};

  /// Handlers live behind shared_ptr so a handler that removes itself (or
  /// another fd) mid-dispatch cannot free the closure it is running in.
  mutable std::mutex mu_;
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  std::vector<Timer> timers_;  ///< unsorted; scanned (small populations)
  std::uint64_t next_timer_id_ = 1;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace sdx::ingest
