#include "ingest/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <vector>

#include "bgp/wire.hpp"

namespace sdx::ingest {

namespace {

// RFC 4271 notification codes used by the framing/accept layer.
constexpr std::uint8_t kErrMessageHeader = 1;
constexpr std::uint8_t kErrUpdate = 3;
constexpr std::uint8_t kErrCease = 6;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

BgpListener::BgpListener(Reactor& reactor, SpillQueue& queue, Options options,
                         PeerResolver resolver)
    : reactor_(reactor),
      queue_(queue),
      options_(options),
      resolver_(std::move(resolver)) {
  if (options_.ring_capacity < 2 * kBgpMaxMessageSize) {
    options_.ring_capacity = 2 * kBgpMaxMessageSize;
  }
}

BgpListener::~BgpListener() { close_all(); }

std::uint16_t BgpListener::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  reactor_.add(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_accept(); });
  if (options_.hold_time > 0) {
    tick_timer_ = reactor_.add_timer(options_.tick_seconds,
                                     [this] { tick(); });
  }
  return port_;
}

void BgpListener::close_all() {
  if (tick_timer_ != 0) {
    reactor_.cancel_timer(tick_timer_);
    tick_timer_ = 0;
  }
  if (listen_fd_ >= 0) {
    reactor_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [fd, c] : connections_) {
    reactor_.remove(fd);
    ::close(fd);
    if (c->counted) sessions_.fetch_sub(1);
  }
  connections_.clear();
}

void BgpListener::on_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      return;  // transient accept failure; the listener stays up
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>(
        fd, options_.ring_capacity,
        bgp::Session::Config{options_.server_asn, options_.server_id,
                             options_.hold_time});
    conn->session.start();
    accepted_.fetch_add(1);
    auto& ref = *conn;
    connections_.emplace(fd, std::move(conn));
    reactor_.add(fd, EPOLLIN,
                 [this, fd](std::uint32_t events) { on_event(fd, events); });
    flush_output(ref);
  }
}

void BgpListener::on_event(int fd, std::uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_connection(fd);
    return;
  }
  if (events & EPOLLOUT) {
    flush_output(c);
    if (connections_.find(fd) == connections_.end()) return;
  }
  if (events & EPOLLIN) on_readable(c);
}

void BgpListener::on_readable(Connection& c) {
  const int fd = c.fd;
  for (;;) {
    auto span = c.ring.write_span();
    if (span.empty()) {
      // Ring full of unprocessed frames (only possible under shed).
      break;
    }
    const ssize_t n = ::recv(fd, span.data(), span.size(), 0);
    if (n > 0) {
      c.ring.commit(static_cast<std::size_t>(n));
      bytes_.fetch_add(static_cast<std::uint64_t>(n));
      process_frames(c);
      if (connections_.find(fd) == connections_.end()) return;  // died
      if (c.shed) {
        update_interest(c);
        return;
      }
      continue;
    }
    if (n == 0) {
      close_connection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }
}

void BgpListener::process_frames(Connection& c) {
  const int fd = c.fd;
  while (!c.shed && !c.closing) {
    // A previously refused update must land before any newer frame.
    if (c.stalled) {
      if (queue_.try_push(c.stalled->participant, *c.stalled)) {
        c.stalled.reset();
      } else {
        c.shed = true;
        break;
      }
    }
    std::span<const std::uint8_t> frame;
    std::string error;
    const auto status = c.framer.next(frame, error);
    if (status == WireFramer::Status::kNeedMore) break;
    if (status == WireFramer::Status::kError) {
      c.session.abort_session(kErrMessageHeader, /*bad length*/ 2);
      c.closing = true;
      break;
    }
    frames_.fetch_add(1);
    auto result = bgp::decode(frame);
    if (!result.ok()) {
      const std::uint8_t code =
          result.error.find("attribute") != std::string::npos ||
                  result.error.find("NLRI") != std::string::npos
              ? kErrUpdate
              : kErrMessageHeader;
      c.session.abort_session(code, 0);
      c.closing = true;
      break;
    }
    if (auto ev = c.session.process(std::move(*result.message))) {
      if (!handle_event(c, std::move(*ev))) {
        if (connections_.find(fd) == connections_.end()) return;
        break;
      }
    }
  }
  // Pump any queued replies (keepalives, notifications).
  flush_output(c);
}

bool BgpListener::handle_event(Connection& c, bgp::Session::Event ev) {
  using Kind = bgp::Session::Event::Kind;
  switch (ev.kind) {
    case Kind::kEstablished: {
      const auto& open = c.session.peer_open();
      std::optional<core::ParticipantId> pid;
      if (open && resolver_) pid = resolver_(*open);
      if (!pid) {
        open_rejected_.fetch_add(1);
        c.session.abort_session(kErrCease, 0);
        c.closing = true;
        return false;
      }
      c.participant = pid;
      c.counted = true;
      sessions_.fetch_add(1);
      if (!seen_.insert(*pid).second) reconnects_.fetch_add(1);
      return true;
    }
    case Kind::kUpdate: {
      if (!c.participant) return true;  // pre-resolve updates impossible
      updates_.fetch_add(1);
      IngestedUpdate u;
      u.participant = *c.participant;
      u.update = std::move(ev.update);
      u.enqueued = std::chrono::steady_clock::now();
      if (!queue_.try_push(u.participant, u)) {
        // Queue full: stash the refused update and shed read interest
        // until the drain frees space (resume_peer).
        c.stalled = std::move(u);
        c.shed = true;
      }
      return true;
    }
    case Kind::kNotificationReceived:
      // Peer closed the session; nothing of ours is owed to the wire.
      close_connection(c.fd);
      return false;
    case Kind::kClosed:
      // The FSM queued a NOTIFICATION — flush it before tearing down.
      c.closing = true;
      return false;
  }
  return true;
}

void BgpListener::flush_output(Connection& c) {
  const int fd = c.fd;
  auto fresh = c.session.take_output();
  if (!fresh.empty()) {
    c.out.insert(c.out.end(), fresh.begin(), fresh.end());
  }
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_connection(fd);
    return;
  }
  if (c.out_off >= c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    if (c.closing) {
      close_connection(fd);
      return;
    }
  }
  update_interest(c);
}

void BgpListener::update_interest(Connection& c) {
  std::uint32_t events = 0;
  if (!c.shed && !c.closing) events |= EPOLLIN;
  const bool want_write = c.out_off < c.out.size();
  if (want_write) events |= EPOLLOUT;
  reactor_.modify(c.fd, events);
  c.want_write = want_write;
}

void BgpListener::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  wrap_copies_.fetch_add(c.framer.wrap_copies());
  if (c.counted) sessions_.fetch_sub(1);
  closed_.fetch_add(1);
  reactor_.remove(fd);
  ::close(fd);
  connections_.erase(it);
}

void BgpListener::resume_peer(core::ParticipantId peer) {
  // process_frames/update_interest can close connections (erasing map
  // entries), so snapshot the candidate fds before touching any of them.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) {
    if (conn->shed && conn->participant == peer) fds.push_back(fd);
  }
  for (int fd : fds) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& c = *it->second;
    c.shed = false;
    process_frames(c);
    if (connections_.find(fd) == connections_.end()) continue;
    if (!c.shed) update_interest(c);
  }
}

void BgpListener::tick() {
  // flush_output can close connections; iterate over a snapshot of fds.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& c = *it->second;
    auto events = c.session.advance_clock(options_.tick_seconds);
    bool dead = false;
    for (auto& ev : events) {
      if (ev.kind == bgp::Session::Event::Kind::kClosed) {
        hold_expirations_.fetch_add(1);
        dead = true;
      }
    }
    // Even a dying session flushes first: the hold-timer NOTIFICATION is
    // queued in its out buffer and should reach the peer.
    flush_output(c);
    if (dead && connections_.find(fd) != connections_.end()) {
      close_connection(fd);
    }
  }
  if (tick_timer_ != 0) {
    tick_timer_ = reactor_.add_timer(options_.tick_seconds,
                                     [this] { tick(); });
  }
}

}  // namespace sdx::ingest
