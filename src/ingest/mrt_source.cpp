#include "ingest/mrt_source.hpp"

#include <chrono>
#include <istream>
#include <thread>
#include <unordered_map>
#include <variant>

namespace sdx::ingest {

namespace {

/// Recorded pacing: sleep out the gap between consecutive record
/// timestamps, scaled. Bounded per step so a trace with a bogus jump
/// (clock reset at the collector) cannot stall the replay for hours.
void pace(std::uint32_t prev_ts, std::uint32_t ts, double time_scale) {
  if (ts <= prev_ts) return;
  const double gap = static_cast<double>(ts - prev_ts) /
                     (time_scale > 0 ? time_scale : 1.0);
  constexpr double kMaxStepSeconds = 10.0;
  const double bounded = gap < kMaxStepSeconds ? gap : kMaxStepSeconds;
  std::this_thread::sleep_for(std::chrono::duration<double>(bounded));
}

}  // namespace

MrtReplaySource::Result MrtReplaySource::replay_trace(
    std::istream& is, SpillQueue& queue,
    const std::function<bool()>& give_up) {
  Result result;
  bgp::MrtRecord record;
  std::string error;
  std::optional<std::uint32_t> prev_ts;
  for (;;) {
    if (give_up && give_up()) {
      result.gave_up = true;
      return result;
    }
    const auto status = bgp::read_record(is, record, &error);
    if (status == bgp::MrtReadStatus::kEof) return result;
    if (status != bgp::MrtReadStatus::kOk) {
      result.tail = status;
      result.error = std::move(error);
      return result;
    }
    ++result.records;
    if (record.type != bgp::kMrtTypeBgp4mp ||
        record.subtype != bgp::kMrtSubtypeBgp4mpMessageAs4) {
      ++result.skipped;
      continue;
    }
    bgp::Bgp4mpMessage msg;
    try {
      msg = bgp::decode_bgp4mp(record);
    } catch (const std::exception& e) {
      result.tail = bgp::MrtReadStatus::kCorrupt;
      result.error = e.what();
      return result;
    }
    auto* update = std::get_if<bgp::UpdateMessage>(&msg.message);
    if (update == nullptr) {
      ++result.skipped;  // session chatter (OPEN/KEEPALIVE/NOTIFICATION)
      continue;
    }
    const auto participant = mapper_ ? mapper_(msg.peer_as, msg.peer_ip)
                                     : std::nullopt;
    if (!participant) {
      ++result.skipped;
      continue;
    }
    if (options_.pacing == Pacing::kRecorded) {
      if (prev_ts) pace(*prev_ts, record.timestamp, options_.time_scale);
      prev_ts = record.timestamp;
    }
    IngestedUpdate u;
    u.participant = *participant;
    u.update = std::move(*update);
    u.enqueued = std::chrono::steady_clock::now();
    if (!queue.push_blocking(*participant, std::move(u), give_up)) {
      result.gave_up = true;
      return result;
    }
    ++result.updates;
  }
}

MrtReplaySource::Result MrtReplaySource::replay_rib(
    std::istream& is, SpillQueue& queue,
    const std::function<bool()>& give_up) {
  Result result;
  // Dump peer id -> participant, resolved once from the peer index.
  std::unordered_map<core::ParticipantId, core::ParticipantId> mapped;
  bool stop = false;
  auto rib = bgp::read_rib_dump_stream(
      is,
      [&](const bgp::RouteServer::Peer& peer) {
        const auto participant =
            mapper_ ? mapper_(peer.asn, peer.router_id) : std::nullopt;
        if (participant) mapped.emplace(peer.id, *participant);
      },
      [&](bgp::Route route) {
        if (stop) return;
        if (give_up && give_up()) {
          stop = true;
          result.gave_up = true;
          return;
        }
        auto it = mapped.find(route.learned_from);
        if (it == mapped.end()) {
          ++result.skipped;
          return;
        }
        IngestedUpdate u;
        u.participant = it->second;
        u.update.attrs = std::move(route.attrs);
        u.update.nlri.push_back(route.prefix);
        u.enqueued = std::chrono::steady_clock::now();
        if (!queue.push_blocking(it->second, std::move(u), give_up)) {
          stop = true;
          result.gave_up = true;
          return;
        }
        ++result.updates;
      });
  result.records = rib.records;
  if (!rib.ok()) {
    result.tail = rib.tail;
    result.error = std::move(rib.error);
  }
  return result;
}

}  // namespace sdx::ingest
