#pragma once

/// \file wire.hpp
/// BGP-4 message codec (RFC 4271 framing and the path attributes the SDX
/// consumes). The route server in the paper is built on ExaBGP; this codec
/// is our stand-in for that substrate: it lets the repository speak real
/// BGP framing in tests and keeps the session layer honest.
///
/// Simplification (documented): the codec always operates in 4-octet-AS
/// mode (RFC 6793 negotiated), so AS_PATH segments carry 32-bit ASNs and
/// OPEN carries AS_TRANS when the ASN does not fit in 16 bits.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "bgp/route.hpp"

namespace sdx::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

/// RFC 4271 §4.2. Optional parameters are carried opaquely.
struct OpenMessage {
  std::uint8_t version = 4;
  Asn my_as = 0;  ///< encoded as AS_TRANS (23456) in the 16-bit field if wide
  std::uint16_t hold_time = 90;
  Ipv4Address bgp_id;
  std::vector<std::uint8_t> opt_params;

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

/// RFC 4271 §4.3. One attribute set shared by all NLRI, as on the wire.
struct UpdateMessage {
  std::vector<Ipv4Prefix> withdrawn;
  std::optional<RouteAttributes> attrs;  ///< absent for pure withdrawals
  std::vector<Ipv4Prefix> nlri;

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

struct NotificationMessage {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  friend bool operator==(const NotificationMessage&,
                         const NotificationMessage&) = default;
};

struct KeepaliveMessage {
  friend bool operator==(const KeepaliveMessage&,
                         const KeepaliveMessage&) = default;
};

using Message =
    std::variant<OpenMessage, UpdateMessage, NotificationMessage,
                 KeepaliveMessage>;

/// The 16-bit AS number that stands for a 4-octet ASN in OPEN (RFC 6793).
inline constexpr std::uint16_t kAsTrans = 23456;

/// Serializes a message including the 19-byte common header.
std::vector<std::uint8_t> encode(const Message& msg);

/// Result of decoding: either a message or a diagnostic.
struct DecodeResult {
  std::optional<Message> message;
  std::size_t bytes_consumed = 0;
  std::string error;  ///< non-empty on failure

  bool ok() const { return message.has_value(); }
};

/// Decodes one message from the front of \p bytes. Validates the marker,
/// length bounds, attribute flags and NLRI framing.
DecodeResult decode(std::span<const std::uint8_t> bytes);

/// Serializes a path-attribute block (without the 2-byte length prefix) —
/// shared by UPDATE bodies and TABLE_DUMP_V2 RIB entries.
std::vector<std::uint8_t> encode_path_attributes(const RouteAttributes& a);

/// Parses a complete path-attribute block. Returns false and sets \p error
/// on malformed input.
bool decode_path_attributes(std::span<const std::uint8_t> bytes,
                            RouteAttributes& out, std::string& error);

}  // namespace sdx::bgp
