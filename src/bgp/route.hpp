#pragma once

/// \file route.hpp
/// BGP route model: path attributes and learned routes.
///
/// The SDX route server (paper §3.2) collects one route per (peer, prefix),
/// runs the BGP decision process per participant, and exposes both the best
/// route and the full set of feasible exported routes to the policy compiler.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netbase/as_path.hpp"
#include "netbase/ip.hpp"

namespace sdx::bgp {

using net::AsPath;
using net::Asn;
using net::Ipv4Address;
using net::Ipv4Prefix;

/// Identifies an SDX participant (an AS connected to the route server).
using ParticipantId = std::uint32_t;

/// RFC 4271 ORIGIN attribute values (lower is preferred).
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

std::string_view origin_name(Origin o);

/// A BGP community value (RFC 1997), e.g. 0xFFFFFF01 = NO_EXPORT.
using Community = std::uint32_t;

/// Builds a community from its conventional "asn:value" notation.
constexpr Community make_community(std::uint16_t high, std::uint16_t low) {
  return (static_cast<Community>(high) << 16) | low;
}

/// RFC 1997 well-known communities.
inline constexpr Community kNoExport = 0xFFFFFF01;     ///< 65535:65281
inline constexpr Community kNoAdvertise = 0xFFFFFF02;  ///< 65535:65282

/// The default LOCAL_PREF applied when the attribute is absent.
inline constexpr std::uint32_t kDefaultLocalPref = 100;

/// The path attributes carried in an UPDATE (the subset the SDX uses).
struct RouteAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  Ipv4Address next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  std::vector<Community> communities;

  std::uint32_t effective_local_pref() const {
    return local_pref.value_or(kDefaultLocalPref);
  }

  friend bool operator==(const RouteAttributes&,
                         const RouteAttributes&) = default;
};

/// A route as known by the route server: prefix + attributes + provenance
/// (which peer session it was learned over, for loop prevention and
/// tie-breaking).
struct Route {
  Ipv4Prefix prefix;
  RouteAttributes attrs;
  ParticipantId learned_from = 0;    ///< advertising SDX participant
  Ipv4Address peer_router_id;        ///< BGP identifier of that peer

  /// The neighboring AS the route points at (first AS of the path).
  Asn neighbor_as() const {
    return attrs.as_path.empty() ? 0 : attrs.as_path.first();
  }

  std::string to_string() const;

  friend bool operator==(const Route&, const Route&) = default;
};

std::ostream& operator<<(std::ostream& os, const Route& r);

}  // namespace sdx::bgp
