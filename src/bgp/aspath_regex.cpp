#include "bgp/aspath_regex.hpp"

#include <regex>

namespace sdx::bgp {

struct AsPathFilter::Impl {
  std::regex re;
};

AsPathFilter::AsPathFilter(const std::string& pattern)
    : pattern_(pattern),
      impl_(std::make_unique<Impl>(
          Impl{std::regex(pattern, std::regex::ECMAScript |
                                       std::regex::optimize)})) {}

AsPathFilter::~AsPathFilter() = default;
AsPathFilter::AsPathFilter(AsPathFilter&&) noexcept = default;
AsPathFilter& AsPathFilter::operator=(AsPathFilter&&) noexcept = default;

AsPathFilter AsPathFilter::originated_by(Asn origin) {
  // Anchored on the token boundary: "(^| )<asn>$".
  return AsPathFilter("(^|.* )" + std::to_string(origin) + "$");
}

AsPathFilter AsPathFilter::traverses(Asn asn) {
  return AsPathFilter("(^|.* )" + std::to_string(asn) + "( .*|$)");
}

bool AsPathFilter::matches(const net::AsPath& path) const {
  return std::regex_match(path.to_string(), impl_->re);
}

std::vector<Ipv4Prefix> filter_rib(const RouteServer& server,
                                   ParticipantId viewer,
                                   const AsPathFilter& filter) {
  return server.filter_prefixes(viewer, [&filter](const Route& r) {
    return filter.matches(r.attrs.as_path);
  });
}

}  // namespace sdx::bgp
