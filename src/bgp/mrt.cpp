#include "bgp/mrt.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace sdx::bgp {

namespace {

constexpr std::size_t kMaxRecordBody = 1u << 24;
constexpr std::uint16_t kAfiIpv4 = 1;

class BodyWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void prefix(Ipv4Prefix p) {
    u8(static_cast<std::uint8_t>(p.length()));
    const std::uint32_t net = p.network().value();
    for (int i = 0; i < (p.length() + 7) / 8; ++i) {
      u8(static_cast<std::uint8_t>(net >> (24 - 8 * i)));
    }
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class BodyReader {
 public:
  explicit BodyReader(const std::vector<std::uint8_t>& data) : data_(data) {}

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const auto a = u8();
    return static_cast<std::uint16_t>((a << 8) | u8());
  }
  std::uint32_t u32() {
    const auto a = u16();
    return (static_cast<std::uint32_t>(a) << 16) | u16();
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    require(n);
    std::vector<std::uint8_t> out(
        data_.begin() + static_cast<std::ptrdiff_t>(pos_),
        data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  Ipv4Prefix prefix() {
    const int len = u8();
    if (len > 32) throw std::runtime_error("MRT: bad prefix length");
    std::uint32_t net = 0;
    for (int i = 0; i < (len + 7) / 8; ++i) {
      net |= static_cast<std::uint32_t>(u8()) << (24 - 8 * i);
    }
    return Ipv4Prefix(Ipv4Address(net), len);
  }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::runtime_error("MRT: truncated record body");
    }
  }
  const std::vector<std::uint8_t>& data_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_record(std::ostream& os, const MrtRecord& record) {
  BodyWriter header;
  header.u32(record.timestamp);
  header.u16(record.type);
  header.u16(record.subtype);
  header.u32(static_cast<std::uint32_t>(record.body.size()));
  auto hdr = header.take();
  os.write(reinterpret_cast<const char*>(hdr.data()),
           static_cast<std::streamsize>(hdr.size()));
  os.write(reinterpret_cast<const char*>(record.body.data()),
           static_cast<std::streamsize>(record.body.size()));
}

std::string_view to_string(MrtReadStatus status) {
  switch (status) {
    case MrtReadStatus::kOk: return "ok";
    case MrtReadStatus::kEof: return "eof";
    case MrtReadStatus::kTruncated: return "truncated";
    case MrtReadStatus::kOversized: return "oversized";
    case MrtReadStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

MrtReadStatus read_record(std::istream& is, MrtRecord& out,
                          std::string* error) {
  const auto fail = [&](MrtReadStatus status, std::string what) {
    if (error != nullptr) *error = std::move(what);
    return status;
  };
  std::uint8_t header[12];
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  if (is.gcount() == 0 && is.eof()) return MrtReadStatus::kEof;
  if (is.gcount() != sizeof(header)) {
    return fail(MrtReadStatus::kTruncated,
                "MRT: truncated record header (" +
                    std::to_string(is.gcount()) + " of 12 bytes)");
  }
  out.timestamp = (std::uint32_t{header[0]} << 24) |
                  (std::uint32_t{header[1]} << 16) |
                  (std::uint32_t{header[2]} << 8) | header[3];
  out.type = static_cast<std::uint16_t>((header[4] << 8) | header[5]);
  out.subtype = static_cast<std::uint16_t>((header[6] << 8) | header[7]);
  const std::uint32_t length = (std::uint32_t{header[8]} << 24) |
                               (std::uint32_t{header[9]} << 16) |
                               (std::uint32_t{header[10]} << 8) | header[11];
  if (length > kMaxRecordBody) {
    return fail(MrtReadStatus::kOversized,
                "MRT: oversized record (" + std::to_string(length) +
                    " bytes)");
  }
  out.body.resize(length);
  is.read(reinterpret_cast<char*>(out.body.data()), length);
  if (is.gcount() != static_cast<std::streamsize>(length)) {
    return fail(MrtReadStatus::kTruncated,
                "MRT: truncated record body (" + std::to_string(is.gcount()) +
                    " of " + std::to_string(length) + " bytes)");
  }
  return MrtReadStatus::kOk;
}

std::optional<MrtRecord> read_record(std::istream& is) {
  MrtRecord record;
  std::string error;
  switch (read_record(is, record, &error)) {
    case MrtReadStatus::kOk: return record;
    case MrtReadStatus::kEof: return std::nullopt;
    default: throw std::runtime_error(error);
  }
}

MrtRecord encode_bgp4mp(std::uint32_t timestamp, const Bgp4mpMessage& msg) {
  BodyWriter w;
  w.u32(msg.peer_as);
  w.u32(msg.local_as);
  w.u16(msg.ifindex);
  w.u16(kAfiIpv4);
  w.u32(msg.peer_ip.value());
  w.u32(msg.local_ip.value());
  w.bytes(encode(msg.message));
  MrtRecord record;
  record.timestamp = timestamp;
  record.type = kMrtTypeBgp4mp;
  record.subtype = kMrtSubtypeBgp4mpMessageAs4;
  record.body = w.take();
  return record;
}

Bgp4mpMessage decode_bgp4mp(const MrtRecord& record) {
  if (record.type != kMrtTypeBgp4mp ||
      record.subtype != kMrtSubtypeBgp4mpMessageAs4) {
    throw std::runtime_error("MRT: not a BGP4MP_MESSAGE_AS4 record");
  }
  BodyReader r(record.body);
  Bgp4mpMessage out;
  out.peer_as = r.u32();
  out.local_as = r.u32();
  out.ifindex = r.u16();
  const std::uint16_t afi = r.u16();
  if (afi != kAfiIpv4) {
    throw std::runtime_error("MRT: unsupported AFI " + std::to_string(afi));
  }
  out.peer_ip = Ipv4Address(r.u32());
  out.local_ip = Ipv4Address(r.u32());
  auto message_bytes = r.bytes(r.remaining());
  auto result = decode(message_bytes);
  if (!result.ok()) {
    throw std::runtime_error("MRT: embedded BGP message: " + result.error);
  }
  out.message = std::move(*result.message);
  return out;
}

std::size_t write_rib_dump(std::ostream& os, const RouteServer& server,
                           std::uint32_t timestamp,
                           const std::string& view_name) {
  // PEER_INDEX_TABLE.
  const auto& peers = server.peers();
  {
    BodyWriter w;
    w.u32(0);  // collector BGP id
    w.u16(static_cast<std::uint16_t>(view_name.size()));
    for (char c : view_name) w.u8(static_cast<std::uint8_t>(c));
    w.u16(static_cast<std::uint16_t>(peers.size()));
    for (const auto& p : peers) {
      w.u8(0x02);  // IPv4 address, 4-byte AS
      w.u32(p.router_id.value());
      w.u32(p.router_id.value());  // peer address (same at the IXP LAN)
      w.u32(p.asn);
    }
    MrtRecord record;
    record.timestamp = timestamp;
    record.type = kMrtTypeTableDumpV2;
    record.subtype = kMrtSubtypePeerIndexTable;
    record.body = w.take();
    write_record(os, record);
  }

  // One RIB_IPV4_UNICAST record per prefix, entries = candidates.
  std::map<ParticipantId, std::uint16_t> peer_index;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    peer_index[peers[i].id] = static_cast<std::uint16_t>(i);
  }
  std::size_t records = 1;
  std::uint32_t sequence = 0;
  for (auto prefix : server.all_prefixes()) {
    const auto* candidates = server.candidates(prefix);
    if (candidates == nullptr) continue;
    BodyWriter w;
    w.u32(sequence++);
    w.prefix(prefix);
    w.u16(static_cast<std::uint16_t>(candidates->size()));
    for (const auto& route : *candidates) {
      w.u16(peer_index.at(route.learned_from));
      w.u32(timestamp);  // originated time
      auto attrs = encode_path_attributes(route.attrs);
      w.u16(static_cast<std::uint16_t>(attrs.size()));
      w.bytes(attrs);
    }
    MrtRecord record;
    record.timestamp = timestamp;
    record.type = kMrtTypeTableDumpV2;
    record.subtype = kMrtSubtypeRibIpv4Unicast;
    record.body = w.take();
    write_record(os, record);
    ++records;
  }
  return records;
}

RibDumpResult read_rib_dump_stream(
    std::istream& is,
    const std::function<void(const RouteServer::Peer&)>& on_peer,
    const std::function<void(Route)>& on_route) {
  RibDumpResult result;
  const auto corrupt = [&](std::string what) {
    result.tail = MrtReadStatus::kCorrupt;
    result.error = std::move(what);
    return result;
  };

  MrtRecord record;
  std::string error;
  auto status = read_record(is, record, &error);
  if (status != MrtReadStatus::kOk) {
    // An empty stream is not a RIB dump; truncated framing keeps its
    // own status so callers can tell a torn tail from garbage.
    if (status == MrtReadStatus::kEof) {
      return corrupt("MRT: expected PEER_INDEX_TABLE first");
    }
    result.tail = status;
    result.error = std::move(error);
    return result;
  }
  if (record.type != kMrtTypeTableDumpV2 ||
      record.subtype != kMrtSubtypePeerIndexTable) {
    return corrupt("MRT: expected PEER_INDEX_TABLE first");
  }
  ++result.records;

  std::vector<RouteServer::Peer> peers;
  try {
    BodyReader r(record.body);
    r.u32();  // collector id
    const std::uint16_t name_len = r.u16();
    r.bytes(name_len);
    const std::uint16_t n_peers = r.u16();
    for (std::uint16_t i = 0; i < n_peers; ++i) {
      const std::uint8_t peer_type = r.u8();
      if (peer_type != 0x02) {
        return corrupt("MRT: unsupported peer entry type");
      }
      RouteServer::Peer peer;
      peer.router_id = Ipv4Address(r.u32());
      r.u32();  // peer address
      peer.asn = r.u32();
      peer.id = static_cast<ParticipantId>(i + 1);
      peers.push_back(peer);
    }
  } catch (const std::exception& e) {
    return corrupt(e.what());
  }
  if (on_peer) {
    for (const auto& peer : peers) on_peer(peer);
  }

  for (;;) {
    status = read_record(is, record, &error);
    if (status == MrtReadStatus::kEof) break;
    if (status != MrtReadStatus::kOk) {
      result.tail = status;
      result.error = std::move(error);
      return result;
    }
    if (record.type != kMrtTypeTableDumpV2 ||
        record.subtype != kMrtSubtypeRibIpv4Unicast) {
      return corrupt("MRT: unexpected record in RIB dump");
    }
    ++result.records;
    try {
      BodyReader r(record.body);
      r.u32();  // sequence
      const Ipv4Prefix prefix = r.prefix();
      const std::uint16_t n_entries = r.u16();
      for (std::uint16_t e = 0; e < n_entries; ++e) {
        const std::uint16_t idx = r.u16();
        if (idx >= peers.size()) {
          return corrupt("MRT: RIB entry references unknown peer");
        }
        r.u32();  // originated time
        const std::uint16_t attr_len = r.u16();
        auto attr_bytes = r.bytes(attr_len);
        Route route;
        route.prefix = prefix;
        std::string attr_error;
        if (!decode_path_attributes(attr_bytes, route.attrs, attr_error)) {
          return corrupt("MRT: RIB entry attributes: " + attr_error);
        }
        route.learned_from = peers[idx].id;
        route.peer_router_id = peers[idx].router_id;
        ++result.routes;
        if (on_route) on_route(std::move(route));
      }
    } catch (const std::exception& e) {
      return corrupt(e.what());
    }
  }
  return result;
}

RibDump read_rib_dump(std::istream& is) {
  RibDump dump;
  auto result = read_rib_dump_stream(
      is, [&](const RouteServer::Peer& p) { dump.peers.push_back(p); },
      [&](Route route) { dump.routes.push_back(std::move(route)); });
  if (!result.ok()) throw std::runtime_error(result.error);
  return dump;
}

}  // namespace sdx::bgp
