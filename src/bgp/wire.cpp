#include "bgp/wire.hpp"

#include <algorithm>
#include <cstring>

namespace sdx::bgp {

namespace {

// --- attribute type codes (RFC 4271 / RFC 1997) ---
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrCommunities = 8;

// --- attribute flag bits ---
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// --- AS_PATH segment types ---
constexpr std::uint8_t kSegmentSet = 1;
constexpr std::uint8_t kSegmentSequence = 2;

constexpr std::size_t kHeaderSize = 19;
constexpr std::size_t kMaxMessageSize = 4096;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Writes an NLRI-encoded prefix: length byte + ceil(len/8) octets.
  void prefix(Ipv4Prefix p) {
    u8(static_cast<std::uint8_t>(p.length()));
    const std::uint32_t net = p.network().value();
    const int octets = (p.length() + 7) / 8;
    for (int i = 0; i < octets; ++i) {
      u8(static_cast<std::uint8_t>(net >> (24 - 8 * i)));
    }
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

void write_attr(Writer& w, std::uint8_t flags, std::uint8_t type,
                const std::vector<std::uint8_t>& body) {
  const bool extended = body.size() > 255;
  w.u8(static_cast<std::uint8_t>(flags | (extended ? kFlagExtendedLength : 0)));
  w.u8(type);
  if (extended) {
    w.u16(static_cast<std::uint16_t>(body.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(body.size()));
  }
  w.bytes(body);
}

std::vector<std::uint8_t> encode_attributes(const RouteAttributes& attrs) {
  Writer w;
  // ORIGIN — well-known mandatory.
  write_attr(w, kFlagTransitive, kAttrOrigin,
             {static_cast<std::uint8_t>(attrs.origin)});
  // AS_PATH — well-known mandatory; 4-octet ASNs, segments of ≤255 ASNs.
  {
    Writer body;
    const auto& asns = attrs.as_path.asns();
    std::size_t i = 0;
    while (i < asns.size()) {
      const std::size_t n = std::min<std::size_t>(asns.size() - i, 255);
      body.u8(kSegmentSequence);
      body.u8(static_cast<std::uint8_t>(n));
      for (std::size_t k = 0; k < n; ++k) body.u32(asns[i + k]);
      i += n;
    }
    write_attr(w, kFlagTransitive, kAttrAsPath, body.take());
  }
  // NEXT_HOP — well-known mandatory.
  {
    Writer body;
    body.u32(attrs.next_hop.value());
    write_attr(w, kFlagTransitive, kAttrNextHop, body.take());
  }
  if (attrs.med) {
    Writer body;
    body.u32(*attrs.med);
    write_attr(w, kFlagOptional, kAttrMed, body.take());
  }
  if (attrs.local_pref) {
    Writer body;
    body.u32(*attrs.local_pref);
    write_attr(w, kFlagTransitive, kAttrLocalPref, body.take());
  }
  if (!attrs.communities.empty()) {
    Writer body;
    for (auto c : attrs.communities) body.u32(c);
    write_attr(w, kFlagOptional | kFlagTransitive, kAttrCommunities,
               body.take());
  }
  return w.take();
}

std::vector<std::uint8_t> frame(MessageType type,
                                std::vector<std::uint8_t> body) {
  Writer w;
  for (int i = 0; i < 16; ++i) w.u8(0xFF);  // marker
  w.u16(static_cast<std::uint16_t>(kHeaderSize + body.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(body);
  return w.take();
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ >= data_.size()) return false;
    v = data_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t a, b;
    if (!u8(a) || !u8(b)) return false;
    v = static_cast<std::uint16_t>((a << 8) | b);
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t a, b;
    if (!u16(a) || !u16(b)) return false;
    v = (static_cast<std::uint32_t>(a) << 16) | b;
    return true;
  }
  bool bytes(std::size_t n, std::vector<std::uint8_t>& out) {
    if (pos_ + n > data_.size()) return false;
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool prefix(Ipv4Prefix& p) {
    std::uint8_t len;
    if (!u8(len) || len > 32) return false;
    const int octets = (len + 7) / 8;
    std::uint32_t net = 0;
    for (int i = 0; i < octets; ++i) {
      std::uint8_t b;
      if (!u8(b)) return false;
      net |= static_cast<std::uint32_t>(b) << (24 - 8 * i);
    }
    p = Ipv4Prefix(Ipv4Address(net), len);
    return true;
  }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

DecodeResult fail(std::string why, std::size_t consumed = 0) {
  return DecodeResult{std::nullopt, consumed, std::move(why)};
}

bool decode_attributes(Reader& r, std::size_t attrs_len,
                       RouteAttributes& attrs, std::string& error) {
  const std::size_t end = r.pos() + attrs_len;
  bool saw_origin = false, saw_as_path = false, saw_next_hop = false;
  while (r.pos() < end) {
    std::uint8_t flags, type;
    if (!r.u8(flags) || !r.u8(type)) {
      error = "truncated attribute header";
      return false;
    }
    std::size_t len;
    if (flags & kFlagExtendedLength) {
      std::uint16_t l;
      if (!r.u16(l)) {
        error = "truncated extended length";
        return false;
      }
      len = l;
    } else {
      std::uint8_t l;
      if (!r.u8(l)) {
        error = "truncated length";
        return false;
      }
      len = l;
    }
    if (r.pos() + len > end) {
      error = "attribute overruns attribute block";
      return false;
    }
    std::vector<std::uint8_t> body;
    if (!r.bytes(len, body)) {
      error = "truncated attribute body";
      return false;
    }
    Reader br(body);
    switch (type) {
      case kAttrOrigin: {
        std::uint8_t o;
        if (body.size() != 1 || !br.u8(o) || o > 2) {
          error = "bad ORIGIN";
          return false;
        }
        attrs.origin = static_cast<Origin>(o);
        saw_origin = true;
        break;
      }
      case kAttrAsPath: {
        // AS_SET segments (aggregation leftovers) are folded into the flat
        // path: loop detection still sees every member ASN; the RFC 4271
        // "an AS_SET counts as one hop" length nuance is deliberately not
        // modelled (aggregated routes are vanishingly rare at route
        // servers and never produced by this implementation).
        std::vector<Asn> asns;
        while (br.remaining() > 0) {
          std::uint8_t seg_type, seg_len;
          if (!br.u8(seg_type) || !br.u8(seg_len) ||
              (seg_type != kSegmentSequence && seg_type != kSegmentSet)) {
            error = "bad AS_PATH segment";
            return false;
          }
          for (int i = 0; i < seg_len; ++i) {
            std::uint32_t asn;
            if (!br.u32(asn)) {
              error = "truncated AS_PATH";
              return false;
            }
            asns.push_back(asn);
          }
        }
        attrs.as_path = AsPath(std::move(asns));
        saw_as_path = true;
        break;
      }
      case kAttrNextHop: {
        std::uint32_t nh;
        if (body.size() != 4 || !br.u32(nh)) {
          error = "bad NEXT_HOP";
          return false;
        }
        attrs.next_hop = Ipv4Address(nh);
        saw_next_hop = true;
        break;
      }
      case kAttrMed: {
        std::uint32_t v;
        if (body.size() != 4 || !br.u32(v)) {
          error = "bad MED";
          return false;
        }
        attrs.med = v;
        break;
      }
      case kAttrLocalPref: {
        std::uint32_t v;
        if (body.size() != 4 || !br.u32(v)) {
          error = "bad LOCAL_PREF";
          return false;
        }
        attrs.local_pref = v;
        break;
      }
      case kAttrCommunities: {
        if (body.size() % 4 != 0) {
          error = "bad COMMUNITIES length";
          return false;
        }
        while (br.remaining() > 0) {
          std::uint32_t c;
          br.u32(c);
          attrs.communities.push_back(c);
        }
        break;
      }
      default:
        // Unknown optional attributes are skipped; unknown well-known
        // attributes are a protocol error.
        if (!(flags & kFlagOptional)) {
          error = "unrecognized well-known attribute " + std::to_string(type);
          return false;
        }
        break;
    }
  }
  if (!saw_origin || !saw_as_path || !saw_next_hop) {
    error = "missing mandatory attribute";
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_path_attributes(const RouteAttributes& a) {
  return encode_attributes(a);
}

bool decode_path_attributes(std::span<const std::uint8_t> bytes,
                            RouteAttributes& out, std::string& error) {
  Reader r(bytes);
  return decode_attributes(r, bytes.size(), out, error);
}

std::vector<std::uint8_t> encode(const Message& msg) {
  return std::visit(
      [](const auto& m) -> std::vector<std::uint8_t> {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenMessage>) {
          Writer w;
          w.u8(m.version);
          const std::uint16_t as16 =
              m.my_as > 0xFFFF ? kAsTrans
                               : static_cast<std::uint16_t>(m.my_as);
          w.u16(as16);
          w.u16(m.hold_time);
          w.u32(m.bgp_id.value());
          w.u8(static_cast<std::uint8_t>(m.opt_params.size()));
          w.bytes(m.opt_params);
          return frame(MessageType::kOpen, w.take());
        } else if constexpr (std::is_same_v<T, UpdateMessage>) {
          Writer withdrawn;
          for (auto p : m.withdrawn) withdrawn.prefix(p);
          std::vector<std::uint8_t> attrs =
              m.attrs ? encode_attributes(*m.attrs)
                      : std::vector<std::uint8_t>{};
          Writer w;
          auto wd = withdrawn.take();
          w.u16(static_cast<std::uint16_t>(wd.size()));
          w.bytes(wd);
          w.u16(static_cast<std::uint16_t>(attrs.size()));
          w.bytes(attrs);
          for (auto p : m.nlri) w.prefix(p);
          return frame(MessageType::kUpdate, w.take());
        } else if constexpr (std::is_same_v<T, NotificationMessage>) {
          Writer w;
          w.u8(m.code);
          w.u8(m.subcode);
          w.bytes(m.data);
          return frame(MessageType::kNotification, w.take());
        } else {
          return frame(MessageType::kKeepalive, {});
        }
      },
      msg);
}

DecodeResult decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return fail("short header");
  for (int i = 0; i < 16; ++i) {
    if (bytes[static_cast<std::size_t>(i)] != 0xFF) {
      return fail("bad marker");
    }
  }
  Reader header(bytes.subspan(16));
  std::uint16_t length;
  std::uint8_t type_raw;
  header.u16(length);
  header.u8(type_raw);
  if (length < kHeaderSize || length > kMaxMessageSize) {
    return fail("bad message length");
  }
  if (bytes.size() < length) return fail("truncated message");

  Reader r(bytes.subspan(kHeaderSize, length - kHeaderSize));
  switch (static_cast<MessageType>(type_raw)) {
    case MessageType::kOpen: {
      OpenMessage m;
      std::uint16_t as16;
      std::uint8_t opt_len;
      if (!r.u8(m.version) || !r.u16(as16) || !r.u16(m.hold_time)) {
        return fail("truncated OPEN");
      }
      std::uint32_t id;
      if (!r.u32(id) || !r.u8(opt_len)) return fail("truncated OPEN");
      m.bgp_id = Ipv4Address(id);
      m.my_as = as16;
      if (!r.bytes(opt_len, m.opt_params)) return fail("truncated OPEN opts");
      return DecodeResult{Message(std::move(m)), length, ""};
    }
    case MessageType::kUpdate: {
      UpdateMessage m;
      std::uint16_t withdrawn_len;
      if (!r.u16(withdrawn_len)) return fail("truncated UPDATE");
      const std::size_t withdrawn_end = r.pos() + withdrawn_len;
      if (withdrawn_end > r.pos() + r.remaining()) {
        return fail("withdrawn block overruns message");
      }
      while (r.pos() < withdrawn_end) {
        Ipv4Prefix p;
        if (!r.prefix(p)) return fail("bad withdrawn prefix");
        m.withdrawn.push_back(p);
      }
      if (r.pos() != withdrawn_end) return fail("withdrawn block misaligned");
      std::uint16_t attrs_len;
      if (!r.u16(attrs_len)) return fail("truncated UPDATE attrs length");
      if (attrs_len > r.remaining()) {
        return fail("attribute block overruns message");
      }
      if (attrs_len > 0) {
        RouteAttributes attrs;
        std::string error;
        if (!decode_attributes(r, attrs_len, attrs, error)) {
          return fail("bad attributes: " + error);
        }
        m.attrs = std::move(attrs);
      }
      while (r.remaining() > 0) {
        Ipv4Prefix p;
        if (!r.prefix(p)) return fail("bad NLRI prefix");
        m.nlri.push_back(p);
      }
      if (!m.nlri.empty() && !m.attrs) {
        return fail("NLRI without path attributes");
      }
      return DecodeResult{Message(std::move(m)), length, ""};
    }
    case MessageType::kNotification: {
      NotificationMessage m;
      if (!r.u8(m.code) || !r.u8(m.subcode)) {
        return fail("truncated NOTIFICATION");
      }
      r.bytes(r.remaining(), m.data);
      return DecodeResult{Message(std::move(m)), length, ""};
    }
    case MessageType::kKeepalive: {
      if (r.remaining() != 0) return fail("KEEPALIVE with body");
      return DecodeResult{Message(KeepaliveMessage{}), length, ""};
    }
    default:
      return fail("unknown message type " + std::to_string(type_raw));
  }
}

}  // namespace sdx::bgp
