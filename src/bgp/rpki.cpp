#include "bgp/rpki.hpp"

#include <ostream>
#include <stdexcept>

namespace sdx::bgp {

std::string_view validity_name(RoaValidity v) {
  switch (v) {
    case RoaValidity::kNotFound: return "NotFound";
    case RoaValidity::kValid: return "Valid";
    case RoaValidity::kInvalid: return "Invalid";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, RoaValidity v) {
  return os << validity_name(v);
}

void RoaTable::add(Ipv4Prefix prefix, Asn origin, int max_length) {
  if (max_length < 0) max_length = prefix.length();
  if (max_length < prefix.length() || max_length > 32) {
    throw std::invalid_argument("bad ROA max-length " +
                                std::to_string(max_length) + " for " +
                                prefix.to_string());
  }
  Roa roa{prefix, max_length, origin};
  if (auto* existing = trie_.find(prefix)) {
    existing->push_back(roa);
  } else {
    trie_.insert(prefix, {roa});
  }
  ++count_;
}

RoaValidity RoaTable::validate(Ipv4Prefix announced, Asn origin) const {
  // Walk every covering ROA prefix, most specific first.
  bool covered = false;
  for (int len = announced.length(); len >= 0; --len) {
    const Ipv4Prefix candidate(announced.network(), len);
    const auto* roas = trie_.find(candidate);
    if (roas == nullptr) continue;
    covered = true;
    for (const Roa& roa : *roas) {
      if (roa.origin == origin && announced.length() <= roa.max_length) {
        return RoaValidity::kValid;
      }
    }
  }
  return covered ? RoaValidity::kInvalid : RoaValidity::kNotFound;
}

RoaValidity RoaTable::validate(const Route& route, Asn fallback_origin) const {
  const Asn origin = route.attrs.as_path.empty()
                         ? fallback_origin
                         : route.attrs.as_path.origin_as();
  return validate(route.prefix, origin);
}

}  // namespace sdx::bgp
