#include "bgp/update_stream.hpp"

#include <algorithm>
#include <cmath>

namespace sdx::bgp {

std::vector<Burst> segment_bursts(const std::vector<TimedUpdate>& stream,
                                  double gap_seconds) {
  std::vector<Burst> bursts;
  if (stream.empty()) return bursts;

  std::size_t first = 0;
  std::unordered_set<Ipv4Prefix> prefixes;
  prefixes.insert(stream[0].prefix);
  for (std::size_t i = 1; i <= stream.size(); ++i) {
    const bool boundary =
        i == stream.size() ||
        stream[i].timestamp - stream[i - 1].timestamp >= gap_seconds;
    if (boundary) {
      Burst b;
      b.first = first;
      b.last = i - 1;
      b.start_time = stream[first].timestamp;
      b.end_time = stream[i - 1].timestamp;
      b.update_count = i - first;
      b.distinct_prefixes = prefixes.size();
      bursts.push_back(b);
      if (i < stream.size()) {
        first = i;
        prefixes.clear();
        prefixes.insert(stream[i].prefix);
      }
    } else {
      prefixes.insert(stream[i].prefix);
    }
  }
  return bursts;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

StreamStats compute_stats(const std::vector<TimedUpdate>& stream,
                          double burst_gap_seconds) {
  StreamStats s;
  s.total_updates = stream.size();
  std::unordered_set<Ipv4Prefix> prefixes;
  for (const auto& u : stream) {
    prefixes.insert(u.prefix);
    if (u.is_withdrawal()) {
      ++s.withdrawal_count;
    } else {
      ++s.announcement_count;
    }
  }
  s.distinct_prefixes = prefixes.size();

  auto bursts = segment_bursts(stream, burst_gap_seconds);
  s.burst_count = bursts.size();
  std::vector<double> sizes;
  sizes.reserve(bursts.size());
  for (const auto& b : bursts) {
    sizes.push_back(static_cast<double>(b.distinct_prefixes));
  }
  if (!sizes.empty()) {
    s.median_burst_size = quantile(sizes, 0.5);
    s.p75_burst_size = quantile(sizes, 0.75);
    s.max_burst_size = *std::max_element(sizes.begin(), sizes.end());
  }
  std::vector<double> gaps;
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    gaps.push_back(bursts[i].start_time - bursts[i - 1].end_time);
  }
  if (!gaps.empty()) {
    s.median_interarrival_s = quantile(gaps, 0.5);
    s.p25_interarrival_s = quantile(gaps, 0.25);
  }
  return s;
}

}  // namespace sdx::bgp
