#include "bgp/route_server.hpp"

#include <algorithm>
#include <stdexcept>

namespace sdx::bgp {

void RouteServer::add_peer(Peer peer) {
  if (peer_index_.contains(peer.id)) {
    throw std::invalid_argument("duplicate participant id " +
                                std::to_string(peer.id));
  }
  peer_index_[peer.id] = peers_.size();
  peers_.push_back(peer);
}

void RouteServer::set_telemetry(telemetry::MetricRegistry* registry) {
  if (registry == nullptr) {
    announcements_ = withdrawals_ = best_changes_ = nullptr;
    prefixes_gauge_ = nullptr;
    return;
  }
  announcements_ = &registry->counter("sdx_route_server_announcements_total",
                                      "BGP announcements processed");
  withdrawals_ = &registry->counter("sdx_route_server_withdrawals_total",
                                    "BGP withdrawals processed");
  best_changes_ = &registry->counter(
      "sdx_route_server_best_changes_total",
      "per-participant best-route changes (churn driving recompilation)");
  prefixes_gauge_ = &registry->gauge("sdx_route_server_prefixes",
                                     "prefixes currently in the RIB");
  prefixes_gauge_->set(static_cast<double>(rib_.size()));
}

const RouteServer::Peer* RouteServer::peer(ParticipantId id) const {
  auto it = peer_index_.find(id);
  return it == peer_index_.end() ? nullptr : &peers_[it->second];
}

std::vector<RouteServer::BestChange> RouteServer::apply_and_diff(
    Ipv4Prefix prefix, const std::function<void()>& mutate) {
  // Snapshot each participant's best before the mutation...
  std::vector<const Route*> old_best(peers_.size(), nullptr);
  std::vector<Route> old_copies;
  old_copies.reserve(peers_.size());
  if (auto it = rib_.find(prefix); it != rib_.end()) {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      old_best[i] = best_for(it->second, peers_[i]);
    }
  }
  // best_for returns pointers into the candidate vector, which `mutate`
  // invalidates — copy the routes out first.
  std::vector<std::optional<Route>> old_routes(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (old_best[i] != nullptr) old_routes[i] = *old_best[i];
  }

  mutate();

  std::vector<BestChange> changes;
  const std::vector<Route>* ranked = nullptr;
  if (auto it = rib_.find(prefix); it != rib_.end()) ranked = &it->second;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const Route* now =
        ranked != nullptr ? best_for(*ranked, peers_[i]) : nullptr;
    const bool was = old_routes[i].has_value();
    const bool is = now != nullptr;
    if (!was && !is) continue;
    if (was && is && *old_routes[i] == *now) continue;
    BestChange c;
    c.participant = peers_[i].id;
    c.prefix = prefix;
    c.old_best = old_routes[i];
    if (now != nullptr) c.new_best = *now;
    changes.push_back(std::move(c));
  }
  return changes;
}

std::vector<RouteServer::BestChange> RouteServer::announce(Route route) {
  if (!peer_index_.contains(route.learned_from)) {
    throw std::invalid_argument("announce from unknown participant " +
                                std::to_string(route.learned_from));
  }
  const Ipv4Prefix prefix = route.prefix;
  auto changes = apply_and_diff(prefix, [this, &route, prefix]() {
    auto& ranked = rib_[prefix];
    std::erase_if(ranked, [&route](const Route& r) {
      return r.learned_from == route.learned_from;
    });
    // Insert keeping the vector ranked best-first.
    auto pos = std::find_if(ranked.begin(), ranked.end(),
                            [this, &route](const Route& r) {
                              return better(route, r, cfg_);
                            });
    adv_[route.learned_from].insert(prefix);
    ranked.insert(pos, std::move(route));
  });
  ++version_;
  if (announcements_ != nullptr) {
    announcements_->inc();
    best_changes_->inc(changes.size());
    prefixes_gauge_->set(static_cast<double>(rib_.size()));
  }
  return changes;
}

std::vector<RouteServer::BestChange> RouteServer::withdraw(
    ParticipantId from, Ipv4Prefix prefix) {
  if (!peer_index_.contains(from)) {
    throw std::invalid_argument("withdraw from unknown participant " +
                                std::to_string(from));
  }
  auto changes = apply_and_diff(prefix, [this, from, prefix]() {
    auto it = rib_.find(prefix);
    if (it == rib_.end()) return;
    std::erase_if(it->second, [from](const Route& r) {
      return r.learned_from == from;
    });
    if (it->second.empty()) rib_.erase(it);
    if (auto a = adv_.find(from); a != adv_.end()) a->second.erase(prefix);
  });
  ++version_;
  if (withdrawals_ != nullptr) {
    withdrawals_->inc();
    best_changes_->inc(changes.size());
    prefixes_gauge_->set(static_cast<double>(rib_.size()));
  }
  return changes;
}

std::unordered_map<Ipv4Prefix, ParticipantId> RouteServer::best_nexthops(
    ParticipantId viewer) const {
  std::unordered_map<Ipv4Prefix, ParticipantId> out;
  const Peer* to = peer(viewer);
  if (to == nullptr) return out;
  out.reserve(rib_.size());
  for (const auto& [prefix, ranked] : rib_) {
    if (const Route* r = best_for(ranked, *to)) {
      out.emplace(prefix, r->learned_from);
    }
  }
  return out;
}

std::optional<Route> RouteServer::best_route_lpm(
    ParticipantId for_participant, Ipv4Address addr) const {
  for (int len = 32; len >= 0; --len) {
    const Ipv4Prefix candidate(addr, len);
    if (!rib_.contains(candidate)) continue;
    if (auto best = best_route(for_participant, candidate)) return best;
  }
  return std::nullopt;
}

std::optional<Route> RouteServer::best_route(ParticipantId for_participant,
                                             Ipv4Prefix prefix) const {
  const Peer* to = peer(for_participant);
  auto it = rib_.find(prefix);
  if (to == nullptr || it == rib_.end()) return std::nullopt;
  const Route* r = best_for(it->second, *to);
  if (r == nullptr) return std::nullopt;
  return *r;
}

bool RouteServer::exports_to(ParticipantId via, ParticipantId to,
                             Ipv4Prefix prefix) const {
  const Peer* to_peer = peer(to);
  if (to_peer == nullptr || via == to) return false;
  auto it = rib_.find(prefix);
  if (it == rib_.end()) return false;
  for (const Route& r : it->second) {
    if (r.learned_from == via) return eligible(r, *to_peer);
  }
  return false;
}

std::vector<Ipv4Prefix> RouteServer::reachable_via(ParticipantId to,
                                                   ParticipantId via) const {
  std::vector<Ipv4Prefix> out;
  auto a = adv_.find(via);
  if (a == adv_.end()) return out;
  out.reserve(a->second.size());
  for (auto prefix : a->second) {
    if (exports_to(via, to, prefix)) out.push_back(prefix);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Ipv4Prefix> RouteServer::advertised_by(ParticipantId via) const {
  std::vector<Ipv4Prefix> out;
  auto a = adv_.find(via);
  if (a == adv_.end()) return out;
  out.assign(a->second.begin(), a->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Ipv4Prefix> RouteServer::all_prefixes() const {
  std::vector<Ipv4Prefix> out;
  out.reserve(rib_.size());
  for (const auto& [prefix, _] : rib_) out.push_back(prefix);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Route> RouteServer::dump_routes() const {
  std::vector<Route> out;
  for (Ipv4Prefix prefix : all_prefixes()) {
    const auto& ranked = rib_.at(prefix);
    out.insert(out.end(), ranked.begin(), ranked.end());
  }
  return out;
}

const std::vector<Route>* RouteServer::candidates(Ipv4Prefix prefix) const {
  auto it = rib_.find(prefix);
  return it == rib_.end() ? nullptr : &it->second;
}

std::vector<Ipv4Prefix> RouteServer::filter_prefixes(
    ParticipantId viewer,
    const std::function<bool(const Route&)>& pred) const {
  std::vector<Ipv4Prefix> out;
  for (const auto& [prefix, ranked] : rib_) {
    const Peer* to = peer(viewer);
    if (to == nullptr) break;
    const Route* best = best_for(ranked, *to);
    if (best != nullptr && pred(*best)) out.push_back(prefix);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sdx::bgp
