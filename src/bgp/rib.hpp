#pragma once

/// \file rib.hpp
/// A routing information base for one BGP view: prefix → route, with
/// longest-prefix-match lookup. Border routers hold one Rib of the routes
/// the SDX route server advertised to them; the route server itself keeps a
/// multi-candidate table internally (route_server.hpp).

#include <optional>
#include <utility>
#include <vector>

#include "bgp/route.hpp"
#include "netbase/prefix_trie.hpp"

namespace sdx::bgp {

class Rib {
 public:
  /// Adds or replaces the route for its prefix. Returns true when new.
  bool add(Route route);

  /// Removes the route for \p prefix. Returns true when present.
  bool withdraw(Ipv4Prefix prefix);

  /// Exact-prefix lookup.
  const Route* find(Ipv4Prefix prefix) const;

  /// Longest-prefix-match lookup for a destination address.
  const Route* lookup(Ipv4Address addr) const;

  std::size_t size() const { return trie_.size(); }
  bool empty() const { return trie_.empty(); }
  void clear() { trie_.clear(); }

  /// All routes, in prefix order.
  std::vector<Route> routes() const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    trie_.for_each([&fn](Ipv4Prefix, const Route& r) { fn(r); });
  }

 private:
  net::PrefixTrie<Route> trie_;
};

}  // namespace sdx::bgp
