#include "bgp/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sdx::bgp {

namespace {

// RFC 4271 notification error codes used here.
constexpr std::uint8_t kErrMessageHeader = 1;
constexpr std::uint8_t kErrOpen = 2;
constexpr std::uint8_t kErrUpdate = 3;
constexpr std::uint8_t kErrHoldTimerExpired = 4;
constexpr std::uint8_t kErrFsm = 5;

constexpr std::size_t kHeaderSize = 19;

}  // namespace

std::string_view state_name(Session::State s) {
  switch (s) {
    case Session::State::kIdle: return "Idle";
    case Session::State::kOpenSent: return "OpenSent";
    case Session::State::kOpenConfirm: return "OpenConfirm";
    case Session::State::kEstablished: return "Established";
    case Session::State::kClosed: return "Closed";
  }
  return "?";
}

void Session::queue(const Message& msg) {
  auto bytes = encode(msg);
  out_buffer_.insert(out_buffer_.end(), bytes.begin(), bytes.end());
  last_sent_ = now_;
}

void Session::start() {
  if (state_ != State::kIdle) {
    throw std::logic_error("start() from state " +
                           std::string(state_name(state_)));
  }
  OpenMessage open;
  open.my_as = config_.local_as;
  open.hold_time = config_.hold_time;
  open.bgp_id = config_.router_id;
  queue(open);
  state_ = State::kOpenSent;
}

Session::Event Session::close_with_notification(std::uint8_t code,
                                                std::uint8_t subcode) {
  NotificationMessage n;
  n.code = code;
  n.subcode = subcode;
  queue(n);
  state_ = State::kClosed;
  return Event{Event::Kind::kClosed, {}, std::move(n)};
}

std::optional<Session::Event> Session::handle(Message msg) {
  last_heard_ = now_;
  if (std::holds_alternative<NotificationMessage>(msg)) {
    state_ = State::kClosed;
    Event ev{Event::Kind::kNotificationReceived, {},
             std::get<NotificationMessage>(std::move(msg))};
    return ev;
  }
  switch (state_) {
    case State::kOpenSent:
      if (auto* open = std::get_if<OpenMessage>(&msg)) {
        if (open->version != 4) {
          return close_with_notification(kErrOpen, /*bad version*/ 1);
        }
        peer_open_ = std::move(*open);
        queue(KeepaliveMessage{});
        state_ = State::kOpenConfirm;
        return std::nullopt;
      }
      return close_with_notification(kErrFsm, 0);
    case State::kOpenConfirm:
      if (std::holds_alternative<KeepaliveMessage>(msg)) {
        state_ = State::kEstablished;
        return Event{Event::Kind::kEstablished, {}, {}};
      }
      return close_with_notification(kErrFsm, 0);
    case State::kEstablished:
      if (std::holds_alternative<KeepaliveMessage>(msg)) {
        return std::nullopt;
      }
      if (auto* update = std::get_if<UpdateMessage>(&msg)) {
        ++updates_received_;
        return Event{Event::Kind::kUpdate, std::move(*update), {}};
      }
      return close_with_notification(kErrFsm, 0);
    case State::kIdle:
    case State::kClosed:
      return close_with_notification(kErrFsm, 0);
  }
  return std::nullopt;
}

std::optional<Session::Event> Session::process(Message msg) {
  if (state_ == State::kClosed) return std::nullopt;
  return handle(std::move(msg));
}

std::optional<Session::Event> Session::abort_session(std::uint8_t code,
                                                     std::uint8_t subcode) {
  if (state_ == State::kClosed) return std::nullopt;
  return close_with_notification(code, subcode);
}

std::vector<Session::Event> Session::receive(
    std::span<const std::uint8_t> bytes) {
  std::vector<Event> events;
  if (state_ == State::kClosed) return events;
  in_buffer_.insert(in_buffer_.end(), bytes.begin(), bytes.end());
  while (state_ != State::kClosed && in_buffer_.size() >= kHeaderSize) {
    const std::size_t length = (std::size_t{in_buffer_[16]} << 8) |
                               in_buffer_[17];
    if (length < kHeaderSize || length > 4096) {
      events.push_back(close_with_notification(kErrMessageHeader, 2));
      break;
    }
    if (in_buffer_.size() < length) break;  // wait for the full frame
    auto result = decode(std::span(in_buffer_).first(length));
    in_buffer_.erase(in_buffer_.begin(),
                     in_buffer_.begin() + static_cast<std::ptrdiff_t>(length));
    if (!result.ok()) {
      const std::uint8_t code =
          result.error.find("attribute") != std::string::npos ||
                  result.error.find("NLRI") != std::string::npos
              ? kErrUpdate
              : kErrMessageHeader;
      events.push_back(close_with_notification(code, 0));
      break;
    }
    if (auto ev = handle(std::move(*result.message))) {
      events.push_back(std::move(*ev));
    }
  }
  return events;
}

void Session::send_update(const UpdateMessage& update) {
  if (state_ != State::kEstablished) {
    throw std::logic_error("send_update in state " +
                           std::string(state_name(state_)));
  }
  queue(update);
  ++updates_sent_;
}

std::vector<Session::Event> Session::advance_clock(double seconds) {
  std::vector<Event> events;
  now_ += seconds;
  if (state_ == State::kClosed || state_ == State::kIdle) return events;
  if (config_.hold_time > 0 &&
      now_ - last_heard_ >= static_cast<double>(config_.hold_time) &&
      state_ == State::kEstablished) {
    events.push_back(close_with_notification(kErrHoldTimerExpired, 0));
    return events;
  }
  const double keepalive_interval = config_.hold_time / 3.0;
  if (state_ == State::kEstablished && config_.hold_time > 0 &&
      now_ - last_sent_ >= keepalive_interval) {
    queue(KeepaliveMessage{});
  }
  return events;
}

std::vector<std::uint8_t> Session::take_output() {
  return std::exchange(out_buffer_, {});
}

}  // namespace sdx::bgp
