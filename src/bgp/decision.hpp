#pragma once

/// \file decision.hpp
/// The BGP decision process used by the route server to pick, per
/// participant, one best route per prefix (paper §3.2).

#include <span>

#include "bgp/route.hpp"

namespace sdx::bgp {

/// Route-server comparison options.
struct DecisionConfig {
  /// When false (default, per RFC 4271), MED is only compared between routes
  /// learned from the same neighboring AS; when true it is always compared
  /// ("always-compare-med"), as many IXP route servers configure.
  bool always_compare_med = false;
};

/// Returns true when \p a is strictly preferred over \p b by the decision
/// process: higher LOCAL_PREF, shorter AS path, lower ORIGIN, lower MED,
/// then lower peer router-id and lower advertising participant id as the
/// deterministic tie-breakers.
bool better(const Route& a, const Route& b, const DecisionConfig& cfg = {});

/// The best route among \p candidates (nullptr when empty).
const Route* select_best(std::span<const Route> candidates,
                         const DecisionConfig& cfg = {});

}  // namespace sdx::bgp
