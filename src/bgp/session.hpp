#pragma once

/// \file session.hpp
/// A BGP-4 session endpoint (RFC 4271 FSM, TCP-less): framing over an
/// abstract byte stream plus the Idle → OpenSent → OpenConfirm →
/// Established state machine, keepalive scheduling and hold-timer expiry
/// on a logical clock.
///
/// This is the session layer a route server like ExaBGP provides; the SDX
/// route server logic (route_server.hpp) is transport-agnostic, and tests
/// wire two Session endpoints head-to-head to prove the framing and FSM
/// interoperate.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/wire.hpp"

namespace sdx::bgp {

class Session {
 public:
  enum class State : std::uint8_t {
    kIdle,
    kOpenSent,
    kOpenConfirm,
    kEstablished,
    kClosed,
  };

  struct Config {
    Asn local_as = 0;
    Ipv4Address router_id;
    std::uint16_t hold_time = 90;  ///< seconds; 0 disables the timer
  };

  /// An application-visible session event.
  struct Event {
    enum class Kind : std::uint8_t {
      kEstablished,
      kUpdate,
      kNotificationReceived,
      kClosed,
    };
    Kind kind;
    UpdateMessage update;              ///< kUpdate only
    NotificationMessage notification;  ///< kNotificationReceived only
  };

  explicit Session(Config config) : config_(config) {}

  State state() const { return state_; }
  const std::optional<OpenMessage>& peer_open() const { return peer_open_; }

  /// Initiates the session: queues our OPEN. Only valid from Idle.
  void start();

  /// Feeds bytes received from the peer; returns the events they caused.
  /// Malformed input produces a NOTIFICATION to the peer and closes the
  /// session (one kClosed event).
  std::vector<Event> receive(std::span<const std::uint8_t> bytes);

  /// Feeds one already-framed, decoded message — the entry point for the
  /// ingest reactor's zero-copy framing, where buffering and decode happen
  /// outside the session. Equivalent to receive() on the encoded bytes.
  std::optional<Event> process(Message msg);

  /// Closes the session with a NOTIFICATION toward the peer — for errors
  /// detected by an external framing/decode layer. Returns the kClosed
  /// event. No-op (nullopt) when already closed.
  std::optional<Event> abort_session(std::uint8_t code, std::uint8_t subcode);

  /// Queues an UPDATE. Throws std::logic_error unless Established.
  void send_update(const UpdateMessage& update);

  /// Advances the logical clock: sends keepalives every hold_time/3 and
  /// closes the session (Hold Timer Expired notification) when the peer
  /// has been silent for hold_time.
  std::vector<Event> advance_clock(double seconds);

  /// Drains the bytes queued for the peer.
  std::vector<std::uint8_t> take_output();

  /// Statistics.
  std::uint64_t updates_received() const { return updates_received_; }
  std::uint64_t updates_sent() const { return updates_sent_; }

 private:
  void queue(const Message& msg);
  Event close_with_notification(std::uint8_t code, std::uint8_t subcode);
  std::optional<Event> handle(Message msg);

  Config config_;
  State state_ = State::kIdle;
  std::optional<OpenMessage> peer_open_;
  std::vector<std::uint8_t> in_buffer_;
  std::vector<std::uint8_t> out_buffer_;
  double now_ = 0;
  double last_heard_ = 0;
  double last_sent_ = 0;
  std::uint64_t updates_received_ = 0;
  std::uint64_t updates_sent_ = 0;
};

std::string_view state_name(Session::State s);

}  // namespace sdx::bgp
