#pragma once

/// \file mrt.hpp
/// MRT export format (RFC 6396) — the format RIPE RIS publishes the
/// collector traces the paper's Table 1 is built from. Implemented:
///
///   * record framing (timestamp, type, subtype, length);
///   * BGP4MP / BGP4MP_MESSAGE_AS4 — one BGP message as seen on a peering
///     session (used for update traces);
///   * TABLE_DUMP_V2 / PEER_INDEX_TABLE + RIB_IPV4_UNICAST — full RIB
///     snapshots (used to dump and reload route-server state).
///
/// Writers/readers operate on std::ostream/std::istream so traces can be
/// streamed to disk at Table-1 scale without buffering.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route_server.hpp"
#include "bgp/wire.hpp"

namespace sdx::bgp {

// MRT type/subtype constants (RFC 6396 §4).
inline constexpr std::uint16_t kMrtTypeTableDumpV2 = 13;
inline constexpr std::uint16_t kMrtTypeBgp4mp = 16;
inline constexpr std::uint16_t kMrtSubtypePeerIndexTable = 1;
inline constexpr std::uint16_t kMrtSubtypeRibIpv4Unicast = 2;
inline constexpr std::uint16_t kMrtSubtypeBgp4mpMessageAs4 = 4;

/// One framed MRT record.
struct MrtRecord {
  std::uint32_t timestamp = 0;
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;

  friend bool operator==(const MrtRecord&, const MrtRecord&) = default;
};

/// Writes one record (header + body).
void write_record(std::ostream& os, const MrtRecord& record);

/// Reads the next record; std::nullopt at clean EOF. Throws
/// std::runtime_error on a truncated or oversized record.
std::optional<MrtRecord> read_record(std::istream& is);

/// A BGP4MP_MESSAGE_AS4 payload: one BGP message on a session.
struct Bgp4mpMessage {
  Asn peer_as = 0;
  Asn local_as = 0;
  std::uint16_t ifindex = 0;
  Ipv4Address peer_ip;
  Ipv4Address local_ip;
  Message message;

  friend bool operator==(const Bgp4mpMessage&,
                         const Bgp4mpMessage&) = default;
};

MrtRecord encode_bgp4mp(std::uint32_t timestamp, const Bgp4mpMessage& msg);

/// Decodes a BGP4MP_MESSAGE_AS4 record; throws std::runtime_error on a
/// malformed body or a non-IPv4 AFI.
Bgp4mpMessage decode_bgp4mp(const MrtRecord& record);

/// Dumps every candidate route of the server as a TABLE_DUMP_V2 snapshot:
/// one PEER_INDEX_TABLE record followed by one RIB_IPV4_UNICAST record per
/// prefix. Returns the number of records written.
std::size_t write_rib_dump(std::ostream& os, const RouteServer& server,
                           std::uint32_t timestamp = 0,
                           const std::string& view_name = "sdx");

/// A parsed RIB snapshot.
struct RibDump {
  std::vector<RouteServer::Peer> peers;
  std::vector<Route> routes;  ///< learned_from/router-id resolved via peers
};

/// Reads a TABLE_DUMP_V2 snapshot from the stream (PEER_INDEX_TABLE must
/// come first, as written by write_rib_dump). Throws std::runtime_error on
/// malformed input.
RibDump read_rib_dump(std::istream& is);

}  // namespace sdx::bgp
