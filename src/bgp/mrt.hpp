#pragma once

/// \file mrt.hpp
/// MRT export format (RFC 6396) — the format RIPE RIS publishes the
/// collector traces the paper's Table 1 is built from. Implemented:
///
///   * record framing (timestamp, type, subtype, length);
///   * BGP4MP / BGP4MP_MESSAGE_AS4 — one BGP message as seen on a peering
///     session (used for update traces);
///   * TABLE_DUMP_V2 / PEER_INDEX_TABLE + RIB_IPV4_UNICAST — full RIB
///     snapshots (used to dump and reload route-server state).
///
/// Writers/readers operate on std::ostream/std::istream so traces can be
/// streamed to disk at Table-1 scale without buffering.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/route_server.hpp"
#include "bgp/wire.hpp"

namespace sdx::bgp {

// MRT type/subtype constants (RFC 6396 §4).
inline constexpr std::uint16_t kMrtTypeTableDumpV2 = 13;
inline constexpr std::uint16_t kMrtTypeBgp4mp = 16;
inline constexpr std::uint16_t kMrtSubtypePeerIndexTable = 1;
inline constexpr std::uint16_t kMrtSubtypeRibIpv4Unicast = 2;
inline constexpr std::uint16_t kMrtSubtypeBgp4mpMessageAs4 = 4;

/// One framed MRT record.
struct MrtRecord {
  std::uint32_t timestamp = 0;
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;

  friend bool operator==(const MrtRecord&, const MrtRecord&) = default;
};

/// Writes one record (header + body).
void write_record(std::ostream& os, const MrtRecord& record);

/// How an attempt to read the next MRT record ended. Distinguishes a
/// clean end of stream (EOF exactly on a record boundary) from a trailing
/// record that was cut short or is structurally implausible.
enum class MrtReadStatus {
  kOk,         ///< \p out holds the next record
  kEof,        ///< clean EOF — the stream ended on a record boundary
  kTruncated,  ///< EOF mid-header or mid-body (torn trailing record)
  kOversized,  ///< header announces a body larger than the sanity cap
  kCorrupt,    ///< record framing fine, contents malformed (dump readers)
};

std::string_view to_string(MrtReadStatus status);

/// Reads the next record into \p out without throwing. Returns kOk/kEof/
/// kTruncated/kOversized; on a non-kOk status \p out is unspecified and
/// \p error (when non-null) receives a description for the failure cases.
MrtReadStatus read_record(std::istream& is, MrtRecord& out,
                          std::string* error = nullptr);

/// Legacy flavor: std::nullopt at clean EOF. Throws std::runtime_error on
/// a truncated or oversized record.
std::optional<MrtRecord> read_record(std::istream& is);

/// A BGP4MP_MESSAGE_AS4 payload: one BGP message on a session.
struct Bgp4mpMessage {
  Asn peer_as = 0;
  Asn local_as = 0;
  std::uint16_t ifindex = 0;
  Ipv4Address peer_ip;
  Ipv4Address local_ip;
  Message message;

  friend bool operator==(const Bgp4mpMessage&,
                         const Bgp4mpMessage&) = default;
};

MrtRecord encode_bgp4mp(std::uint32_t timestamp, const Bgp4mpMessage& msg);

/// Decodes a BGP4MP_MESSAGE_AS4 record; throws std::runtime_error on a
/// malformed body or a non-IPv4 AFI.
Bgp4mpMessage decode_bgp4mp(const MrtRecord& record);

/// Dumps every candidate route of the server as a TABLE_DUMP_V2 snapshot:
/// one PEER_INDEX_TABLE record followed by one RIB_IPV4_UNICAST record per
/// prefix. Returns the number of records written.
std::size_t write_rib_dump(std::ostream& os, const RouteServer& server,
                           std::uint32_t timestamp = 0,
                           const std::string& view_name = "sdx");

/// A parsed RIB snapshot.
struct RibDump {
  std::vector<RouteServer::Peer> peers;
  std::vector<Route> routes;  ///< learned_from/router-id resolved via peers
};

/// Reads a TABLE_DUMP_V2 snapshot from the stream (PEER_INDEX_TABLE must
/// come first, as written by write_rib_dump). Throws std::runtime_error on
/// malformed input.
RibDump read_rib_dump(std::istream& is);

/// Outcome of a streaming RIB-dump read.
struct RibDumpResult {
  std::size_t records = 0;  ///< MRT records consumed (incl. the peer index)
  std::size_t routes = 0;   ///< routes delivered to the callback
  /// kEof: the dump ended cleanly on a record boundary. kTruncated /
  /// kOversized: torn or implausible trailing record. kCorrupt: framing
  /// fine but the contents were malformed.
  MrtReadStatus tail = MrtReadStatus::kEof;
  std::string error;  ///< description when tail != kEof

  bool ok() const { return tail == MrtReadStatus::kEof; }
};

/// Streaming flavor of read_rib_dump: invokes \p on_peer once per
/// PEER_INDEX_TABLE entry, then \p on_route once per decoded route, in
/// record order, without materializing the snapshot. Never throws —
/// failures are reported through the returned RibDumpResult (processing
/// stops at the first bad record; everything delivered before it stands).
/// Either callback may be empty.
RibDumpResult read_rib_dump_stream(
    std::istream& is, const std::function<void(const RouteServer::Peer&)>& on_peer,
    const std::function<void(Route)>& on_route);

}  // namespace sdx::bgp
