#include "bgp/rib.hpp"

namespace sdx::bgp {

bool Rib::add(Route route) {
  const Ipv4Prefix prefix = route.prefix;
  return trie_.insert(prefix, std::move(route));
}

bool Rib::withdraw(Ipv4Prefix prefix) { return trie_.erase(prefix); }

const Route* Rib::find(Ipv4Prefix prefix) const { return trie_.find(prefix); }

const Route* Rib::lookup(Ipv4Address addr) const {
  auto hit = trie_.lookup(addr);
  return hit ? hit->second : nullptr;
}

std::vector<Route> Rib::routes() const {
  std::vector<Route> out;
  out.reserve(trie_.size());
  trie_.for_each([&out](Ipv4Prefix, const Route& r) { out.push_back(r); });
  return out;
}

}  // namespace sdx::bgp
