#pragma once

/// \file rpki.hpp
/// RPKI route-origin validation (RFC 6483/6811), the mechanism paper §3.2
/// names for vetting SDX-originated announcements: "Before originating the
/// route announcement in BGP, the SDX would verify that AS D indeed owns
/// the IP prefix (e.g., using the RPKI)."
///
/// A RoaTable holds Route Origin Authorizations (prefix, max-length,
/// authorized origin ASN) and classifies announcements as Valid / Invalid /
/// NotFound per RFC 6811 semantics:
///   * NotFound — no ROA covers the announced prefix;
///   * Valid    — some covering ROA authorizes the origin AS and the
///                announced length is within the ROA's max-length;
///   * Invalid  — at least one ROA covers the prefix but none validates it.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "netbase/prefix_trie.hpp"

namespace sdx::bgp {

/// One Route Origin Authorization.
struct Roa {
  Ipv4Prefix prefix;
  int max_length = 0;  ///< longest announced length authorized (≥ prefix len)
  Asn origin = 0;

  friend bool operator==(const Roa&, const Roa&) = default;
};

enum class RoaValidity : std::uint8_t { kNotFound, kValid, kInvalid };

std::string_view validity_name(RoaValidity v);
std::ostream& operator<<(std::ostream& os, RoaValidity v);

class RoaTable {
 public:
  /// Registers a ROA. max_length defaults to the ROA prefix length when
  /// not given. Throws std::invalid_argument when max_length < prefix
  /// length or > 32.
  void add(Ipv4Prefix prefix, Asn origin, int max_length = -1);

  /// RFC 6811 validation of (announced prefix, origin AS).
  RoaValidity validate(Ipv4Prefix announced, Asn origin) const;

  /// Validation of a route (origin = last AS of the path; an empty path —
  /// an SDX-originated route — is validated against the advertising
  /// participant's ASN, which the caller passes as \p fallback_origin).
  RoaValidity validate(const Route& route, Asn fallback_origin = 0) const;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  /// All ROAs indexed by their prefix; multiple ROAs may share a prefix.
  net::PrefixTrie<std::vector<Roa>> trie_;
  std::size_t count_ = 0;
};

}  // namespace sdx::bgp
