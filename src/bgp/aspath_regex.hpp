#pragma once

/// \file aspath_regex.hpp
/// AS-path regular-expression filters (paper §3.2):
///
///   YouTubePrefixes = RIB.filter('as_path', .*43515$)
///
/// Patterns are applied to the space-separated ASN string of a path. The
/// class also offers tokenized helpers (`ends_with`, `contains_asn`) that
/// avoid the classic substring pitfall (".*515$" matching AS 43515).

#include <memory>
#include <string>
#include <vector>

#include "bgp/route_server.hpp"
#include "netbase/as_path.hpp"

namespace sdx::bgp {

class AsPathFilter {
 public:
  /// Compiles an ECMAScript regular expression over the path string.
  /// Throws std::regex_error on a malformed pattern.
  explicit AsPathFilter(const std::string& pattern);
  ~AsPathFilter();

  AsPathFilter(AsPathFilter&&) noexcept;
  AsPathFilter& operator=(AsPathFilter&&) noexcept;
  AsPathFilter(const AsPathFilter&) = delete;
  AsPathFilter& operator=(const AsPathFilter&) = delete;

  /// A filter matching paths originated by \p origin (tokenized, exact ASN).
  static AsPathFilter originated_by(Asn origin);
  /// A filter matching paths that traverse \p asn anywhere.
  static AsPathFilter traverses(Asn asn);

  bool matches(const net::AsPath& path) const;

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Applies a filter over \p viewer's view of the RIB, returning the prefixes
/// whose best-route AS path matches — the list fed to match(srcip={...}) or
/// match(dstip={...}) policies.
std::vector<Ipv4Prefix> filter_rib(const RouteServer& server,
                                   ParticipantId viewer,
                                   const AsPathFilter& filter);

}  // namespace sdx::bgp
