#pragma once

/// \file route_server.hpp
/// The SDX route server (paper §3.2, Figure 3 right pipeline).
///
/// Participants advertise routes to the server; the server runs the BGP
/// decision process *per participant* (honoring loop prevention) and exposes:
///
///   * best_route(participant, prefix) — the default route BGP would use,
///     which the SDX compiler turns into default forwarding;
///   * exports_to(via, to, prefix) — whether `via` exported `prefix` to
///     `to`, the relation behind the BGP-consistency policy filters ("the
///     SDX should not direct traffic to a next-hop AS that does not want to
///     receive it");
///   * change events on announce/withdraw, which drive incremental
///     recompilation and the re-advertisements the runtime marshals into
///     BGP UPDATE messages.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/decision.hpp"
#include "bgp/route.hpp"
#include "telemetry/metrics.hpp"

namespace sdx::bgp {

class RouteServer {
 public:
  struct Peer {
    ParticipantId id = 0;
    Asn asn = 0;
    Ipv4Address router_id;
  };

  /// A change in some participant's best route for a prefix — the event
  /// granularity at which the SDX recompiles (paper §4.3.2).
  struct BestChange {
    ParticipantId participant = 0;
    Ipv4Prefix prefix;
    std::optional<Route> old_best;
    std::optional<Route> new_best;
  };

  explicit RouteServer(DecisionConfig cfg = {}) : cfg_(cfg) {}

  /// Registers a participant session. Throws std::invalid_argument on a
  /// duplicate participant id.
  void add_peer(Peer peer);

  /// Hooks the server into a metric registry (nullptr detaches). Exposes
  /// `sdx_route_server_announcements_total` / `_withdrawals_total`, the
  /// best-route churn counter `sdx_route_server_best_changes_total` (one
  /// increment per per-participant BestChange produced), and the RIB-size
  /// gauge `sdx_route_server_prefixes`. The registry must outlive the hook.
  void set_telemetry(telemetry::MetricRegistry* registry);

  const std::vector<Peer>& peers() const { return peers_; }
  const Peer* peer(ParticipantId id) const;

  /// Processes an announcement (route.learned_from must be a registered
  /// peer). Returns every per-participant best-route change it caused.
  std::vector<BestChange> announce(Route route);

  /// Processes a withdrawal of \p prefix by \p from.
  std::vector<BestChange> withdraw(ParticipantId from, Ipv4Prefix prefix);

  /// Monotonic RIB version: bumped on every processed announce/withdraw.
  /// A copy of the server carries the version it was taken at, so an
  /// off-thread consumer (the asynchronous background recompilation) can
  /// later tell whether updates raced past its snapshot.
  std::uint64_t version() const { return version_; }

  /// Versioned snapshot for off-thread readers: a full copy with telemetry
  /// detached (the copy is read-only state, not a live measurement source).
  /// `snapshot().version()` identifies the RIB epoch it captures.
  RouteServer snapshot() const {
    RouteServer copy = *this;
    copy.set_telemetry(nullptr);
    return copy;
  }

  /// The best route the server advertises to \p for_participant for
  /// \p prefix (std::nullopt when it has no eligible candidate).
  std::optional<Route> best_route(ParticipantId for_participant,
                                  Ipv4Prefix prefix) const;

  /// One pass over the RIB: every prefix for which \p viewer has an
  /// eligible best route, mapped to that route's advertiser. Semantically
  /// `best_route(viewer, p)->learned_from` for every known p, but computed
  /// without a hash probe per prefix — the per-compile snapshot behind the
  /// SDX compiler's default-forwarding vectors. Empty for unknown viewers
  /// and for participants no route is exported to.
  std::unordered_map<Ipv4Prefix, ParticipantId> best_nexthops(
      ParticipantId viewer) const;

  /// Longest-prefix-match variant: the best route covering \p addr from
  /// \p for_participant's view, scanning from the most specific covering
  /// prefix outward. Used to resolve where rewritten (load-balanced)
  /// destinations exit the exchange.
  std::optional<Route> best_route_lpm(ParticipantId for_participant,
                                      Ipv4Address addr) const;

  /// True when participant \p via advertised \p prefix and the server may
  /// re-export that route to \p to (loop prevention passes). Participants
  /// may forward traffic along any such feasible route, not just the best
  /// one (paper §3.2).
  bool exports_to(ParticipantId via, ParticipantId to,
                  Ipv4Prefix prefix) const;

  /// All prefixes that \p via exports to \p to — the reach set that the
  /// compiler inserts into `to`'s outbound policies toward `via`.
  std::vector<Ipv4Prefix> reachable_via(ParticipantId to,
                                        ParticipantId via) const;

  /// Prefixes advertised by \p via (regardless of export eligibility).
  std::vector<Ipv4Prefix> advertised_by(ParticipantId via) const;

  /// Every prefix known to the server.
  std::vector<Ipv4Prefix> all_prefixes() const;

  /// Full RIB dump: every candidate route of every prefix, prefixes in
  /// sorted order and candidates in ranked (best-first) order. Re-announcing
  /// the dump into a fresh server with the same peers reproduces the RIB
  /// exactly (the decision process is a total order), which is what
  /// checkpoint/restore relies on.
  std::vector<Route> dump_routes() const;

  /// Candidate routes for a prefix, best first (nullptr when unknown).
  const std::vector<Route>* candidates(Ipv4Prefix prefix) const;

  std::size_t prefix_count() const { return rib_.size(); }

  /// §3.2 "grouping traffic based on BGP attributes": the prefixes whose
  /// best route (from \p viewer's perspective) satisfies \p pred.
  std::vector<Ipv4Prefix> filter_prefixes(
      ParticipantId viewer,
      const std::function<bool(const Route&)>& pred) const;

 private:
  /// Export policy: loop prevention plus the standard route-server
  /// community conventions — RFC 1997 NO_EXPORT / NO_ADVERTISE suppress
  /// re-advertisement entirely, and "0:<asn>" blocks export to one peer
  /// (the control knob real IXP route servers give their members).
  bool eligible(const Route& r, const Peer& to) const {
    if (r.learned_from == to.id || r.attrs.as_path.contains(to.asn)) {
      return false;
    }
    for (Community c : r.attrs.communities) {
      if (c == kNoExport || c == kNoAdvertise) return false;
      if (c == make_community(0, static_cast<std::uint16_t>(to.asn)) &&
          to.asn <= 0xFFFF) {
        return false;
      }
    }
    return true;
  }

  const Route* best_for(const std::vector<Route>& ranked,
                        const Peer& to) const {
    for (const Route& r : ranked) {
      if (eligible(r, to)) return &r;
    }
    return nullptr;
  }

  std::vector<BestChange> apply_and_diff(Ipv4Prefix prefix,
                                         const std::function<void()>& mutate);

  DecisionConfig cfg_;
  std::uint64_t version_ = 0;
  std::vector<Peer> peers_;
  telemetry::Counter* announcements_ = nullptr;
  telemetry::Counter* withdrawals_ = nullptr;
  telemetry::Counter* best_changes_ = nullptr;
  telemetry::Gauge* prefixes_gauge_ = nullptr;
  std::unordered_map<ParticipantId, std::size_t> peer_index_;
  /// prefix → candidates ranked best-first by the decision process.
  std::unordered_map<Ipv4Prefix, std::vector<Route>> rib_;
  /// per-peer advertised prefix set (Adj-RIB-In index).
  std::unordered_map<ParticipantId, std::unordered_set<Ipv4Prefix>> adv_;
};

}  // namespace sdx::bgp
