#include "bgp/decision.hpp"

namespace sdx::bgp {

bool better(const Route& a, const Route& b, const DecisionConfig& cfg) {
  // 1. Highest LOCAL_PREF.
  const auto lp_a = a.attrs.effective_local_pref();
  const auto lp_b = b.attrs.effective_local_pref();
  if (lp_a != lp_b) return lp_a > lp_b;

  // 2. Shortest AS path.
  if (a.attrs.as_path.length() != b.attrs.as_path.length()) {
    return a.attrs.as_path.length() < b.attrs.as_path.length();
  }

  // 3. Lowest ORIGIN (IGP < EGP < INCOMPLETE).
  if (a.attrs.origin != b.attrs.origin) {
    return static_cast<int>(a.attrs.origin) < static_cast<int>(b.attrs.origin);
  }

  // 4. Lowest MED, comparable only between routes via the same neighbor AS
  //    unless always-compare-med is set. A missing MED counts as 0 (RFC 4271
  //    "missing-as-best" default is 0 here for determinism).
  if (cfg.always_compare_med || a.neighbor_as() == b.neighbor_as()) {
    const std::uint32_t med_a = a.attrs.med.value_or(0);
    const std::uint32_t med_b = b.attrs.med.value_or(0);
    if (med_a != med_b) return med_a < med_b;
  }

  // 5. (eBGP over iBGP / IGP cost do not apply at a route server.)

  // 6. Lowest peer BGP identifier.
  if (a.peer_router_id != b.peer_router_id) {
    return a.peer_router_id < b.peer_router_id;
  }

  // 7. Deterministic final tie-break: lowest advertising participant id.
  return a.learned_from < b.learned_from;
}

const Route* select_best(std::span<const Route> candidates,
                         const DecisionConfig& cfg) {
  const Route* best = nullptr;
  for (const Route& r : candidates) {
    if (best == nullptr || better(r, *best, cfg)) best = &r;
  }
  return best;
}

}  // namespace sdx::bgp
