#pragma once

/// \file update_stream.hpp
/// Timestamped BGP update streams and the burst analysis of paper §4.3:
/// update bursts (gap-separated runs of updates), burst-size distributions,
/// inter-arrival statistics, and the Table 1 summary counters.

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "bgp/route.hpp"

namespace sdx::bgp {

/// One update event as seen by a collector: an announcement (attrs present)
/// or a withdrawal.
struct TimedUpdate {
  double timestamp = 0;  ///< seconds since trace start
  ParticipantId peer = 0;
  Ipv4Prefix prefix;
  std::optional<RouteAttributes> attrs;  ///< nullopt = withdrawal

  bool is_withdrawal() const { return !attrs.has_value(); }
};

/// A maximal run of updates with inter-arrival gaps below the burst
/// threshold (the paper segments on quiet gaps; §4.3.2).
struct Burst {
  std::size_t first = 0;  ///< index range [first, last] into the stream
  std::size_t last = 0;
  double start_time = 0;
  double end_time = 0;
  std::size_t update_count = 0;
  std::size_t distinct_prefixes = 0;
};

/// Splits a time-ordered stream into bursts separated by gaps of at least
/// \p gap_seconds.
std::vector<Burst> segment_bursts(const std::vector<TimedUpdate>& stream,
                                  double gap_seconds);

/// Aggregate statistics over a stream — the columns of Table 1 plus the
/// burst characteristics that justify two-stage compilation.
struct StreamStats {
  std::size_t total_updates = 0;
  std::size_t distinct_prefixes = 0;       ///< prefixes seeing ≥1 update
  std::size_t announcement_count = 0;
  std::size_t withdrawal_count = 0;
  std::size_t burst_count = 0;
  double median_burst_size = 0;
  double p75_burst_size = 0;               ///< paper: ≤3 for 75% of bursts
  double max_burst_size = 0;
  double median_interarrival_s = 0;        ///< paper: >60s half the time
  double p25_interarrival_s = 0;           ///< paper: ≥10s for 75% of gaps
};

StreamStats compute_stats(const std::vector<TimedUpdate>& stream,
                          double burst_gap_seconds);

/// Quantile of a sample (linear interpolation, q in [0,1]); 0 when empty.
double quantile(std::vector<double> values, double q);

}  // namespace sdx::bgp
