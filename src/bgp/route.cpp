#include "bgp/route.hpp"

#include <ostream>
#include <sstream>

namespace sdx::bgp {

std::string_view origin_name(Origin o) {
  switch (o) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "INCOMPLETE";
  }
  return "?";
}

std::string Route::to_string() const {
  std::ostringstream os;
  os << prefix << " via " << attrs.next_hop << " path [" << attrs.as_path
     << "] lp=" << attrs.effective_local_pref()
     << " origin=" << origin_name(attrs.origin);
  if (attrs.med) os << " med=" << *attrs.med;
  os << " from=" << learned_from;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Route& r) {
  return os << r.to_string();
}

}  // namespace sdx::bgp
