#pragma once

/// \file wal.hpp
/// Write-ahead-log records and segment files.
///
/// A WAL record is one externally-driven runtime mutation — the inputs the
/// controller cannot rederive after a crash. Everything else (compiled
/// tables, fast-path rules, advertisement state) is a deterministic
/// function of this input sequence plus the initial state, which is what
/// makes replay-based recovery byte-exact.
///
/// Segment file layout (`wal-<first-lsn>.log`, zero-padded for lexical
/// ordering):
///
///   header:  magic "SDXWAL01" | u64 first_lsn | u8 genesis | u32 crc32c
///   record:  u32 payload_len | u32 crc32c(payload) | payload
///   record:  ...
///
/// `genesis` marks a segment chain that starts at the runtime's birth — a
/// log that can be replayed into a fresh runtime with no checkpoint at
/// all. Records are length-prefixed and CRC-framed so a crash mid-append
/// leaves a *detectably* torn tail: the reader stops at the first frame
/// whose length or checksum does not hold, reports how many bytes it
/// discarded, and the journal truncates the file there before appending
/// again. All integers little-endian (codec.hpp).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "persist/codec.hpp"

namespace sdx::persist {

/// Fixed size of a segment-file header (magic + first LSN + genesis flag +
/// header CRC).
inline constexpr std::size_t kWalHeaderBytes = 8 + 8 + 1 + 4;
/// Fixed per-record framing overhead (length + payload CRC).
inline constexpr std::size_t kWalFrameBytes = 4 + 4;

enum class WalRecordType : std::uint8_t {
  kAddParticipant = 1,
  kAddRemoteParticipant = 2,
  kSetOutbound = 3,
  kSetInbound = 4,
  kAnnounce = 5,
  kWithdraw = 6,
  kSessionDown = 7,
  kInstall = 8,
};

/// One logged mutation. A single struct with a per-type subset of fields
/// in use — the record stream is small and uniform handling keeps the
/// replay switch flat.
struct WalRecord {
  WalRecordType type = WalRecordType::kInstall;
  bgp::ParticipantId participant = 0;

  // kAddParticipant / kAddRemoteParticipant
  std::string name;
  net::Asn asn = 0;
  std::uint32_t port_count = 0;

  // kSetOutbound / kSetInbound (the full clause list, not a delta — the
  // runtime API is set-not-append, so the record mirrors the call).
  std::vector<core::OutboundClause> outbound;
  std::vector<core::InboundClause> inbound;

  // kAnnounce / kWithdraw
  net::Ipv4Prefix prefix;
  bool has_path = false;
  net::AsPath path;
  std::vector<bgp::Community> communities;
};

std::string encode_record(const WalRecord& rec);
/// Throws CodecError on malformed payloads (a frame that passed its CRC
/// but does not decode — i.e. written by an incompatible version).
WalRecord decode_record(std::string_view payload);

/// Everything read back from one segment file.
struct WalSegment {
  std::uint64_t first_lsn = 0;
  bool genesis = false;
  bool header_valid = false;
  std::vector<std::string> payloads;  ///< fully-framed records, in order
  /// File offset just past the last intact record — the truncation point
  /// for torn-tail cleanup.
  std::uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes (a torn or corrupt tail), 0 on a clean file.
  std::uint64_t torn_bytes = 0;
};

/// Reads a whole segment, stopping at the first torn or corrupt frame.
/// Throws std::system_error only when the file cannot be opened/read.
WalSegment read_wal_segment(const std::string& path);

/// Append handle on one segment file. Writes go straight to the file
/// descriptor (no userspace buffering) so a crash can only lose or tear
/// the record being written — never reorder earlier ones. Move-only.
class WalWriter {
 public:
  /// Creates a fresh segment (truncating any stale file at \p path) and
  /// writes its header.
  static WalWriter create(const std::string& path, std::uint64_t first_lsn,
                          bool genesis);

  /// Reopens an existing segment for appending, truncating it to
  /// \p valid_bytes first (torn-tail cleanup).
  static WalWriter open_append(const std::string& path,
                               std::uint64_t valid_bytes);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one framed record; returns the bytes written (frame +
  /// payload).
  std::size_t append(std::string_view payload);

  /// fsync() the segment.
  void sync();

  std::uint64_t size() const { return size_; }

 private:
  WalWriter(int fd, std::uint64_t size) : fd_(fd), size_(size) {}

  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace sdx::persist
