#pragma once

/// \file checkpoint.hpp
/// Binary checkpoints: a point-in-time serialization of every durable piece
/// of SDX controller state, written atomically so crash recovery always
/// finds either the previous checkpoint or the new one — never a hybrid.
///
/// File layout (`checkpoint-<lsn>.ckpt`, zero-padded for lexical ordering):
///
///   magic "SDXCKPT1" | u32 version | u32 crc32c(payload) | u64 payload_len
///   | payload
///
/// The payload is the encoded CheckpointState. Atomicity protocol: write to
/// `<name>.tmp`, fsync the file, rename() over the final name, fsync the
/// directory. A crash at any point leaves at most a stale .tmp (ignored by
/// recovery) or the complete file.
///
/// The checkpoint stores the *compiled* artifact alongside the inputs that
/// produced it, plus its fingerprint. On recovery the runtime re-derives
/// state from the inputs, decodes the artifact, and compares fingerprints:
/// a match proves the decoded tables equal what a fresh compilation would
/// produce, so the runtime adopts them without compiling — warm restart —
/// and the persisted VNH/VMAC bindings (hence border-router ARP caches)
/// stay valid.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bgp/route.hpp"
#include "persist/codec.hpp"
#include "sdx/compiler.hpp"
#include "sdx/vnh_allocator.hpp"

namespace sdx::persist {

/// The durable state of one SdxRuntime. Inputs (participants, routes) come
/// first; the compiled artifact plus fast-path residue follows only when
/// the runtime was installed.
struct CheckpointState {
  /// WAL position this checkpoint covers: every record with lsn < this is
  /// folded in; replay resumes at this LSN.
  std::uint64_t lsn = 0;

  /// Participants in registration order (ids, ports, MACs, IPs and policies
  /// included — restore re-registers them and verifies the regenerated
  /// state matches byte-for-byte).
  std::vector<core::Participant> participants;

  /// Full RIB dump (every candidate route, ranked order) — re-announced on
  /// restore; the total decision order makes the result insertion-order
  /// independent.
  std::vector<bgp::Route> routes;

  // VNH allocator: pool plus high-water mark.
  net::Ipv4Prefix vnh_pool = net::Ipv4Prefix::parse("172.16.0.0/12");
  std::uint64_t vnh_allocated = 0;

  /// Next fast-path cookie the runtime would hand out.
  std::uint64_t next_cookie = 0;

  bool installed = false;

  // --- present only when installed ---------------------------------------

  /// The compiled artifact as installed (stats zeroed — timings are not
  /// state).
  core::CompiledSdx compiled;
  /// compiled.fingerprint() at capture time; the warm-restart gate.
  std::string fingerprint;

  /// Fast-path VNH bindings by prefix, sorted by prefix for a canonical
  /// encoding.
  std::vector<std::pair<net::Ipv4Prefix, core::VnhBinding>> fast_bindings;
  /// Remote-participant bindings, sorted by participant id.
  std::vector<std::pair<bgp::ParticipantId, core::VnhBinding>>
      remote_bindings;

  /// Fast-path rules layered above the base classifier (cookie != base),
  /// in flow-table dump order.
  struct ExtraRule {
    std::uint32_t priority = 0;
    std::uint64_t cookie = 0;
    policy::Rule rule;
  };
  std::vector<ExtraRule> extra_rules;
};

std::string encode_checkpoint(const CheckpointState& state);
/// Throws CodecError on malformed payloads.
CheckpointState decode_checkpoint(std::string_view payload);

/// Writes \p state to \p path via the tmp+fsync+rename+dirsync protocol.
/// Throws std::system_error on I/O failure (the tmp file is removed).
void write_checkpoint_file(const std::string& path,
                           const CheckpointState& state);

/// Reads and validates one checkpoint file. Returns nullopt on any defect —
/// missing file, bad magic/version, CRC mismatch, truncation, or a payload
/// that fails to decode — so the journal can fall back to an older
/// checkpoint.
std::optional<CheckpointState> try_load_checkpoint(const std::string& path);

}  // namespace sdx::persist
