#include "persist/journal.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.hpp"

namespace sdx::persist {

namespace fs = std::filesystem;

namespace {

std::string lsn_name(const char* stem, std::uint64_t lsn, const char* ext) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s-%020" PRIu64 "%s", stem, lsn, ext);
  return buf;
}

}  // namespace

Journal::Journal(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  fs::create_directories(dir_);
  scan();
}

std::string Journal::segment_path(std::uint64_t first_lsn) const {
  return dir_ + "/" + lsn_name("wal", first_lsn, ".log");
}

std::string Journal::checkpoint_path(std::uint64_t lsn) const {
  return dir_ + "/" + lsn_name("checkpoint", lsn, ".ckpt");
}

void Journal::scan() {
  std::vector<std::string> checkpoint_files;
  std::vector<std::string> segment_files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with("checkpoint-") && name.ends_with(".ckpt")) {
      checkpoint_files.push_back(entry.path().string());
    } else if (name.starts_with("wal-") && name.ends_with(".log")) {
      segment_files.push_back(entry.path().string());
    }
    // .tmp and anything else: a checkpoint write that never completed, or
    // foreign files. Ignored.
  }
  // Zero-padded LSNs make lexical order LSN order.
  std::sort(checkpoint_files.begin(), checkpoint_files.end());
  std::sort(segment_files.begin(), segment_files.end());

  // Newest checkpoint that validates wins; corrupt ones fall back to older
  // and are left for the next write_checkpoint() to prune.
  for (auto it = checkpoint_files.rbegin(); it != checkpoint_files.rend();
       ++it) {
    if (auto loaded = try_load_checkpoint(*it)) {
      checkpoint_ = std::move(loaded);
      last_checkpoint_lsn_ = checkpoint_->lsn;
      break;
    }
  }

  had_segments_ = !segment_files.empty();
  const std::uint64_t ckpt_lsn = checkpoint_ ? checkpoint_->lsn : 0;
  std::uint64_t lsn = ckpt_lsn;
  bool stopped = false;
  bool first = true;
  for (const auto& path : segment_files) {
    if (stopped) {
      stale_paths_.push_back(path);
      continue;
    }
    const WalSegment seg = read_wal_segment(path);
    if (!seg.header_valid) {
      // Crash raced segment creation: the file never got a whole header.
      // Nothing in it (or after it) is reachable.
      torn_bytes_ += seg.torn_bytes;
      stale_paths_.push_back(path);
      stopped = true;
      continue;
    }
    if (first) {
      lsn = seg.first_lsn;
      complete_history_ = seg.genesis;
      first = false;
    } else if (seg.first_lsn != lsn) {
      // Chain break — a gap no replay can bridge. Everything from here on
      // is unreachable.
      stale_paths_.push_back(path);
      stopped = true;
      continue;
    }
    bool decoded_ok = true;
    for (const auto& payload : seg.payloads) {
      WalRecord rec;
      try {
        rec = decode_record(payload);
      } catch (const CodecError&) {
        // CRC held but the payload is from an incompatible writer: treat
        // like a torn tail at this record.
        decoded_ok = false;
        break;
      }
      if (lsn >= ckpt_lsn) tail_.push_back(std::move(rec));
      ++lsn;
    }
    segments_.emplace_back(seg.first_lsn, path);
    have_active_ = true;
    active_valid_bytes_ = seg.valid_bytes;
    torn_bytes_ += seg.torn_bytes;
    if (!decoded_ok || seg.torn_bytes > 0) stopped = true;
  }
  next_lsn_ = std::max(lsn, ckpt_lsn);
  if (checkpoint_ && lsn < ckpt_lsn) {
    // The WAL lost records the checkpoint already covers (possible under
    // Fsync::kNever). The checkpoint is still authoritative; the tail is
    // simply empty and the surviving segments are superseded.
    tail_.clear();
    for (auto& seg : segments_) stale_paths_.push_back(seg.second);
    segments_.clear();
    have_active_ = false;
    complete_history_ = false;
  }
}

void Journal::start_recording(bool genesis_if_new) {
  if (recording_) throw std::logic_error("journal already recording");
  for (const auto& path : stale_paths_) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  stale_paths_.clear();
  if (have_active_) {
    writer_ = WalWriter::open_append(segments_.back().second,
                                     active_valid_bytes_);
  } else {
    const bool genesis =
        genesis_if_new && !had_segments_ && !checkpoint_.has_value();
    writer_ = WalWriter::create(segment_path(next_lsn_), next_lsn_, genesis);
    segments_.emplace_back(next_lsn_, segment_path(next_lsn_));
    have_active_ = true;
    if (genesis) complete_history_ = true;
  }
  recording_ = true;
}

std::uint64_t Journal::append(const WalRecord& rec) {
  if (!recording_) throw std::logic_error("journal not recording");
  const std::size_t bytes = writer_->append(encode_record(rec));
  bytes_appended_ += bytes;
  if (options_.fsync == Options::Fsync::kEveryRecord) timed_sync();
  if (hooks_.records) hooks_.records->inc();
  if (hooks_.bytes) hooks_.bytes->inc(bytes);
  return next_lsn_++;
}

void Journal::sync() {
  if (recording_) timed_sync();
}

void Journal::timed_sync() {
  const auto start = std::chrono::steady_clock::now();
  writer_->sync();
  if (hooks_.fsync_seconds) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    hooks_.fsync_seconds->observe(elapsed.count());
  }
}

std::uint64_t Journal::write_checkpoint(CheckpointState state) {
  const std::uint64_t lsn = next_lsn_;
  state.lsn = lsn;
  // Anchor the tail: records before the checkpoint LSN must be on disk
  // before the segments holding them become prunable.
  if (recording_ && options_.fsync != Options::Fsync::kNever) timed_sync();
  write_checkpoint_file(checkpoint_path(lsn), state);

  const std::uint64_t previous_checkpoint = last_checkpoint_lsn_;
  const bool had_checkpoint = checkpoint_.has_value();
  checkpoint_ = std::move(state);
  last_checkpoint_lsn_ = lsn;
  tail_.clear();

  if (recording_) {
    // Rotate: the new checkpoint owns everything before `lsn`, so the WAL
    // restarts in a fresh segment anchored there.
    writer_.reset();
    writer_ = WalWriter::create(segment_path(lsn), lsn, false);
    std::vector<std::pair<std::uint64_t, std::string>> keep;
    for (auto& [first_lsn, path] : segments_) {
      if (first_lsn < lsn) {
        std::error_code ec;
        fs::remove(path, ec);
      } else {
        keep.push_back({first_lsn, path});
      }
    }
    segments_ = std::move(keep);
    segments_.emplace_back(lsn, segment_path(lsn));
    have_active_ = true;
    complete_history_ = false;
  }
  if (had_checkpoint && previous_checkpoint != lsn) {
    std::error_code ec;
    fs::remove(checkpoint_path(previous_checkpoint), ec);
  }
  // Sweep any checkpoints left over from crashed runs (corrupt newer ones,
  // superseded older ones).
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("checkpoint-") &&
        (name.ends_with(".ckpt.tmp") ||
         (name.ends_with(".ckpt") &&
          entry.path().string() != checkpoint_path(lsn)))) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }
  if (hooks_.checkpoints) hooks_.checkpoints->inc();
  return lsn;
}

}  // namespace sdx::persist
