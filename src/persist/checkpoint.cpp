#include "persist/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>

#include "persist/crc32c.hpp"

namespace sdx::persist {

namespace {

constexpr char kMagic[8] = {'S', 'D', 'X', 'C', 'K', 'P', 'T', '1'};
// v2: VMAC layout + partitioned compilation artifacts. A v1 checkpoint no
// longer loads (try_load_checkpoint rejects the version), which is the
// intended behaviour: recovery falls back to WAL replay + cold install
// rather than adopting tables whose VMAC encoding predates the layout.
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kFileHeaderBytes = 8 + 4 + 4 + 8;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void put_defaults(Encoder& e, const core::DefaultVector& defaults) {
  e.u32(static_cast<std::uint32_t>(defaults.size()));
  for (const auto& d : defaults) {
    e.boolean(d.has_value());
    if (d) e.u32(*d);
  }
}

core::DefaultVector get_defaults(Decoder& d) {
  const std::uint32_t n = d.count(1);
  core::DefaultVector defaults;
  defaults.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (d.boolean()) {
      defaults.push_back(d.u32());
    } else {
      defaults.push_back(std::nullopt);
    }
  }
  return defaults;
}

void put_binding(Encoder& e, const core::VnhBinding& b) {
  e.ip(b.vnh);
  e.mac(b.vmac);
}

core::VnhBinding get_binding(Decoder& d) {
  core::VnhBinding b;
  b.vnh = d.ip();
  b.vmac = d.mac();
  return b;
}

void put_layout(Encoder& e, const core::VmacLayout& layout) {
  e.u8(layout.group_bits);
  e.u8(layout.nexthop_bits);
  e.u8(layout.attr_bits);
}

core::VmacLayout get_layout(Decoder& d) {
  core::VmacLayout layout;
  layout.group_bits = d.u8();
  layout.nexthop_bits = d.u8();
  layout.attr_bits = d.u8();
  try {
    layout.validate();
  } catch (const std::invalid_argument&) {
    throw CodecError("invalid VMAC layout in checkpoint");
  }
  return layout;
}

void put_fec(Encoder& e, const core::FecResult& fecs) {
  e.u32(static_cast<std::uint32_t>(fecs.groups.size()));
  for (const auto& g : fecs.groups) {
    e.u32(static_cast<std::uint32_t>(g.prefixes.size()));
    for (auto p : g.prefixes) e.prefix(p);
    e.u32(static_cast<std::uint32_t>(g.clauses.size()));
    for (std::uint32_t id : g.clauses) e.u32(id);
    put_defaults(e, g.defaults);
  }
}

core::FecResult get_fec(Decoder& d) {
  core::FecResult fecs;
  const std::uint32_t ngroups = d.count();
  fecs.groups.reserve(ngroups);
  for (std::uint32_t i = 0; i < ngroups; ++i) {
    core::PrefixGroup g;
    const std::uint32_t nprefixes = d.count(5);
    g.prefixes.reserve(nprefixes);
    for (std::uint32_t j = 0; j < nprefixes; ++j) {
      g.prefixes.push_back(d.prefix());
    }
    const std::uint32_t nclauses = d.count(4);
    g.clauses.reserve(nclauses);
    for (std::uint32_t j = 0; j < nclauses; ++j) g.clauses.push_back(d.u32());
    g.defaults = get_defaults(d);
    fecs.groups.push_back(std::move(g));
  }
  // group_of is an index over groups — rebuild rather than store.
  for (std::uint32_t i = 0; i < fecs.groups.size(); ++i) {
    for (auto p : fecs.groups[i].prefixes) fecs.group_of[p] = i;
  }
  return fecs;
}

void put_reaches(Encoder& e, const std::vector<core::ClauseReach>& reaches) {
  e.u32(static_cast<std::uint32_t>(reaches.size()));
  for (const auto& r : reaches) {
    e.u32(r.owner);
    e.u64(r.clause_index);
    e.u32(static_cast<std::uint32_t>(r.prefixes.size()));
    for (auto p : r.prefixes) e.prefix(p);
  }
}

std::vector<core::ClauseReach> get_reaches(Decoder& d) {
  std::vector<core::ClauseReach> reaches;
  const std::uint32_t nreaches = d.count();
  reaches.reserve(nreaches);
  for (std::uint32_t i = 0; i < nreaches; ++i) {
    core::ClauseReach r;
    r.owner = d.u32();
    r.clause_index = static_cast<std::size_t>(d.u64());
    const std::uint32_t nprefixes = d.count(5);
    r.prefixes.reserve(nprefixes);
    for (std::uint32_t j = 0; j < nprefixes; ++j) {
      r.prefixes.push_back(d.prefix());
    }
    reaches.push_back(std::move(r));
  }
  return reaches;
}

void put_compiled(Encoder& e, const core::CompiledSdx& c) {
  put_layout(e, c.layout);
  e.boolean(c.partitioned);
  // Partitioned mode: the fabric is derived (partition concat + shared
  // band) — encode an empty classifier in its slot and rebuild on decode.
  put_classifier(e, c.partitioned ? policy::Classifier{} : c.fabric);
  put_fec(e, c.fecs);
  e.u32(static_cast<std::uint32_t>(c.bindings.size()));
  for (const auto& b : c.bindings) put_binding(e, b);
  put_reaches(e, c.reaches);
  if (c.partitioned) {
    put_classifier(e, c.shared_rules);
    e.u32(static_cast<std::uint32_t>(c.partitions.size()));
    for (const auto& part : c.partitions) {
      e.u32(part.owner);
      put_fec(e, part.fecs);
      e.u32(static_cast<std::uint32_t>(part.bindings.size()));
      for (const auto& b : part.bindings) put_binding(e, b);
      put_reaches(e, part.reaches);
      put_classifier(e, part.rules);
    }
  }
  // stats deliberately not serialized: timings are not state, and zeroed
  // stats keep the encoding canonical across captures of the same artifact.
}

core::CompiledSdx get_compiled(Decoder& d) {
  core::CompiledSdx c;
  c.layout = get_layout(d);
  c.partitioned = d.boolean();
  c.fabric = get_classifier(d);
  c.fecs = get_fec(d);
  const std::uint32_t nbindings = d.count();
  c.bindings.reserve(nbindings);
  for (std::uint32_t i = 0; i < nbindings; ++i) {
    c.bindings.push_back(get_binding(d));
  }
  c.reaches = get_reaches(d);
  if (c.partitioned) {
    c.shared_rules = get_classifier(d);
    const std::uint32_t nparts = d.count();
    c.partitions.reserve(nparts);
    for (std::uint32_t i = 0; i < nparts; ++i) {
      core::CompiledPartition part;
      part.owner = d.u32();
      part.fecs = get_fec(d);
      const std::uint32_t npb = d.count();
      part.bindings.reserve(npb);
      for (std::uint32_t j = 0; j < npb; ++j) {
        part.bindings.push_back(get_binding(d));
      }
      part.reaches = get_reaches(d);
      part.rules = get_classifier(d);
      c.partitions.push_back(std::move(part));
    }
    c.rebuild_fabric();
  }
  return c;
}

}  // namespace

std::string encode_checkpoint(const CheckpointState& state) {
  Encoder e;
  e.u64(state.lsn);
  e.u32(static_cast<std::uint32_t>(state.participants.size()));
  for (const auto& p : state.participants) put_participant(e, p);
  e.u32(static_cast<std::uint32_t>(state.routes.size()));
  for (const auto& r : state.routes) put_route(e, r);
  e.prefix(state.vnh_pool);
  e.u64(state.vnh_allocated);
  e.u64(state.next_cookie);
  e.boolean(state.installed);
  if (state.installed) {
    put_compiled(e, state.compiled);
    e.str(state.fingerprint);
    e.u32(static_cast<std::uint32_t>(state.fast_bindings.size()));
    for (const auto& [prefix, binding] : state.fast_bindings) {
      e.prefix(prefix);
      put_binding(e, binding);
    }
    e.u32(static_cast<std::uint32_t>(state.remote_bindings.size()));
    for (const auto& [id, binding] : state.remote_bindings) {
      e.u32(id);
      put_binding(e, binding);
    }
    e.u32(static_cast<std::uint32_t>(state.extra_rules.size()));
    for (const auto& extra : state.extra_rules) {
      e.u32(extra.priority);
      e.u64(extra.cookie);
      put_rule(e, extra.rule);
    }
  }
  return e.take();
}

CheckpointState decode_checkpoint(std::string_view payload) {
  Decoder d(payload);
  CheckpointState st;
  st.lsn = d.u64();
  const std::uint32_t nparticipants = d.count();
  st.participants.reserve(nparticipants);
  for (std::uint32_t i = 0; i < nparticipants; ++i) {
    st.participants.push_back(get_participant(d));
  }
  const std::uint32_t nroutes = d.count();
  st.routes.reserve(nroutes);
  for (std::uint32_t i = 0; i < nroutes; ++i) st.routes.push_back(get_route(d));
  st.vnh_pool = d.prefix();
  st.vnh_allocated = d.u64();
  st.next_cookie = d.u64();
  st.installed = d.boolean();
  if (st.installed) {
    st.compiled = get_compiled(d);
    st.fingerprint = d.str();
    const std::uint32_t nfast = d.count();
    st.fast_bindings.reserve(nfast);
    for (std::uint32_t i = 0; i < nfast; ++i) {
      const auto prefix = d.prefix();
      st.fast_bindings.emplace_back(prefix, get_binding(d));
    }
    const std::uint32_t nremote = d.count();
    st.remote_bindings.reserve(nremote);
    for (std::uint32_t i = 0; i < nremote; ++i) {
      const auto id = d.u32();
      st.remote_bindings.emplace_back(id, get_binding(d));
    }
    const std::uint32_t nextra = d.count();
    st.extra_rules.reserve(nextra);
    for (std::uint32_t i = 0; i < nextra; ++i) {
      CheckpointState::ExtraRule extra;
      extra.priority = d.u32();
      extra.cookie = d.u64();
      extra.rule = get_rule(d);
      st.extra_rules.push_back(std::move(extra));
    }
  }
  if (!d.done()) throw CodecError("trailing bytes in checkpoint payload");
  return st;
}

void write_checkpoint_file(const std::string& path,
                           const CheckpointState& state) {
  const std::string payload = encode_checkpoint(state);
  Encoder header;
  for (char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kVersion);
  header.u32(crc32c(payload));
  header.u64(payload.size());

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw_errno("create checkpoint temp " + tmp);
  auto fail = [&](const char* what) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno(what + (" " + tmp));
  };
  auto write_all = [&](std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail("write checkpoint");
      }
      off += static_cast<std::size_t>(n);
    }
  };
  write_all(header.bytes());
  write_all(payload);
  if (::fsync(fd) != 0) fail("fsync checkpoint");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("close checkpoint " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename checkpoint into place " + path);
  }
  // fsync the directory so the rename itself is durable.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_DIRECTORY | O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::optional<CheckpointState> try_load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < kFileHeaderBytes) return std::nullopt;
  if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    return std::nullopt;
  }
  Decoder header(std::string_view(data).substr(sizeof kMagic));
  const std::uint32_t version = header.u32();
  if (version != kVersion) return std::nullopt;
  const std::uint32_t stored_crc = header.u32();
  const std::uint64_t payload_len = header.u64();
  if (data.size() - kFileHeaderBytes != payload_len) return std::nullopt;
  const std::string_view payload(data.data() + kFileHeaderBytes, payload_len);
  if (crc32c(payload) != stored_crc) return std::nullopt;
  try {
    return decode_checkpoint(payload);
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

}  // namespace sdx::persist
