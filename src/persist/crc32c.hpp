#pragma once

/// \file crc32c.hpp
/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding
/// every WAL record frame and checkpoint payload in the durability layer.
///
/// Castagnoli rather than the zlib CRC-32 because its error-detection
/// properties for short records are strictly better and it is the log
/// checksum used by most production storage systems, so corruption-test
/// vectors are plentiful. Table-driven software implementation: record
/// frames are tens of bytes, so hardware CRC instructions would not be
/// measurable here and the portable version keeps the library
/// dependency-free.

#include <cstdint>
#include <string_view>

namespace sdx::persist {

/// The CRC-32C of \p data, continuing from \p seed (0 starts a fresh
/// checksum). Chaining holds: crc32c(b, crc32c(a)) == crc32c(a + b).
/// Known-answer: crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0);

}  // namespace sdx::persist
