#pragma once

/// \file codec.hpp
/// The little-endian binary codec behind WAL records and checkpoints.
///
/// Two layers:
///
///   * Encoder/Decoder — bounds-checked primitives (fixed-width integers,
///     length-prefixed strings, the netbase value types). The decoder
///     throws CodecError instead of reading past the end, so a truncated
///     or corrupted payload surfaces as a recoverable error, never as
///     undefined behaviour;
///   * put_*/get_* state codecs — serialization of the runtime's durable
///     state (policy clauses, BGP routes, participants, classifiers). The
///     clause codecs are binary rather than a policy-text round-trip: the
///     scenario grammar has no clause *parser* exposed as a library, and a
///     lossless binary form keeps recovery independent of pretty-printer
///     changes.
///
/// Everything here works purely on header-defined sdx types — the persist
/// library depends on sdx_core headers but never on its symbols, which is
/// what lets sdx_core link against sdx_persist without a cycle.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/route.hpp"
#include "netbase/as_path.hpp"
#include "netbase/ip.hpp"
#include "netbase/mac.hpp"
#include "policy/classifier.hpp"
#include "sdx/participant.hpp"

namespace sdx::persist {

/// Thrown by Decoder and the get_* codecs on truncated, malformed or
/// out-of-range input. Recovery treats it like a CRC failure: the bytes
/// are not usable state.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian byte sink.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  void ip(net::Ipv4Address a) { u32(a.value()); }
  void prefix(net::Ipv4Prefix p) {
    ip(p.network());
    u8(static_cast<std::uint8_t>(p.length()));
  }
  void mac(net::MacAddress m) { u64(m.bits()); }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over an encoded payload.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }
  net::Ipv4Address ip() { return net::Ipv4Address(u32()); }
  net::Ipv4Prefix prefix() {
    const auto network = ip();
    const int length = u8();
    if (length > 32) throw CodecError("prefix length out of range");
    return net::Ipv4Prefix(network, length);
  }
  net::MacAddress mac() { return net::MacAddress(u64()); }

  /// Reads a collection count and validates it against the bytes actually
  /// left (\p min_element_bytes is a lower bound on one element's encoded
  /// size) — a corrupted count must throw CodecError, not drive a
  /// multi-gigabyte reserve() into std::bad_alloc.
  std::uint32_t count(std::size_t min_element_bytes = 1) {
    const std::uint32_t n = u32();
    if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
      throw CodecError("collection count exceeds payload size");
    }
    return n;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) {
    if (data_.size() - pos_ < n) throw CodecError("truncated payload");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- state codecs ----------------------------------------------------------

void put_as_path(Encoder& e, const net::AsPath& path);
net::AsPath get_as_path(Decoder& d);

void put_clause_match(Encoder& e, const core::ClauseMatch& m);
core::ClauseMatch get_clause_match(Decoder& d);

void put_outbound_clause(Encoder& e, const core::OutboundClause& c);
core::OutboundClause get_outbound_clause(Decoder& d);

void put_inbound_clause(Encoder& e, const core::InboundClause& c);
core::InboundClause get_inbound_clause(Decoder& d);

void put_participant(Encoder& e, const core::Participant& p);
core::Participant get_participant(Decoder& d);

void put_route(Encoder& e, const bgp::Route& r);
bgp::Route get_route(Decoder& d);

void put_flow_match(Encoder& e, const net::FlowMatch& m);
net::FlowMatch get_flow_match(Decoder& d);

void put_action_seq(Encoder& e, const policy::ActionSeq& a);
policy::ActionSeq get_action_seq(Decoder& d);

void put_rule(Encoder& e, const policy::Rule& r);
policy::Rule get_rule(Decoder& d);

void put_classifier(Encoder& e, const policy::Classifier& c);
policy::Classifier get_classifier(Decoder& d);

}  // namespace sdx::persist
