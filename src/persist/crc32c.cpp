#include "persist/crc32c.hpp"

#include <array>

namespace sdx::persist {

namespace {

/// Reflected polynomial for CRC-32C.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sdx::persist
