#include "persist/codec.hpp"

#include <bit>

namespace sdx::persist {

namespace {

net::Field get_field(Decoder& d) {
  const std::uint8_t raw = d.u8();
  if (raw >= net::kFieldCount) throw CodecError("field id out of range");
  return static_cast<net::Field>(raw);
}

void put_field(Encoder& e, net::Field f) {
  e.u8(static_cast<std::uint8_t>(f));
}

void put_mods(Encoder& e,
              const std::vector<std::pair<net::Field, std::uint64_t>>& mods) {
  e.u32(static_cast<std::uint32_t>(mods.size()));
  for (const auto& [f, v] : mods) {
    put_field(e, f);
    e.u64(v);
  }
}

std::vector<std::pair<net::Field, std::uint64_t>> get_mods(Decoder& d) {
  const std::uint32_t n = d.count();
  std::vector<std::pair<net::Field, std::uint64_t>> mods;
  mods.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto f = get_field(d);
    const auto v = d.u64();
    mods.emplace_back(f, v);
  }
  return mods;
}

/// Rebuilds a FieldMatch from its (value, mask) pair through the public
/// factories. Wildcard, exact and CIDR masks cover the pairwise compiler's
/// output; the partitioned compiler additionally emits arbitrary ternary
/// dst-MAC constraints (attribute-encoded VMAC bit fields), rebuilt via
/// FieldMatch::masked. Value bits outside the mask are corruption — the
/// factories never produce them.
net::FieldMatch field_match_from(std::uint64_t value, std::uint64_t mask) {
  if ((value & ~mask) != 0) {
    throw CodecError("field-match value has bits outside its mask");
  }
  if (mask == 0) return net::FieldMatch::wildcard();
  if (mask == ~std::uint64_t{0}) return net::FieldMatch::exact(value);
  return net::FieldMatch::masked(value, mask);
}

}  // namespace

void put_as_path(Encoder& e, const net::AsPath& path) {
  e.u32(static_cast<std::uint32_t>(path.length()));
  for (net::Asn asn : path.asns()) e.u32(asn);
}

net::AsPath get_as_path(Decoder& d) {
  const std::uint32_t n = d.count(4);
  std::vector<net::Asn> asns;
  asns.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) asns.push_back(d.u32());
  return net::AsPath(std::move(asns));
}

void put_clause_match(Encoder& e, const core::ClauseMatch& m) {
  put_mods(e, m.exact);
  e.u32(static_cast<std::uint32_t>(m.src_prefixes.size()));
  for (auto p : m.src_prefixes) e.prefix(p);
  e.u32(static_cast<std::uint32_t>(m.dst_prefixes.size()));
  for (auto p : m.dst_prefixes) e.prefix(p);
}

core::ClauseMatch get_clause_match(Decoder& d) {
  core::ClauseMatch m;
  m.exact = get_mods(d);
  const std::uint32_t nsrc = d.count(5);
  m.src_prefixes.reserve(nsrc);
  for (std::uint32_t i = 0; i < nsrc; ++i) m.src_prefixes.push_back(d.prefix());
  const std::uint32_t ndst = d.count(5);
  m.dst_prefixes.reserve(ndst);
  for (std::uint32_t i = 0; i < ndst; ++i) m.dst_prefixes.push_back(d.prefix());
  return m;
}

void put_outbound_clause(Encoder& e, const core::OutboundClause& c) {
  put_clause_match(e, c.match);
  e.u32(c.to);
}

core::OutboundClause get_outbound_clause(Decoder& d) {
  core::OutboundClause c;
  c.match = get_clause_match(d);
  c.to = d.u32();
  return c;
}

void put_inbound_clause(Encoder& e, const core::InboundClause& c) {
  put_clause_match(e, c.match);
  put_mods(e, c.rewrites);
  e.boolean(c.to_port.has_value());
  if (c.to_port) e.u64(*c.to_port);
}

core::InboundClause get_inbound_clause(Decoder& d) {
  core::InboundClause c;
  c.match = get_clause_match(d);
  c.rewrites = get_mods(d);
  if (d.boolean()) c.to_port = static_cast<std::size_t>(d.u64());
  return c;
}

void put_participant(Encoder& e, const core::Participant& p) {
  e.u32(p.id);
  e.str(p.name);
  e.u32(p.asn);
  e.u32(static_cast<std::uint32_t>(p.ports.size()));
  for (const auto& port : p.ports) {
    e.u32(port.id);
    e.mac(port.router_mac);
    e.ip(port.router_ip);
  }
  e.u32(static_cast<std::uint32_t>(p.outbound.size()));
  for (const auto& c : p.outbound) put_outbound_clause(e, c);
  e.u32(static_cast<std::uint32_t>(p.inbound.size()));
  for (const auto& c : p.inbound) put_inbound_clause(e, c);
}

core::Participant get_participant(Decoder& d) {
  core::Participant p;
  p.id = d.u32();
  p.name = d.str();
  p.asn = d.u32();
  const std::uint32_t nports = d.count();
  p.ports.reserve(nports);
  for (std::uint32_t i = 0; i < nports; ++i) {
    core::PhysicalPort port;
    port.id = d.u32();
    port.router_mac = d.mac();
    port.router_ip = d.ip();
    p.ports.push_back(port);
  }
  const std::uint32_t nout = d.count();
  p.outbound.reserve(nout);
  for (std::uint32_t i = 0; i < nout; ++i) {
    p.outbound.push_back(get_outbound_clause(d));
  }
  const std::uint32_t nin = d.count();
  p.inbound.reserve(nin);
  for (std::uint32_t i = 0; i < nin; ++i) {
    p.inbound.push_back(get_inbound_clause(d));
  }
  return p;
}

void put_route(Encoder& e, const bgp::Route& r) {
  e.prefix(r.prefix);
  e.u8(static_cast<std::uint8_t>(r.attrs.origin));
  put_as_path(e, r.attrs.as_path);
  e.ip(r.attrs.next_hop);
  e.boolean(r.attrs.med.has_value());
  if (r.attrs.med) e.u32(*r.attrs.med);
  e.boolean(r.attrs.local_pref.has_value());
  if (r.attrs.local_pref) e.u32(*r.attrs.local_pref);
  e.u32(static_cast<std::uint32_t>(r.attrs.communities.size()));
  for (bgp::Community c : r.attrs.communities) e.u32(c);
  e.u32(r.learned_from);
  e.ip(r.peer_router_id);
}

bgp::Route get_route(Decoder& d) {
  bgp::Route r;
  r.prefix = d.prefix();
  const std::uint8_t origin = d.u8();
  if (origin > 2) throw CodecError("origin out of range");
  r.attrs.origin = static_cast<bgp::Origin>(origin);
  r.attrs.as_path = get_as_path(d);
  r.attrs.next_hop = d.ip();
  if (d.boolean()) r.attrs.med = d.u32();
  if (d.boolean()) r.attrs.local_pref = d.u32();
  const std::uint32_t ncomm = d.count(4);
  r.attrs.communities.reserve(ncomm);
  for (std::uint32_t i = 0; i < ncomm; ++i) {
    r.attrs.communities.push_back(d.u32());
  }
  r.learned_from = d.u32();
  r.peer_router_id = d.ip();
  return r;
}

void put_flow_match(Encoder& e, const net::FlowMatch& m) {
  for (net::Field f : net::kAllFields) {
    e.u64(m.field(f).value());
    e.u64(m.field(f).mask());
  }
}

net::FlowMatch get_flow_match(Decoder& d) {
  net::FlowMatch m;
  for (net::Field f : net::kAllFields) {
    const std::uint64_t value = d.u64();
    const std::uint64_t mask = d.u64();
    m.set(f, field_match_from(value, mask));
  }
  return m;
}

void put_action_seq(Encoder& e, const policy::ActionSeq& a) {
  put_mods(e, a.mods());
}

policy::ActionSeq get_action_seq(Decoder& d) {
  policy::ActionSeq a;
  for (const auto& [f, v] : get_mods(d)) a.then_set(f, v);
  return a;
}

void put_rule(Encoder& e, const policy::Rule& r) {
  put_flow_match(e, r.match);
  e.u32(static_cast<std::uint32_t>(r.actions.size()));
  for (const auto& a : r.actions) put_action_seq(e, a);
}

policy::Rule get_rule(Decoder& d) {
  policy::Rule r;
  r.match = get_flow_match(d);
  const std::uint32_t n = d.count();
  r.actions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) r.actions.push_back(get_action_seq(d));
  return r;
}

void put_classifier(Encoder& e, const policy::Classifier& c) {
  e.u32(static_cast<std::uint32_t>(c.size()));
  for (const auto& r : c.rules()) put_rule(e, r);
}

policy::Classifier get_classifier(Decoder& d) {
  const std::uint32_t n = d.count();
  std::vector<policy::Rule> rules;
  rules.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) rules.push_back(get_rule(d));
  return policy::Classifier(std::move(rules));
}

}  // namespace sdx::persist
