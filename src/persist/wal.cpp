#include "persist/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "persist/crc32c.hpp"

namespace sdx::persist {

namespace {

constexpr char kMagic[8] = {'S', 'D', 'X', 'W', 'A', 'L', '0', '1'};

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;  // written little-endian by Encoder on the same host family
}

void write_all(int fd, std::string_view data, const char* what) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(what);
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string frame(std::string_view payload) {
  Encoder e;
  e.u32(static_cast<std::uint32_t>(payload.size()));
  e.u32(crc32c(payload));
  std::string out = e.take();
  out.append(payload);
  return out;
}

std::string header_bytes(std::uint64_t first_lsn, bool genesis) {
  Encoder e;
  for (char c : kMagic) e.u8(static_cast<std::uint8_t>(c));
  e.u64(first_lsn);
  e.boolean(genesis);
  e.u32(crc32c(e.bytes()));
  return e.take();
}

void put_path(Encoder& e, const WalRecord& rec) {
  e.boolean(rec.has_path);
  if (rec.has_path) put_as_path(e, rec.path);
  e.u32(static_cast<std::uint32_t>(rec.communities.size()));
  for (bgp::Community c : rec.communities) e.u32(c);
}

}  // namespace

std::string encode_record(const WalRecord& rec) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(rec.type));
  e.u32(rec.participant);
  switch (rec.type) {
    case WalRecordType::kAddParticipant:
      e.str(rec.name);
      e.u32(rec.asn);
      e.u32(rec.port_count);
      break;
    case WalRecordType::kAddRemoteParticipant:
      e.str(rec.name);
      e.u32(rec.asn);
      break;
    case WalRecordType::kSetOutbound:
      e.u32(static_cast<std::uint32_t>(rec.outbound.size()));
      for (const auto& c : rec.outbound) put_outbound_clause(e, c);
      break;
    case WalRecordType::kSetInbound:
      e.u32(static_cast<std::uint32_t>(rec.inbound.size()));
      for (const auto& c : rec.inbound) put_inbound_clause(e, c);
      break;
    case WalRecordType::kAnnounce:
      e.prefix(rec.prefix);
      put_path(e, rec);
      break;
    case WalRecordType::kWithdraw:
      e.prefix(rec.prefix);
      break;
    case WalRecordType::kSessionDown:
    case WalRecordType::kInstall:
      break;
  }
  return e.take();
}

WalRecord decode_record(std::string_view payload) {
  Decoder d(payload);
  WalRecord rec;
  const std::uint8_t type = d.u8();
  if (type < 1 || type > static_cast<std::uint8_t>(WalRecordType::kInstall)) {
    throw CodecError("unknown WAL record type");
  }
  rec.type = static_cast<WalRecordType>(type);
  rec.participant = d.u32();
  switch (rec.type) {
    case WalRecordType::kAddParticipant:
      rec.name = d.str();
      rec.asn = d.u32();
      rec.port_count = d.u32();
      break;
    case WalRecordType::kAddRemoteParticipant:
      rec.name = d.str();
      rec.asn = d.u32();
      break;
    case WalRecordType::kSetOutbound: {
      const std::uint32_t n = d.count(4);
      rec.outbound.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.outbound.push_back(get_outbound_clause(d));
      }
      break;
    }
    case WalRecordType::kSetInbound: {
      const std::uint32_t n = d.count(5);
      rec.inbound.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.inbound.push_back(get_inbound_clause(d));
      }
      break;
    }
    case WalRecordType::kAnnounce: {
      rec.prefix = d.prefix();
      rec.has_path = d.boolean();
      if (rec.has_path) rec.path = get_as_path(d);
      const std::uint32_t n = d.count(4);
      rec.communities.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) rec.communities.push_back(d.u32());
      break;
    }
    case WalRecordType::kWithdraw:
      rec.prefix = d.prefix();
      break;
    case WalRecordType::kSessionDown:
    case WalRecordType::kInstall:
      break;
  }
  if (!d.done()) throw CodecError("trailing bytes in WAL record");
  return rec;
}

WalSegment read_wal_segment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_errno("open WAL segment " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  WalSegment seg;
  if (data.size() >= kWalHeaderBytes &&
      std::memcmp(data.data(), kMagic, sizeof kMagic) == 0) {
    const std::uint32_t stored = load_u32(data.data() + kWalHeaderBytes - 4);
    if (stored == crc32c({data.data(), kWalHeaderBytes - 4})) {
      Decoder d(std::string_view(data).substr(sizeof kMagic));
      seg.first_lsn = d.u64();
      seg.genesis = d.boolean();
      seg.header_valid = true;
    }
  }
  if (!seg.header_valid) {
    // A header that never hit the disk whole: the entire file is a torn
    // prefix (only possible when the crash raced segment creation).
    seg.torn_bytes = data.size();
    return seg;
  }
  std::size_t pos = kWalHeaderBytes;
  seg.valid_bytes = pos;
  while (data.size() - pos >= kWalFrameBytes) {
    const std::uint32_t len = load_u32(data.data() + pos);
    const std::uint32_t stored_crc = load_u32(data.data() + pos + 4);
    if (data.size() - pos - kWalFrameBytes < len) break;  // torn payload
    const std::string_view payload(data.data() + pos + kWalFrameBytes, len);
    if (crc32c(payload) != stored_crc) break;  // corrupt or torn frame
    seg.payloads.emplace_back(payload);
    pos += kWalFrameBytes + len;
    seg.valid_bytes = pos;
  }
  seg.torn_bytes = data.size() - seg.valid_bytes;
  return seg;
}

WalWriter WalWriter::create(const std::string& path, std::uint64_t first_lsn,
                            bool genesis) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw_errno("create WAL segment " + path);
  WalWriter w(fd, 0);
  const std::string header = header_bytes(first_lsn, genesis);
  write_all(fd, header, "write WAL header");
  w.size_ = header.size();
  return w;
}

WalWriter WalWriter::open_append(const std::string& path,
                                 std::uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) throw_errno("open WAL segment " + path);
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("truncate torn WAL tail " + path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("seek WAL segment " + path);
  }
  return WalWriter(fd, valid_bytes);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), size_(other.size_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    size_ = other.size_;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t WalWriter::append(std::string_view payload) {
  const std::string framed = frame(payload);
  write_all(fd_, framed, "append WAL record");
  size_ += framed.size();
  return framed.size();
}

void WalWriter::sync() {
  if (::fsync(fd_) != 0) throw_errno("fsync WAL segment");
}

}  // namespace sdx::persist
