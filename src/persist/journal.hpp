#pragma once

/// \file journal.hpp
/// The journal: one directory holding the newest checkpoint plus the WAL
/// segments that follow it. Owns segment rotation, torn-tail truncation,
/// checkpoint-anchored pruning and the crash-recovery scan.
///
/// Directory contents:
///
///   checkpoint-<lsn>.ckpt   at most one after a clean checkpoint; an older
///                           one may linger across the crash window and is
///                           ignored once a newer one validates
///   wal-<first-lsn>.log     segments in LSN order; the last one is the
///                           append target
///   *.tmp                   checkpoint write in flight; always ignored
///
/// Construction scans the directory: the newest *valid* checkpoint wins
/// (corrupt ones fall back to older), segments are walked in LSN order,
/// every record is assigned its LSN by position, records already covered by
/// the checkpoint are skipped and the rest become the replay tail. The scan
/// stops at the first torn frame — anything after it (including whole later
/// segments) is unreachable state from a crashed process and is discarded
/// when recording starts.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/checkpoint.hpp"
#include "persist/wal.hpp"

namespace sdx::telemetry {
class Counter;
class Histogram;
}  // namespace sdx::telemetry

namespace sdx::persist {

class Journal {
 public:
  struct Options {
    enum class Fsync {
      kNever,        ///< rely on the OS page cache (benchmarks)
      kOnCheckpoint, ///< fsync segments only when a checkpoint anchors them
      kEveryRecord,  ///< fsync after every append (full durability)
    };
    Fsync fsync = Fsync::kOnCheckpoint;
  };

  /// Telemetry attachment points (all optional; null = not recorded).
  struct Hooks {
    telemetry::Counter* records = nullptr;
    telemetry::Counter* bytes = nullptr;
    telemetry::Counter* checkpoints = nullptr;
    telemetry::Histogram* fsync_seconds = nullptr;
  };

  /// Opens (creating if needed) the journal directory and scans it.
  /// Throws std::system_error on I/O failure. (Two overloads rather than a
  /// default argument: Options' member initializers are not available as a
  /// default-argument initializer inside Journal's own definition.)
  Journal(std::string dir, Options options);
  explicit Journal(std::string dir) : Journal(std::move(dir), Options()) {}

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& directory() const { return dir_; }

  /// True when the directory held no checkpoint and no WAL records.
  bool empty() const {
    return !checkpoint_.has_value() && tail_.empty() && !had_segments_;
  }

  /// True when the surviving segment chain starts at the runtime's birth
  /// (genesis segment, nothing pruned) — i.e. the WAL alone can rebuild the
  /// full state even without a checkpoint.
  bool complete_history() const { return complete_history_; }

  const std::optional<CheckpointState>& checkpoint() const {
    return checkpoint_;
  }

  /// Records past the checkpoint, in LSN order — the replay tail.
  const std::vector<WalRecord>& tail() const { return tail_; }

  /// Bytes discarded by torn-tail detection during the scan.
  std::uint64_t torn_bytes() const { return torn_bytes_; }

  std::uint64_t next_lsn() const { return next_lsn_; }
  std::uint64_t last_checkpoint_lsn() const { return last_checkpoint_lsn_; }

  /// Total WAL bytes appended through this handle (frames included).
  std::uint64_t bytes_appended() const { return bytes_appended_; }

  bool recording() const { return recording_; }

  void set_hooks(const Hooks& hooks) { hooks_ = hooks; }

  /// Transitions from scanning to appending: truncates the torn tail,
  /// deletes unreachable post-tear segments, and opens (or creates) the
  /// active segment. \p genesis_if_new marks a brand-new journal's first
  /// segment as a complete-history chain.
  void start_recording(bool genesis_if_new);

  /// Appends one record; returns its LSN. Requires start_recording().
  std::uint64_t append(const WalRecord& rec);

  /// fsync the active segment (no-op when not recording).
  void sync();

  /// Writes \p state (its lsn field is overwritten with next_lsn()) as the
  /// new checkpoint, rotates the WAL to a fresh segment anchored at that
  /// LSN, and prunes segments and checkpoints the new checkpoint
  /// supersedes. Returns the checkpoint LSN.
  std::uint64_t write_checkpoint(CheckpointState state);

 private:
  std::string segment_path(std::uint64_t first_lsn) const;
  std::string checkpoint_path(std::uint64_t lsn) const;
  void scan();
  void timed_sync();

  std::string dir_;
  Options options_;
  Hooks hooks_;

  std::optional<CheckpointState> checkpoint_;
  std::vector<WalRecord> tail_;
  std::uint64_t next_lsn_ = 0;
  std::uint64_t last_checkpoint_lsn_ = 0;
  std::uint64_t torn_bytes_ = 0;
  std::uint64_t bytes_appended_ = 0;
  bool had_segments_ = false;
  bool complete_history_ = false;

  /// (first_lsn, path) of every live segment, ascending.
  std::vector<std::pair<std::uint64_t, std::string>> segments_;
  /// Unreachable files found by the scan; deleted at start_recording().
  std::vector<std::string> stale_paths_;
  /// Append target (last of segments_) and its clean length.
  std::uint64_t active_valid_bytes_ = 0;
  bool have_active_ = false;

  std::optional<WalWriter> writer_;
  bool recording_ = false;
};

}  // namespace sdx::persist
