#include "policy/compile.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace sdx::policy {

namespace {

std::vector<ActionSeq> pass_actions() { return {ActionSeq{}}; }

/// Cross-product combination of two *total* filter classifiers under a
/// boolean connective. First-match-wins is preserved because, for any
/// packet, the first matching (r_a, r_b) pair in lexicographic rule order
/// pairs the first matching rule of each input.
Classifier filter_cross(const Classifier& a, const Classifier& b,
                        bool conjunction) {
  std::vector<Rule> out;
  out.reserve(a.size() * b.size() / 2 + 1);
  for (const auto& ra : a.rules()) {
    for (const auto& rb : b.rules()) {
      auto m = ra.match.intersect(rb.match);
      if (!m) continue;
      const bool pa = !ra.drops();
      const bool pb = !rb.drops();
      const bool pass = conjunction ? (pa && pb) : (pa || pb);
      out.push_back(Rule{*m, pass ? pass_actions() : std::vector<ActionSeq>{}});
    }
  }
  Classifier c(std::move(out));
  c.optimize(false);
  return c;
}

/// Restricts every rule of \p c to the flow space \p fm and appends a
/// catch-all drop: the classifier for `fm ∧ c`.
Classifier restrict_to(const Classifier& c, const net::FlowMatch& fm) {
  std::vector<Rule> out;
  out.reserve(c.size() + 1);
  for (const auto& r : c.rules()) {
    auto m = r.match.intersect(fm);
    if (!m) continue;
    out.push_back(Rule{*m, r.actions});
  }
  out.push_back(Rule{net::FlowMatch::any(), {}});
  Classifier result(std::move(out));
  result.optimize(false);
  return result;
}

/// Dedupe-preserving union of two action sets (semantic equality via the
/// normalized form).
std::vector<ActionSeq> union_actions(const std::vector<ActionSeq>& a,
                                     const std::vector<ActionSeq>& b) {
  std::vector<ActionSeq> out = a;
  std::vector<ActionSeq> norms;
  norms.reserve(a.size() + b.size());
  for (const auto& x : a) norms.push_back(x.normalized());
  for (const auto& y : b) {
    ActionSeq ny = y.normalized();
    if (std::find(norms.begin(), norms.end(), ny) == norms.end()) {
      norms.push_back(ny);
      out.push_back(y);
    }
  }
  return out;
}

}  // namespace

std::vector<Rule> pull_back(const net::FlowMatch& domain, const ActionSeq& act,
                            const Classifier& b) {
  std::vector<Rule> out;
  for (const auto& rb : b.rules()) {
    net::FlowMatch m = domain;
    bool feasible = true;
    for (auto f : net::kAllFields) {
      const net::FieldMatch& constraint = rb.match.field(f);
      if (constraint.is_wildcard()) continue;
      if (auto v = act.written(f)) {
        // The action fixes this field: the constraint is either always
        // satisfied (and vacuous for the pre-image) or never.
        if (!constraint.matches(*v)) {
          feasible = false;
          break;
        }
      } else {
        auto merged = m.field(f).intersect(constraint);
        if (!merged) {
          feasible = false;
          break;
        }
        m.set(f, *merged);
      }
    }
    if (!feasible) continue;
    std::vector<ActionSeq> acts;
    acts.reserve(rb.actions.size());
    for (const auto& ab : rb.actions) acts.push_back(act.then(ab));
    out.push_back(Rule{m, std::move(acts)});
  }
  return out;
}

namespace {

/// Merges two rule lists that each fully cover the same domain, unioning
/// actions — used to realize multicast (a rule with several action
/// sequences) under sequential composition.
std::vector<Rule> merge_covering(const std::vector<Rule>& a,
                                 const std::vector<Rule>& b) {
  std::vector<Rule> out;
  out.reserve(a.size() * b.size() / 2 + 1);
  for (const auto& ra : a) {
    for (const auto& rb : b) {
      auto m = ra.match.intersect(rb.match);
      if (!m) continue;
      out.push_back(Rule{*m, union_actions(ra.actions, rb.actions)});
    }
  }
  return out;
}

}  // namespace

Classifier compile_predicate(const Predicate& pred) {
  using Kind = Predicate::Kind;
  switch (pred.kind()) {
    case Kind::kTrue:
      return Classifier::pass_all();
    case Kind::kFalse:
      return Classifier::drop_all();
    case Kind::kTest: {
      net::FlowMatch m;
      m.set(pred.field(), pred.field_match());
      return Classifier({Rule{m, pass_actions()},
                         Rule{net::FlowMatch::any(), {}}});
    }
    case Kind::kNot: {
      Classifier c = compile_predicate(pred.children().front());
      for (auto& r : c.rules()) {
        r.actions = r.drops() ? pass_actions() : std::vector<ActionSeq>{};
      }
      return c;
    }
    case Kind::kAnd: {
      // Fast path: fold all single-test children into one FlowMatch, then
      // restrict the (much rarer) compound children to it.
      net::FlowMatch conj;
      bool contradictory = false;
      std::vector<const Predicate*> rest;
      for (const auto& c : pred.children()) {
        if (c.kind() == Kind::kTest) {
          auto merged = conj.field(c.field()).intersect(c.field_match());
          if (!merged) {
            contradictory = true;
            break;
          }
          conj.set(c.field(), *merged);
        } else {
          rest.push_back(&c);
        }
      }
      if (contradictory) return Classifier::drop_all();
      if (rest.empty()) {
        return Classifier({Rule{conj, pass_actions()},
                           Rule{net::FlowMatch::any(), {}}});
      }
      Classifier acc = compile_predicate(*rest.front());
      for (std::size_t i = 1; i < rest.size(); ++i) {
        acc = filter_cross(acc, compile_predicate(*rest[i]),
                           /*conjunction=*/true);
      }
      return restrict_to(acc, conj);
    }
    case Kind::kOr: {
      // Fast path: single-test children become plain pass rules up front —
      // this keeps BGP prefix-list filters (hundreds of disjuncts) linear
      // instead of quadratic.
      std::vector<Rule> test_rules;
      std::vector<const Predicate*> rest;
      for (const auto& c : pred.children()) {
        if (c.kind() == Kind::kTest) {
          net::FlowMatch m;
          m.set(c.field(), c.field_match());
          test_rules.push_back(Rule{m, pass_actions()});
        } else {
          rest.push_back(&c);
        }
      }
      Classifier tail = Classifier::drop_all();
      if (!rest.empty()) {
        tail = compile_predicate(*rest.front());
        for (std::size_t i = 1; i < rest.size(); ++i) {
          tail = filter_cross(tail, compile_predicate(*rest[i]),
                              /*conjunction=*/false);
        }
      }
      Classifier out(std::move(test_rules));
      out.append(tail);
      out.optimize(false);
      return out;
    }
  }
  return Classifier::drop_all();
}

Classifier par_compose(const Classifier& a, const Classifier& b) {
  std::vector<Rule> out;
  out.reserve(a.size() + b.size());
  for (const auto& ra : a.rules()) {
    for (const auto& rb : b.rules()) {
      auto m = ra.match.intersect(rb.match);
      if (!m) continue;
      out.push_back(Rule{*m, union_actions(ra.actions, rb.actions)});
    }
  }
  Classifier c(std::move(out));
  c.optimize(false);
  return c;
}

Classifier seq_compose(const Classifier& a, const Classifier& b) {
  std::vector<Rule> out;
  for (const auto& ra : a.rules()) {
    if (ra.drops()) {
      out.push_back(ra);
      continue;
    }
    // One covering rule list per action sequence, merged pairwise so that a
    // multicast rule fans out through b once per copy.
    std::vector<Rule> merged = pull_back(ra.match, ra.actions.front(), b);
    for (std::size_t i = 1; i < ra.actions.size(); ++i) {
      merged = merge_covering(merged, pull_back(ra.match, ra.actions[i], b));
    }
    out.insert(out.end(), merged.begin(), merged.end());
  }
  Classifier c(std::move(out));
  c.optimize(false);
  return c;
}

Classifier compile(const Policy& policy) {
  using Kind = Policy::Kind;
  switch (policy.kind()) {
    case Kind::kDrop:
      return Classifier::drop_all();
    case Kind::kIdentity:
      return Classifier::pass_all();
    case Kind::kFilter:
      return compile_predicate(policy.pred());
    case Kind::kMod: {
      std::vector<ActionSeq> act{
          ActionSeq::set(policy.mod_field(), policy.mod_value())};
      std::vector<Rule> rules{Rule{net::FlowMatch::any(), std::move(act)}};
      return Classifier(std::move(rules));
    }
    case Kind::kParallel: {
      Classifier acc = compile(policy.children().front());
      for (std::size_t i = 1; i < policy.children().size(); ++i) {
        acc = par_compose(acc, compile(policy.children()[i]));
      }
      return acc;
    }
    case Kind::kSequential: {
      Classifier acc = compile(policy.children().front());
      for (std::size_t i = 1; i < policy.children().size(); ++i) {
        acc = seq_compose(acc, compile(policy.children()[i]));
      }
      return acc;
    }
  }
  return Classifier::drop_all();
}

}  // namespace sdx::policy
