#pragma once

/// \file compile.hpp
/// Compilation of policies to classifiers, plus the two classifier
/// composition algorithms the SDX runtime builds on (paper §4.1/§4.3).
///
/// Invariant: every classifier produced here is *total* — its last rule is a
/// catch-all — so composition never needs an implicit default. Compilation
/// is semantics-preserving: for every policy P and packet h,
/// compile(P).evaluate(h) equals P.eval(h) as a set (property-tested).

#include "policy/classifier.hpp"
#include "policy/policy.hpp"
#include "policy/predicate.hpp"

namespace sdx::policy {

/// Compiles a predicate to a filter classifier whose rules either pass the
/// packet unchanged or drop it.
Classifier compile_predicate(const Predicate& pred);

/// Compiles a policy to an equivalent total classifier.
Classifier compile(const Policy& policy);

/// Parallel composition (`+`): the packet is processed by both classifiers
/// and the outputs are unioned. Both inputs must be total. Cost is
/// O(|a| · |b|) — the "cross-product of predicates" the paper's §4.3
/// optimizations work to avoid.
Classifier par_compose(const Classifier& a, const Classifier& b);

/// Sequential composition (`>>`): packets produced by \p a are processed by
/// \p b. Matches of \p b are pulled backward through \p a's rewrites.
Classifier seq_compose(const Classifier& a, const Classifier& b);

/// The per-rule kernel of sequential composition, exposed for the SDX
/// compiler's *targeted* composition (paper §4.3.1: compose a stage-1 rule
/// only with the one participant's stage-2 policy it forwards into): pulls
/// every rule of \p through backward through action \p act, restricted to
/// sender flow space \p domain. When \p through is total, the returned
/// matches cover \p domain.
std::vector<Rule> pull_back(const net::FlowMatch& domain, const ActionSeq& act,
                            const Classifier& through);

}  // namespace sdx::policy
