#include "policy/policy.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sdx::policy {

Policy Policy::parallel(std::vector<Policy> children) {
  std::vector<Policy> flat;
  for (auto& c : children) {
    if (c.kind_ == Kind::kDrop) continue;  // drop is the unit of `+`
    if (c.kind_ == Kind::kParallel) {
      for (auto& g : c.children_) flat.push_back(std::move(g));
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return drop();
  if (flat.size() == 1) return std::move(flat.front());
  Policy p(Kind::kParallel);
  p.children_ = std::move(flat);
  return p;
}

Policy Policy::sequential(std::vector<Policy> children) {
  std::vector<Policy> flat;
  for (auto& c : children) {
    if (c.kind_ == Kind::kIdentity) continue;  // identity is the unit of `>>`
    if (c.kind_ == Kind::kDrop) {
      // drop annihilates everything after it; and anything before it
      // produces packets that are then dropped, so the whole chain drops.
      return drop();
    }
    if (c.kind_ == Kind::kSequential) {
      for (auto& g : c.children_) flat.push_back(std::move(g));
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return identity();
  if (flat.size() == 1) return std::move(flat.front());
  Policy p(Kind::kSequential);
  p.children_ = std::move(flat);
  return p;
}

namespace {

void push_unique(std::vector<PacketHeader>& out, const PacketHeader& h) {
  if (std::find(out.begin(), out.end(), h) == out.end()) out.push_back(h);
}

}  // namespace

std::vector<PacketHeader> Policy::eval(const PacketHeader& h) const {
  switch (kind_) {
    case Kind::kDrop:
      return {};
    case Kind::kIdentity:
      return {h};
    case Kind::kFilter:
      if (pred_.eval(h)) return {h};
      return {};
    case Kind::kMod: {
      PacketHeader out = h;
      out.set(field_, value_);
      return {out};
    }
    case Kind::kParallel: {
      std::vector<PacketHeader> out;
      for (const auto& c : children_) {
        for (const auto& produced : c.eval(h)) push_unique(out, produced);
      }
      return out;
    }
    case Kind::kSequential: {
      std::vector<PacketHeader> current{h};
      for (const auto& c : children_) {
        std::vector<PacketHeader> next;
        for (const auto& pkt : current) {
          for (const auto& produced : c.eval(pkt)) push_unique(next, produced);
        }
        current = std::move(next);
        if (current.empty()) break;
      }
      return current;
    }
  }
  return {};
}

std::size_t Policy::node_count() const {
  std::size_t n = 1;
  for (const auto& c : children_) n += c.node_count();
  return n;
}

std::string Policy::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kDrop:
      os << "drop";
      break;
    case Kind::kIdentity:
      os << "id";
      break;
    case Kind::kFilter:
      os << "match(" << pred_.to_string() << ")";
      break;
    case Kind::kMod:
      if (field_ == Field::kPort) {
        os << "fwd(" << value_ << ")";
      } else {
        os << "mod(" << net::field_name(field_) << ":=" << value_ << ")";
      }
      break;
    case Kind::kParallel:
    case Kind::kSequential: {
      const char* sep = kind_ == Kind::kParallel ? " + " : " >> ";
      os << "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << sep;
        os << children_[i].to_string();
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Policy& p) {
  return os << p.to_string();
}

}  // namespace sdx::policy
