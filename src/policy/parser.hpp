#pragma once

/// \file parser.hpp
/// Text parser for the policy language — the inverse of Policy::to_string
/// (up to semantic equivalence). Lets policies live in config files and
/// command lines:
///
///   (match(dstport=80) >> fwd(10)) + (match(dstport=443) >> fwd(11))
///   match((srcip=96.25.160.0/24 & !(ipproto=17))) >> mod(dstip:=1249705985)
///
/// Grammar (whitespace-insensitive):
///   policy  := seq ('+' seq)*                      // '+' binds loosest
///   seq     := prim ('>>' prim)*
///   prim    := 'drop' | 'id' | 'fwd' '(' value ')'
///            | 'mod' '(' field ':=' value ')'
///            | 'match' '(' pred ')' | '(' policy ')'
///   pred    := conj ('|' conj)*
///   conj    := unary ('&' unary)*
///   unary   := '!' unary | '(' pred ')' | 'true' | 'false'
///            | field '=' value
///   value   := decimal | a.b.c.d | a.b.c.d/len | aa:bb:cc:dd:ee:ff
///
/// Fields are the names of netbase's Field enum (port, srcmac, dstmac,
/// ethtype, srcip, dstip, ipproto, srcport, dstport). IP-field tests accept
/// prefixes; every other position takes the raw numeric value.

#include <optional>
#include <string>

#include "policy/policy.hpp"

namespace sdx::policy {

/// Parses a policy expression; throws std::invalid_argument with a
/// position-annotated message on malformed input.
Policy parse_policy(std::string_view text);

/// Non-throwing variant: std::nullopt on failure, diagnostic in *error.
std::optional<Policy> try_parse_policy(std::string_view text,
                                       std::string* error = nullptr);

/// Parses a bare predicate expression.
Predicate parse_predicate(std::string_view text);

}  // namespace sdx::policy
