#include "policy/parser.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>
#include <vector>

namespace sdx::policy {

namespace {

struct Token {
  enum class Kind : std::uint8_t {
    kAtom,    // identifier or value: [A-Za-z0-9_.:/]+
    kLParen,
    kRParen,
    kPlus,
    kSeq,     // >>
    kAssign,  // :=
    kEquals,
    kAnd,
    kOr,
    kNot,
    kEnd,
  };
  Kind kind;
  std::string text;
  std::size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(what + " at offset " +
                                std::to_string(current_.pos) + " in policy");
  }

 private:
  static bool atom_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '/' || c == ':';
  }

  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const std::size_t start = pos_;
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::kEnd, "", start};
      return;
    }
    const char c = text_[pos_];
    auto simple = [this, start](Token::Kind kind, const char* s,
                                std::size_t n) {
      pos_ += n;
      current_ = {kind, std::string(s, n), start};
    };
    switch (c) {
      case '(': return simple(Token::Kind::kLParen, "(", 1);
      case ')': return simple(Token::Kind::kRParen, ")", 1);
      case '+': return simple(Token::Kind::kPlus, "+", 1);
      case '&': return simple(Token::Kind::kAnd, "&", 1);
      case '|': return simple(Token::Kind::kOr, "|", 1);
      case '!': return simple(Token::Kind::kNot, "!", 1);
      case '=': return simple(Token::Kind::kEquals, "=", 1);
      case '>':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          return simple(Token::Kind::kSeq, ">>", 2);
        }
        break;
      case ':':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          return simple(Token::Kind::kAssign, ":=", 2);
        }
        break;
      default:
        break;
    }
    if (!atom_char(c)) {
      current_ = {Token::Kind::kEnd, std::string(1, c), start};
      throw std::invalid_argument("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start) + " in policy");
    }
    std::size_t end = pos_;
    while (end < text_.size() && atom_char(text_[end])) {
      // ':' starts the ':=' operator unless it continues a MAC address.
      if (text_[end] == ':' && end + 1 < text_.size() &&
          text_[end + 1] == '=') {
        break;
      }
      ++end;
    }
    current_ = {Token::Kind::kAtom, std::string(text_.substr(pos_, end - pos_)),
                start};
    pos_ = end;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_{Token::Kind::kEnd, "", 0};
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  Policy policy() {
    Policy out = parse_sum();
    expect(Token::Kind::kEnd, "end of input");
    return out;
  }

  Predicate predicate() {
    Predicate out = parse_or();
    expect(Token::Kind::kEnd, "end of input");
    return out;
  }

 private:
  Token expect(Token::Kind kind, const char* what) {
    if (lexer_.peek().kind != kind) {
      lexer_.fail("expected " + std::string(what) + ", got '" +
                  lexer_.peek().text + "'");
    }
    return lexer_.take();
  }

  std::optional<net::Field> field_named(const std::string& name) {
    for (auto f : net::kAllFields) {
      if (net::field_name(f) == name) return f;
    }
    return std::nullopt;
  }

  std::uint64_t numeric_value(const Token& tok) {
    if (auto mac = net::MacAddress::try_parse(tok.text)) return mac->bits();
    if (auto addr = net::Ipv4Address::try_parse(tok.text)) {
      return addr->value();
    }
    std::uint64_t v = 0;
    auto [ptr, ec] =
        std::from_chars(tok.text.data(), tok.text.data() + tok.text.size(), v);
    if (ec != std::errc{} || ptr != tok.text.data() + tok.text.size()) {
      lexer_.fail("expected a value, got '" + tok.text + "'");
    }
    return v;
  }

  Policy parse_sum() {
    std::vector<Policy> terms{parse_seq()};
    while (lexer_.peek().kind == Token::Kind::kPlus) {
      lexer_.take();
      terms.push_back(parse_seq());
    }
    return Policy::parallel(std::move(terms));
  }

  Policy parse_seq() {
    std::vector<Policy> stages{parse_prim()};
    while (lexer_.peek().kind == Token::Kind::kSeq) {
      lexer_.take();
      stages.push_back(parse_prim());
    }
    return Policy::sequential(std::move(stages));
  }

  Policy parse_prim() {
    if (lexer_.peek().kind == Token::Kind::kLParen) {
      lexer_.take();
      Policy inner = parse_sum();
      expect(Token::Kind::kRParen, "')'");
      return inner;
    }
    Token head = expect(Token::Kind::kAtom, "a policy term");
    if (head.text == "drop") return drop();
    if (head.text == "id" || head.text == "identity") return identity();
    if (head.text == "fwd") {
      expect(Token::Kind::kLParen, "'('");
      Token v = expect(Token::Kind::kAtom, "a port number");
      expect(Token::Kind::kRParen, "')'");
      return fwd(static_cast<net::PortId>(numeric_value(v)));
    }
    if (head.text == "mod" || head.text == "modify") {
      expect(Token::Kind::kLParen, "'('");
      Token field_tok = expect(Token::Kind::kAtom, "a field name");
      auto field = field_named(field_tok.text);
      if (!field) lexer_.fail("unknown field '" + field_tok.text + "'");
      expect(Token::Kind::kAssign, "':='");
      Token v = expect(Token::Kind::kAtom, "a value");
      expect(Token::Kind::kRParen, "')'");
      return modify(*field, numeric_value(v));
    }
    if (head.text == "match") {
      expect(Token::Kind::kLParen, "'('");
      Predicate pred = parse_or();
      expect(Token::Kind::kRParen, "')'");
      return match(std::move(pred));
    }
    lexer_.fail("unknown policy term '" + head.text + "'");
  }

  Predicate parse_or() {
    std::vector<Predicate> terms{parse_and()};
    while (lexer_.peek().kind == Token::Kind::kOr) {
      lexer_.take();
      terms.push_back(parse_and());
    }
    return Predicate::disjunction(std::move(terms));
  }

  Predicate parse_and() {
    std::vector<Predicate> terms{parse_unary()};
    while (lexer_.peek().kind == Token::Kind::kAnd) {
      lexer_.take();
      terms.push_back(parse_unary());
    }
    return Predicate::conjunction(std::move(terms));
  }

  Predicate parse_unary() {
    if (lexer_.peek().kind == Token::Kind::kNot) {
      lexer_.take();
      return Predicate::negation(parse_unary());
    }
    if (lexer_.peek().kind == Token::Kind::kLParen) {
      lexer_.take();
      Predicate inner = parse_or();
      expect(Token::Kind::kRParen, "')'");
      return inner;
    }
    Token head = expect(Token::Kind::kAtom, "a predicate");
    if (head.text == "true") return Predicate::truth();
    if (head.text == "false") return Predicate::falsity();
    auto field = field_named(head.text);
    if (!field) lexer_.fail("unknown field '" + head.text + "'");
    expect(Token::Kind::kEquals, "'='");
    Token v = expect(Token::Kind::kAtom, "a value");
    if (net::is_ip_field(*field)) {
      if (auto prefix = net::Ipv4Prefix::try_parse(v.text)) {
        return Predicate::test(*field, *prefix);
      }
      if (auto addr = net::Ipv4Address::try_parse(v.text)) {
        return Predicate::test(*field, net::Ipv4Prefix::host(*addr));
      }
      // Fall through: decimal form of an address (as to_string of a /32
      // never emits, but mod() values can round-trip through here).
    }
    return Predicate::test(*field, numeric_value(v));
  }

  Lexer lexer_;
};

}  // namespace

Policy parse_policy(std::string_view text) {
  return Parser(text).policy();
}

std::optional<Policy> try_parse_policy(std::string_view text,
                                       std::string* error) {
  try {
    return parse_policy(text);
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

Predicate parse_predicate(std::string_view text) {
  return Parser(text).predicate();
}

}  // namespace sdx::policy
