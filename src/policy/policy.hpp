#pragma once

/// \file policy.hpp
/// The Pyretic-style policy language of paper §3.1: a policy maps a located
/// packet to a set of located packets. Composition is by `+` (parallel) and
/// `>>` (sequential), exactly as written in the paper's examples:
///
///   (match_dstport(80) >> fwd(B)) + (match_dstport(443) >> fwd(C))
///
/// The AST is value-semantic; `eval` gives the reference semantics against
/// which the classifier compiler (compile.hpp) is property-tested.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netbase/ip.hpp"
#include "netbase/packet.hpp"
#include "policy/predicate.hpp"

namespace sdx::policy {

using net::PortId;

class Policy {
 public:
  enum class Kind : std::uint8_t {
    kDrop,        ///< drop every packet
    kIdentity,    ///< pass every packet unchanged
    kFilter,      ///< pass packets satisfying a predicate, drop the rest
    kMod,         ///< rewrite one header field
    kParallel,    ///< union of the children's outputs (`+`)
    kSequential,  ///< feed each child's output into the next (`>>`)
  };

  /// Default-constructed policy drops everything (the paper's convention:
  /// "if neither of the two policies matches, the packet is dropped").
  Policy() : kind_(Kind::kDrop) {}

  static Policy drop() { return Policy(Kind::kDrop); }
  static Policy identity() { return Policy(Kind::kIdentity); }
  static Policy filter(Predicate p) {
    Policy out(Kind::kFilter);
    out.pred_ = std::move(p);
    return out;
  }
  static Policy mod(Field f, std::uint64_t v) {
    Policy out(Kind::kMod);
    out.field_ = f;
    out.value_ = v;
    return out;
  }
  static Policy parallel(std::vector<Policy> children);
  static Policy sequential(std::vector<Policy> children);

  Kind kind() const { return kind_; }
  const Predicate& pred() const { return pred_; }
  Field mod_field() const { return field_; }
  std::uint64_t mod_value() const { return value_; }
  const std::vector<Policy>& children() const { return children_; }

  bool is_drop() const { return kind_ == Kind::kDrop; }

  /// Reference semantics: the set of packets this policy produces for \p h.
  /// Duplicates are removed; order is deterministic (first-produced first).
  std::vector<PacketHeader> eval(const PacketHeader& h) const;

  /// Number of AST nodes (a size diagnostic used by benchmarks).
  std::size_t node_count() const;

  std::string to_string() const;

  friend Policy operator+(Policy a, Policy b) {
    return parallel({std::move(a), std::move(b)});
  }
  friend Policy operator>>(Policy a, Policy b) {
    return sequential({std::move(a), std::move(b)});
  }

 private:
  explicit Policy(Kind kind) : kind_(kind) {}

  Kind kind_;
  Predicate pred_;              // kFilter
  Field field_ = Field::kPort;  // kMod
  std::uint64_t value_ = 0;     // kMod
  std::vector<Policy> children_;
};

std::ostream& operator<<(std::ostream& os, const Policy& p);

// ---------------------------------------------------------------------------
// Builders mirroring the paper's surface syntax.

/// match(dstport = 80) — a filter on one exact field value.
inline Policy match(Field f, std::uint64_t v) {
  return Policy::filter(Predicate::test(f, v));
}
/// match(dstip = p1) — a filter on an IP prefix.
inline Policy match(Field f, net::Ipv4Prefix p) {
  return Policy::filter(Predicate::test(f, p));
}
/// match over an arbitrary predicate.
inline Policy match(Predicate p) { return Policy::filter(std::move(p)); }

/// fwd(port) — move the packet to a (possibly virtual) port.
inline Policy fwd(PortId port) { return Policy::mod(Field::kPort, port); }

/// modify(field = value), e.g. the dstip rewrite of the load balancer.
inline Policy modify(Field f, std::uint64_t v) { return Policy::mod(f, v); }
inline Policy modify(Field f, net::Ipv4Address a) {
  return Policy::mod(f, a.value());
}
inline Policy modify(Field f, net::MacAddress m) {
  return Policy::mod(f, m.bits());
}

inline Policy drop() { return Policy::drop(); }
inline Policy identity() { return Policy::identity(); }

/// Pyretic's if_(pred, then, else): apply \p then_p to packets satisfying
/// \p pred and \p else_p to the rest. Used by the SDX runtime to splice a
/// participant's policy with its BGP default (paper §4.1).
inline Policy if_(Predicate pred, Policy then_p, Policy else_p) {
  Policy negative = Policy::filter(!pred) >> std::move(else_p);
  Policy positive = Policy::filter(std::move(pred)) >> std::move(then_p);
  return std::move(positive) + std::move(negative);
}

}  // namespace sdx::policy
