#include "policy/predicate.hpp"

#include <ostream>
#include <sstream>

namespace sdx::policy {

Predicate Predicate::any_of(Field f, const std::vector<Ipv4Prefix>& prefixes) {
  if (prefixes.empty()) return falsity();
  std::vector<Predicate> tests;
  tests.reserve(prefixes.size());
  for (auto p : prefixes) tests.push_back(test(f, p));
  return disjunction(std::move(tests));
}

Predicate Predicate::conjunction(std::vector<Predicate> children) {
  // Flatten nested conjunctions and apply trivial identities.
  std::vector<Predicate> flat;
  for (auto& c : children) {
    if (c.kind_ == Kind::kTrue) continue;
    if (c.kind_ == Kind::kFalse) return falsity();
    if (c.kind_ == Kind::kAnd) {
      for (auto& g : c.children_) flat.push_back(std::move(g));
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return truth();
  if (flat.size() == 1) return std::move(flat.front());
  Predicate p(Kind::kAnd);
  p.children_ = std::move(flat);
  return p;
}

Predicate Predicate::disjunction(std::vector<Predicate> children) {
  std::vector<Predicate> flat;
  for (auto& c : children) {
    if (c.kind_ == Kind::kFalse) continue;
    if (c.kind_ == Kind::kTrue) return truth();
    if (c.kind_ == Kind::kOr) {
      for (auto& g : c.children_) flat.push_back(std::move(g));
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return falsity();
  if (flat.size() == 1) return std::move(flat.front());
  Predicate p(Kind::kOr);
  p.children_ = std::move(flat);
  return p;
}

Predicate Predicate::negation(Predicate child) {
  if (child.kind_ == Kind::kTrue) return falsity();
  if (child.kind_ == Kind::kFalse) return truth();
  if (child.kind_ == Kind::kNot) return std::move(child.children_.front());
  Predicate p(Kind::kNot);
  p.children_.push_back(std::move(child));
  return p;
}

bool Predicate::eval(const PacketHeader& h) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kTest:
      return match_.matches(h.get(field_));
    case Kind::kAnd:
      for (const auto& c : children_) {
        if (!c.eval(h)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : children_) {
        if (c.eval(h)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_.front().eval(h);
  }
  return false;
}

std::string Predicate::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTrue:
      os << "true";
      break;
    case Kind::kFalse:
      os << "false";
      break;
    case Kind::kTest:
      os << net::field_name(field_) << "=" << match_.to_string(field_);
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind_ == Kind::kAnd ? " & " : " | ";
      os << "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << sep;
        os << children_[i].to_string();
      }
      os << ")";
      break;
    }
    case Kind::kNot:
      os << "!(" << children_.front().to_string() << ")";
      break;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Predicate& p) {
  return os << p.to_string();
}

}  // namespace sdx::policy
