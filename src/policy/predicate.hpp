#pragma once

/// \file predicate.hpp
/// Boolean predicates over packet headers — the "match side" of the
/// Pyretic-style policy language of paper §3.1.
///
/// A predicate is a value-semantic expression tree over single-field tests.
/// Tests on IP fields may be CIDR prefixes. Predicates support the usual
/// boolean algebra via `&`, `|` and `!` (we deliberately do not overload
/// `&&`/`||`, which would silently lose short-circuit semantics).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netbase/field_match.hpp"
#include "netbase/ip.hpp"
#include "netbase/packet.hpp"

namespace sdx::policy {

using net::Field;
using net::FieldMatch;
using net::Ipv4Prefix;
using net::PacketHeader;

class Predicate {
 public:
  enum class Kind : std::uint8_t { kTrue, kFalse, kTest, kAnd, kOr, kNot };

  /// Constructs the `true` predicate (matches every packet).
  Predicate() : kind_(Kind::kTrue) {}

  static Predicate truth() { return Predicate(Kind::kTrue); }
  static Predicate falsity() { return Predicate(Kind::kFalse); }

  /// Single-field exact test, e.g. test(Field::kDstPort, 80).
  static Predicate test(Field f, std::uint64_t value) {
    Predicate p(Kind::kTest);
    p.field_ = f;
    p.match_ = FieldMatch::exact(value);
    return p;
  }

  /// Single-field CIDR test for IP fields, e.g. srcip in 10.0.0.0/8.
  static Predicate test(Field f, Ipv4Prefix prefix) {
    Predicate p(Kind::kTest);
    p.field_ = f;
    p.match_ = FieldMatch::prefix(prefix);
    return p;
  }

  /// N-ary disjunction of prefix tests — the shape of a BGP reachability
  /// filter (paper §4.1, "enforcing consistency with BGP advertisements").
  static Predicate any_of(Field f, const std::vector<Ipv4Prefix>& prefixes);

  static Predicate conjunction(std::vector<Predicate> children);
  static Predicate disjunction(std::vector<Predicate> children);
  static Predicate negation(Predicate child);

  Kind kind() const { return kind_; }
  Field field() const { return field_; }
  const FieldMatch& field_match() const { return match_; }
  const std::vector<Predicate>& children() const { return children_; }

  /// Reference semantics: does the predicate hold for this header?
  bool eval(const PacketHeader& h) const;

  std::string to_string() const;

  friend Predicate operator&(Predicate a, Predicate b) {
    return conjunction({std::move(a), std::move(b)});
  }
  friend Predicate operator|(Predicate a, Predicate b) {
    return disjunction({std::move(a), std::move(b)});
  }
  friend Predicate operator!(Predicate a) { return negation(std::move(a)); }

 private:
  explicit Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  Field field_ = Field::kPort;  // kTest only
  FieldMatch match_;            // kTest only
  std::vector<Predicate> children_;
};

std::ostream& operator<<(std::ostream& os, const Predicate& p);

}  // namespace sdx::policy
