#pragma once

/// \file classifier.hpp
/// Prioritized match/action rule lists — the compilation target of the
/// policy language and the install format of the flow-table simulator.
///
/// A Classifier is an ordered list of rules; the first rule whose match
/// covers a packet decides its fate. A rule's action is a *set* of action
/// sequences: the empty set drops the packet, one sequence rewrites and
/// outputs one copy, several sequences multicast (paper §3.1 semantics of
/// "located packet → set of located packets").

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netbase/field_match.hpp"
#include "netbase/packet.hpp"

namespace sdx::policy {

using net::Field;
using net::FlowMatch;
using net::PacketHeader;

/// An ordered sequence of field assignments applied to a packet header.
/// Later assignments to the same field override earlier ones.
class ActionSeq {
 public:
  ActionSeq() = default;

  /// A single assignment, e.g. ActionSeq::set(Field::kPort, 3) ≙ fwd(3).
  static ActionSeq set(Field f, std::uint64_t v) {
    ActionSeq a;
    a.mods_.emplace_back(f, v);
    return a;
  }

  ActionSeq& then_set(Field f, std::uint64_t v) {
    mods_.emplace_back(f, v);
    return *this;
  }

  /// Concatenation: *this applied first, then \p next.
  ActionSeq then(const ActionSeq& next) const;

  /// The final value written to \p f, or std::nullopt when untouched.
  std::optional<std::uint64_t> written(Field f) const;

  PacketHeader apply(PacketHeader h) const;

  bool is_identity() const { return mods_.empty(); }
  const std::vector<std::pair<Field, std::uint64_t>>& mods() const {
    return mods_;
  }

  /// Canonical form: one assignment per field, in field order. Two sequences
  /// are semantically equal iff their normalized forms compare equal.
  ActionSeq normalized() const;

  std::string to_string() const;

  friend auto operator<=>(const ActionSeq&, const ActionSeq&) = default;

 private:
  std::vector<std::pair<Field, std::uint64_t>> mods_;
};

/// One prioritized rule. Priority is implicit: position in the classifier.
struct Rule {
  FlowMatch match;
  std::vector<ActionSeq> actions;  ///< empty = drop

  bool drops() const { return actions.empty(); }
  std::string to_string() const;
};

/// An ordered, total rule list (the last rule is conventionally a catch-all;
/// compilation maintains this invariant).
class Classifier {
 public:
  Classifier() = default;
  explicit Classifier(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  /// The classifier that drops everything.
  static Classifier drop_all();
  /// The classifier that passes everything unmodified.
  static Classifier pass_all();

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& rules() { return rules_; }
  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  void append(Rule r) { rules_.push_back(std::move(r)); }
  void append(const Classifier& other);

  /// First matching rule, or nullptr (only possible for non-total lists).
  const Rule* first_match(const PacketHeader& h) const;

  /// Applies the first matching rule: resulting packet copies (empty =
  /// dropped / no rule).
  std::vector<PacketHeader> evaluate(const PacketHeader& h) const;

  /// Removes semantically-dead rules: exact-duplicate matches (keep first)
  /// and — when \p full is true — rules shadowed by any earlier rule
  /// (quadratic; intended for small/medium classifiers).
  void optimize(bool full = false);

  std::string to_string() const;

 private:
  std::vector<Rule> rules_;
};

std::ostream& operator<<(std::ostream& os, const Classifier& c);

}  // namespace sdx::policy
