#include "policy/classifier.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_set>

namespace sdx::policy {

ActionSeq ActionSeq::then(const ActionSeq& next) const {
  ActionSeq out = *this;
  out.mods_.insert(out.mods_.end(), next.mods_.begin(), next.mods_.end());
  return out;
}

std::optional<std::uint64_t> ActionSeq::written(Field f) const {
  for (auto it = mods_.rbegin(); it != mods_.rend(); ++it) {
    if (it->first == f) return it->second;
  }
  return std::nullopt;
}

PacketHeader ActionSeq::apply(PacketHeader h) const {
  for (const auto& [f, v] : mods_) h.set(f, v);
  return h;
}

ActionSeq ActionSeq::normalized() const {
  ActionSeq out;
  for (auto f : net::kAllFields) {
    if (auto v = written(f)) out.mods_.emplace_back(f, *v);
  }
  return out;
}

std::string ActionSeq::to_string() const {
  if (mods_.empty()) return "pass";
  std::ostringstream os;
  for (std::size_t i = 0; i < mods_.size(); ++i) {
    if (i > 0) os << ", ";
    os << net::field_name(mods_[i].first) << ":=" << mods_[i].second;
  }
  return os.str();
}

std::string Rule::to_string() const {
  std::ostringstream os;
  os << match.to_string() << " -> ";
  if (drops()) {
    os << "drop";
  } else {
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (i > 0) os << " | ";
      os << "[" << actions[i].to_string() << "]";
    }
  }
  return os.str();
}

Classifier Classifier::drop_all() {
  return Classifier({Rule{FlowMatch::any(), {}}});
}

Classifier Classifier::pass_all() {
  return Classifier({Rule{FlowMatch::any(), {ActionSeq{}}}});
}

void Classifier::append(const Classifier& other) {
  rules_.insert(rules_.end(), other.rules_.begin(), other.rules_.end());
}

const Rule* Classifier::first_match(const PacketHeader& h) const {
  for (const auto& r : rules_) {
    if (r.match.matches(h)) return &r;
  }
  return nullptr;
}

std::vector<PacketHeader> Classifier::evaluate(const PacketHeader& h) const {
  const Rule* r = first_match(h);
  std::vector<PacketHeader> out;
  if (r == nullptr) return out;
  out.reserve(r->actions.size());
  for (const auto& a : r->actions) {
    PacketHeader produced = a.apply(h);
    if (std::find(out.begin(), out.end(), produced) == out.end()) {
      out.push_back(produced);
    }
  }
  return out;
}

void Classifier::optimize(bool full) {
  std::vector<Rule> kept;
  kept.reserve(rules_.size());
  std::unordered_set<FlowMatch> seen;
  for (auto& r : rules_) {
    if (!seen.insert(r.match).second) continue;  // duplicate match: dead
    if (r.match.is_wildcard()) {
      // A catch-all makes every later rule unreachable.
      kept.push_back(std::move(r));
      break;
    }
    if (full) {
      bool shadowed = false;
      for (const auto& k : kept) {
        if (k.match.subsumes(r.match)) {
          shadowed = true;
          break;
        }
      }
      if (shadowed) continue;
    }
    kept.push_back(std::move(r));
  }
  // Collapse a trailing run of drop rules into the final catch-all when the
  // list ends with a wildcard drop.
  if (!kept.empty() && kept.back().match.is_wildcard() &&
      kept.back().drops()) {
    while (kept.size() >= 2 && kept[kept.size() - 2].drops()) {
      kept.erase(kept.end() - 2);
    }
  }
  rules_ = std::move(kept);
}

std::string Classifier::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    os << i << ": " << rules_[i].to_string() << "\n";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Classifier& c) {
  return os << c.to_string();
}

}  // namespace sdx::policy
