#pragma once

/// \file diff_oracle.hpp
/// Differential oracles over the SDX control plane's standing equivalence
/// claims. A fuzzer (or a checked-in regression file) supplies an update
/// trace — a sequence of announce/withdraw/session_down operations over a
/// small deterministic exchange — and the oracle replays it through
/// independent execution paths that the codebase promises are equivalent:
///
///   (a) fast path   — a batched §4.3.2 fast_update pass over the trace
///                     must forward packets exactly like a full optimal
///                     recompilation of the same state;
///   (b) parallelism — compiling the final state at threads=1 and
///                     threads=N must produce byte-identical artifacts
///                     (CompiledSdx::fingerprint());
///   (c) durability  — journaling the trace, crashing, and recovering
///                     (checkpoint + WAL tail replay) must reproduce the
///                     never-crashed runtime, probe-for-probe and
///                     fingerprint-for-fingerprint;
///   (d) partitioning — compiling the final state through the partitioned
///                     per-participant pipeline (attribute-encoded VMACs,
///                     masked stage-1 rules) must forward packets exactly
///                     like the pairwise cross-product pipeline;
///   (e) classification — probing the installed flow table through the
///                     lane/tuple classification pipeline must return the
///                     same deliveries as the linear reference scan over
///                     the identical table.
///   (g) batching    — replaying the probe set through the burst path
///                     (send_batch → FlowTable::process_batch) must yield
///                     the same deliveries and the same match/miss
///                     accounting as per-packet send() over the identical
///                     installed table;
///   (f) safety      — the deployed final state must verify clean under
///                     the symbolic safety checker (no forwarding loop,
///                     isolation breach, or blackhole), and every
///                     counterexample the checker does emit must reproduce
///                     when its packet is replayed through the data plane.
///
/// A failing trace is shrunk by a delta-debugging minimizer and written as
/// a ready-to-commit regression input under fuzz/corpus/regressions/, so a
/// CI fuzzing find turns into a permanent test with no manual reduction.
///
/// Fault injection (OracleOptions::fault) plants a known divergence in one
/// side of each equivalence — the oracle's own unit tests use it to prove
/// the detectors actually detect and the minimizer actually shrinks.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sdx::fuzz {

/// One trace operation. Raw participant/prefix/variant bytes are clamped
/// into the trace's universe at application time, so every byte string
/// decodes into a valid trace (structured fuzzing needs a total decoder).
struct TraceOp {
  enum class Kind : std::uint8_t {
    kAnnounce = 0,
    kWithdraw = 1,
    kSessionDown = 2,
    /// Append an outbound clause at `participant` steering DNS traffic for
    /// `prefix` toward the participant named by `variant` (cross-participant
    /// policy churn; the compiler's BGP filter decides whether it deploys).
    kSteer = 3,
  };
  Kind kind = Kind::kAnnounce;
  std::uint8_t participant = 0;  ///< clamped modulo participant count
  std::uint8_t prefix = 0;       ///< clamped modulo prefix count
  std::uint8_t variant = 0;      ///< AS-path variant for announcements

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

/// A fuzzer-generated update trace over a deterministic base exchange.
struct Trace {
  std::uint8_t participants = 3;  ///< 2..5 physical participants
  std::uint8_t prefixes = 8;      ///< 2..16 announced prefixes
  std::vector<TraceOp> ops;

  std::string to_string() const;

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Total decoder: any byte string yields a valid trace (sizes clamped,
/// op count capped at kMaxTraceOps).
inline constexpr std::size_t kMaxTraceOps = 24;
Trace decode_trace(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> encode_trace(const Trace& trace);

struct OracleOptions {
  unsigned threads = 4;  ///< the N of the threads=1 vs threads=N oracle

  bool check_fast_path = true;
  bool check_threads = true;
  bool check_recovery = true;
  bool check_partitioned = true;
  bool check_classifier = true;
  bool check_batch = true;
  bool check_verifier = true;

  /// Planted divergences for the oracle's own tests.
  enum class Fault : std::uint8_t {
    kNone = 0,
    /// The fast-path side drops the trace's last announce — models a fast
    /// path that loses a dirty prefix.
    kSkipLastFastAnnounce,
    /// The newest checkpoint loses its last RIB route before recovery —
    /// models silent checkpoint corruption that still passes the CRC.
    kCorruptCheckpointRoute,
    /// The threads=N side compiles one extra announcement — models a
    /// nondeterministic parallel pipeline.
    kPerturbThreadedCompile,
    /// The partitioned side loses prefix 0 before compiling — models a
    /// partition pipeline that forwards differently from the pairwise one.
    kPerturbPartitionedCompile,
    /// The classified lookup structure is wiped after install while rule
    /// storage stays intact — models a classifier index that desynced from
    /// the table it is supposed to mirror.
    kDesyncClassifiedLookup,
    /// The burst lookup path consults a stale (empty) index snapshot while
    /// per-packet lookups stay correct — models a batched fast path that
    /// desynced from the table under it.
    kDesyncBatchLookup,
    /// A two-participant forwarding loop is planted behind the runtime's
    /// back (mutual steering whose prefix is withdrawn straight from the
    /// route server, leaving stale router FIBs) — the safety verifier must
    /// report a loop whose counterexample packet reproduces under replay.
    kPlantVerifierLoop,
  };
  Fault fault = Fault::kNone;

  /// Directory for scratch journals; empty = a fresh mkdtemp under /tmp.
  std::string scratch_dir;
};

struct OracleVerdict {
  bool ok = true;
  std::string oracle;  ///< "fast-path" | "threads" | "recovery" |
                       ///< "partitioned" | "classifier" | "batch" | "verify"
  std::string detail;  ///< first observed divergence, human-readable
};

class DifferentialOracle {
 public:
  explicit DifferentialOracle(OracleOptions options = {});

  /// Replays \p trace through every enabled equivalence; returns the first
  /// divergence found (ok=true when all hold).
  OracleVerdict check(const Trace& trace) const;

  /// Delta-debugging reduction of a failing trace: repeatedly removes op
  /// windows while check() still fails. Returns the smallest failing trace
  /// found (the input itself when it does not fail).
  Trace minimize(const Trace& trace) const;

  /// Serializes \p trace under \p dir as `trace-<crc32c>.bin` — the
  /// ready-to-commit regression input format replayed by
  /// tests/test_diff_oracle.cpp and the fuzz_diff_oracle corpus. Returns
  /// the file path.
  static std::string write_regression(const std::string& dir,
                                      const Trace& trace);
  static Trace load_regression(const std::string& path);

 private:
  OracleOptions options_;
};

}  // namespace sdx::fuzz
