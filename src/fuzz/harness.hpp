#pragma once

/// \file harness.hpp
/// The fuzz-target bodies, one per attack surface, shared verbatim by three
/// front ends: the libFuzzer wrappers under fuzz/ (clang,
/// -fsanitize=fuzzer,address), the standalone corpus driver (any compiler),
/// and the in-process GTest replay (tests/test_fuzz_harness.cpp). Each
/// entry consumes one untrusted input and enforces the surface's
/// robustness contract with SDX_FUZZ_REQUIRE — a violated invariant aborts
/// the process, which every front end reports as a crash.
///
/// Contracts enforced:
///   run_wire   — bgp::decode never crashes/over-reads; a decodable input
///                re-encodes and re-decodes to the same message; a rejected
///                input carries a diagnostic.
///   run_mrt    — the MRT reader tolerates arbitrary streams; every parsed
///                record survives a write_record/read_record round trip.
///   run_codec  — every persist get_* decoder either throws CodecError or
///                yields a value whose encoding is a decode/encode
///                fixpoint (first input byte selects the decoder).
///   run_wal    — torn-frame replay: read_wal_segment accounts for every
///                byte (valid + torn == file size), each surviving payload
///                decodes or throws CodecError, and a truncate-and-append
///                reopen yields exactly one more record.
///   run_policy — the policy text parser never crashes; a parse success
///                pretty-prints to a fixpoint (parse ∘ print ∘ parse).
///   run_diff_oracle — decodes the input as an update trace and replays it
///                through the DifferentialOracle's three equivalences.
///   run_framer — torn-TCP-read framing: the input's first 8 bytes seed a
///                chunk-size RNG, the rest is a byte stream fed to the
///                ingest WireFramer in random partial reads through a
///                RingBuffer; the frames and terminal status must be
///                byte-identical to a whole-buffer reference scan.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sdx::fuzz {

int run_wire(const std::uint8_t* data, std::size_t size);
int run_mrt(const std::uint8_t* data, std::size_t size);
int run_codec(const std::uint8_t* data, std::size_t size);
int run_wal(const std::uint8_t* data, std::size_t size);
int run_policy(const std::uint8_t* data, std::size_t size);
int run_diff_oracle(const std::uint8_t* data, std::size_t size);
int run_framer(const std::uint8_t* data, std::size_t size);

using FuzzEntry = int (*)(const std::uint8_t*, std::size_t);

struct FuzzTarget {
  std::string_view name;
  FuzzEntry entry;
};

/// Every registered target, in a fixed order (driver + test enumeration).
const std::vector<FuzzTarget>& fuzz_targets();

/// nullptr when \p name is unknown.
FuzzEntry find_fuzz_entry(std::string_view name);

}  // namespace sdx::fuzz
