#include "fuzz/corpus.hpp"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "bgp/mrt.hpp"
#include "fuzz/diff_oracle.hpp"
#include "ixp/update_trace.hpp"
#include "persist/checkpoint.hpp"
#include "persist/codec.hpp"
#include "persist/wal.hpp"

namespace sdx::fuzz {

namespace {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

net::Ipv4Prefix prefix_of(std::size_t i) {
  return net::Ipv4Prefix(
      net::Ipv4Address((100u << 24) | (static_cast<std::uint32_t>(i % 200 + 1)
                                       << 16)),
      16);
}

/// A short paper-calibrated event tail shared by several corpora.
std::vector<ixp::TraceEvent> trace_events(std::uint64_t seed,
                                          std::size_t cap) {
  ixp::TraceConfig cfg;
  cfg.seed = seed;
  cfg.duration_s = 6 * 3600.0;
  cfg.prefix_count = 64;
  cfg.frac_prefixes_updated = 0.5;
  auto events = ixp::generate_trace_vector(cfg);
  if (events.size() > cap) events.resize(cap);
  return events;
}

bgp::UpdateMessage update_for(const ixp::TraceEvent& ev) {
  bgp::UpdateMessage u;
  if (ev.withdrawal) {
    u.withdrawn = {prefix_of(ev.prefix_index)};
  } else {
    bgp::RouteAttributes attrs;
    attrs.as_path =
        net::AsPath{65001, static_cast<net::Asn>(100 + ev.prefix_index % 50)};
    attrs.next_hop = net::Ipv4Address::parse("10.0.0.1");
    attrs.local_pref = 150;
    attrs.communities = {bgp::make_community(65001, 1)};
    u.attrs = attrs;
    u.nlri = {prefix_of(ev.prefix_index)};
  }
  return u;
}

std::vector<Bytes> wire_seeds(std::uint64_t seed) {
  std::vector<Bytes> out;
  // Trace-derived UPDATEs: the realistic region of the input space.
  for (const auto& ev : trace_events(seed, 12)) {
    out.push_back(bgp::encode(update_for(ev)));
  }
  // Every message type plus field-mutated variants.
  net::SplitMix64 rng(seed * 61 + 5);
  for (int i = 0; i < 12; ++i) {
    out.push_back(sample_wire_bytes(rng, i % 3));
  }
  return out;
}

std::vector<Bytes> mrt_seeds(std::uint64_t seed) {
  std::vector<Bytes> out;
  const auto events = trace_events(seed, 10);
  // One stream with the whole tail and one record per single-event stream.
  std::ostringstream all;
  std::uint32_t ts = 1000;
  for (const auto& ev : events) {
    bgp::Bgp4mpMessage msg;
    msg.peer_as = 65001;
    msg.local_as = 65500;
    msg.peer_ip = net::Ipv4Address::parse("10.0.0.1");
    msg.local_ip = net::Ipv4Address::parse("10.0.0.254");
    msg.message = update_for(ev);
    const auto record = bgp::encode_bgp4mp(ts++, msg);
    bgp::write_record(all, record);
    std::ostringstream one;
    bgp::write_record(one, record);
    out.push_back(to_bytes(one.str()));
  }
  out.push_back(to_bytes(all.str()));
  return out;
}

std::vector<Bytes> framer_seeds(std::uint64_t seed) {
  // run_framer layout: [8-byte chunk-size RNG seed][BGP byte stream].
  const auto with_seed_prefix = [](std::uint64_t rng_seed, Bytes stream) {
    Bytes out;
    out.reserve(8 + stream.size());
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(rng_seed >> (8 * i)));
    }
    out.insert(out.end(), stream.begin(), stream.end());
    return out;
  };
  std::vector<Bytes> out;
  const auto events = trace_events(seed, 10);
  // Multi-message streams — the torn-read sweep's realistic region.
  Bytes all;
  std::uint64_t rng_seed = seed * 97 + 13;
  for (const auto& ev : events) {
    const auto frame = bgp::encode(update_for(ev));
    all.insert(all.end(), frame.begin(), frame.end());
    out.push_back(with_seed_prefix(rng_seed++, frame));
  }
  out.push_back(with_seed_prefix(rng_seed++, all));
  // A stream ending in a torn frame (clean prefix + half a header).
  Bytes torn = all;
  torn.resize(all.size() / 2);
  out.push_back(with_seed_prefix(rng_seed++, std::move(torn)));
  // A framing error: length field below the RFC 4271 minimum.
  Bytes bad(19, 0xff);
  bad[16] = 0;
  bad[17] = 7;
  out.push_back(with_seed_prefix(rng_seed++, std::move(bad)));
  return out;
}

std::vector<Bytes> codec_seeds(std::uint64_t seed) {
  (void)seed;
  std::vector<Bytes> out;
  const auto tagged = [&out](std::uint8_t kind, std::string_view payload) {
    Bytes b;
    b.push_back(kind);
    b.insert(b.end(), payload.begin(), payload.end());
    out.push_back(std::move(b));
  };

  persist::Encoder e;
  persist::put_as_path(e, net::AsPath{65001, 7, 8});
  tagged(0, e.take());

  auto match = core::ClauseMatch{}.dst_port(80).dst(prefix_of(3));
  e = {};
  persist::put_clause_match(e, match);
  tagged(1, e.take());

  e = {};
  persist::put_outbound_clause(e, core::OutboundClause{match, 2});
  tagged(2, e.take());

  core::InboundClause inbound;
  inbound.match = core::ClauseMatch{}.dst_port(443);
  inbound.rewrites = {{net::Field::kDstPort, 8443}};
  inbound.to_port = 0;
  e = {};
  persist::put_inbound_clause(e, inbound);
  tagged(3, e.take());

  core::Participant p;
  p.id = 1;
  p.name = "A";
  p.asn = 65001;
  p.ports = {core::PhysicalPort{1, net::MacAddress(0x020000000001ull),
                                net::Ipv4Address::parse("172.0.0.1")}};
  p.outbound = {core::OutboundClause{match, 2}};
  e = {};
  persist::put_participant(e, p);
  tagged(4, e.take());

  bgp::Route r;
  r.prefix = prefix_of(1);
  r.attrs.as_path = net::AsPath{65002, 7};
  r.attrs.next_hop = net::Ipv4Address::parse("10.0.0.2");
  r.attrs.local_pref = 200;
  r.attrs.communities = {bgp::kNoExport};
  r.learned_from = 2;
  r.peer_router_id = net::Ipv4Address(2);
  e = {};
  persist::put_route(e, r);
  tagged(5, e.take());

  const auto flow = net::FlowMatch::on(net::Field::kDstPort, 80)
                        .with_prefix(net::Field::kDstIp, prefix_of(2));
  e = {};
  persist::put_flow_match(e, flow);
  tagged(6, e.take());

  const auto action = policy::ActionSeq::set(net::Field::kPort, 3)
                          .then_set(net::Field::kDstMac, 0x020000000002ull);
  e = {};
  persist::put_action_seq(e, action);
  tagged(7, e.take());

  policy::Rule rule{flow, {action}};
  e = {};
  persist::put_rule(e, rule);
  tagged(8, e.take());

  policy::Classifier classifier({rule, policy::Rule{net::FlowMatch::any(), {}}});
  e = {};
  persist::put_classifier(e, classifier);
  tagged(9, e.take());

  persist::WalRecord rec;
  rec.type = persist::WalRecordType::kAnnounce;
  rec.participant = 2;
  rec.prefix = prefix_of(1);
  rec.has_path = true;
  rec.path = net::AsPath{65002, 7};
  rec.communities = {bgp::make_community(65002, 9)};
  tagged(10, persist::encode_record(rec));

  persist::CheckpointState st;
  st.lsn = 9;
  st.participants = {p};
  st.routes = {r};
  st.vnh_allocated = 1;
  st.next_cookie = 2;
  st.installed = false;
  tagged(11, persist::encode_checkpoint(st));
  return out;
}

std::vector<Bytes> wal_seeds(std::uint64_t seed) {
  std::vector<Bytes> out;
  const std::string path =
      "/tmp/sdx_corpus_wal_" + std::to_string(::getpid());
  const auto segment_bytes = [&path](bool genesis,
                                     const std::vector<persist::WalRecord>&
                                         records) {
    auto writer = persist::WalWriter::create(path, 1, genesis);
    for (const auto& rec : records) {
      writer.append(persist::encode_record(rec));
    }
    writer.sync();
    std::ifstream in(path, std::ios::binary);
    std::string bytes{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
    return to_bytes(bytes);
  };

  // Header-only genesis segment.
  out.push_back(segment_bytes(true, {}));

  // A paper-calibrated announce/withdraw tail.
  std::vector<persist::WalRecord> records;
  for (const auto& ev : trace_events(seed, 8)) {
    persist::WalRecord rec;
    rec.participant = 2;
    rec.prefix = prefix_of(ev.prefix_index);
    if (ev.withdrawal) {
      rec.type = persist::WalRecordType::kWithdraw;
    } else {
      rec.type = persist::WalRecordType::kAnnounce;
      rec.has_path = true;
      rec.path = net::AsPath{65002,
                             static_cast<net::Asn>(100 + ev.prefix_index)};
    }
    records.push_back(std::move(rec));
  }
  auto clean = segment_bytes(false, records);
  out.push_back(clean);

  // A torn tail (mid-frame cut) and a corrupt frame CRC.
  auto torn = clean;
  torn.resize(torn.size() - torn.size() / 5);
  out.push_back(std::move(torn));
  auto corrupt = clean;
  corrupt[corrupt.size() / 2] ^= 0x40;
  out.push_back(std::move(corrupt));

  ::unlink(path.c_str());
  return out;
}

std::vector<Bytes> policy_seeds(std::uint64_t seed) {
  (void)seed;
  const char* kTexts[] = {
      "drop",
      "id",
      "fwd(3)",
      "mod(dstip:=1249705985)",
      "match(dstport=80) >> fwd(10)",
      "(match(dstport=80) >> fwd(10)) + (match(dstport=443) >> fwd(11))",
      "match((srcip=96.25.160.0/24 & !(ipproto=17))) >> mod(dstip:=1249705985)",
      "match(srcip=10.0.0.0/8 | dstip=100.1.0.0/16) >> mod(dstmac:=aa:bb:cc:dd:ee:ff) >> fwd(2)",
      "match(!(true & false)) >> id",
      "match(ethtype=2048) >> (match(dstport=53) >> drop) + id",
  };
  std::vector<Bytes> out;
  for (const char* text : kTexts) {
    out.push_back(to_bytes(text));
  }
  return out;
}

std::vector<Bytes> diff_oracle_seeds(std::uint64_t seed) {
  std::vector<Bytes> out;
  // The empty trace (base exchange only) and a couple of hand-picked edges.
  out.push_back(encode_trace(Trace{}));
  {
    Trace t;
    t.participants = 2;
    t.prefixes = 2;
    t.ops = {TraceOp{TraceOp::Kind::kAnnounce, 1, 0, 1},
             TraceOp{TraceOp::Kind::kWithdraw, 0, 0, 0},
             TraceOp{TraceOp::Kind::kSessionDown, 1, 0, 0}};
    out.push_back(encode_trace(t));
  }
  // Trace-model tails over a few universe sizes.
  for (std::uint64_t variant = 0; variant < 4; ++variant) {
    const auto events = trace_events(seed + variant, 10);
    Trace t;
    t.participants = static_cast<std::uint8_t>(2 + variant % 4);
    t.prefixes = static_cast<std::uint8_t>(4 + 3 * variant);
    net::SplitMix64 rng(seed * 97 + variant);
    for (const auto& ev : events) {
      TraceOp op;
      op.kind = ev.withdrawal ? TraceOp::Kind::kWithdraw
                              : TraceOp::Kind::kAnnounce;
      op.participant = static_cast<std::uint8_t>(rng());
      op.prefix = static_cast<std::uint8_t>(ev.prefix_index);
      op.variant = static_cast<std::uint8_t>(rng());
      t.ops.push_back(op);
    }
    out.push_back(encode_trace(t));
  }
  return out;
}

}  // namespace

std::vector<Bytes> seed_corpus(std::string_view target, std::uint64_t seed) {
  if (target == "wire") return wire_seeds(seed);
  if (target == "mrt") return mrt_seeds(seed);
  if (target == "codec") return codec_seeds(seed);
  if (target == "wal") return wal_seeds(seed);
  if (target == "policy") return policy_seeds(seed);
  if (target == "diff_oracle") return diff_oracle_seeds(seed);
  if (target == "framer") return framer_seeds(seed);
  throw std::invalid_argument("unknown fuzz target: " + std::string(target));
}

}  // namespace sdx::fuzz
