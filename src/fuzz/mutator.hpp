#pragma once

/// \file mutator.hpp
/// The shared structured-mutation library behind every fuzzing front end:
/// the GTest robustness suites (tests/test_wire_fuzz.cpp), the libFuzzer
/// custom mutators (fuzz/), and the standalone corpus driver all draw
/// their mutations from here, so a mutation strategy added once improves
/// all three.
///
/// Two layers:
///
///   * ByteMutator — format-agnostic byte-level operators (bit flips,
///     interesting-value overwrites, chunk erase/duplicate/insert,
///     truncation, and targeted big-endian/little-endian length-field
///     corruption). Deterministic given its SplitMix64 seed.
///   * field-aligned BGP message mutation — sample_wire_message() draws a
///     valid RFC 4271 message from a seeded distribution and
///     mutate_wire_fields() perturbs *decoded* fields (ASNs, prefixes,
///     communities, hold timers) before re-encoding, so mutants stay
///     structurally well-formed and reach past the framing validators
///     instead of dying on the marker check.

#include <cstdint>
#include <vector>

#include "bgp/wire.hpp"
#include "netbase/rng.hpp"

namespace sdx::fuzz {

using Bytes = std::vector<std::uint8_t>;

/// Format-agnostic byte mutations, deterministic per seed. Every operator
/// accepts an empty buffer (no-op or insertion) so callers never need
/// emptiness checks.
class ByteMutator {
 public:
  explicit ByteMutator(std::uint64_t seed) : rng_(seed) {}

  net::SplitMix64& rng() { return rng_; }

  Bytes random_bytes(std::size_t max_len);

  /// Flips one random bit.
  void flip_bit(Bytes& b);
  /// Overwrites one random byte with a random value.
  void set_byte(Bytes& b);
  /// Overwrites one random byte with a boundary value (0x00, 0x01, 0x7f,
  /// 0x80, 0xff).
  void set_interesting(Bytes& b);
  /// Cuts the buffer at a random offset (models a torn write / short read).
  void truncate(Bytes& b);
  /// Removes a random chunk from the middle.
  void erase_chunk(Bytes& b);
  /// Duplicates a random chunk in place (field/TLV repetition).
  void duplicate_chunk(Bytes& b);
  /// Inserts a short run of random bytes.
  void insert_random(Bytes& b);
  /// Overwrites a 16-bit big-endian field at a random offset with a biased
  /// length-like value (0, 1, the buffer size, 0xffff, or ±1 around the
  /// original) — the BGP/MRT length-field corruption operator.
  void corrupt_u16be(Bytes& b);
  /// Little-endian 32-bit variant for the persist codec's length prefixes.
  void corrupt_u32le(Bytes& b);

  /// Applies \p rounds randomly-chosen operators from the set above.
  void mutate(Bytes& b, int rounds = 1);

 private:
  net::SplitMix64 rng_;
};

/// Draws a valid BGP message (UPDATE-biased: that is where the parsing
/// depth is) with randomized field contents.
bgp::Message sample_wire_message(net::SplitMix64& rng);

/// Structurally mutates a decoded message: perturbs ASNs/paths, prefix
/// lists, communities, attribute presence, hold timers. The result still
/// encodes cleanly; feeding encode(msg) back to the decoder probes the
/// semantic validators rather than the framing ones.
void mutate_wire_fields(bgp::Message& msg, net::SplitMix64& rng);

/// encode(sample_wire_message) with \p mutations field mutations applied —
/// the canonical "valid wire bytes" generator shared by corpus seeding and
/// the custom mutators.
Bytes sample_wire_bytes(net::SplitMix64& rng, int mutations = 0);

}  // namespace sdx::fuzz
