#include "fuzz/mutator.hpp"

#include <algorithm>

namespace sdx::fuzz {

Bytes ByteMutator::random_bytes(std::size_t max_len) {
  Bytes out(rng_.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng_());
  return out;
}

void ByteMutator::flip_bit(Bytes& b) {
  if (b.empty()) return;
  b[rng_.below(b.size())] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
}

void ByteMutator::set_byte(Bytes& b) {
  if (b.empty()) return;
  b[rng_.below(b.size())] = static_cast<std::uint8_t>(rng_());
}

void ByteMutator::set_interesting(Bytes& b) {
  if (b.empty()) return;
  static constexpr std::uint8_t kValues[] = {0x00, 0x01, 0x7f, 0x80, 0xff};
  b[rng_.below(b.size())] = kValues[rng_.below(std::size(kValues))];
}

void ByteMutator::truncate(Bytes& b) {
  if (b.empty()) return;
  b.resize(rng_.below(b.size()));
}

void ByteMutator::erase_chunk(Bytes& b) {
  if (b.empty()) return;
  const std::size_t at = rng_.below(b.size());
  const std::size_t len = 1 + rng_.below(std::min<std::size_t>(8, b.size() - at));
  b.erase(b.begin() + static_cast<std::ptrdiff_t>(at),
          b.begin() + static_cast<std::ptrdiff_t>(at + len));
}

void ByteMutator::duplicate_chunk(Bytes& b) {
  if (b.empty() || b.size() > 4096) return;
  const std::size_t at = rng_.below(b.size());
  const std::size_t len = 1 + rng_.below(std::min<std::size_t>(8, b.size() - at));
  Bytes chunk(b.begin() + static_cast<std::ptrdiff_t>(at),
              b.begin() + static_cast<std::ptrdiff_t>(at + len));
  b.insert(b.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
           chunk.end());
}

void ByteMutator::insert_random(Bytes& b) {
  const std::size_t at = b.empty() ? 0 : rng_.below(b.size() + 1);
  const std::size_t len = 1 + rng_.below(8);
  Bytes chunk(len);
  for (auto& c : chunk) c = static_cast<std::uint8_t>(rng_());
  b.insert(b.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
           chunk.end());
}

void ByteMutator::corrupt_u16be(Bytes& b) {
  if (b.size() < 2) return;
  const std::size_t at = rng_.below(b.size() - 1);
  const std::uint16_t original =
      static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
  std::uint16_t v = 0;
  switch (rng_.below(6)) {
    case 0: v = 0; break;
    case 1: v = 1; break;
    case 2: v = static_cast<std::uint16_t>(b.size()); break;
    case 3: v = 0xffff; break;
    case 4: v = static_cast<std::uint16_t>(original + 1); break;
    default: v = static_cast<std::uint16_t>(original - 1); break;
  }
  b[at] = static_cast<std::uint8_t>(v >> 8);
  b[at + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void ByteMutator::corrupt_u32le(Bytes& b) {
  if (b.size() < 4) return;
  const std::size_t at = rng_.below(b.size() - 3);
  std::uint32_t original = 0;
  for (int i = 0; i < 4; ++i) original |= std::uint32_t{b[at + i]} << (8 * i);
  std::uint32_t v = 0;
  switch (rng_.below(6)) {
    case 0: v = 0; break;
    case 1: v = 1; break;
    case 2: v = static_cast<std::uint32_t>(b.size()); break;
    case 3: v = 0xffffffffu; break;
    case 4: v = original + 1; break;
    default: v = original - 1; break;
  }
  for (int i = 0; i < 4; ++i) {
    b[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void ByteMutator::mutate(Bytes& b, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    switch (rng_.below(9)) {
      case 0: flip_bit(b); break;
      case 1: set_byte(b); break;
      case 2: set_interesting(b); break;
      case 3: truncate(b); break;
      case 4: erase_chunk(b); break;
      case 5: duplicate_chunk(b); break;
      case 6: insert_random(b); break;
      case 7: corrupt_u16be(b); break;
      default: corrupt_u32le(b); break;
    }
  }
}

namespace {

net::Ipv4Prefix random_prefix(net::SplitMix64& rng) {
  const int len = static_cast<int>(rng.range(8, 28));
  const auto addr = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
  // Mask to the prefix length so the value is canonical.
  const std::uint32_t mask =
      len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  return net::Ipv4Prefix(net::Ipv4Address(addr.value() & mask), len);
}

net::AsPath random_path(net::SplitMix64& rng) {
  std::vector<net::Asn> asns;
  const std::size_t hops = 1 + rng.below(5);
  for (std::size_t i = 0; i < hops; ++i) {
    // Mix 16-bit and 4-octet ASNs so AS_TRANS handling is exercised.
    asns.push_back(rng.chance(0.3)
                       ? static_cast<net::Asn>(70000 + rng.below(100000))
                       : static_cast<net::Asn>(1 + rng.below(65000)));
  }
  return net::AsPath(std::move(asns));
}

}  // namespace

bgp::Message sample_wire_message(net::SplitMix64& rng) {
  switch (rng.below(8)) {
    case 0: {
      bgp::OpenMessage open;
      open.my_as = static_cast<net::Asn>(1 + rng.below(200000));
      open.hold_time = static_cast<std::uint16_t>(rng.below(400));
      open.bgp_id = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
      if (rng.chance(0.4)) {
        open.opt_params.resize(rng.below(16));
        for (auto& b : open.opt_params) b = static_cast<std::uint8_t>(rng());
      }
      return open;
    }
    case 1: {
      bgp::NotificationMessage notif;
      notif.code = static_cast<std::uint8_t>(rng.below(7));
      notif.subcode = static_cast<std::uint8_t>(rng.below(12));
      notif.data.resize(rng.below(12));
      for (auto& b : notif.data) b = static_cast<std::uint8_t>(rng());
      return notif;
    }
    case 2:
      return bgp::KeepaliveMessage{};
    default: {
      bgp::UpdateMessage u;
      const std::size_t withdrawn = rng.below(4);
      for (std::size_t i = 0; i < withdrawn; ++i) {
        u.withdrawn.push_back(random_prefix(rng));
      }
      const std::size_t nlri = rng.below(5);
      if (nlri > 0 || rng.chance(0.5)) {
        bgp::RouteAttributes attrs;
        attrs.origin = static_cast<bgp::Origin>(rng.below(3));
        attrs.as_path = random_path(rng);
        attrs.next_hop = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
        if (rng.chance(0.5)) {
          attrs.med = static_cast<std::uint32_t>(rng.below(1000));
        }
        if (rng.chance(0.5)) {
          attrs.local_pref = static_cast<std::uint32_t>(rng.below(1000));
        }
        const std::size_t comms = rng.below(4);
        for (std::size_t i = 0; i < comms; ++i) {
          attrs.communities.push_back(
              rng.chance(0.2)
                  ? bgp::kNoExport
                  : bgp::make_community(
                        static_cast<std::uint16_t>(rng.below(65536)),
                        static_cast<std::uint16_t>(rng.below(65536))));
        }
        u.attrs = attrs;
      }
      for (std::size_t i = 0; i < nlri; ++i) {
        u.nlri.push_back(random_prefix(rng));
      }
      return u;
    }
  }
}

void mutate_wire_fields(bgp::Message& msg, net::SplitMix64& rng) {
  if (auto* open = std::get_if<bgp::OpenMessage>(&msg)) {
    switch (rng.below(4)) {
      case 0: open->my_as = static_cast<net::Asn>(rng()); break;
      case 1: open->hold_time = static_cast<std::uint16_t>(rng()); break;
      case 2: open->version = static_cast<std::uint8_t>(rng.below(8)); break;
      default:
        open->opt_params.resize(rng.below(24));
        for (auto& b : open->opt_params) b = static_cast<std::uint8_t>(rng());
        break;
    }
    return;
  }
  if (auto* u = std::get_if<bgp::UpdateMessage>(&msg)) {
    switch (rng.below(6)) {
      case 0:
        // NLRI is only valid alongside path attributes; on a pure
        // withdrawal grow the withdrawn list instead.
        if (u->attrs.has_value()) {
          u->nlri.push_back(random_prefix(rng));
        } else {
          u->withdrawn.push_back(random_prefix(rng));
        }
        break;
      case 1:
        if (!u->nlri.empty()) u->nlri.pop_back();
        break;
      case 2:
        u->withdrawn.push_back(random_prefix(rng));
        break;
      case 3:
        if (u->attrs.has_value()) {
          u->attrs->as_path = random_path(rng);
        }
        break;
      case 4:
        if (u->attrs.has_value()) {
          u->attrs->communities.push_back(
              static_cast<bgp::Community>(rng()));
        }
        break;
      default:
        if (u->attrs.has_value() && u->nlri.empty()) {
          u->attrs.reset();  // pure withdrawal
        } else if (u->attrs.has_value()) {
          u->attrs->local_pref = static_cast<std::uint32_t>(rng());
        }
        break;
    }
    return;
  }
  if (auto* notif = std::get_if<bgp::NotificationMessage>(&msg)) {
    notif->code = static_cast<std::uint8_t>(rng());
    notif->subcode = static_cast<std::uint8_t>(rng());
    return;
  }
  // Keepalive: nothing to mutate structurally.
}

Bytes sample_wire_bytes(net::SplitMix64& rng, int mutations) {
  auto msg = sample_wire_message(rng);
  for (int i = 0; i < mutations; ++i) mutate_wire_fields(msg, rng);
  return bgp::encode(msg);
}

}  // namespace sdx::fuzz
