#include "fuzz/harness.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bgp/mrt.hpp"
#include "bgp/wire.hpp"
#include "fuzz/diff_oracle.hpp"
#include "persist/checkpoint.hpp"
#include "persist/codec.hpp"
#include "persist/wal.hpp"
#include "policy/parser.hpp"

// A violated contract must crash the process so libFuzzer saves the input
// as an artifact and the standalone driver exits non-zero. Not assert():
// the check must fire in release builds too.
#define SDX_FUZZ_REQUIRE(cond, what)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "fuzz invariant violated: %s (%s:%d)\n", what, \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

namespace sdx::fuzz {

namespace {

std::string_view as_view(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

}  // namespace

int run_wire(const std::uint8_t* data, std::size_t size) {
  const auto result = bgp::decode({data, size});
  if (!result.ok()) {
    SDX_FUZZ_REQUIRE(!result.error.empty(),
                     "rejected input must carry a diagnostic");
    return 0;
  }
  SDX_FUZZ_REQUIRE(result.bytes_consumed <= size,
                   "decoder consumed more bytes than supplied");
  const auto bytes = bgp::encode(*result.message);
  const auto again = bgp::decode(bytes);
  SDX_FUZZ_REQUIRE(again.ok(), "re-encoded message must decode");
  SDX_FUZZ_REQUIRE(*again.message == *result.message,
                   "decode(encode(m)) must equal m");
  return 0;
}

int run_mrt(const std::uint8_t* data, std::size_t size) {
  std::stringstream ss{std::string(as_view(data, size))};
  try {
    while (auto record = bgp::read_record(ss)) {
      // Any parsed record must survive a framing round trip.
      std::stringstream out;
      bgp::write_record(out, *record);
      auto again = bgp::read_record(out);
      SDX_FUZZ_REQUIRE(again.has_value(), "rewritten record must re-read");
      SDX_FUZZ_REQUIRE(*again == *record, "MRT framing round trip");
      try {
        (void)bgp::decode_bgp4mp(*record);
      } catch (const std::runtime_error&) {
        // Clean rejection of a non-BGP4MP body.
      }
    }
  } catch (const std::runtime_error&) {
    // Truncated or oversized record: the documented rejection path.
  }
  return 0;
}

int run_codec(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t kind = data[0] % 12;
  const std::string_view payload = as_view(data + 1, size - 1);

  // Decode once; on success the value must reach an encode/decode fixpoint
  // (encodings are canonical, so one round trip must stabilize).
  try {
    persist::Encoder e1;
    persist::Decoder d(payload);
    switch (kind) {
      case 0: persist::put_as_path(e1, persist::get_as_path(d)); break;
      case 1: persist::put_clause_match(e1, persist::get_clause_match(d)); break;
      case 2:
        persist::put_outbound_clause(e1, persist::get_outbound_clause(d));
        break;
      case 3:
        persist::put_inbound_clause(e1, persist::get_inbound_clause(d));
        break;
      case 4: persist::put_participant(e1, persist::get_participant(d)); break;
      case 5: persist::put_route(e1, persist::get_route(d)); break;
      case 6: persist::put_flow_match(e1, persist::get_flow_match(d)); break;
      case 7: persist::put_action_seq(e1, persist::get_action_seq(d)); break;
      case 8: persist::put_rule(e1, persist::get_rule(d)); break;
      case 9: persist::put_classifier(e1, persist::get_classifier(d)); break;
      case 10: {
        const auto rec = persist::decode_record(payload);
        const auto bytes = persist::encode_record(rec);
        const auto rec2 = persist::decode_record(bytes);
        SDX_FUZZ_REQUIRE(persist::encode_record(rec2) == bytes,
                         "WAL record encode/decode fixpoint");
        return 0;
      }
      default: {
        const auto st = persist::decode_checkpoint(payload);
        const auto bytes = persist::encode_checkpoint(st);
        const auto st2 = persist::decode_checkpoint(bytes);
        SDX_FUZZ_REQUIRE(persist::encode_checkpoint(st2) == bytes,
                         "checkpoint encode/decode fixpoint");
        return 0;
      }
    }
    const std::string once = e1.bytes();
    persist::Decoder d2(once);
    persist::Encoder e2;
    switch (kind) {
      case 0: persist::put_as_path(e2, persist::get_as_path(d2)); break;
      case 1: persist::put_clause_match(e2, persist::get_clause_match(d2)); break;
      case 2:
        persist::put_outbound_clause(e2, persist::get_outbound_clause(d2));
        break;
      case 3:
        persist::put_inbound_clause(e2, persist::get_inbound_clause(d2));
        break;
      case 4: persist::put_participant(e2, persist::get_participant(d2)); break;
      case 5: persist::put_route(e2, persist::get_route(d2)); break;
      case 6: persist::put_flow_match(e2, persist::get_flow_match(d2)); break;
      case 7: persist::put_action_seq(e2, persist::get_action_seq(d2)); break;
      case 8: persist::put_rule(e2, persist::get_rule(d2)); break;
      default: persist::put_classifier(e2, persist::get_classifier(d2)); break;
    }
    SDX_FUZZ_REQUIRE(d2.done(), "canonical encoding fully re-decodes");
    SDX_FUZZ_REQUIRE(e2.bytes() == once, "state codec encode/decode fixpoint");
  } catch (const persist::CodecError&) {
    // The documented rejection path for malformed payloads.
  }
  return 0;
}

namespace {

/// One reusable scratch file per process for the WAL replay target:
/// read_wal_segment and WalWriter operate on paths, so the fuzz input is
/// materialized here each execution.
class ScratchFile {
 public:
  ScratchFile()
      : path_(std::string("/tmp/sdx_fuzz_wal_") + std::to_string(::getpid())) {}
  ~ScratchFile() { ::unlink(path_.c_str()); }

  const std::string& write(std::string_view bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    SDX_FUZZ_REQUIRE(f != nullptr, "scratch WAL file must open");
    if (!bytes.empty()) {
      SDX_FUZZ_REQUIRE(
          std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size(),
          "scratch WAL file must write");
    }
    std::fclose(f);
    return path_;
  }

 private:
  std::string path_;
};

}  // namespace

int run_wal(const std::uint8_t* data, std::size_t size) {
  static ScratchFile scratch;
  const std::string& path = scratch.write(as_view(data, size));

  const auto seg = persist::read_wal_segment(path);
  if (!seg.header_valid) {
    SDX_FUZZ_REQUIRE(seg.torn_bytes == size,
                     "headerless file is all torn bytes");
    SDX_FUZZ_REQUIRE(seg.payloads.empty(), "no payloads without a header");
    return 0;
  }
  SDX_FUZZ_REQUIRE(seg.valid_bytes >= persist::kWalHeaderBytes,
                   "valid bytes start past the header");
  SDX_FUZZ_REQUIRE(seg.valid_bytes + seg.torn_bytes == size,
                   "every byte is either valid or torn");
  for (const auto& payload : seg.payloads) {
    try {
      const auto rec = persist::decode_record(payload);
      (void)rec;
    } catch (const persist::CodecError&) {
      // CRC-valid but version-incompatible: documented rejection.
    }
  }

  // Torn-tail cleanup + append must leave a clean segment with exactly one
  // more record.
  {
    auto writer = persist::WalWriter::open_append(path, seg.valid_bytes);
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kWithdraw;
    rec.participant = 1;
    rec.prefix = net::Ipv4Prefix::parse("192.0.2.0/24");
    writer.append(persist::encode_record(rec));
  }
  const auto after = persist::read_wal_segment(path);
  SDX_FUZZ_REQUIRE(after.header_valid, "header survives reopen");
  SDX_FUZZ_REQUIRE(after.torn_bytes == 0, "reopen truncates the torn tail");
  SDX_FUZZ_REQUIRE(after.payloads.size() == seg.payloads.size() + 1,
                   "append adds exactly one record");
  return 0;
}

int run_policy(const std::uint8_t* data, std::size_t size) {
  const std::string text(as_view(data, size));
  std::string error;
  const auto policy = policy::try_parse_policy(text, &error);
  if (!policy.has_value()) {
    SDX_FUZZ_REQUIRE(!error.empty(), "parse failure must carry a diagnostic");
    return 0;
  }
  const std::string printed = policy->to_string();
  std::string error2;
  const auto reparsed = policy::try_parse_policy(printed, &error2);
  SDX_FUZZ_REQUIRE(reparsed.has_value(),
                   "pretty-printed policy must re-parse");
  SDX_FUZZ_REQUIRE(reparsed->to_string() == printed,
                   "parse/print must reach a fixpoint");
  return 0;
}

int run_diff_oracle(const std::uint8_t* data, std::size_t size) {
  const Trace trace = decode_trace({data, size});
  static const DifferentialOracle oracle{OracleOptions{}};
  const auto verdict = oracle.check(trace);
  if (!verdict.ok) {
    std::fprintf(stderr, "differential oracle [%s] failed on %s\n  %s\n",
                 verdict.oracle.c_str(), trace.to_string().c_str(),
                 verdict.detail.c_str());
    std::abort();
  }
  return 0;
}

const std::vector<FuzzTarget>& fuzz_targets() {
  static const std::vector<FuzzTarget> kTargets = {
      {"wire", &run_wire},       {"mrt", &run_mrt},
      {"codec", &run_codec},     {"wal", &run_wal},
      {"policy", &run_policy},   {"diff_oracle", &run_diff_oracle},
  };
  return kTargets;
}

FuzzEntry find_fuzz_entry(std::string_view name) {
  for (const auto& t : fuzz_targets()) {
    if (t.name == name) return t.entry;
  }
  return nullptr;
}

}  // namespace sdx::fuzz
