#include "fuzz/harness.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bgp/mrt.hpp"
#include "bgp/wire.hpp"
#include "fuzz/diff_oracle.hpp"
#include "ingest/framer.hpp"
#include "persist/checkpoint.hpp"
#include "persist/codec.hpp"
#include "persist/wal.hpp"
#include "policy/parser.hpp"

// A violated contract must crash the process so libFuzzer saves the input
// as an artifact and the standalone driver exits non-zero. Not assert():
// the check must fire in release builds too.
#define SDX_FUZZ_REQUIRE(cond, what)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "fuzz invariant violated: %s (%s:%d)\n", what, \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

namespace sdx::fuzz {

namespace {

std::string_view as_view(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

}  // namespace

int run_wire(const std::uint8_t* data, std::size_t size) {
  const auto result = bgp::decode({data, size});
  if (!result.ok()) {
    SDX_FUZZ_REQUIRE(!result.error.empty(),
                     "rejected input must carry a diagnostic");
    return 0;
  }
  SDX_FUZZ_REQUIRE(result.bytes_consumed <= size,
                   "decoder consumed more bytes than supplied");
  const auto bytes = bgp::encode(*result.message);
  const auto again = bgp::decode(bytes);
  SDX_FUZZ_REQUIRE(again.ok(), "re-encoded message must decode");
  SDX_FUZZ_REQUIRE(*again.message == *result.message,
                   "decode(encode(m)) must equal m");
  return 0;
}

int run_mrt(const std::uint8_t* data, std::size_t size) {
  std::stringstream ss{std::string(as_view(data, size))};
  try {
    while (auto record = bgp::read_record(ss)) {
      // Any parsed record must survive a framing round trip.
      std::stringstream out;
      bgp::write_record(out, *record);
      auto again = bgp::read_record(out);
      SDX_FUZZ_REQUIRE(again.has_value(), "rewritten record must re-read");
      SDX_FUZZ_REQUIRE(*again == *record, "MRT framing round trip");
      try {
        (void)bgp::decode_bgp4mp(*record);
      } catch (const std::runtime_error&) {
        // Clean rejection of a non-BGP4MP body.
      }
    }
  } catch (const std::runtime_error&) {
    // Truncated or oversized record: the documented rejection path.
  }
  return 0;
}

int run_codec(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t kind = data[0] % 12;
  const std::string_view payload = as_view(data + 1, size - 1);

  // Decode once; on success the value must reach an encode/decode fixpoint
  // (encodings are canonical, so one round trip must stabilize).
  try {
    persist::Encoder e1;
    persist::Decoder d(payload);
    switch (kind) {
      case 0: persist::put_as_path(e1, persist::get_as_path(d)); break;
      case 1: persist::put_clause_match(e1, persist::get_clause_match(d)); break;
      case 2:
        persist::put_outbound_clause(e1, persist::get_outbound_clause(d));
        break;
      case 3:
        persist::put_inbound_clause(e1, persist::get_inbound_clause(d));
        break;
      case 4: persist::put_participant(e1, persist::get_participant(d)); break;
      case 5: persist::put_route(e1, persist::get_route(d)); break;
      case 6: persist::put_flow_match(e1, persist::get_flow_match(d)); break;
      case 7: persist::put_action_seq(e1, persist::get_action_seq(d)); break;
      case 8: persist::put_rule(e1, persist::get_rule(d)); break;
      case 9: persist::put_classifier(e1, persist::get_classifier(d)); break;
      case 10: {
        const auto rec = persist::decode_record(payload);
        const auto bytes = persist::encode_record(rec);
        const auto rec2 = persist::decode_record(bytes);
        SDX_FUZZ_REQUIRE(persist::encode_record(rec2) == bytes,
                         "WAL record encode/decode fixpoint");
        return 0;
      }
      default: {
        const auto st = persist::decode_checkpoint(payload);
        const auto bytes = persist::encode_checkpoint(st);
        const auto st2 = persist::decode_checkpoint(bytes);
        SDX_FUZZ_REQUIRE(persist::encode_checkpoint(st2) == bytes,
                         "checkpoint encode/decode fixpoint");
        return 0;
      }
    }
    const std::string once = e1.bytes();
    persist::Decoder d2(once);
    persist::Encoder e2;
    switch (kind) {
      case 0: persist::put_as_path(e2, persist::get_as_path(d2)); break;
      case 1: persist::put_clause_match(e2, persist::get_clause_match(d2)); break;
      case 2:
        persist::put_outbound_clause(e2, persist::get_outbound_clause(d2));
        break;
      case 3:
        persist::put_inbound_clause(e2, persist::get_inbound_clause(d2));
        break;
      case 4: persist::put_participant(e2, persist::get_participant(d2)); break;
      case 5: persist::put_route(e2, persist::get_route(d2)); break;
      case 6: persist::put_flow_match(e2, persist::get_flow_match(d2)); break;
      case 7: persist::put_action_seq(e2, persist::get_action_seq(d2)); break;
      case 8: persist::put_rule(e2, persist::get_rule(d2)); break;
      default: persist::put_classifier(e2, persist::get_classifier(d2)); break;
    }
    SDX_FUZZ_REQUIRE(d2.done(), "canonical encoding fully re-decodes");
    SDX_FUZZ_REQUIRE(e2.bytes() == once, "state codec encode/decode fixpoint");
  } catch (const persist::CodecError&) {
    // The documented rejection path for malformed payloads.
  }
  return 0;
}

namespace {

/// One reusable scratch file per process for the WAL replay target:
/// read_wal_segment and WalWriter operate on paths, so the fuzz input is
/// materialized here each execution.
class ScratchFile {
 public:
  ScratchFile()
      : path_(std::string("/tmp/sdx_fuzz_wal_") + std::to_string(::getpid())) {}
  ~ScratchFile() { ::unlink(path_.c_str()); }

  const std::string& write(std::string_view bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    SDX_FUZZ_REQUIRE(f != nullptr, "scratch WAL file must open");
    if (!bytes.empty()) {
      SDX_FUZZ_REQUIRE(
          std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size(),
          "scratch WAL file must write");
    }
    std::fclose(f);
    return path_;
  }

 private:
  std::string path_;
};

}  // namespace

int run_wal(const std::uint8_t* data, std::size_t size) {
  static ScratchFile scratch;
  const std::string& path = scratch.write(as_view(data, size));

  const auto seg = persist::read_wal_segment(path);
  if (!seg.header_valid) {
    SDX_FUZZ_REQUIRE(seg.torn_bytes == size,
                     "headerless file is all torn bytes");
    SDX_FUZZ_REQUIRE(seg.payloads.empty(), "no payloads without a header");
    return 0;
  }
  SDX_FUZZ_REQUIRE(seg.valid_bytes >= persist::kWalHeaderBytes,
                   "valid bytes start past the header");
  SDX_FUZZ_REQUIRE(seg.valid_bytes + seg.torn_bytes == size,
                   "every byte is either valid or torn");
  for (const auto& payload : seg.payloads) {
    try {
      const auto rec = persist::decode_record(payload);
      (void)rec;
    } catch (const persist::CodecError&) {
      // CRC-valid but version-incompatible: documented rejection.
    }
  }

  // Torn-tail cleanup + append must leave a clean segment with exactly one
  // more record.
  {
    auto writer = persist::WalWriter::open_append(path, seg.valid_bytes);
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kWithdraw;
    rec.participant = 1;
    rec.prefix = net::Ipv4Prefix::parse("192.0.2.0/24");
    writer.append(persist::encode_record(rec));
  }
  const auto after = persist::read_wal_segment(path);
  SDX_FUZZ_REQUIRE(after.header_valid, "header survives reopen");
  SDX_FUZZ_REQUIRE(after.torn_bytes == 0, "reopen truncates the torn tail");
  SDX_FUZZ_REQUIRE(after.payloads.size() == seg.payloads.size() + 1,
                   "append adds exactly one record");
  return 0;
}

int run_policy(const std::uint8_t* data, std::size_t size) {
  const std::string text(as_view(data, size));
  std::string error;
  const auto policy = policy::try_parse_policy(text, &error);
  if (!policy.has_value()) {
    SDX_FUZZ_REQUIRE(!error.empty(), "parse failure must carry a diagnostic");
    return 0;
  }
  const std::string printed = policy->to_string();
  std::string error2;
  const auto reparsed = policy::try_parse_policy(printed, &error2);
  SDX_FUZZ_REQUIRE(reparsed.has_value(),
                   "pretty-printed policy must re-parse");
  SDX_FUZZ_REQUIRE(reparsed->to_string() == printed,
                   "parse/print must reach a fixpoint");
  return 0;
}

int run_diff_oracle(const std::uint8_t* data, std::size_t size) {
  const Trace trace = decode_trace({data, size});
  static const DifferentialOracle oracle{OracleOptions{}};
  const auto verdict = oracle.check(trace);
  if (!verdict.ok) {
    std::fprintf(stderr, "differential oracle [%s] failed on %s\n  %s\n",
                 verdict.oracle.c_str(), trace.to_string().c_str(),
                 verdict.detail.c_str());
    std::abort();
  }
  return 0;
}

int run_framer(const std::uint8_t* data, std::size_t size) {
  // Layout: [8-byte chunk-size RNG seed][BGP byte stream].
  if (size < 8) return 0;
  std::uint64_t rng = 0;
  for (int i = 0; i < 8; ++i) rng = (rng << 8) | data[i];
  if (rng == 0) rng = 1;
  const std::uint8_t* stream = data + 8;
  const std::size_t stream_size = size - 8;

  // Reference: one whole-buffer scan with the same framing rules the
  // incremental framer implements (length at [16,17], bounds [19,4096]).
  std::vector<std::pair<std::size_t, std::size_t>> ref_frames;
  bool ref_error = false;
  {
    std::size_t off = 0;
    while (stream_size - off >= ingest::kBgpHeaderSize - 1) {
      const std::size_t len =
          (std::size_t{stream[off + ingest::kBgpLengthOffset]} << 8) |
          stream[off + ingest::kBgpLengthOffset + 1];
      if (len < ingest::kBgpHeaderSize || len > ingest::kBgpMaxMessageSize) {
        ref_error = true;
        break;
      }
      if (stream_size - off < len) break;  // torn trailing frame
      ref_frames.emplace_back(off, len);
      off += len;
    }
  }

  // Incremental: feed the stream through a RingBuffer in RNG-sized
  // partial reads (1..64 bytes, also bounded by the contiguous write
  // span), collecting every frame the framer yields.
  ingest::RingBuffer ring(2 * ingest::kBgpMaxMessageSize);
  ingest::WireFramer framer(ring);
  std::vector<std::vector<std::uint8_t>> got_frames;
  bool got_error = false;
  std::size_t fed = 0;
  std::span<const std::uint8_t> frame;
  std::string error;
  while (!got_error) {
    for (;;) {
      const auto status = framer.next(frame, error);
      if (status == ingest::WireFramer::Status::kNeedMore) break;
      if (status == ingest::WireFramer::Status::kError) {
        SDX_FUZZ_REQUIRE(!error.empty(),
                         "framing error must carry a diagnostic");
        got_error = true;
        break;
      }
      got_frames.emplace_back(frame.begin(), frame.end());
    }
    if (got_error || fed >= stream_size) break;
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    const std::size_t want = 1 + static_cast<std::size_t>(rng % 64);
    auto span = ring.write_span();
    SDX_FUZZ_REQUIRE(!span.empty(),
                     "ring must never fill while frames are consumed");
    const std::size_t n =
        std::min({want, span.size(), stream_size - fed});
    for (std::size_t i = 0; i < n; ++i) span[i] = stream[fed + i];
    ring.commit(n);
    fed += n;
  }

  // The incremental path must agree with the reference byte for byte.
  SDX_FUZZ_REQUIRE(got_error == ref_error,
                   "incremental and whole-buffer scans must agree on error");
  SDX_FUZZ_REQUIRE(got_frames.size() == ref_frames.size(),
                   "incremental and whole-buffer scans must agree on count");
  for (std::size_t i = 0; i < got_frames.size(); ++i) {
    const auto [off, len] = ref_frames[i];
    SDX_FUZZ_REQUIRE(got_frames[i].size() == len,
                     "frame length mismatch vs whole-buffer scan");
    bool equal = true;
    for (std::size_t b = 0; b < len; ++b) {
      if (got_frames[i][b] != stream[off + b]) {
        equal = false;
        break;
      }
    }
    SDX_FUZZ_REQUIRE(equal, "frame bytes mismatch vs whole-buffer scan");
  }
  return 0;
}

const std::vector<FuzzTarget>& fuzz_targets() {
  static const std::vector<FuzzTarget> kTargets = {
      {"wire", &run_wire},       {"mrt", &run_mrt},
      {"codec", &run_codec},     {"wal", &run_wal},
      {"policy", &run_policy},   {"diff_oracle", &run_diff_oracle},
      {"framer", &run_framer},
  };
  return kTargets;
}

FuzzEntry find_fuzz_entry(std::string_view name) {
  for (const auto& t : fuzz_targets()) {
    if (t.name == name) return t.entry;
  }
  return nullptr;
}

}  // namespace sdx::fuzz
