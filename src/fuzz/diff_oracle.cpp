#include "fuzz/diff_oracle.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "persist/checkpoint.hpp"
#include "persist/crc32c.hpp"
#include "sdx/runtime.hpp"
#include "verify/safety.hpp"

namespace fs = std::filesystem;

namespace sdx::fuzz {

namespace {

using core::SdxRuntime;

std::uint8_t clamp_participants(std::uint8_t raw) {
  return static_cast<std::uint8_t>(2 + raw % 4);  // 2..5
}
std::uint8_t clamp_prefixes(std::uint8_t raw) {
  return static_cast<std::uint8_t>(2 + raw % 15);  // 2..16
}

net::Ipv4Prefix prefix_of(std::size_t j) {
  return net::Ipv4Prefix(
      net::Ipv4Address((10u << 24) | (static_cast<std::uint32_t>(j + 1) << 16)),
      16);
}

net::Asn asn_of(std::size_t p) { return static_cast<net::Asn>(65000 + p); }

/// The deterministic base exchange the trace perturbs: every participant
/// steers port-80 and port-443 traffic to its two clockwise neighbours,
/// and prefix j is originated by participant (j mod n) + 1.
void build_base(SdxRuntime& rt, const Trace& t) {
  const std::size_t n = t.participants;
  for (std::size_t p = 1; p <= n; ++p) {
    rt.add_participant("P" + std::to_string(p), asn_of(p));
  }
  for (std::size_t p = 1; p <= n; ++p) {
    std::vector<core::OutboundClause> clauses;
    const auto next = static_cast<bgp::ParticipantId>(p % n + 1);
    const auto after = static_cast<bgp::ParticipantId>((p + 1) % n + 1);
    if (next != p) {
      clauses.push_back(
          core::OutboundClause{core::ClauseMatch{}.dst_port(80), next});
    }
    if (after != p && after != next) {
      clauses.push_back(
          core::OutboundClause{core::ClauseMatch{}.dst_port(443), after});
    }
    rt.set_outbound(static_cast<bgp::ParticipantId>(p), std::move(clauses));
  }
  for (std::size_t j = 0; j < t.prefixes; ++j) {
    const auto owner = static_cast<bgp::ParticipantId>(j % n + 1);
    rt.announce(owner, prefix_of(j),
                net::AsPath{asn_of(owner),
                            static_cast<net::Asn>(1000 + j)});
  }
  rt.install();
}

void apply_op(SdxRuntime& rt, const Trace& t, const TraceOp& op) {
  const auto p =
      static_cast<bgp::ParticipantId>(1 + op.participant % t.participants);
  const std::size_t j = op.prefix % t.prefixes;
  switch (op.kind) {
    case TraceOp::Kind::kAnnounce: {
      std::vector<net::Asn> hops{asn_of(p)};
      if (op.variant % 3 == 1) {
        hops.push_back(static_cast<net::Asn>(900 + op.variant));
      } else if (op.variant % 3 == 2) {
        hops.push_back(static_cast<net::Asn>(900 + op.variant));
        hops.push_back(static_cast<net::Asn>(800 + op.variant));
      }
      rt.announce(p, prefix_of(j), net::AsPath(std::move(hops)));
      break;
    }
    case TraceOp::Kind::kWithdraw:
      rt.withdraw(p, prefix_of(j));
      break;
    case TraceOp::Kind::kSessionDown:
      rt.session_down(p);
      break;
    case TraceOp::Kind::kSteer: {
      // Cross-participant steering churn: p appends a clause sending DNS
      // traffic for prefix j toward a trace-chosen participant (never
      // itself). Port 53 keeps the clause visible to the probe signature
      // without being shadowed by the base ring's 80/443 clauses; whether
      // it actually deploys is the compiler's BGP filter's call.
      auto target =
          static_cast<bgp::ParticipantId>(1 + op.variant % t.participants);
      if (target == p) {
        target = static_cast<bgp::ParticipantId>(target % t.participants + 1);
      }
      auto clauses = rt.participant(p).outbound;
      clauses.push_back(core::OutboundClause{
          core::ClauseMatch{}.dst(prefix_of(j)).dst_port(53), target});
      rt.set_outbound(p, std::move(clauses));
      // Policy edits have no fast path; recompile so every oracle side sees
      // the same deployed state regardless of its update mode.
      if (rt.installed()) rt.background_recompile();
      break;
    }
  }
}

/// One forwarding probe per (sender, prefix, well-known port): the
/// signature covers every policy clause (80/443) and default forwarding
/// (53) for every destination the trace can touch.
std::vector<std::string> probe_signature(SdxRuntime& rt, const Trace& t) {
  std::vector<std::string> out;
  out.reserve(std::size_t{t.participants} * t.prefixes * 3);
  for (std::size_t s = 1; s <= t.participants; ++s) {
    for (std::size_t j = 0; j < t.prefixes; ++j) {
      for (const std::uint16_t port : {80, 443, 53}) {
        const auto dst =
            net::Ipv4Address(prefix_of(j).network().value() | 7);
        auto deliveries =
            rt.send(static_cast<bgp::ParticipantId>(s),
                    net::PacketBuilder()
                        .src_ip("192.0.2.1")
                        .dst_ip(dst)
                        .proto(6)
                        .dst_port(port)
                        .build());
        std::ostringstream line;
        line << "P" << s << "->x" << j << ":" << port << " =";
        if (deliveries.empty()) {
          line << " drop";
        } else {
          for (const auto& d : deliveries) {
            line << " port" << d.port << (d.accepted ? "+" : "-") << "mac"
                 << d.frame.dst_mac().to_string();
          }
        }
        out.push_back(line.str());
      }
    }
  }
  return out;
}

/// probe_signature's burst twin: the identical probe set, sent through
/// send_batch per sender instead of one send() per probe, formatted into
/// the identical signature lines. Any divergence between the two is a
/// batch/per-packet desync by construction.
std::vector<std::string> probe_signature_batch(SdxRuntime& rt,
                                               const Trace& t) {
  std::vector<std::string> out;
  out.reserve(std::size_t{t.participants} * t.prefixes * 3);
  for (std::size_t s = 1; s <= t.participants; ++s) {
    std::vector<net::PacketHeader> payloads;
    std::vector<std::pair<std::size_t, std::uint16_t>> meta;
    payloads.reserve(std::size_t{t.prefixes} * 3);
    for (std::size_t j = 0; j < t.prefixes; ++j) {
      for (const std::uint16_t port : {80, 443, 53}) {
        const auto dst =
            net::Ipv4Address(prefix_of(j).network().value() | 7);
        payloads.push_back(net::PacketBuilder()
                               .src_ip("192.0.2.1")
                               .dst_ip(dst)
                               .proto(6)
                               .dst_port(port)
                               .build());
        meta.emplace_back(j, port);
      }
    }
    const auto batch =
        rt.send_batch(static_cast<bgp::ParticipantId>(s), payloads);
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      std::ostringstream line;
      line << "P" << s << "->x" << meta[i].first << ":" << meta[i].second
           << " =";
      const auto deliveries = batch.of(i);
      if (deliveries.empty()) {
        line << " drop";
      } else {
        for (const auto& d : deliveries) {
          line << " port" << d.port << (d.accepted ? "+" : "-") << "mac"
               << d.frame.dst_mac().to_string();
        }
      }
      out.push_back(line.str());
    }
  }
  return out;
}

OracleVerdict diff_signatures(const std::vector<std::string>& want,
                              const std::vector<std::string>& got,
                              const char* oracle, const char* sides) {
  for (std::size_t i = 0; i < std::min(want.size(), got.size()); ++i) {
    if (want[i] != got[i]) {
      return {false, oracle,
              std::string(sides) + " diverge at probe " + std::to_string(i) +
                  ": \"" + want[i] + "\" vs \"" + got[i] + "\""};
    }
  }
  if (want.size() != got.size()) {
    return {false, oracle, std::string(sides) + " probe counts differ"};
  }
  return {true, oracle, ""};
}

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& base) {
    std::string tmpl =
        (base.empty() ? std::string("/tmp") : base) + "/sdx_oracle_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed for oracle scratch dir");
    }
    path.assign(buf.data());
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Drops the last RIB route from the newest checkpoint in \p dir and
/// rewrites the file (valid CRC, stale fingerprint) — the planted
/// kCorruptCheckpointRoute divergence.
void corrupt_newest_checkpoint(const std::string& dir) {
  std::string newest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt" &&
        entry.path().string() > newest) {
      newest = entry.path().string();
    }
  }
  if (newest.empty()) return;
  auto st = persist::try_load_checkpoint(newest);
  if (!st.has_value() || st->routes.empty()) return;
  st->routes.pop_back();
  persist::write_checkpoint_file(newest, *st);
}

std::size_t last_announce_index(const Trace& t) {
  for (std::size_t i = t.ops.size(); i > 0; --i) {
    if (t.ops[i - 1].kind == TraceOp::Kind::kAnnounce) return i - 1;
  }
  return t.ops.size();  // none
}

/// Plants the kPlantVerifierLoop divergence: the first two participants
/// transit-announce a fresh prefix and steer its DNS traffic at each other,
/// then the prefix is withdrawn straight from the route server — bypassing
/// the runtime's update hooks, so the deployed steering rules and router
/// FIB entries go stale and port-53 traffic for the prefix ping-pongs.
void plant_verifier_loop(SdxRuntime& rt) {
  const auto q = net::Ipv4Prefix::parse("198.51.100.0/24");
  rt.announce(1, q, net::AsPath{asn_of(1), static_cast<net::Asn>(990)});
  rt.announce(2, q, net::AsPath{asn_of(2), static_cast<net::Asn>(991)});
  auto c1 = rt.participant(1).outbound;
  c1.push_back(
      core::OutboundClause{core::ClauseMatch{}.dst(q).dst_port(53), 2});
  rt.set_outbound(1, std::move(c1));
  auto c2 = rt.participant(2).outbound;
  c2.push_back(
      core::OutboundClause{core::ClauseMatch{}.dst(q).dst_port(53), 1});
  rt.set_outbound(2, std::move(c2));
  rt.background_recompile();
  rt.route_server().withdraw(1, q);
  rt.route_server().withdraw(2, q);
}

}  // namespace

std::string Trace::to_string() const {
  std::ostringstream os;
  os << "trace P=" << int{participants} << " N=" << int{prefixes} << ":";
  for (const auto& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kAnnounce:
        os << " A(p" << 1 + op.participant % participants << ",x"
           << op.prefix % prefixes << ",v" << int{op.variant} << ")";
        break;
      case TraceOp::Kind::kWithdraw:
        os << " W(p" << 1 + op.participant % participants << ",x"
           << op.prefix % prefixes << ")";
        break;
      case TraceOp::Kind::kSessionDown:
        os << " D(p" << 1 + op.participant % participants << ")";
        break;
      case TraceOp::Kind::kSteer:
        os << " S(p" << 1 + op.participant % participants << ",x"
           << op.prefix % prefixes << "->p" << 1 + op.variant % participants
           << ")";
        break;
    }
  }
  if (ops.empty()) os << " (no ops)";
  return os.str();
}

Trace decode_trace(std::span<const std::uint8_t> bytes) {
  Trace t;
  if (!bytes.empty()) t.participants = clamp_participants(bytes[0]);
  if (bytes.size() > 1) t.prefixes = clamp_prefixes(bytes[1]);
  for (std::size_t i = 2; i + 4 <= bytes.size() && t.ops.size() < kMaxTraceOps;
       i += 4) {
    TraceOp op;
    const std::uint8_t k = bytes[i] % 8;
    op.kind = k < 4   ? TraceOp::Kind::kAnnounce
              : k < 5 ? TraceOp::Kind::kSteer
              : k < 7 ? TraceOp::Kind::kWithdraw
                      : TraceOp::Kind::kSessionDown;
    op.participant = bytes[i + 1];
    op.prefix = bytes[i + 2];
    op.variant = bytes[i + 3];
    t.ops.push_back(op);
  }
  return t;
}

std::vector<std::uint8_t> encode_trace(const Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + trace.ops.size() * 4);
  out.push_back(static_cast<std::uint8_t>(trace.participants - 2));
  out.push_back(static_cast<std::uint8_t>(trace.prefixes - 2));
  for (const auto& op : trace.ops) {
    switch (op.kind) {
      case TraceOp::Kind::kAnnounce: out.push_back(0); break;
      case TraceOp::Kind::kSteer: out.push_back(4); break;
      case TraceOp::Kind::kWithdraw: out.push_back(5); break;
      case TraceOp::Kind::kSessionDown: out.push_back(7); break;
    }
    out.push_back(op.participant);
    out.push_back(op.prefix);
    out.push_back(op.variant);
  }
  return out;
}

DifferentialOracle::DifferentialOracle(OracleOptions options)
    : options_(std::move(options)) {
  if (options_.threads < 2) options_.threads = 2;
}

OracleVerdict DifferentialOracle::check(const Trace& trace) const {
  using Fault = OracleOptions::Fault;

  // (a) batched fast path ≡ full recompilation of the same state.
  if (options_.check_fast_path) {
    SdxRuntime fast;
    build_base(fast, trace);
    fast.enable_batching(
        {.max_pending = 0, .max_delay_seconds = 0});  // explicit flush only
    const std::size_t skip =
        options_.fault == Fault::kSkipLastFastAnnounce
            ? last_announce_index(trace)
            : trace.ops.size();
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
      if (i == skip) continue;
      apply_op(fast, trace, trace.ops[i]);
    }
    fast.flush();

    SdxRuntime full;
    build_base(full, trace);
    for (const auto& op : trace.ops) apply_op(full, trace, op);
    full.background_recompile();

    auto verdict = diff_signatures(probe_signature(full, trace),
                                   probe_signature(fast, trace), "fast-path",
                                   "full-recompile vs fast-path");
    if (!verdict.ok) return verdict;
  }

  // (b) threads=1 ≡ threads=N, by compiled fingerprint.
  if (options_.check_threads) {
    SdxRuntime serial(bgp::DecisionConfig{}, core::CompileOptions{.threads = 1});
    build_base(serial, trace);
    for (const auto& op : trace.ops) apply_op(serial, trace, op);
    serial.background_recompile();

    SdxRuntime wide(bgp::DecisionConfig{},
                    core::CompileOptions{.threads = options_.threads});
    build_base(wide, trace);
    for (const auto& op : trace.ops) apply_op(wide, trace, op);
    if (options_.fault == Fault::kPerturbThreadedCompile) {
      // Withdraw prefix 0 from everyone on the wide side only: its
      // forwarding entry disappears, so the compiled artifacts must
      // diverge no matter what the trace did beforehand.
      for (std::uint8_t p = 0; p < trace.participants; ++p) {
        wide.withdraw(static_cast<bgp::ParticipantId>(p + 1), prefix_of(0));
      }
    }
    wide.background_recompile();

    if (serial.compiled().fingerprint() != wide.compiled().fingerprint()) {
      return {false, "threads",
              "threads=1 and threads=" + std::to_string(options_.threads) +
                  " fingerprints differ"};
    }
  }

  // (d) partitioned per-participant compilation ≡ pairwise cross product,
  // probe-for-probe. (Fingerprints legitimately differ — the partitioned
  // artifact carries per-partition sections — so the comparison is purely
  // behavioural.)
  if (options_.check_partitioned) {
    SdxRuntime pairwise;
    build_base(pairwise, trace);
    for (const auto& op : trace.ops) apply_op(pairwise, trace, op);
    pairwise.background_recompile();

    SdxRuntime parted(bgp::DecisionConfig{},
                      core::CompileOptions{.partitioned = true});
    build_base(parted, trace);
    for (const auto& op : trace.ops) apply_op(parted, trace, op);
    if (options_.fault == Fault::kPerturbPartitionedCompile) {
      // Withdraw prefix 0 from everyone on the partitioned side only: its
      // forwarding entry disappears, so the probes must diverge.
      for (std::uint8_t p = 0; p < trace.participants; ++p) {
        parted.withdraw(static_cast<bgp::ParticipantId>(p + 1), prefix_of(0));
      }
    }
    parted.background_recompile();

    auto verdict = diff_signatures(probe_signature(pairwise, trace),
                                   probe_signature(parted, trace),
                                   "partitioned", "pairwise vs partitioned");
    if (!verdict.ok) return verdict;
  }

  // (e) classified lookup ≡ linear reference scan, over the identical
  // installed table. Partitioned mode exercises every lane: masked VMAC
  // rules (next-hop field + attribute bits), exact VMACs, and the port /
  // clause / catch-all tuples.
  if (options_.check_classifier) {
    SdxRuntime rt(bgp::DecisionConfig{},
                  core::CompileOptions{.partitioned = true});
    build_base(rt, trace);
    for (const auto& op : trace.ops) apply_op(rt, trace, op);
    rt.background_recompile();

    auto& table = rt.fabric().sdx_switch().table();
    if (options_.fault == Fault::kDesyncClassifiedLookup) {
      table.corrupt_classifier_for_test();
    }
    table.set_lookup_mode(dp::FlowTable::LookupMode::kClassified);
    auto classified = probe_signature(rt, trace);
    table.set_lookup_mode(dp::FlowTable::LookupMode::kLinear);
    auto linear = probe_signature(rt, trace);
    table.set_lookup_mode(dp::FlowTable::LookupMode::kClassified);
    auto verdict = diff_signatures(linear, classified, "classifier",
                                   "linear vs classified");
    if (!verdict.ok) return verdict;
  }

  // (g) batched lookup ≡ per-packet lookup, over the identical installed
  // table: the same probe set must produce the same deliveries and the
  // same match/miss accounting whichever path carries it. Partitioned
  // mode again, so every lane and the tuple path are in play.
  if (options_.check_batch) {
    SdxRuntime rt(bgp::DecisionConfig{},
                  core::CompileOptions{.partitioned = true});
    build_base(rt, trace);
    for (const auto& op : trace.ops) apply_op(rt, trace, op);
    rt.background_recompile();

    auto& table = rt.fabric().sdx_switch().table();
    const std::uint64_t matched0 = table.total_matched();
    const std::uint64_t missed0 = table.total_missed();
    auto single = probe_signature(rt, trace);
    const std::uint64_t matched1 = table.total_matched();
    const std::uint64_t missed1 = table.total_missed();
    if (options_.fault == Fault::kDesyncBatchLookup) {
      table.plant_batch_desync_for_test();
    }
    auto batched = probe_signature_batch(rt, trace);
    const std::uint64_t matched2 = table.total_matched();
    const std::uint64_t missed2 = table.total_missed();

    auto verdict =
        diff_signatures(single, batched, "batch", "per-packet vs batched");
    if (!verdict.ok) return verdict;
    if (matched1 - matched0 != matched2 - matched1 ||
        missed1 - missed0 != missed2 - missed1) {
      return {false, "batch",
              "per-packet vs batched match/miss totals differ: matched " +
                  std::to_string(matched1 - matched0) + " vs " +
                  std::to_string(matched2 - matched1) + ", missed " +
                  std::to_string(missed1 - missed0) + " vs " +
                  std::to_string(missed2 - missed1)};
    }
  }

  // (c) checkpoint + WAL-tail recovery ≡ the never-crashed runtime.
  if (options_.check_recovery) {
    ScratchDir scratch(options_.scratch_dir);
    SdxRuntime live;
    build_base(live, trace);
    live.attach_journal(scratch.path,
                        {persist::Journal::Options::Fsync::kNever});
    for (const auto& op : trace.ops) apply_op(live, trace, op);
    if (options_.fault == Fault::kCorruptCheckpointRoute) {
      corrupt_newest_checkpoint(scratch.path);
    }

    SdxRuntime recovered;
    recovered.recover(scratch.path);
    auto verdict = diff_signatures(probe_signature(live, trace),
                                   probe_signature(recovered, trace),
                                   "recovery", "never-crashed vs recovered");
    if (!verdict.ok) return verdict;

    live.background_recompile();
    recovered.background_recompile();
    if (live.compiled().fingerprint() != recovered.compiled().fingerprint()) {
      return {false, "recovery",
              "canonicalized fingerprints differ after recovery"};
    }
  }

  // (f) safety: the deployed final state verifies clean, and any
  // counterexample the checker emits must reproduce when replayed through
  // the data plane. The planted fault desynchronizes RIB and deployment
  // behind the runtime's back, which must surface as a loop violation.
  if (options_.check_verifier) {
    SdxRuntime rt;
    build_base(rt, trace);
    rt.enable_verification();  // exercises the incremental stage per op
    for (const auto& op : trace.ops) apply_op(rt, trace, op);
    rt.background_recompile();
    if (options_.fault == Fault::kPlantVerifierLoop) {
      plant_verifier_loop(rt);
    }
    const auto report = rt.verify_now();
    const auto view = rt.deployment_view();
    for (const auto& v : report.violations) {
      if (!v.counterexample) continue;
      if (!verify::replay(view, *v.counterexample).reproduces(v.kind)) {
        return {false, "verify",
                "counterexample does not reproduce under replay: " + v.what};
      }
    }
    if (options_.fault == Fault::kPlantVerifierLoop) {
      // Like every planted fault, detection means check() fails: the fault
      // creates a genuinely unsafe deployment, so a passing check here
      // would mean the safety detector is broken.
      const bool saw_loop = std::any_of(
          report.violations.begin(), report.violations.end(),
          [](const verify::SafetyViolation& v) {
            return v.kind == verify::ViolationKind::kLoop && v.counterexample;
          });
      if (saw_loop) {
        return {false, "verify",
                "planted forwarding loop detected: " + report.to_string()};
      }
    } else if (!report.ok()) {
      return {false, "verify", "unsafe deployment: " + report.to_string()};
    }
  }

  return {true, "", ""};
}

Trace DifferentialOracle::minimize(const Trace& trace) const {
  if (check(trace).ok) return trace;
  Trace best = trace;
  std::size_t chunk = std::max<std::size_t>(1, best.ops.size() / 2);
  while (true) {
    bool removed_any = false;
    std::size_t at = 0;
    while (at < best.ops.size()) {
      const std::size_t end = std::min(best.ops.size(), at + chunk);
      Trace candidate = best;
      candidate.ops.erase(
          candidate.ops.begin() + static_cast<std::ptrdiff_t>(at),
          candidate.ops.begin() + static_cast<std::ptrdiff_t>(end));
      if (!check(candidate).ok) {
        best = std::move(candidate);
        removed_any = true;
      } else {
        at = end;
      }
    }
    if (best.ops.empty()) break;
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }
  return best;
}

std::string DifferentialOracle::write_regression(const std::string& dir,
                                                 const Trace& trace) {
  fs::create_directories(dir);
  const auto bytes = encode_trace(trace);
  const std::uint32_t digest = persist::crc32c(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  char name[32];
  std::snprintf(name, sizeof(name), "trace-%08x.bin", digest);
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("failed to write " + path);
  return path;
}

Trace DifferentialOracle::load_regression(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  return decode_trace(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

}  // namespace sdx::fuzz
