#include "sdx/runtime.hpp"

#include <stdexcept>

namespace sdx::core {

SdxRuntime::SdxRuntime(bgp::DecisionConfig decision, CompileOptions options)
    : server_(decision), options_(options) {
  auto& reg = telemetry_.metrics;
  server_.set_telemetry(&reg);
  fabric_.arp().set_counters(
      &reg.counter("sdx_arp_queries_total", "ARP queries answered"),
      &reg.counter("sdx_arp_misses_total", "ARP queries with no binding"));
  fabric_.sdx_switch().table().set_counters(
      &reg.counter("sdx_flow_table_matched_total",
                   "packets matched by a flow rule"),
      &reg.counter("sdx_flow_table_missed_total",
                   "packets matching no flow rule"));
  fast_updates_ = &reg.counter("sdx_fast_path_updates_total",
                               "BGP updates run through the 4.3.2 fast path");
  fast_rules_ = &reg.counter(
      "sdx_fast_path_rules_total",
      "additional higher-priority rules installed by the fast path");
  fast_seconds_ = &reg.histogram("sdx_fast_path_seconds",
                                 "per-update fast-path latency (seconds)");
  frontend_updates_ = &reg.counter("sdx_frontend_updates_total",
                                   "UPDATE messages distributed on the wire");
  frontend_bytes_ = &reg.counter("sdx_frontend_bytes_total",
                                 "bytes moved by wire distribution");
  frontend_drops_ = &reg.counter("sdx_frontend_session_drops_total",
                                 "wire sessions lost to hold-timer expiry");
}

ParticipantId SdxRuntime::add_participant(const std::string& name,
                                          net::Asn asn,
                                          std::size_t port_count) {
  if (installed()) {
    throw std::logic_error("add participants before install()");
  }
  if (port_count == 0) {
    throw std::invalid_argument("physical participants need ≥1 port");
  }
  Participant p;
  p.id = static_cast<ParticipantId>(participants_.size() + 1);
  p.name = name;
  p.asn = asn;
  for (std::size_t i = 0; i < port_count; ++i) {
    PhysicalPort port;
    port.id = next_port_++;
    // 00:16:3e — a universally-administered OUI, so router MACs can never
    // collide with the locally-administered VMAC space.
    port.router_mac = net::MacAddress(0x00'16'3E'00'00'00ull | port.id);
    port.router_ip =
        net::Ipv4Address(net::Ipv4Address::parse("10.0.0.0").value() +
                         next_host_++);
    p.ports.push_back(port);
  }
  participants_.push_back(std::move(p));
  Participant& stored = participants_.back();
  port_map_.register_participant(stored.id, stored.port_ids());
  server_.add_peer({stored.id, asn, stored.primary_port().router_ip});
  for (const auto& port : stored.ports) {
    routers_.emplace_back(asn, port.id, port.router_mac, port.router_ip);
    router_index_[stored.id].push_back(routers_.size() - 1);
    fabric_.attach(routers_.back());
  }
  if (frontend_) {
    frontend_->connect(stored.id,
                       routers_[router_index_.at(stored.id).front()]);
  }
  return stored.id;
}

ParticipantId SdxRuntime::add_remote_participant(const std::string& name,
                                                 net::Asn asn) {
  if (installed()) {
    throw std::logic_error("add participants before install()");
  }
  Participant p;
  p.id = static_cast<ParticipantId>(participants_.size() + 1);
  p.name = name;
  p.asn = asn;
  participants_.push_back(std::move(p));
  Participant& stored = participants_.back();
  port_map_.register_participant(stored.id, {});
  server_.add_peer(
      {stored.id, asn,
       net::Ipv4Address(net::Ipv4Address::parse("192.0.2.0").value() +
                        next_host_++)});
  return stored.id;
}

Participant& SdxRuntime::participant(ParticipantId id) {
  for (auto& p : participants_) {
    if (p.id == id) return p;
  }
  throw std::out_of_range("unknown participant " + std::to_string(id));
}

const Participant& SdxRuntime::participant(ParticipantId id) const {
  for (const auto& p : participants_) {
    if (p.id == id) return p;
  }
  throw std::out_of_range("unknown participant " + std::to_string(id));
}

Participant* SdxRuntime::find(const std::string& name) {
  for (auto& p : participants_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void SdxRuntime::set_outbound(ParticipantId id,
                              std::vector<OutboundClause> clauses) {
  participant(id).outbound = std::move(clauses);
  validate_participant(participant(id), participants_);
}

void SdxRuntime::set_inbound(ParticipantId id,
                             std::vector<InboundClause> clauses) {
  participant(id).inbound = std::move(clauses);
  validate_participant(participant(id), participants_);
}

void SdxRuntime::enable_rpki(bgp::RoaTable table, RpkiMode mode) {
  roas_ = std::move(table);
  rpki_mode_ = mode;
}

void SdxRuntime::announce(ParticipantId from, Ipv4Prefix prefix,
                          std::optional<net::AsPath> path,
                          std::vector<bgp::Community> communities) {
  const Participant& p = participant(from);
  if (rpki_mode_ != RpkiMode::kOff) {
    const net::Asn origin =
        path && !path->empty() ? path->origin_as() : p.asn;
    const auto validity = roas_.validate(prefix, origin);
    const bool must_be_valid =
        p.is_remote() && rpki_mode_ != RpkiMode::kOff;
    if ((must_be_valid && validity != bgp::RoaValidity::kValid) ||
        (rpki_mode_ == RpkiMode::kStrict &&
         validity == bgp::RoaValidity::kInvalid)) {
      throw std::invalid_argument(
          p.name + ": RPKI validation failed for " + prefix.to_string() +
          " (origin AS" + std::to_string(origin) + ": " +
          std::string(bgp::validity_name(validity)) + ")");
    }
  }
  bgp::Route route;
  route.prefix = prefix;
  route.attrs.as_path = path.value_or(net::AsPath{p.asn});
  route.attrs.communities = std::move(communities);
  route.attrs.next_hop = p.is_remote()
                             ? net::Ipv4Address{}
                             : p.primary_port().router_ip;
  route.learned_from = from;
  route.peer_router_id = server_.peer(from)->router_id;
  server_.announce(std::move(route));
  if (installed()) {
    handle_post_install_update(prefix);
  } else {
    readvertise(prefix);
  }
}

std::size_t SdxRuntime::session_down(ParticipantId id) {
  Participant& p = participant(id);
  p.outbound.clear();
  p.inbound.clear();
  // Other participants' clauses toward a dead peer stay installed — their
  // reach sets simply become empty, exactly as with any withdrawal.
  const auto advertised = server_.advertised_by(id);
  for (auto prefix : advertised) withdraw(id, prefix);
  if (installed()) {
    // Policies changed, so the two-stage fast path is not enough: rebuild.
    background_recompile();
  }
  return advertised.size();
}

void SdxRuntime::withdraw(ParticipantId from, Ipv4Prefix prefix) {
  server_.withdraw(from, prefix);
  if (installed()) {
    handle_post_install_update(prefix);
  } else {
    readvertise(prefix);
  }
}

const CompiledSdx& SdxRuntime::deploy() {
  const CompiledSdx& compiled = engine_->full_recompile(vnh_);

  // One binding per remote participant, advertised as the next hop of its
  // otherwise-unreachable announcements so senders can frame the traffic.
  remote_bindings_.clear();
  for (const auto& p : participants_) {
    if (p.is_remote()) remote_bindings_[p.id] = vnh_.allocate();
  }

  auto& table = fabric_.sdx_switch().table();
  table.clear();
  table.install_classifier(compiled.fabric, kBasePriority, kBaseCookie);
  fast_bindings_.clear();
  bind_arp(compiled);
  for (auto prefix : server_.all_prefixes()) readvertise(prefix);
  return compiled;
}

const CompiledSdx& SdxRuntime::install() {
  telemetry::Span span = telemetry_.tracer.span("install");
  for (const auto& p : participants_) {
    validate_participant(p, participants_);
  }
  engine_ = std::make_unique<IncrementalEngine>(
      SdxCompiler(participants_, port_map_, server_, options_));
  engine_->set_telemetry(&telemetry_);
  return deploy();
}

const CompiledSdx& SdxRuntime::background_recompile() {
  if (!installed()) {
    throw std::logic_error("install() before background_recompile()");
  }
  telemetry::Span span = telemetry_.tracer.span("background_recompile");
  return deploy();
}

void SdxRuntime::set_compile_threads(unsigned threads) {
  options_.threads = threads;
  if (engine_) engine_->set_threads(threads);
}

void SdxRuntime::bind_arp(const CompiledSdx& compiled) {
  for (const auto& b : compiled.bindings) {
    fabric_.arp().bind(b.vnh, b.vmac);
  }
  for (const auto& [id, b] : remote_bindings_) {
    fabric_.arp().bind(b.vnh, b.vmac);
  }
}

std::optional<VnhBinding> SdxRuntime::advertised_binding(
    Ipv4Prefix prefix) const {
  if (auto it = fast_bindings_.find(prefix); it != fast_bindings_.end()) {
    return it->second;
  }
  if (installed()) {
    if (auto b = compiled().binding_for(prefix)) return b;
  }
  return std::nullopt;
}

std::optional<VnhBinding> SdxRuntime::current_binding(
    Ipv4Prefix prefix) const {
  return advertised_binding(prefix);
}

std::optional<VnhBinding> SdxRuntime::remote_binding(
    ParticipantId advertiser) const {
  auto it = remote_bindings_.find(advertiser);
  if (it == remote_bindings_.end()) return std::nullopt;
  return it->second;
}

void SdxRuntime::use_wire_distribution() {
  if (frontend_) return;
  frontend_ = std::make_unique<BgpFrontend>();
  for (const auto& p : participants_) {
    if (p.is_remote()) continue;
    // One session per participant, terminated at its primary router; the
    // router applies the updates to the shared participant RIB view.
    frontend_->connect(p.id, routers_[router_index_.at(p.id).front()]);
  }
}

std::vector<ParticipantId> SdxRuntime::advance_clock(double seconds) {
  if (!frontend_) return {};
  auto dropped = frontend_->advance_clock(seconds);
  frontend_drops_->inc(dropped.size());
  // A lost session is a participant departure (see session_down): withdraw
  // its routes and drop its policies rather than advertising stale state.
  for (auto id : dropped) session_down(id);
  return dropped;
}

std::string SdxRuntime::dump_metrics() {
  auto& reg = telemetry_.metrics;
  reg.gauge("sdx_flow_table_rules", "flow rules installed in the fabric")
      .set(static_cast<double>(fabric_.sdx_switch().table().size()));
  reg.gauge("sdx_arp_bindings", "entries in the ARP responder")
      .set(static_cast<double>(fabric_.arp().size()));
  reg.gauge("sdx_route_server_prefixes", "prefixes currently in the RIB")
      .set(static_cast<double>(server_.prefix_count()));
  return reg.render_prometheus();
}

std::string SdxRuntime::dump_trace() const {
  return telemetry_.tracer.render_chrome_json();
}

void SdxRuntime::readvertise(Ipv4Prefix prefix) {
  const auto binding = advertised_binding(prefix);
  for (const auto& p : participants_) {
    if (p.is_remote()) continue;
    bgp::UpdateMessage msg;
    auto best = server_.best_route(p.id, prefix);
    if (!best) {
      msg.withdrawn.push_back(prefix);
    } else {
      bgp::RouteAttributes attrs = best->attrs;
      if (binding) {
        attrs.next_hop = binding->vnh;
      } else if (auto rb = remote_bindings_.find(best->learned_from);
                 rb != remote_bindings_.end()) {
        attrs.next_hop = rb->second.vnh;
      }
      msg.attrs = std::move(attrs);
      msg.nlri.push_back(prefix);
    }
    if (frontend_ && frontend_->established(p.id)) {
      frontend_bytes_->inc(frontend_->distribute(p.id, msg));
      frontend_updates_->inc();
      // Secondary routers of multi-port participants share the view.
      for (std::size_t k = 1; k < router_index_[p.id].size(); ++k) {
        routers_[router_index_[p.id][k]].process_update(msg);
      }
    } else {
      for (std::size_t ri : router_index_[p.id]) {
        routers_[ri].process_update(msg);
      }
    }
  }
}

void SdxRuntime::handle_post_install_update(Ipv4Prefix prefix) {
  telemetry::Span span = telemetry_.tracer.span("fast_update");
  auto result = engine_->fast_update(prefix, vnh_);
  fast_updates_->inc();
  fast_rules_->inc(result.additional_rules);
  fast_seconds_->observe(result.seconds);
  if (result.binding) {
    fast_bindings_[prefix] = *result.binding;
    fabric_.arp().bind(result.binding->vnh, result.binding->vmac);
    auto& table = fabric_.sdx_switch().table();
    policy::Classifier extra(std::move(result.rules));
    table.install_classifier(extra, kFastPriority, next_cookie_++);
  }
  readvertise(prefix);
  update_log_.push_back(
      UpdateReport{prefix, result.additional_rules, result.seconds});
}

dp::BorderRouter& SdxRuntime::router(ParticipantId id,
                                     std::size_t port_index) {
  return routers_.at(router_index_.at(id).at(port_index));
}

std::vector<dp::Fabric::Delivery> SdxRuntime::send(ParticipantId from,
                                                   net::PacketHeader payload,
                                                   std::size_t port_index) {
  return fabric_.send(router(from, port_index), std::move(payload));
}

}  // namespace sdx::core
