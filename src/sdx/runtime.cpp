#include "sdx/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <utility>

#include "sdx/verifier.hpp"

namespace sdx::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Converts the local-rule auditor's findings into the safety subsystem's
/// report format (satellite of the verify/ subsystem: one entry point, one
/// report holding both graph counterexamples and per-rule violations).
std::vector<verify::SafetyViolation> fold_audit(const AuditReport& report) {
  std::vector<verify::SafetyViolation> out;
  out.reserve(report.violations.size());
  for (const auto& v : report.violations) {
    verify::SafetyViolation sv;
    sv.kind = verify::ViolationKind::kLocalRule;
    sv.what = "rule " + std::to_string(v.rule_index) + ": " + v.what;
    out.push_back(std::move(sv));
  }
  return out;
}

/// Scoped flag override; restores the previous value on any exit path.
class FlagOverride {
 public:
  FlagOverride(bool& flag, bool value) : flag_(flag), saved_(flag) {
    flag_ = value;
  }
  ~FlagOverride() { flag_ = saved_; }
  FlagOverride(const FlagOverride&) = delete;
  FlagOverride& operator=(const FlagOverride&) = delete;

 private:
  bool& flag_;
  bool saved_;
};

}  // namespace

SdxRuntime::SdxRuntime(bgp::DecisionConfig decision, CompileOptions options)
    : server_(decision),
      options_(options),
      vnh_(net::Ipv4Prefix::parse("172.16.0.0/12"), options.vmac_layout) {
  auto& reg = telemetry_.metrics;
  server_.set_telemetry(&reg);
  fabric_.arp().set_counters(
      &reg.counter("sdx_arp_queries_total", "ARP queries answered"),
      &reg.counter("sdx_arp_misses_total", "ARP queries with no binding"));
  fabric_.sdx_switch().table().set_counters(
      &reg.counter("sdx_flow_table_matched_total",
                   "packets matched by a flow rule"),
      &reg.counter("sdx_flow_table_missed_total",
                   "packets matching no flow rule"));
  // Teach the data-plane classifier this deployment's VMAC bit geometry so
  // masked stage-1 rules index into exact-match lanes instead of tuples.
  fabric_.sdx_switch().table().set_vmac_lanes(options_.vmac_layout.lane_spec());
  fast_updates_ = &reg.counter("sdx_fast_path_updates_total",
                               "BGP updates run through the 4.3.2 fast path");
  fast_rules_ = &reg.counter(
      "sdx_fast_path_rules_total",
      "additional higher-priority rules installed by the fast path");
  fast_compositions_ = &reg.counter(
      "sdx_fast_path_compositions_total",
      "stage-1 rules composed through stage-2 classifiers by the fast path");
  fast_seconds_ = &reg.histogram("sdx_fast_path_seconds",
                                 "per-update fast-path latency (seconds)");
  batch_flushes_ = &reg.counter("sdx_fast_path_batches_total",
                                "batched fast-path flushes");
  batch_updates_ = &reg.counter("sdx_fast_path_batched_updates_total",
                                "updates absorbed by a batched flush");
  batch_size_ = &reg.histogram(
      "sdx_fast_path_batch_size", "dirty prefixes per batched flush",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
  async_recompiles_ = &reg.counter(
      "sdx_recompile_async_total",
      "asynchronous background recompilations started");
  stale_recompiles_ = &reg.counter(
      "sdx_recompile_stale_total",
      "asynchronous recompilations discarded as stale");
  swap_seconds_ = &reg.histogram(
      "sdx_recompile_swap_seconds",
      "control-thread latency of swapping in a finished recompilation");
  frontend_updates_ = &reg.counter("sdx_frontend_updates_total",
                                   "UPDATE messages distributed on the wire");
  frontend_bytes_ = &reg.counter("sdx_frontend_bytes_total",
                                 "bytes moved by wire distribution");
  frontend_drops_ = &reg.counter("sdx_frontend_session_drops_total",
                                 "wire sessions lost to hold-timer expiry");
  ingest_reconnects_ = &reg.counter(
      "sdx_ingest_reconnects_total",
      "BGP sessions automatically re-established");
  partitions_recompiled_ = &reg.counter(
      "sdx_partitions_recompiled_total",
      "participant partitions recompiled in place by policy changes");
}

ParticipantId SdxRuntime::add_participant(const std::string& name,
                                          net::Asn asn,
                                          std::size_t port_count) {
  if (installed()) {
    throw std::logic_error("add participants before install()");
  }
  if (port_count == 0) {
    throw std::invalid_argument("physical participants need ≥1 port");
  }
  Participant p;
  p.id = static_cast<ParticipantId>(participants_.size() + 1);
  p.name = name;
  p.asn = asn;
  for (std::size_t i = 0; i < port_count; ++i) {
    PhysicalPort port;
    port.id = next_port_++;
    // 00:16:3e — a universally-administered OUI, so router MACs can never
    // collide with the locally-administered VMAC space.
    port.router_mac = net::MacAddress(0x00'16'3E'00'00'00ull | port.id);
    port.router_ip =
        net::Ipv4Address(net::Ipv4Address::parse("10.0.0.0").value() +
                         next_host_++);
    p.ports.push_back(port);
  }
  participants_.push_back(std::move(p));
  Participant& stored = participants_.back();
  port_map_.register_participant(stored.id, stored.port_ids());
  server_.add_peer({stored.id, asn, stored.primary_port().router_ip});
  for (const auto& port : stored.ports) {
    routers_.emplace_back(asn, port.id, port.router_mac, port.router_ip);
    router_index_[stored.id].push_back(routers_.size() - 1);
    fabric_.attach(routers_.back());
  }
  if (frontend_) {
    frontend_->connect(stored.id,
                       routers_[router_index_.at(stored.id).front()]);
  }
  if (journal_recording_) {
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kAddParticipant;
    rec.participant = stored.id;
    rec.name = name;
    rec.asn = asn;
    rec.port_count = static_cast<std::uint32_t>(port_count);
    journal_->append(rec);
  }
  return stored.id;
}

ParticipantId SdxRuntime::add_remote_participant(const std::string& name,
                                                 net::Asn asn) {
  if (installed()) {
    throw std::logic_error("add participants before install()");
  }
  Participant p;
  p.id = static_cast<ParticipantId>(participants_.size() + 1);
  p.name = name;
  p.asn = asn;
  participants_.push_back(std::move(p));
  Participant& stored = participants_.back();
  port_map_.register_participant(stored.id, {});
  server_.add_peer(
      {stored.id, asn,
       net::Ipv4Address(net::Ipv4Address::parse("192.0.2.0").value() +
                        next_host_++)});
  if (journal_recording_) {
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kAddRemoteParticipant;
    rec.participant = stored.id;
    rec.name = name;
    rec.asn = asn;
    journal_->append(rec);
  }
  return stored.id;
}

Participant& SdxRuntime::participant(ParticipantId id) {
  for (auto& p : participants_) {
    if (p.id == id) return p;
  }
  throw std::out_of_range("unknown participant " + std::to_string(id));
}

const Participant& SdxRuntime::participant(ParticipantId id) const {
  for (const auto& p : participants_) {
    if (p.id == id) return p;
  }
  throw std::out_of_range("unknown participant " + std::to_string(id));
}

Participant* SdxRuntime::find(const std::string& name) {
  for (auto& p : participants_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void SdxRuntime::set_outbound(ParticipantId id,
                              std::vector<OutboundClause> clauses) {
  participant(id).outbound = std::move(clauses);
  validate_participant(participant(id), participants_);
  ++policy_epoch_;
  if (journal_recording_) {
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kSetOutbound;
    rec.participant = id;
    rec.outbound = participant(id).outbound;
    journal_->append(rec);
  }
  // Partitioned mode: an outbound change dirties exactly one partition —
  // recompile and swap it in place instead of waiting for the next full
  // rebuild. (Pairwise mode keeps the historical contract: changes land on
  // the next install()/recompile.)
  if (installed() && options_.partitioned) {
    recompile_participant_partition(id);
  }
}

void SdxRuntime::set_inbound(ParticipantId id,
                             std::vector<InboundClause> clauses) {
  participant(id).inbound = std::move(clauses);
  validate_participant(participant(id), participants_);
  ++policy_epoch_;
  if (journal_recording_) {
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kSetInbound;
    rec.participant = id;
    rec.inbound = participant(id).inbound;
    journal_->append(rec);
  }
  // An inbound change rewrites this participant's stage-2 classifier, which
  // is composed into every partition whose clauses target it — not a
  // single-partition change, so rebuild everything. The WAL record above
  // covers the derived effects on replay.
  if (installed() && options_.partitioned) {
    FlagOverride suppress(journal_recording_, false);
    background_recompile();
  }
}

void SdxRuntime::enable_rpki(bgp::RoaTable table, RpkiMode mode) {
  roas_ = std::move(table);
  rpki_mode_ = mode;
}

void SdxRuntime::announce(ParticipantId from, Ipv4Prefix prefix,
                          std::optional<net::AsPath> path,
                          std::vector<bgp::Community> communities) {
  const Participant& p = participant(from);
  if (rpki_mode_ != RpkiMode::kOff) {
    const net::Asn origin =
        path && !path->empty() ? path->origin_as() : p.asn;
    const auto validity = roas_.validate(prefix, origin);
    const bool must_be_valid =
        p.is_remote() && rpki_mode_ != RpkiMode::kOff;
    if ((must_be_valid && validity != bgp::RoaValidity::kValid) ||
        (rpki_mode_ == RpkiMode::kStrict &&
         validity == bgp::RoaValidity::kInvalid)) {
      throw std::invalid_argument(
          p.name + ": RPKI validation failed for " + prefix.to_string() +
          " (origin AS" + std::to_string(origin) + ": " +
          std::string(bgp::validity_name(validity)) + ")");
    }
  }
  if (journal_recording_) {
    // Write-ahead: the record lands before the mutation, capturing the
    // inputs (communities are moved into the route below).
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kAnnounce;
    rec.participant = from;
    rec.prefix = prefix;
    rec.has_path = path.has_value();
    if (path) rec.path = *path;
    rec.communities = communities;
    journal_->append(rec);
  }
  bgp::Route route;
  route.prefix = prefix;
  route.attrs.as_path = path.value_or(net::AsPath{p.asn});
  route.attrs.communities = std::move(communities);
  route.attrs.next_hop = p.is_remote()
                             ? net::Ipv4Address{}
                             : p.primary_port().router_ip;
  route.learned_from = from;
  route.peer_router_id = server_.peer(from)->router_id;
  server_.announce(std::move(route));
  if (installed()) {
    note_post_install_update(prefix);
  } else {
    readvertise(prefix);
  }
}

std::size_t SdxRuntime::session_down(ParticipantId id) {
  Participant& p = participant(id);
  if (journal_recording_) {
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kSessionDown;
    rec.participant = id;
    journal_->append(rec);
  }
  // The inner withdraw()/recompile calls below are derived effects of this
  // one record — suppress their own journaling so replay, which re-runs
  // session_down() wholesale, does not double-apply them.
  FlagOverride suppress(journal_recording_, false);
  p.outbound.clear();
  p.inbound.clear();
  ++policy_epoch_;
  // Other participants' clauses toward a dead peer stay installed — their
  // reach sets simply become empty, exactly as with any withdrawal.
  const auto advertised = server_.advertised_by(id);
  for (auto prefix : advertised) withdraw(id, prefix);
  if (installed()) {
    // Purge the withdrawn prefixes from any pending batch and drop their
    // fast-path bindings *before* recompiling, so nothing pending can
    // re-install state for routes that no longer exist.
    for (auto prefix : advertised) {
      if (dirty_set_.erase(prefix) != 0) {
        dirty_order_.erase(
            std::remove(dirty_order_.begin(), dirty_order_.end(), prefix),
            dirty_order_.end());
        // The batched withdrawal this purge swallows still has to reach
        // the border routers.
        readvertise(prefix);
      }
      fast_bindings_.erase(prefix);
    }
    if (dirty_order_.empty()) pending_clock_ = 0;
    // Policies changed, so the two-stage fast path is not enough: rebuild.
    background_recompile();
  }
  return advertised.size();
}

void SdxRuntime::withdraw(ParticipantId from, Ipv4Prefix prefix) {
  if (journal_recording_) {
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kWithdraw;
    rec.participant = from;
    rec.prefix = prefix;
    journal_->append(rec);
  }
  server_.withdraw(from, prefix);
  if (installed()) {
    note_post_install_update(prefix);
  } else {
    readvertise(prefix);
  }
}

const CompiledSdx& SdxRuntime::deploy() {
  // A synchronous rebuild outruns any in-flight asynchronous one: mark the
  // job superseded so its (older) result is discarded at poll time.
  if (job_) job_->superseded = true;
  const CompiledSdx& compiled = engine_->full_recompile(vnh_);

  // One binding per remote participant, advertised as the next hop of its
  // otherwise-unreachable announcements so senders can frame the traffic.
  remote_bindings_.clear();
  for (const auto& p : participants_) {
    if (p.is_remote()) remote_bindings_[p.id] = vnh_.allocate();
  }

  install_base_tables(compiled);
  fast_bindings_.clear();
  bind_arp(compiled);
  // The rebuild covers every update absorbed so far: pending batches, raced
  // deltas and the per-update log are all superseded. Pending prefixes that
  // left the RIB entirely still need their (deferred) withdrawal
  // re-advertised — the loop below only walks prefixes the RIB still holds.
  std::vector<Ipv4Prefix> pending = std::move(dirty_order_);
  dirty_order_.clear();
  dirty_set_.clear();
  pending_clock_ = 0;
  raced_order_.clear();
  raced_set_.clear();
  update_log_.clear();
  for (auto prefix : server_.all_prefixes()) readvertise(prefix);
  for (auto prefix : pending) readvertise(prefix);
  run_safety_stage(nullptr);
  return compiled;
}

const CompiledSdx& SdxRuntime::install() {
  telemetry::Span span = telemetry_.tracer.span("install");
  for (const auto& p : participants_) {
    validate_participant(p, participants_);
  }
  if (journal_recording_) {
    persist::WalRecord rec;
    rec.type = persist::WalRecordType::kInstall;
    journal_->append(rec);
  }
  engine_ = std::make_unique<IncrementalEngine>(
      SdxCompiler(participants_, port_map_, server_, options_));
  engine_->set_telemetry(&telemetry_);
  return deploy();
}

const CompiledSdx& SdxRuntime::background_recompile() {
  if (!installed()) {
    throw std::logic_error("install() before background_recompile()");
  }
  telemetry::Span span = telemetry_.tracer.span("background_recompile");
  return deploy();
}

bool SdxRuntime::start_background_recompile() {
  if (!installed()) {
    throw std::logic_error("install() before start_background_recompile()");
  }
  if (job_) return false;
  // Size 2: one pool worker owns the job (size 1 would run submit() inline
  // on the control thread, which is exactly what "asynchronous" must not
  // do). The compiler spreads its parallel stages at options_.threads width
  // over its own pool, so this one stays small.
  if (!async_pool_) async_pool_ = std::make_unique<net::ThreadPool>(2);
  auto job = std::make_unique<RecompileJob>();
  job->participants = participants_;
  job->ports = port_map_;
  job->server = server_.snapshot();
  job->policy_epoch = policy_epoch_;
  // The worker's allocator must share the live pool and VMAC layout, or an
  // async compile would silently encode under the default layout.
  job->vnh = VnhAllocator(vnh_.pool(), vnh_.layout());
  raced_order_.clear();
  raced_set_.clear();
  // The worker sees only the job's own snapshots (and the thread-safe
  // telemetry bundle) — never live runtime state. The raw pointer is
  // stable: the job is heap-held and outlives `done` by construction.
  RecompileJob* raw = job.get();
  const CompileOptions opts = options_;
  telemetry::Telemetry* telemetry = &telemetry_;
  job->done = async_pool_->submit([raw, opts, telemetry] {
    SdxCompiler compiler(raw->participants, raw->ports, raw->server, opts);
    compiler.set_telemetry(telemetry);
    raw->result = compiler.compile(raw->vnh);
  });
  job_ = std::move(job);
  async_recompiles_->inc();
  return true;
}

bool SdxRuntime::poll_background_recompile() {
  if (!job_) return false;
  if (job_->done.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return false;
  }
  std::unique_ptr<RecompileJob> job = std::move(job_);
  job->done.get();  // surfaces a worker exception, if any
  if (job->superseded) {
    stale_recompiles_->inc();
    return false;
  }
  if (job->policy_epoch != policy_epoch_) {
    // Policies changed mid-flight: the result answers yesterday's question.
    // Discard it and recompile against the current policy state.
    stale_recompiles_->inc();
    start_background_recompile();
    return false;
  }
  apply_recompile(std::move(*job));
  return true;
}

const CompiledSdx& SdxRuntime::wait_background_recompile() {
  while (job_) {
    job_->done.wait();
    poll_background_recompile();
  }
  return compiled();
}

void SdxRuntime::apply_recompile(RecompileJob job) {
  telemetry::Span span = telemetry_.tracer.span("recompile_swap");
  const auto t0 = std::chrono::steady_clock::now();
  // Double-buffer swap: adopt the worker's compiled state and allocator,
  // then rebuild the derived installation exactly as deploy() would —
  // the same allocator sequence keeps async byte-identical to sync.
  vnh_ = std::move(job.vnh);
  const CompiledSdx& compiled = engine_->adopt(std::move(job.result));
  remote_bindings_.clear();
  for (const auto& p : participants_) {
    if (p.is_remote()) remote_bindings_[p.id] = vnh_.allocate();
  }
  install_base_tables(compiled);
  fast_bindings_.clear();
  bind_arp(compiled);
  update_log_.clear();
  // Every pending dirty prefix predating the snapshot is covered by the new
  // table; anything that raced past it re-applies through one batched fast
  // pass on top of the new base (note_post_install_update recorded both).
  // Pending prefixes whose deferred withdrawal emptied their RIB entry get
  // an explicit re-advertisement — the all_prefixes() walk can't see them.
  std::vector<Ipv4Prefix> pending = std::move(dirty_order_);
  dirty_order_.clear();
  dirty_set_.clear();
  pending_clock_ = 0;
  std::vector<Ipv4Prefix> raced = std::move(raced_order_);
  raced_order_.clear();
  raced_set_.clear();
  for (auto prefix : server_.all_prefixes()) readvertise(prefix);
  for (auto prefix : pending) readvertise(prefix);
  install_batch(raced);
  swap_seconds_->observe(seconds_since(t0));
  // Full re-verification after the swap (the raced-delta batch above already
  // re-checked its own prefixes incrementally; the new base needs the rest).
  run_safety_stage(nullptr);
}

void SdxRuntime::set_compile_threads(unsigned threads) {
  options_.threads = threads;
  if (engine_) engine_->set_threads(threads);
}

void SdxRuntime::install_base_tables(const CompiledSdx& compiled) {
  auto& table = fabric_.sdx_switch().table();
  table.clear();
  partition_bases_.clear();
  if (!compiled.partitioned) {
    table.install_classifier(compiled.fabric, kBasePriority, kBaseCookie);
    return;
  }
  // Shared band at the bottom, partition bands stacked above it in slot
  // order, each under its own cookie so a single-partition recompile can
  // swap one band in place. Relative order among partition bands is
  // irrelevant: they match disjoint ingress ports.
  table.install_classifier(compiled.shared_rules, kBasePriority, kBaseCookie);
  std::uint32_t base =
      kBasePriority + static_cast<std::uint32_t>(compiled.shared_rules.size());
  partition_bases_.reserve(compiled.partitions.size());
  for (std::size_t slot = 0; slot < compiled.partitions.size(); ++slot) {
    const auto& part = compiled.partitions[slot];
    partition_bases_.push_back(base);
    if (part.rules.size() > 0) {
      table.install_classifier(part.rules, base, partition_cookie(slot));
    }
    base += static_cast<std::uint32_t>(part.rules.size());
  }
}

void SdxRuntime::recompile_participant_partition(ParticipantId id) {
  telemetry::Span span = telemetry_.tracer.span("partition_recompile");
  auto update = engine_->recompile_partition(id, vnh_);
  partitions_recompiled_->inc();
  telemetry_.metrics
      .histogram("sdx_partition_compile_seconds",
                 "per-partition compile wall time (seconds)", {},
                 {{"participant", participant(id).name}})
      .observe(update.seconds);
  auto& table = fabric_.sdx_switch().table();
  table.remove_by_cookie(partition_cookie(update.slot));
  const auto& part = engine_->current().partitions[update.slot];
  if (part.rules.size() > 0) {
    table.install_classifier(part.rules, partition_bases_.at(update.slot),
                             partition_cookie(update.slot));
  }
  for (const auto& b : update.bindings) {
    fabric_.arp().bind(b.vnh, b.vmac);
  }
  for (auto prefix : update.affected) readvertise(prefix);
  run_safety_stage(&update.affected);
}

void SdxRuntime::bind_arp(const CompiledSdx& compiled) {
  for (const auto& b : compiled.bindings) {
    fabric_.arp().bind(b.vnh, b.vmac);
  }
  for (const auto& part : compiled.partitions) {
    for (const auto& b : part.bindings) {
      fabric_.arp().bind(b.vnh, b.vmac);
    }
  }
  for (const auto& [id, b] : remote_bindings_) {
    fabric_.arp().bind(b.vnh, b.vmac);
  }
}

std::optional<VnhBinding> SdxRuntime::advertised_binding(
    Ipv4Prefix prefix) const {
  if (auto it = fast_bindings_.find(prefix); it != fast_bindings_.end()) {
    return it->second;
  }
  if (installed()) {
    if (auto b = compiled().binding_for(prefix)) return b;
  }
  return std::nullopt;
}

std::optional<VnhBinding> SdxRuntime::current_binding(
    Ipv4Prefix prefix) const {
  return advertised_binding(prefix);
}

std::optional<VnhBinding> SdxRuntime::remote_binding(
    ParticipantId advertiser) const {
  auto it = remote_bindings_.find(advertiser);
  if (it == remote_bindings_.end()) return std::nullopt;
  return it->second;
}

void SdxRuntime::use_wire_distribution() {
  if (frontend_) return;
  frontend_ = std::make_unique<BgpFrontend>();
  for (const auto& p : participants_) {
    if (p.is_remote()) continue;
    // One session per participant, terminated at its primary router; the
    // router applies the updates to the shared participant RIB view.
    frontend_->connect(p.id, routers_[router_index_.at(p.id).front()]);
  }
}

void SdxRuntime::enable_frontend_auto_reconnect(
    BgpFrontend::ReconnectPolicy policy) {
  if (!frontend_) {
    throw std::logic_error(
        "enable_frontend_auto_reconnect requires use_wire_distribution()");
  }
  frontend_->enable_auto_reconnect(policy);
}

std::vector<ParticipantId> SdxRuntime::advance_clock(double seconds) {
  std::vector<ParticipantId> dropped;
  if (frontend_) {
    dropped = frontend_->advance_clock(seconds);
    frontend_drops_->inc(dropped.size());
    const auto reconnects = frontend_->reconnects();
    if (reconnects > synced_frontend_reconnects_) {
      ingest_reconnects_->inc(reconnects - synced_frontend_reconnects_);
      synced_frontend_reconnects_ = reconnects;
    }
    // A lost session is a participant departure (see session_down): withdraw
    // its routes and drop its policies rather than advertising stale state.
    for (auto id : dropped) session_down(id);
  }
  if (batching_ && !dirty_order_.empty() &&
      batch_options_.max_delay_seconds > 0) {
    pending_clock_ += seconds;
    if (pending_clock_ >= batch_options_.max_delay_seconds) flush();
  }
  return dropped;
}

void SdxRuntime::enable_batching(BatchOptions options) {
  batching_ = true;
  batch_options_ = options;
  if (batch_options_.max_pending != 0 &&
      dirty_order_.size() >= batch_options_.max_pending) {
    flush();
  }
}

void SdxRuntime::disable_batching() {
  flush();
  batching_ = false;
}

std::size_t SdxRuntime::flush() {
  pending_clock_ = 0;
  if (dirty_order_.empty()) return 0;
  std::vector<Ipv4Prefix> prefixes = std::move(dirty_order_);
  dirty_order_.clear();
  dirty_set_.clear();
  batch_flushes_->inc();
  batch_updates_->inc(prefixes.size());
  batch_size_->observe(static_cast<double>(prefixes.size()));
  install_batch(prefixes);
  return prefixes.size();
}

void SdxRuntime::set_update_log_capacity(std::size_t capacity) {
  update_log_capacity_ = capacity;
  while (update_log_.size() > update_log_capacity_) update_log_.pop_front();
}

void SdxRuntime::log_update(UpdateReport report) {
  if (update_log_capacity_ == 0) return;
  // Trim before admitting, so the ring never transiently exceeds its
  // capacity (capacity 0 admits nothing at all).
  while (update_log_.size() >= update_log_capacity_) update_log_.pop_front();
  update_log_.push_back(std::move(report));
}

std::string SdxRuntime::dump_metrics() {
  auto& reg = telemetry_.metrics;
  reg.gauge("sdx_flow_table_rules", "flow rules installed in the fabric")
      .set(static_cast<double>(fabric_.sdx_switch().table().size()));
  reg.gauge("sdx_arp_bindings", "entries in the ARP responder")
      .set(static_cast<double>(fabric_.arp().size()));
  reg.gauge("sdx_route_server_prefixes", "prefixes currently in the RIB")
      .set(static_cast<double>(server_.prefix_count()));
  return reg.render_prometheus();
}

std::string SdxRuntime::dump_trace() const {
  return telemetry_.tracer.render_chrome_json();
}

void SdxRuntime::readvertise(Ipv4Prefix prefix) {
  const auto global = advertised_binding(prefix);
  const bool partitioned = installed() && compiled().partitioned;
  for (std::size_t slot = 0; slot < participants_.size(); ++slot) {
    const auto& p = participants_[slot];
    if (p.is_remote()) continue;
    // Per-receiver next hop: the fast-path (or pairwise group) binding is
    // receiver-independent; a partitioned artifact advertises each receiver
    // the binding of *its own* partition group — the tag encodes the
    // receiver's clause bitmap and default next hop, so it must never reach
    // another router. Prefixes outside the receiver's partition keep their
    // real (or remote-participant) next hop and ride MAC learning.
    auto binding = global;
    if (!binding && partitioned) {
      binding = compiled().partition_binding_for(slot, prefix);
    }
    bgp::UpdateMessage msg;
    auto best = server_.best_route(p.id, prefix);
    if (!best) {
      msg.withdrawn.push_back(prefix);
    } else {
      bgp::RouteAttributes attrs = best->attrs;
      if (binding) {
        attrs.next_hop = binding->vnh;
      } else if (auto rb = remote_bindings_.find(best->learned_from);
                 rb != remote_bindings_.end()) {
        attrs.next_hop = rb->second.vnh;
      }
      msg.attrs = std::move(attrs);
      msg.nlri.push_back(prefix);
    }
    if (frontend_ && frontend_->established(p.id)) {
      frontend_bytes_->inc(frontend_->distribute(p.id, msg));
      frontend_updates_->inc();
      // Secondary routers of multi-port participants share the view.
      for (std::size_t k = 1; k < router_index_[p.id].size(); ++k) {
        routers_[router_index_[p.id][k]].process_update(msg);
      }
    } else {
      for (std::size_t ri : router_index_[p.id]) {
        routers_[ri].process_update(msg);
      }
    }
  }
}

void SdxRuntime::note_post_install_update(Ipv4Prefix prefix) {
  // Raced-delta bookkeeping first: while an asynchronous recompile flies,
  // every touched prefix must be re-applied on top of its result, whether
  // the update runs inline or waits in a batch.
  if (job_ && raced_set_.insert(prefix).second) {
    raced_order_.push_back(prefix);
  }
  if (batching_) {
    if (dirty_set_.insert(prefix).second) dirty_order_.push_back(prefix);
    if (batch_options_.max_pending != 0 &&
        dirty_order_.size() >= batch_options_.max_pending) {
      flush();
    }
    return;
  }
  handle_post_install_update(prefix);
}

void SdxRuntime::handle_post_install_update(Ipv4Prefix prefix) {
  telemetry::Span span = telemetry_.tracer.span("fast_update");
  auto result = engine_->fast_update(prefix, vnh_);
  fast_updates_->inc();
  fast_rules_->inc(result.additional_rules);
  fast_compositions_->inc(result.compositions);
  fast_seconds_->observe(result.seconds);
  if (result.binding) {
    fast_bindings_[prefix] = *result.binding;
    fabric_.arp().bind(result.binding->vnh, result.binding->vmac);
    auto& table = fabric_.sdx_switch().table();
    policy::Classifier extra(std::move(result.rules));
    table.install_classifier(extra, kFastPriority, next_cookie_++);
  }
  readvertise(prefix);
  log_update(UpdateReport{prefix, result.additional_rules, result.seconds});
  const std::vector<Ipv4Prefix> dirty{prefix};
  run_safety_stage(&dirty);
}

void SdxRuntime::install_batch(const std::vector<Ipv4Prefix>& prefixes) {
  if (prefixes.empty()) return;
  telemetry::Span span = telemetry_.tracer.span("fast_update_batch");
  auto batch = engine_->fast_update_batch(prefixes, vnh_);
  fast_updates_->inc(batch.items.size());
  fast_rules_->inc(batch.additional_rules);
  fast_compositions_->inc(batch.compositions);
  const double amortized =
      batch.items.empty() ? 0.0 : batch.seconds / batch.items.size();
  if (!batch.rules.empty()) {
    // One combined classifier, one cookie: the whole flush installs (and
    // can later be dropped) as a unit.
    policy::Classifier extra(std::move(batch.rules));
    fabric_.sdx_switch().table().install_classifier(extra, kFastPriority,
                                                    next_cookie_++);
  }
  for (const auto& item : batch.items) {
    if (item.binding) {
      fast_bindings_[item.prefix] = *item.binding;
      fabric_.arp().bind(item.binding->vnh, item.binding->vmac);
    }
    fast_seconds_->observe(amortized);
    readvertise(item.prefix);
    log_update(
        UpdateReport{item.prefix, item.additional_rules, amortized});
  }
  run_safety_stage(&prefixes);
}

void SdxRuntime::wire_journal_hooks() {
  auto& reg = telemetry_.metrics;
  persist::Journal::Hooks hooks;
  hooks.records =
      &reg.counter("sdx_journal_records_total", "WAL records appended");
  hooks.bytes = &reg.counter("sdx_journal_bytes_total",
                             "WAL bytes appended (framing included)");
  hooks.checkpoints =
      &reg.counter("sdx_journal_checkpoints_total", "checkpoints written");
  hooks.fsync_seconds =
      &reg.histogram("sdx_journal_fsync_seconds", "WAL fsync latency");
  journal_->set_hooks(hooks);
}

void SdxRuntime::attach_journal(const std::string& dir,
                                persist::Journal::Options options) {
  if (journal_) throw std::logic_error("journal already attached");
  auto journal = std::make_unique<persist::Journal>(dir, options);
  if (!journal->empty()) {
    throw std::logic_error("journal directory " + dir +
                           " holds existing state — use recover()");
  }
  const bool fresh = participants_.empty() && !installed();
  journal_ = std::move(journal);
  wire_journal_hooks();
  journal_->start_recording(/*genesis_if_new=*/fresh);
  journal_recording_ = true;
  // A non-fresh runtime has state no WAL record covers: anchor the journal
  // with an immediate checkpoint so it is always recoverable.
  if (!fresh) checkpoint();
}

std::uint64_t SdxRuntime::checkpoint() {
  if (!journal_ || !journal_recording_) {
    throw std::logic_error("attach_journal() before checkpoint()");
  }
  telemetry::Span span = telemetry_.tracer.span("checkpoint");
  // Flush any pending batch first: a checkpoint must capture an
  // externally-consistent state, not one with updates parked in a queue.
  if (batching_) flush();
  persist::CheckpointState st;
  st.participants = participants_;
  st.routes = server_.dump_routes();
  st.vnh_pool = vnh_.pool();
  st.vnh_allocated = vnh_.allocated();
  st.next_cookie = next_cookie_;
  st.installed = installed();
  if (st.installed) {
    st.compiled = engine_->current();
    st.compiled.stats = CompileStats{};  // timings are not state
    st.fingerprint = engine_->current().fingerprint();
    st.fast_bindings.assign(fast_bindings_.begin(), fast_bindings_.end());
    std::sort(st.fast_bindings.begin(), st.fast_bindings.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    st.remote_bindings.assign(remote_bindings_.begin(),
                              remote_bindings_.end());
    std::sort(st.remote_bindings.begin(), st.remote_bindings.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const dp::FlowRule* r : fabric_.sdx_switch().table().rules()) {
      // Base and partition bands are reconstructed from the compiled
      // artifact on restore — capturing them here would double-install.
      // Only fast-path residue rides along as raw rules.
      if (r->cookie == kBaseCookie || r->cookie >= kPartitionCookieBase) {
        continue;
      }
      st.extra_rules.push_back(
          {r->priority, r->cookie, policy::Rule{r->match, r->actions}});
    }
  }
  return journal_->write_checkpoint(std::move(st));
}

void SdxRuntime::restore_checkpoint(const persist::CheckpointState& st,
                                    RecoveryReport& report) {
  // 1. Re-register participants in stored order: the deterministic counter
  // scheme (ids, port ids, MACs, router IPs) regenerates identical state,
  // which the equality check below verifies against the stored copy.
  for (const auto& p : st.participants) {
    if (p.is_remote()) {
      add_remote_participant(p.name, p.asn);
    } else {
      add_participant(p.name, p.asn, p.ports.size());
    }
  }
  // Policies in a second pass: a clause may reference any participant,
  // including ones registered after its owner.
  for (const auto& p : st.participants) {
    if (!p.outbound.empty()) set_outbound(p.id, p.outbound);
    if (!p.inbound.empty()) set_inbound(p.id, p.inbound);
  }
  if (participants_ != st.participants) {
    throw std::runtime_error(
        "checkpoint participants do not match regenerated state "
        "(incompatible runtime version?)");
  }
  // 2. RIB restore: re-announce the full dump. Restoring state is not
  // route-server work — keep it out of the announcement counters.
  server_.set_telemetry(nullptr);
  for (const auto& r : st.routes) server_.announce(r);
  server_.set_telemetry(&telemetry_.metrics);
  next_cookie_ = st.next_cookie;
  vnh_ = VnhAllocator(st.vnh_pool, options_.vmac_layout);
  if (!st.installed) {
    vnh_.restore(st.vnh_allocated);
    return;
  }
  // 3. Decide warm vs cold. The compiler holds references into the
  // restored state, so the engine is built only now.
  engine_ = std::make_unique<IncrementalEngine>(
      SdxCompiler(participants_, port_map_, server_, options_));
  engine_->set_telemetry(&telemetry_);
  CompiledSdx compiled = st.compiled;
  // Warm restart requires (a) the artifact to be provably intact
  // (fingerprint match — the fingerprint embeds the VMAC layout it was
  // compiled under) and (b) the artifact to match *this* runtime's
  // configured layout and mode: a persisted artifact is self-consistent
  // under its own layout, so a configuration change would otherwise adopt
  // tables encoded with stale bit positions.
  if (compiled.fingerprint() == st.fingerprint &&
      compiled.layout == options_.vmac_layout &&
      compiled.partitioned == options_.partitioned) {
    // Warm restart: the decoded artifact is provably what a fresh compile
    // would produce — adopt it without compiling and reuse every persisted
    // VNH/VMAC binding, keeping border-router ARP caches valid.
    report.warm = true;
    vnh_.restore(st.vnh_allocated);
    const CompiledSdx& adopted = engine_->adopt(std::move(compiled));
    remote_bindings_.clear();
    for (const auto& [id, b] : st.remote_bindings) remote_bindings_[id] = b;
    install_base_tables(adopted);
    auto& table = fabric_.sdx_switch().table();
    for (const auto& extra : st.extra_rules) {
      dp::FlowRule rule;
      rule.priority = extra.priority;
      rule.match = extra.rule.match;
      rule.actions = extra.rule.actions;
      rule.cookie = extra.cookie;
      table.install(std::move(rule));
    }
    fast_bindings_.clear();
    for (const auto& [prefix, b] : st.fast_bindings) {
      fast_bindings_[prefix] = b;
    }
    bind_arp(adopted);
    for (const auto& [prefix, b] : fast_bindings_) {
      fabric_.arp().bind(b.vnh, b.vmac);
    }
    for (auto prefix : server_.all_prefixes()) readvertise(prefix);
  } else {
    // Fingerprint mismatch (different compile options, code drift, or a
    // corrupted artifact that still decoded): fall back to a cold install.
    install();
  }
}

void SdxRuntime::replay_record(const persist::WalRecord& rec) {
  switch (rec.type) {
    case persist::WalRecordType::kAddParticipant:
      add_participant(rec.name, rec.asn, rec.port_count);
      break;
    case persist::WalRecordType::kAddRemoteParticipant:
      add_remote_participant(rec.name, rec.asn);
      break;
    case persist::WalRecordType::kSetOutbound:
      set_outbound(rec.participant, rec.outbound);
      break;
    case persist::WalRecordType::kSetInbound:
      set_inbound(rec.participant, rec.inbound);
      break;
    case persist::WalRecordType::kAnnounce:
      announce(rec.participant, rec.prefix,
               rec.has_path ? std::optional<net::AsPath>(rec.path)
                            : std::nullopt,
               rec.communities);
      break;
    case persist::WalRecordType::kWithdraw:
      withdraw(rec.participant, rec.prefix);
      break;
    case persist::WalRecordType::kSessionDown:
      session_down(rec.participant);
      break;
    case persist::WalRecordType::kInstall:
      install();
      break;
  }
}

SdxRuntime::RecoveryReport SdxRuntime::recover(
    const std::string& dir, persist::Journal::Options options) {
  if (journal_) throw std::logic_error("journal already attached");
  if (!participants_.empty() || installed()) {
    throw std::logic_error("recover() requires a fresh runtime");
  }
  telemetry::Span span = telemetry_.tracer.span("recover");
  const auto t0 = std::chrono::steady_clock::now();
  auto journal = std::make_unique<persist::Journal>(dir, options);
  if (!journal->checkpoint() && !journal->complete_history()) {
    throw std::runtime_error("journal directory " + dir +
                             " holds no checkpoint and no complete WAL "
                             "history");
  }
  RecoveryReport report;
  report.torn_bytes = journal->torn_bytes();
  if (journal->checkpoint()) {
    report.had_checkpoint = true;
    report.checkpoint_lsn = journal->checkpoint()->lsn;
    restore_checkpoint(*journal->checkpoint(), report);
  }
  // Replay the tail. Once the replayed timeline passes install(), updates
  // run through the batched fast path — one coalesced pass instead of one
  // restricted compilation per record.
  bool batched = false;
  bool policy_replayed = false;
  for (const auto& rec : journal->tail()) {
    if (!batched && installed()) {
      enable_batching(BatchOptions{0, 0});
      batched = true;
    }
    if (installed() &&
        (rec.type == persist::WalRecordType::kSetOutbound ||
         rec.type == persist::WalRecordType::kSetInbound)) {
      policy_replayed = true;
    }
    replay_record(rec);
    ++report.replayed;
  }
  if (batched) disable_batching();
  // Pairwise mode defers a post-install policy change to the next recompile,
  // and the recompile the live runtime eventually ran is not a WAL record —
  // replay would otherwise resurrect the stale tables. One coalesced rebuild
  // restores the never-crashed state. (Partitioned mode recompiled the
  // affected partitions inline during replay, so nothing is stale.)
  if (policy_replayed && installed() && !options_.partitioned) {
    background_recompile();
  }
  journal_ = std::move(journal);
  wire_journal_hooks();
  journal_->start_recording(/*genesis_if_new=*/false);
  journal_recording_ = true;
  report.seconds = seconds_since(t0);
  auto& reg = telemetry_.metrics;
  auto& warm = reg.counter("sdx_recovery_warm_total",
                           "recoveries that warm-restarted (no recompile)");
  auto& cold = reg.counter("sdx_recovery_cold_total",
                           "recoveries that fell back to a full compile");
  (report.warm ? warm : cold).inc();
  reg.counter("sdx_recovery_replayed_records_total",
              "WAL tail records re-applied during recovery")
      .inc(report.replayed);
  reg.histogram("sdx_recovery_seconds", "end-to-end recovery latency")
      .observe(report.seconds);
  return report;
}

dp::BorderRouter& SdxRuntime::router(ParticipantId id,
                                     std::size_t port_index) {
  return routers_.at(router_index_.at(id).at(port_index));
}

std::vector<dp::Fabric::Delivery> SdxRuntime::send(ParticipantId from,
                                                   net::PacketHeader payload,
                                                   std::size_t port_index) {
  return fabric_.send(router(from, port_index), std::move(payload));
}

dp::Fabric::BatchDeliveries SdxRuntime::send_batch(
    ParticipantId from, std::span<const net::PacketHeader> payloads,
    std::size_t port_index) {
  return fabric_.send_batch(router(from, port_index), payloads);
}

verify::DeploymentView SdxRuntime::deployment_view() const {
  if (!installed()) {
    throw std::logic_error("install() before deployment_view()");
  }
  verify::DeploymentView view;
  view.participants = &participants_;
  view.server = &server_;
  const SdxRuntime* self = this;
  view.process = [self](const net::PacketHeader& h) {
    return self->fabric_.sdx_switch().table().process(h);
  };
  view.forward = [self](ParticipantId sender, net::PacketHeader payload)
      -> std::optional<net::PacketHeader> {
    const Participant& p = self->participant(sender);
    if (p.is_remote()) return std::nullopt;
    const dp::BorderRouter* router =
        self->fabric_.router_at(p.primary_port().id);
    if (router == nullptr) return std::nullopt;
    return router->forward(std::move(payload), self->fabric_.arp());
  };
  view.owner_of = [self](net::PortId port) -> std::optional<ParticipantId> {
    if (PortMap::is_virtual(port)) return std::nullopt;
    try {
      return self->port_map_.phys_owner(port);
    } catch (const std::out_of_range&) {
      return std::nullopt;
    }
  };
  view.router_mac_at =
      [self](net::PortId port) -> std::optional<net::MacAddress> {
    const dp::BorderRouter* router = self->fabric_.router_at(port);
    if (router == nullptr) return std::nullopt;
    return router->mac();
  };
  view.known_prefixes = [self]() {
    // The union of the route server's RIB and every border-router FIB:
    // a prefix withdrawn behind the server's back is exactly the stale
    // state the checker exists to catch, and it only survives in FIBs.
    std::set<Ipv4Prefix> known;
    for (auto prefix : self->server_.all_prefixes()) known.insert(prefix);
    for (const auto& router : self->routers_) {
      router.rib().for_each(
          [&known](const bgp::Route& route) { known.insert(route.prefix); });
    }
    return std::vector<Ipv4Prefix>(known.begin(), known.end());
  };
  return view;
}

void SdxRuntime::enable_verification(verify::SafetyChecker::Options options) {
  checker_ = std::make_unique<verify::SafetyChecker>(options);
  if (verify_seconds_ == nullptr) {
    auto& reg = telemetry_.metrics;
    verify_full_runs_ =
        &reg.counter("sdx_verify_runs_total", "safety verification passes",
                     {{"mode", "full"}});
    verify_incremental_runs_ =
        &reg.counter("sdx_verify_runs_total", "safety verification passes",
                     {{"mode", "incremental"}});
    verify_seconds_ = &reg.histogram(
        "sdx_verify_seconds", "safety verification wall time (seconds)");
    verify_classes_ = &reg.counter("sdx_verify_classes_total",
                                   "packet equivalence classes walked");
    verify_edges_ = &reg.counter("sdx_verify_edges_total",
                                 "forwarding-graph edges traversed");
    // Pre-register every kind so the exposition is shape-stable whether or
    // not a kind ever fires (the bench baselines gate on counter equality).
    for (auto kind :
         {verify::ViolationKind::kLoop, verify::ViolationKind::kIsolation,
          verify::ViolationKind::kBlackhole,
          verify::ViolationKind::kLocalRule}) {
      verify_violations_[static_cast<std::size_t>(kind)] = &reg.counter(
          "sdx_verify_violations_total", "safety violations detected",
          {{"kind", std::string(verify::kind_name(kind))}});
    }
  }
  if (installed()) run_safety_stage(nullptr);
}

void SdxRuntime::disable_verification() { checker_.reset(); }

verify::SafetyReport SdxRuntime::verify_now() const {
  if (!installed()) {
    throw std::logic_error("install() before verify_now()");
  }
  verify::SafetyChecker checker;
  // The static audit compares the compiled artifact against the current
  // RIB, so it is only meaningful while the artifact IS the deployment.
  // Outstanding fast-path bindings mean newer rules shadow stale artifact
  // rules; auditing the artifact then reports phantom export mismatches
  // the live table cannot exhibit. The walk below always checks the live
  // table, so safety coverage is unaffected — only the rule-level audit
  // waits for the next full recompile.
  if (fast_bindings_.empty()) {
    const AuditReport local =
        audit(compiled(), participants_, port_map_, server_);
    checker.set_local_findings(fold_audit(local), local.rules_checked);
  }
  return checker.full(deployment_view());
}

void SdxRuntime::run_safety_stage(const std::vector<Ipv4Prefix>* dirty) {
  if (!checker_ || !installed()) return;
  telemetry::Span span = telemetry_.tracer.span("safety_verify");
  const auto view = deployment_view();
  if (dirty == nullptr) {
    // Full runs normally start right after a deploy/swap, when
    // fast_bindings_ is empty and the artifact matches the deployment.
    // enable_verification() can trigger one mid-fast-path, though — skip
    // the artifact audit then (see verify_now for the staleness rationale).
    if (fast_bindings_.empty()) {
      const AuditReport local =
          audit(compiled(), participants_, port_map_, server_);
      checker_->set_local_findings(fold_audit(local), local.rules_checked);
    } else {
      checker_->set_local_findings({}, 0);
    }
    last_safety_report_ = checker_->full(view);
    verify_full_runs_->inc();
  } else {
    last_safety_report_ = checker_->incremental(view, *dirty);
    verify_incremental_runs_->inc();
  }
  verify_seconds_->observe(last_safety_report_.seconds);
  verify_classes_->inc(last_safety_report_.classes_checked);
  verify_edges_->inc(last_safety_report_.edges_walked);
  for (const auto& v : last_safety_report_.violations) {
    verify_violations_[static_cast<std::size_t>(v.kind)]->inc();
  }
}

}  // namespace sdx::core
