// vnh_allocator.hpp is header-only; this translation unit anchors the target.
#include "sdx/vnh_allocator.hpp"
