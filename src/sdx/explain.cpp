#include "sdx/explain.hpp"

#include <sstream>

namespace sdx::core {

std::string_view rule_kind_name(RuleKind k) {
  switch (k) {
    case RuleKind::kNoRoute: return "no-route";
    case RuleKind::kArpFailure: return "arp-failure";
    case RuleKind::kPolicyClause: return "policy-clause";
    case RuleKind::kRemoteRewrite: return "remote-rewrite";
    case RuleKind::kGroupDefault: return "group-default";
    case RuleKind::kMacLearning: return "mac-learning";
    case RuleKind::kDropped: return "dropped";
  }
  return "?";
}

std::string Explanation::to_string() const {
  std::ostringstream os;
  os << "verdict: " << rule_kind_name(kind) << "\n";
  if (route_prefix) {
    os << "route:   " << route_prefix->to_string() << " via participant "
       << route_via;
    if (group) os << " (prefix group " << *group << ")";
    os << "\n";
    os << "frame:   " << frame.to_string() << "\n";
  }
  if (rule_index) {
    os << "rule:    #" << *rule_index << " " << rule_text << "\n";
  }
  if (egress) {
    os << "egress:  port " << *egress << " (participant " << receiver
       << "), " << delivered.to_string() << "\n";
  }
  return os.str();
}

Explanation explain(const SdxRuntime& runtime, ParticipantId sender,
                    const net::PacketHeader& payload,
                    std::size_t port_index) {
  Explanation out;
  const Participant& s = runtime.participant(sender);
  if (s.is_remote() || port_index >= s.ports.size()) {
    out.kind = RuleKind::kNoRoute;
    return out;
  }

  // 1. Border-router step: LPM over the routes advertised to the sender.
  auto route = runtime.route_server().best_route_lpm(sender,
                                                     payload.dst_ip());
  if (!route) {
    out.kind = RuleKind::kNoRoute;
    return out;
  }
  out.route_prefix = route->prefix;
  out.route_via = route->learned_from;

  net::MacAddress dst_mac;
  if (auto binding = runtime.current_binding(route->prefix)) {
    dst_mac = binding->vmac;
    if (runtime.installed()) {
      auto it = runtime.compiled().fecs.group_of.find(route->prefix);
      if (it != runtime.compiled().fecs.group_of.end()) {
        out.group = it->second;
      }
    }
  } else if (auto rb = runtime.remote_binding(route->learned_from)) {
    dst_mac = rb->vmac;
  } else {
    auto resolved = runtime.fabric().arp().resolve(route->attrs.next_hop);
    if (!resolved) {
      out.kind = RuleKind::kArpFailure;
      return out;
    }
    dst_mac = *resolved;
  }

  out.frame = payload;
  out.frame.set_port(s.ports[port_index].id);
  out.frame.set_src_mac(s.ports[port_index].router_mac);
  out.frame.set_dst_mac(dst_mac);
  out.frame.set(net::Field::kEthType, net::kEthTypeIpv4);

  // 2. Fabric step: the matching installed rule.
  const dp::FlowRule* rule =
      runtime.fabric().sdx_switch().table().lookup(out.frame);
  if (rule == nullptr || rule->drops()) {
    out.kind = RuleKind::kDropped;
    if (rule != nullptr) out.rule_text = rule->to_string();
    return out;
  }
  out.rule_index =
      runtime.fabric().sdx_switch().table().index_of(rule).value_or(0);
  out.rule_text = rule->to_string();

  // 3. Best-effort attribution of the rule's origin.
  const auto& dstmac_match = rule->match.field(net::Field::kDstMac);
  const auto& port_match = rule->match.field(net::Field::kPort);
  const bool vmac_tagged =
      dstmac_match.is_exact() &&
      net::MacAddress(dstmac_match.value()).locally_administered();
  bool rewrites_dstip = false;
  for (const auto& act : rule->actions) {
    if (act.written(net::Field::kDstIp)) rewrites_dstip = true;
  }
  if (rewrites_dstip && !vmac_tagged) {
    out.kind = RuleKind::kRemoteRewrite;
  } else if (vmac_tagged) {
    const bool extra_fields =
        rule->match.constrained_fields() > (port_match.is_exact() ? 2 : 1);
    out.kind = extra_fields ? RuleKind::kPolicyClause
                            : RuleKind::kGroupDefault;
  } else if (dstmac_match.is_exact()) {
    out.kind = RuleKind::kMacLearning;
  } else {
    out.kind = RuleKind::kPolicyClause;
  }

  // 4. Outcome.
  out.delivered = rule->actions.front().apply(out.frame);
  out.egress = out.delivered.port();
  out.receiver = runtime.ports().phys_owner(out.delivered.port());
  return out;
}

}  // namespace sdx::core
