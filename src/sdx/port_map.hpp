#pragma once

/// \file port_map.hpp
/// The port-id space of the virtual SDX topology (paper §3.1, Figure 1a).
///
/// Every participant is given the illusion of its own virtual switch. For
/// compilation onto one physical switch, a packet's location (Field::kPort)
/// ranges over two id classes:
///
///   * physical ports — where participant border routers attach;
///   * one virtual port per participant — "the packet is now at X's virtual
///     switch". fwd(X) in a policy writes X's virtual-port id; the second
///     pipeline stage (X's inbound policy + default) then picks the real
///     egress port.

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "netbase/packet.hpp"

namespace sdx::core {

using bgp::ParticipantId;
using net::PortId;

class PortMap {
 public:
  /// Virtual port ids live above this base; physical ids below it.
  static constexpr PortId kVirtualBase = 1u << 20;

  static constexpr bool is_virtual(PortId p) { return p >= kVirtualBase; }

  /// Registers a participant and its physical ports. Port ids must be
  /// unique and below kVirtualBase.
  void register_participant(ParticipantId id, const std::vector<PortId>& phys);

  /// The participant's virtual-port id.
  PortId vport(ParticipantId id) const;

  /// The participant owning a virtual port.
  ParticipantId vport_owner(PortId vport) const;

  /// The participant owning a physical port.
  ParticipantId phys_owner(PortId port) const;

  const std::vector<PortId>& phys_ports(ParticipantId id) const;

  bool has(ParticipantId id) const { return vports_.contains(id); }

 private:
  std::unordered_map<ParticipantId, PortId> vports_;
  std::unordered_map<PortId, ParticipantId> vport_owner_;
  std::unordered_map<PortId, ParticipantId> phys_owner_;
  std::unordered_map<ParticipantId, std::vector<PortId>> phys_;
  PortId next_vport_ = kVirtualBase;
};

}  // namespace sdx::core
