#include "sdx/monitor.hpp"

#include <algorithm>

namespace sdx::core {

void TrafficMonitor::observe(double now, const net::PacketHeader& frame,
                             bgp::ParticipantId to) {
  prune(now);
  Key key;
  key.block = frame.src_ip().value() & net::netmask(block_len_);
  key.victim = to;
  samples_.push_back(Sample{now, key});
  ++counts_[key];
  ++total_;
}

void TrafficMonitor::prune(double now) {
  while (!samples_.empty() && now - samples_.front().time > window_s_) {
    auto it = counts_.find(samples_.front().key);
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
    samples_.pop_front();
  }
}

std::vector<TrafficMonitor::HeavyHitter> TrafficMonitor::heavy_hitters(
    double now, std::uint64_t threshold) {
  prune(now);
  std::vector<HeavyHitter> out;
  for (const auto& [key, count] : counts_) {
    if (count < threshold) continue;
    HeavyHitter hh;
    hh.source_block =
        net::Ipv4Prefix(net::Ipv4Address(key.block), block_len_);
    hh.victim = key.victim;
    hh.packets = count;
    out.push_back(hh);
  }
  // Heaviest first; ties in deterministic (block, victim) order rather
  // than unordered_map iteration order, so reactive applications act on a
  // stable list across runs and standard libraries.
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.packets != b.packets) return a.packets > b.packets;
              if (!(a.source_block == b.source_block)) {
                return a.source_block < b.source_block;
              }
              return a.victim < b.victim;
            });
  return out;
}

}  // namespace sdx::core
