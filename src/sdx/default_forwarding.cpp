#include "sdx/default_forwarding.hpp"

#include <stdexcept>

#include "sdx/bgp_consistency.hpp"
#include "sdx/isolation.hpp"

namespace sdx::core {

using policy::Policy;
using policy::Predicate;

policy::Policy default_outbound(const Participant& x,
                                const std::vector<Participant>& all,
                                const PortMap& ports) {
  std::vector<Policy> terms;
  for (const auto& y : all) {
    if (y.id == x.id) continue;
    for (const auto& port : y.ports) {
      terms.push_back(
          policy::match(Field::kDstMac, port.router_mac.bits()) >>
          policy::fwd(ports.vport(y.id)));
    }
  }
  return isolate_outbound(Policy::parallel(std::move(terms)), x, ports);
}

policy::Policy default_inbound(const Participant& x, const PortMap& ports) {
  // Nested if_ chain: port-specific MAC rules first, then the catch-all
  // rewrite to the primary router.
  const PhysicalPort& primary = x.primary_port();
  Policy chain = policy::modify(Field::kDstMac, primary.router_mac) >>
                 policy::fwd(primary.id);
  for (auto it = x.ports.rbegin(); it != x.ports.rend(); ++it) {
    chain = policy::if_(
        Predicate::test(Field::kDstMac, it->router_mac.bits()),
        policy::fwd(it->id), std::move(chain));
  }
  return isolate_inbound(std::move(chain), x, ports);
}

policy::Policy participant_policy(const Participant& x,
                                  const std::vector<Participant>& all,
                                  const PortMap& ports,
                                  const bgp::RouteServer& server) {
  // Outbound clause policy, isolated and BGP-augmented.
  Policy out_policy = augment_with_bgp(
      isolate_outbound(outbound_policy(x, ports), x, ports), x.id, server,
      ports);
  // The flow space the outbound policy claims: ports ∧ clause ∧ BGP filter.
  std::vector<Predicate> covered_terms;
  for (const auto& c : x.outbound) {
    covered_terms.push_back(at_physical_ports(x) & c.match.to_predicate() &
                            bgp_filter(x.id, c.to, server));
  }
  Predicate covered_out = Predicate::disjunction(std::move(covered_terms));

  // Inbound clause policy, isolated.
  Policy in_policy = isolate_inbound(inbound_policy(x, ports), x, ports);
  std::vector<Predicate> in_terms;
  for (const auto& c : x.inbound) {
    in_terms.push_back(at_virtual_port(x, ports) & c.match.to_predicate());
  }
  Predicate covered_in = Predicate::disjunction(std::move(in_terms));

  // PX'' = policy on covered traffic, defaults on the rest. The port
  // isolation inside each branch keeps the four terms pairwise disjoint.
  return std::move(out_policy) + std::move(in_policy) +
         (policy::match(!covered_out) >> default_outbound(x, all, ports)) +
         (policy::match(!covered_in) >> default_inbound(x, ports));
}

policy::Policy reference_sdx_policy(const std::vector<Participant>& all,
                                    const PortMap& ports,
                                    const bgp::RouteServer& server) {
  std::vector<Policy> stage;
  stage.reserve(all.size());
  for (const auto& x : all) {
    if (x.is_remote()) {
      throw std::invalid_argument(
          "reference compiler does not support remote participants");
    }
    stage.push_back(participant_policy(x, all, ports, server));
  }
  Policy sum = Policy::parallel(std::move(stage));
  return sum >> sum;
}

}  // namespace sdx::core
