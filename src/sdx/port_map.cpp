#include "sdx/port_map.hpp"

namespace sdx::core {

void PortMap::register_participant(ParticipantId id,
                                   const std::vector<PortId>& phys) {
  if (vports_.contains(id)) {
    throw std::invalid_argument("participant already registered: " +
                                std::to_string(id));
  }
  for (PortId p : phys) {
    if (is_virtual(p)) {
      throw std::invalid_argument("physical port id in virtual range");
    }
    if (phys_owner_.contains(p)) {
      throw std::invalid_argument("physical port already owned: " +
                                  std::to_string(p));
    }
  }
  const PortId v = next_vport_++;
  vports_[id] = v;
  vport_owner_[v] = id;
  for (PortId p : phys) phys_owner_[p] = id;
  phys_[id] = phys;
}

PortId PortMap::vport(ParticipantId id) const {
  auto it = vports_.find(id);
  if (it == vports_.end()) {
    throw std::out_of_range("unknown participant " + std::to_string(id));
  }
  return it->second;
}

ParticipantId PortMap::vport_owner(PortId vport) const {
  auto it = vport_owner_.find(vport);
  if (it == vport_owner_.end()) {
    throw std::out_of_range("not a virtual port: " + std::to_string(vport));
  }
  return it->second;
}

ParticipantId PortMap::phys_owner(PortId port) const {
  auto it = phys_owner_.find(port);
  if (it == phys_owner_.end()) {
    throw std::out_of_range("unowned physical port: " + std::to_string(port));
  }
  return it->second;
}

const std::vector<PortId>& PortMap::phys_ports(ParticipantId id) const {
  auto it = phys_.find(id);
  if (it == phys_.end()) {
    throw std::out_of_range("unknown participant " + std::to_string(id));
  }
  return it->second;
}

}  // namespace sdx::core
