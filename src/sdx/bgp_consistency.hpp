#pragma once

/// \file bgp_consistency.hpp
/// Second syntactic transformation of paper §4.1: "enforcing consistency
/// with BGP advertisements". Every forwarding action toward a next-hop AS
/// is guarded by a filter on the destination prefixes that AS actually
/// exported to the sender, so the SDX never directs traffic to an AS that
/// did not advertise a route for it.

#include <vector>

#include "bgp/route_server.hpp"
#include "policy/policy.hpp"
#include "sdx/participant.hpp"
#include "sdx/port_map.hpp"

namespace sdx::core {

/// The BGP filter predicate for traffic from \p owner toward \p via:
/// dstip ∈ {prefixes `via` exported to `owner`}.
policy::Predicate bgp_filter(ParticipantId owner, ParticipantId via,
                             const bgp::RouteServer& server);

/// Rewrites a policy AST, inserting the appropriate BGP filter immediately
/// before every fwd() to a participant's virtual port (the paper's PA → PA'
/// step). Non-forwarding actions and filters are left untouched.
policy::Policy augment_with_bgp(const policy::Policy& pol,
                                ParticipantId owner,
                                const bgp::RouteServer& server,
                                const PortMap& ports);

}  // namespace sdx::core
