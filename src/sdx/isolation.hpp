#pragma once

/// \file isolation.hpp
/// First syntactic transformation of paper §4.1: restrict each
/// participant's policy to its own virtual switch by augmenting it with an
/// explicit match on the participant's ports — outbound policies apply only
/// at the participant's physical ports, inbound policies only at its
/// virtual port.
///
/// These AST-level transforms feed the *reference* compiler
/// (default_forwarding.hpp), which follows the paper's formulas literally
/// and serves as the semantic baseline the optimized pipeline is tested
/// against.

#include "policy/policy.hpp"
#include "sdx/participant.hpp"
#include "sdx/port_map.hpp"

namespace sdx::core {

/// The predicate "the packet is at one of \p p's physical ports".
policy::Predicate at_physical_ports(const Participant& p);

/// The predicate "the packet is at \p p's virtual port".
policy::Predicate at_virtual_port(const Participant& p, const PortMap& ports);

/// match(port ∈ p.phys) >> pol
policy::Policy isolate_outbound(policy::Policy pol, const Participant& p,
                                const PortMap& ports);

/// match(port = vport(p)) >> pol
policy::Policy isolate_inbound(policy::Policy pol, const Participant& p,
                               const PortMap& ports);

}  // namespace sdx::core
