#pragma once

/// \file incremental.hpp
/// Two-stage incremental recompilation (paper §4.3.2).
///
/// When a BGP update changes the best path for a prefix p, the fast stage
/// "bypasses the actual computation of the VNH entirely by simply assuming
/// a new VNH is needed" and "restricts compilation to the parts of the
/// policy related to p": it allocates a fresh (VNH, VMAC), synthesizes only
/// the clause and default rules for p, composes them through the memoized
/// stage-2 classifiers and hands them back for installation at a higher
/// priority. The optimal recompilation (compute the true minimum disjoint
/// sets, rebuild the whole table) runs in the background between update
/// bursts — full_recompile(), or adopt() when the pipeline ran off-thread.
///
/// fast_update_batch() is the burst-amortized variant: one pass over a set
/// of dirty prefixes that shares the clause scan, groups prefixes with
/// identical restricted signatures (a mini-FEC over the dirty set) under
/// one fresh binding, allocates VNHs in a single sweep, and composes the
/// combined rule list through the shared stage-2 memo in one walk — so an
/// N-update burst costs one composition walk, not N.

#include <optional>
#include <vector>

#include "sdx/compiler.hpp"

namespace sdx::core {

class IncrementalEngine {
 public:
  explicit IncrementalEngine(SdxCompiler compiler)
      : compiler_(std::move(compiler)) {}

  /// The background stage: full pipeline, minimal rule table. Replaces the
  /// engine's current state. Runs the compiler's parallel pipeline at
  /// CompileOptions::threads width (see set_threads()).
  const CompiledSdx& full_recompile(VnhAllocator& vnh);

  /// Installs an externally-compiled result as the engine's current state,
  /// exactly as if full_recompile() had produced it — the swap half of the
  /// asynchronous background recompilation's double buffer. Clears the
  /// stage-2 memo (the policy view may have changed since it was built).
  const CompiledSdx& adopt(CompiledSdx compiled);

  /// Re-sizes the parallel pipeline used by full_recompile() (0 = one
  /// thread per hardware thread). Output is unaffected.
  void set_threads(unsigned threads) { compiler_.set_threads(threads); }

  /// Attaches the measurement plane to the underlying compiler (see
  /// SdxCompiler::set_telemetry); nullptr detaches.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    compiler_.set_telemetry(telemetry);
  }

  bool has_compiled() const { return current_.has_value(); }
  const CompiledSdx& current() const { return *current_; }
  CompiledSdx& current() { return *current_; }

  struct FastPathResult {
    Ipv4Prefix prefix;
    /// Fresh binding for the prefix; nullopt when no policy touches it (the
    /// update then only needs a plain re-advertisement, no new rules).
    std::optional<VnhBinding> binding;
    /// High-priority rules for the affected prefix, already composed
    /// through stage 2.
    std::vector<policy::Rule> rules;
    std::size_t additional_rules = 0;
    /// Stage-1 rules pushed through a stage-2 pull_back walk.
    std::size_t compositions = 0;
    double seconds = 0;
  };

  /// The fast stage for one updated prefix.
  FastPathResult fast_update(Ipv4Prefix prefix, VnhAllocator& vnh);

  /// One dirty prefix of a batched flush. Prefixes whose restricted
  /// signatures coincide share a binding (and their rules were emitted
  /// once); `additional_rules` attributes the group's rule count to its
  /// first member so the per-item counts sum to the batch total.
  struct BatchItem {
    Ipv4Prefix prefix;
    std::optional<VnhBinding> binding;
    std::size_t additional_rules = 0;
  };

  struct BatchResult {
    std::vector<BatchItem> items;     ///< input order, deduplicated
    std::vector<policy::Rule> rules;  ///< combined, duplicate-free
    std::size_t additional_rules = 0;
    std::size_t groups = 0;           ///< distinct signatures given a binding
    std::size_t compositions = 0;     ///< stage-1 rules composed (whole batch)
    double seconds = 0;
  };

  /// The fast stage for a burst: one restricted-compilation pass over every
  /// prefix in \p prefixes (duplicates collapse to their first occurrence).
  BatchResult fast_update_batch(const std::vector<Ipv4Prefix>& prefixes,
                                VnhAllocator& vnh);

  /// Result of a single-partition recompilation: the replaced slot, the
  /// fresh attribute-encoded bindings to ARP-bind, and the prefixes whose
  /// advertisement (to this partition's owner) must be refreshed — the
  /// union of the old and new partition coverage.
  struct PartitionUpdate {
    std::size_t slot = 0;
    std::size_t rules = 0;         ///< new partition classifier size
    std::size_t compositions = 0;  ///< stage-1 × stage-2 rule visits
    double seconds = 0;
    std::vector<VnhBinding> bindings;
    std::vector<Ipv4Prefix> affected;  ///< sorted (deterministic order)
  };

  /// Recompiles exactly one participant's partition (partitioned mode only;
  /// throws std::logic_error otherwise): reach → partition FEC → fresh
  /// bindings (continuing the allocator watermark, like fast-path bindings
  /// — the next full recompile reclaims the leaked ids) → synthesis →
  /// targeted composition through the stage-2 memo. Swaps the partition
  /// into the current state and re-derives the fabric; every other
  /// partition and the shared band are untouched — the ≥10× work saving of
  /// a single-participant policy change.
  PartitionUpdate recompile_partition(ParticipantId owner, VnhAllocator& vnh);

  const SdxCompiler& compiler() const { return compiler_; }

 private:
  struct Hit {
    const Participant* owner;
    const OutboundClause* clause;
    std::uint32_t id;  ///< global clause id (slot-major) — the signature key
  };

  const policy::Classifier& stage2_cached(ParticipantId id);
  std::vector<Hit> hits_for(Ipv4Prefix prefix) const;

  /// Synthesizes the restricted stage-1 rules for one (hits, defaults)
  /// signature under \p binding, composes them through the shared stage-2
  /// memo and appends the (deduplicated) result to \p out. Returns the
  /// number of rules appended; \p compositions accumulates the stage-1
  /// rules that went through a pull_back walk.
  std::size_t synth_and_compose(const std::vector<Hit>& hits,
                                const DefaultVector& defaults,
                                const VnhBinding& binding,
                                std::vector<policy::Rule>& out,
                                std::size_t& compositions);

  SdxCompiler compiler_;
  std::optional<CompiledSdx> current_;
  std::unordered_map<ParticipantId, policy::Classifier> stage2_cache_;
};

}  // namespace sdx::core
