#pragma once

/// \file incremental.hpp
/// Two-stage incremental recompilation (paper §4.3.2).
///
/// When a BGP update changes the best path for a prefix p, the fast stage
/// "bypasses the actual computation of the VNH entirely by simply assuming
/// a new VNH is needed" and "restricts compilation to the parts of the
/// policy related to p": it allocates a fresh (VNH, VMAC), synthesizes only
/// the clause and default rules for p, composes them through the memoized
/// stage-2 classifiers and hands them back for installation at a higher
/// priority. The optimal recompilation (compute the true minimum disjoint
/// sets, rebuild the whole table) runs in the background between update
/// bursts — full_recompile().

#include <optional>
#include <vector>

#include "sdx/compiler.hpp"

namespace sdx::core {

class IncrementalEngine {
 public:
  explicit IncrementalEngine(SdxCompiler compiler)
      : compiler_(std::move(compiler)) {}

  /// The background stage: full pipeline, minimal rule table. Replaces the
  /// engine's current state. Runs the compiler's parallel pipeline at
  /// CompileOptions::threads width (see set_threads()).
  const CompiledSdx& full_recompile(VnhAllocator& vnh);

  /// Re-sizes the parallel pipeline used by full_recompile() (0 = one
  /// thread per hardware thread). Output is unaffected.
  void set_threads(unsigned threads) { compiler_.set_threads(threads); }

  /// Attaches the measurement plane to the underlying compiler (see
  /// SdxCompiler::set_telemetry); nullptr detaches.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    compiler_.set_telemetry(telemetry);
  }

  bool has_compiled() const { return current_.has_value(); }
  const CompiledSdx& current() const { return *current_; }
  CompiledSdx& current() { return *current_; }

  struct FastPathResult {
    Ipv4Prefix prefix;
    /// Fresh binding for the prefix; nullopt when no policy touches it (the
    /// update then only needs a plain re-advertisement, no new rules).
    std::optional<VnhBinding> binding;
    /// High-priority rules for the affected prefix, already composed
    /// through stage 2.
    std::vector<policy::Rule> rules;
    std::size_t additional_rules = 0;
    double seconds = 0;
  };

  /// The fast stage for one updated prefix.
  FastPathResult fast_update(Ipv4Prefix prefix, VnhAllocator& vnh);

  const SdxCompiler& compiler() const { return compiler_; }

 private:
  const policy::Classifier& stage2_cached(ParticipantId id);

  SdxCompiler compiler_;
  std::optional<CompiledSdx> current_;
  std::unordered_map<ParticipantId, policy::Classifier> stage2_cache_;
};

}  // namespace sdx::core
