#pragma once

/// \file bgp_frontend.hpp
/// Wire-level BGP distribution: the glue the paper's ExaBGP deployment
/// provides between the SDX controller and participant border routers.
///
/// For every physical participant, the frontend maintains a pair of RFC
/// 4271 sessions (route-server side and router side) connected
/// back-to-back: controller re-advertisements are marshalled into real
/// framed UPDATE messages, travel through both FSMs byte-by-byte, and land
/// in the router's RIB via BorderRouter::process_update. Integration tests
/// hold the resulting FIBs equal to the runtime's direct (in-process)
/// distribution path.

#include <unordered_map>
#include <vector>

#include "bgp/session.hpp"
#include "dataplane/border_router.hpp"
#include "sdx/participant.hpp"

namespace sdx::core {

class BgpFrontend {
 public:
  /// ASN of the route server itself (appears in its OPEN messages).
  explicit BgpFrontend(net::Asn server_asn = 64999,
                       net::Ipv4Address server_id =
                           net::Ipv4Address::parse("192.0.2.254"));

  /// Brings up the session pair toward one router. The router reference
  /// must outlive the frontend. Throws if the handshake fails.
  void connect(ParticipantId participant, dp::BorderRouter& router);

  bool established(ParticipantId participant) const;

  /// Marshals one UPDATE to a participant's router through the session
  /// pair. Returns the number of bytes that crossed the "wire".
  std::size_t distribute(ParticipantId participant,
                         const bgp::UpdateMessage& update);

  /// Sends the same UPDATE to every connected router.
  std::size_t distribute_all(const bgp::UpdateMessage& update);

  /// Advances both sides' hold/keepalive clocks and pumps any keepalives.
  /// Returns the participants whose sessions dropped. A dropped session's
  /// link is torn down (established() turns false; the runtime falls back
  /// to in-process delivery) — reconnect with connect() to bring it back,
  /// or enable_auto_reconnect() to have the frontend redial on its own.
  std::vector<ParticipantId> advance_clock(double seconds);

  /// Capped exponential backoff for automatic redial of dropped sessions.
  struct ReconnectPolicy {
    double initial_backoff_seconds = 1.0;
    double max_backoff_seconds = 64.0;
  };

  /// From now on a session dropped by advance_clock() is redialed
  /// automatically: the first attempt after initial_backoff_seconds of
  /// clock time, doubling up to the cap while attempts keep failing.
  /// Successful redials are counted in reconnects().
  void enable_auto_reconnect(ReconnectPolicy policy);
  void enable_auto_reconnect() { enable_auto_reconnect(ReconnectPolicy{}); }
  bool auto_reconnect() const { return auto_reconnect_; }

  /// Sessions automatically re-established after a drop.
  std::uint64_t reconnects() const { return reconnects_; }
  /// Participants currently waiting out a reconnect backoff.
  std::size_t pending_reconnects() const { return pending_.size(); }

  std::uint64_t updates_distributed() const { return updates_; }
  /// Wire bytes moved by distribute()/distribute_all() — UPDATE frames
  /// plus any keepalives pumped alongside them (handshake traffic from
  /// connect() and pure keepalive ticks are not distribution and don't
  /// count).
  std::uint64_t bytes_distributed() const { return bytes_; }
  /// Sessions that dropped across all advance_clock() calls.
  std::uint64_t session_drops() const { return drops_; }

 private:
  struct Link {
    bgp::Session server_side;
    bgp::Session router_side;
    dp::BorderRouter* router = nullptr;

    Link(bgp::Session s, bgp::Session r, dp::BorderRouter* rt)
        : server_side(std::move(s)), router_side(std::move(r)), router(rt) {}
  };

  /// Shuttles queued bytes both ways until quiet; applies UPDATE events to
  /// the router. Returns total bytes moved.
  std::size_t pump(Link& link);

  /// One dropped session waiting out its backoff.
  struct PendingReconnect {
    dp::BorderRouter* router = nullptr;
    double wait = 0;     ///< clock time until the next attempt
    double backoff = 0;  ///< the wait armed after another failure
  };

  net::Asn server_asn_;
  net::Ipv4Address server_id_;
  std::unordered_map<ParticipantId, Link> links_;
  bool auto_reconnect_ = false;
  ReconnectPolicy policy_;
  std::unordered_map<ParticipantId, PendingReconnect> pending_;
  std::uint64_t reconnects_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace sdx::core
