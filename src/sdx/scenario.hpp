#pragma once

/// \file scenario.hpp
/// A line-oriented scenario language for driving the SDX — the operator
/// surface of this repository. Scripts declare participants, policies and
/// BGP events, deploy the controller, inject traffic and assert outcomes:
///
///     participant A 65001
///     participant B 65002 ports 2
///     announce B 100.1.0.0/16 path 65002 10
///     outbound A match dstport=80 -> B
///     inbound B match srcip=0.0.0.0/1 port 0
///     install
///     send A srcip=96.25.160.5 dstip=100.1.2.3 dstport=80
///     expect port B 0
///
/// Full grammar in the command table of scenario.cpp. The interpreter is a
/// library class so scripts are unit-testable; examples/sdx_shell wraps it
/// for files and interactive use.

#include <iosfwd>
#include <memory>
#include <string>

#include "sdx/runtime.hpp"

namespace sdx::core {

class ScenarioInterpreter {
 public:
  ScenarioInterpreter();
  ~ScenarioInterpreter();

  ScenarioInterpreter(const ScenarioInterpreter&) = delete;
  ScenarioInterpreter& operator=(const ScenarioInterpreter&) = delete;

  struct Result {
    bool ok = true;
    std::string output;  ///< human-readable response (may be empty)
  };

  /// Executes one line (blank lines and `#` comments are no-ops).
  /// Errors never throw; they come back as ok=false with a diagnostic.
  Result execute_line(const std::string& line);

  /// Runs a whole script; writes each command's output (prefixed with the
  /// line number on errors) to \p out. Returns the number of failed lines.
  std::size_t run(std::istream& in, std::ostream& out,
                  bool echo_commands = false);

  SdxRuntime& runtime();
  const SdxRuntime& runtime() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sdx::core
