#pragma once

/// \file compiler.hpp
/// The SDX policy compiler (paper §4): turns participant clause lists plus
/// the route server's state into one prioritized rule list for the physical
/// switch.
///
/// Pipeline (optimized mode, the paper's production path):
///   1. clause reach sets   — restrict every outbound clause to the prefixes
///                            its target actually exported to the sender;
///   2. FEC computation     — Minimum Disjoint Subsets over reach sets and
///                            per-participant defaults (fec.hpp);
///   3. VNH/VMAC assignment — one binding per group (vnh_allocator.hpp);
///   4. stage-1 synthesis   — outbound clause rules matching (inport, VMAC,
///                            other fields), remote-participant rewrite
///                            rules, per-group default rules (majority
///                            next-hop + per-sender overrides) and
///                            MAC-learning rules for ungrouped prefixes;
///   5. stage-2 synthesis   — per-participant inbound classifiers (inbound
///                            TE clauses, port-specific MAC rules, egress
///                            MAC rewrite default);
///   6. targeted composition — each stage-1 rule is sequentially composed
///                            only with the stage-2 classifier of the one
///                            participant it forwards into (§4.3.1), with
///                            the stage-2 classifiers memoized.
///
/// CompileOptions exposes each §4.2/§4.3 optimization as a switch so the
/// ablation benchmark can price them individually.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/route_server.hpp"
#include "policy/classifier.hpp"
#include "sdx/fec.hpp"
#include "sdx/participant.hpp"
#include "sdx/port_map.hpp"
#include "sdx/vnh_allocator.hpp"

namespace sdx::net {
class ThreadPool;
}

namespace sdx::telemetry {
struct Telemetry;
}

namespace sdx::core {

struct CompileOptions {
  /// §4.2 VMAC grouping. Off → clause and default rules match on
  /// destination IP prefixes directly (one rule per prefix, not per group).
  bool vmac_grouping = true;
  /// §4.3.1 compose each stage-1 rule only with its target's stage-2
  /// classifier. Off → compose against the concatenation of all stage-2
  /// classifiers.
  bool prune_pairs = true;
  /// §4.3.1 memoize per-participant stage-2 classifiers. Off → rebuild the
  /// stage-2 classifier for every composed rule.
  bool memoize_stage2 = true;
  /// Run full (quadratic) shadow elimination on the final classifier
  /// (pairwise pipeline only; the partitioned pipeline keeps its band
  /// structure intact).
  bool full_optimize = false;
  /// iSDX-style partitioned compilation: each participant's outbound
  /// policies compile into an independent partition whose stage-1 rules
  /// match attribute bits of the VMAC under a mask, replacing the pairwise
  /// sender×receiver cross product. Requires vmac_grouping. A policy change
  /// then recompiles one partition, not the world (see
  /// IncrementalEngine::recompile_partition).
  bool partitioned = false;
  /// The VMAC bit layout used by partitioned compilation (and validated by
  /// every allocator). Fingerprinted and persisted: changing it forces a
  /// cold install on warm restart.
  VmacLayout vmac_layout{};
  /// Execution width of the parallel pipeline stages (clause reach,
  /// best-route snapshot, FEC sharding, targeted composition): 0 = one
  /// thread per hardware thread, 1 = fully serial. The compiled output is
  /// byte-identical for every value — parallel stages write into
  /// index-owned slots and shard merges are canonicalized, never appended
  /// under contention.
  unsigned threads = 0;
};

struct CompileStats {
  std::size_t participants = 0;
  std::size_t prefixes_total = 0;     ///< prefixes known to the route server
  std::size_t prefixes_grouped = 0;   ///< prefixes touched by any policy
  std::size_t prefix_groups = 0;
  std::size_t clause_count = 0;
  std::size_t stage1_rules = 0;
  std::size_t final_rules = 0;
  std::size_t pair_compositions = 0;  ///< (stage-1 rule × stage-2 rule) visits
  unsigned threads_used = 1;          ///< pool width of the parallel stages
  double snapshot_seconds = 0;        ///< per-participant best-route snapshot
  double reach_seconds = 0;           ///< clause reach computation
  double vnh_seconds = 0;             ///< FEC + VNH assignment (paper's "VNH computation")
  double synth_seconds = 0;           ///< rule synthesis
  double compose_seconds = 0;         ///< targeted composition
  double total_seconds = 0;
};

/// One participant's independently compiled slice of the fabric
/// (partitioned mode): its own FECs over its own reach sets, its
/// attribute-encoded bindings, and the composed rules of its outbound
/// clauses. Replacing a partition never touches any other partition or the
/// shared band.
struct CompiledPartition {
  ParticipantId owner = 0;
  FecResult fecs;                     ///< groups over the owner's clauses
  std::vector<VnhBinding> bindings;   ///< parallel to fecs.groups
  std::vector<ClauseReach> reaches;   ///< owner's clauses, local indices
  policy::Classifier rules;           ///< composed outbound rules
  std::size_t stage1_rules = 0;       ///< pre-composition rule count
  std::size_t pair_compositions = 0;  ///< composition work for this slice
  double seconds = 0;                 ///< wall time across pipeline stages
};

/// The advertisement plan entry for one grouped prefix: what next-hop the
/// route server should announce (the VNH), and the ARP binding behind it.
struct CompiledSdx {
  policy::Classifier fabric;             ///< install into the switch
  FecResult fecs;
  std::vector<VnhBinding> bindings;      ///< parallel to fecs.groups
  std::vector<ClauseReach> reaches;      ///< global clause table
  CompileStats stats;

  VmacLayout layout;       ///< the VMAC layout the artifact was built under
  bool partitioned = false;
  /// Slot-indexed (parallel to the participant vector; remote slots stay
  /// empty). Empty unless partitioned. `fabric` is the concatenation of the
  /// partitions in slot order followed by `shared_rules` — partitions are
  /// the canonical form, `fabric` is derived (rebuild_fabric()).
  std::vector<CompiledPartition> partitions;
  /// The partition-independent band: remote rewrites, per-receiver masked
  /// default rules, MAC learning, catch-all drop.
  policy::Classifier shared_rules;

  /// The VNH to advertise for \p prefix, or std::nullopt when the prefix
  /// keeps its original next hop (not touched by any policy). Pairwise
  /// mode only — a partitioned artifact has no global binding map (the tag
  /// is sender-specific); use partition_binding_for.
  std::optional<VnhBinding> binding_for(Ipv4Prefix prefix) const {
    auto it = fecs.group_of.find(prefix);
    if (it == fecs.group_of.end()) return std::nullopt;
    return bindings[it->second];
  }

  /// The VNH to advertise *to the participant in \p sender_slot* for
  /// \p prefix: the binding of that sender's own partition group, carrying
  /// the sender's clause bitmap and default next-hop in the tag.
  std::optional<VnhBinding> partition_binding_for(std::size_t sender_slot,
                                                  Ipv4Prefix prefix) const {
    if (!partitioned || sender_slot >= partitions.size()) return std::nullopt;
    const auto& part = partitions[sender_slot];
    auto it = part.fecs.group_of.find(prefix);
    if (it == part.fecs.group_of.end()) return std::nullopt;
    return part.bindings[it->second];
  }

  /// Re-derives `fabric` from the partitions + shared band (partitioned
  /// mode). Called after a single partition is swapped in place.
  void rebuild_fabric();

  /// Deterministic digest of the compiled artifact: fabric rules (contents
  /// and order), VNH/VMAC bindings, FEC groups and clause reach sets, the
  /// VMAC layout and per-partition structure — everything except
  /// timings/stats. Two compilations are byte-identical iff their
  /// fingerprints compare equal; the async-vs-sync and threads-1-vs-N
  /// golden tests pivot on this.
  std::string fingerprint() const;
};

class SdxCompiler {
 public:
  SdxCompiler(const std::vector<Participant>& participants,
              const PortMap& ports, const bgp::RouteServer& server,
              CompileOptions options = {});

  /// Runs the full pipeline. The allocator is reset first so a full
  /// (background) recompilation always produces a minimal binding set.
  CompiledSdx compile(VnhAllocator& vnh) const;

  /// The stage-2 (inbound-side) classifier of one participant; exposed for
  /// the incremental engine, which composes fast-path rules through it.
  policy::Classifier stage2_for(const Participant& p) const;

  /// The reach set of one outbound clause: prefixes exported by the target
  /// to the owner, restricted to the clause's dst-prefix constraints
  /// (evaluated at announced-prefix granularity).
  std::vector<Ipv4Prefix> clause_reach(const Participant& owner,
                                       const OutboundClause& clause) const;

  /// The per-participant default next-hop vector for one prefix (the FEC
  /// pass-2 signature component).
  DefaultVector defaults_for(Ipv4Prefix prefix) const;

  const std::vector<Participant>& participants() const {
    return participants_;
  }
  const CompileOptions& options() const { return options_; }

  /// Re-sizes the parallel pipeline for subsequent compile() calls (0 =
  /// one thread per hardware thread). Output is unaffected.
  void set_threads(unsigned threads) { options_.threads = threads; }

  /// Attaches the measurement plane (nullptr detaches). Each compile()
  /// then opens a "compile" span with one child span per pipeline stage
  /// (snapshot/reach/fec_vnh/synth/compose), observes the same stage
  /// timings into `sdx_compile_stage_seconds{stage=...}` histograms, and
  /// bumps the deterministic work counters (`sdx_compile_runs_total`,
  /// `_rules_total`, `_pair_compositions_total`). The bundle must outlive
  /// the compiler.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

 private:
  friend class IncrementalEngine;

  /// Per-participant best-route next hops, taken once per compile with one
  /// RIB pass per participant (indexed by participant slot). Participants
  /// with no eligible routes have an empty map and are skipped wholesale
  /// when assembling default vectors.
  using BestRouteSnapshot =
      std::vector<std::unordered_map<Ipv4Prefix, ParticipantId>>;

  /// defaults_for() against the snapshot instead of per-(participant,
  /// prefix) route-server probes — the compile-time hot path.
  DefaultVector defaults_from(const BestRouteSnapshot& snapshot,
                              Ipv4Prefix prefix) const;

  /// Expands a clause match into flow matches (cross product of the source
  /// prefix list; dst prefixes are consumed by grouping unless
  /// \p keep_dst_prefixes).
  std::vector<net::FlowMatch> clause_matches(const ClauseMatch& m,
                                             net::FlowMatch base,
                                             bool keep_dst_prefixes) const;

  /// Appends the default-forwarding rules for one group/VMAC (majority
  /// next-hop rule plus per-sender overrides).
  void synthesize_group_defaults(const DefaultVector& defaults,
                                 net::MacAddress vmac,
                                 std::vector<policy::Rule>& out) const;

  /// Targeted sequential composition of the stage-1 rule list through the
  /// stage-2 classifiers, fanned out across \p pool (stage-2 classifiers
  /// are built up front and read-only on the hot path; composed rule runs
  /// land in per-rule slots and concatenate in stage-1 order).
  policy::Classifier compose(std::vector<policy::Rule> stage1,
                             CompileStats& stats,
                             net::ThreadPool& pool) const;

  // -- partitioned pipeline --------------------------------------------

  /// The partitioned counterpart of compile(): same five stages, but FEC,
  /// synthesis and composition run per partition.
  CompiledSdx compile_partitioned(VnhAllocator& vnh) const;

  /// Per-partition FECs: Minimum Disjoint Subsets over the owner's reach
  /// sets with a length-1 default vector — the owner's own best route —
  /// since the tag only ever steers the owner's traffic.
  FecResult partition_fecs(
      const std::vector<ClauseReach>& reaches,
      const std::unordered_map<Ipv4Prefix, ParticipantId>& own_best) const;

  /// Allocates one attribute-encoded binding per group of \p part: the
  /// clause-membership bitmap in the attribute field, the owner's default
  /// next-hop slot+1 in the next-hop field. Sequential — callers iterate
  /// partitions in slot order so VNH assignment is deterministic at any
  /// thread count.
  void bind_partition(CompiledPartition& part, VnhAllocator& vnh) const;

  /// Stage-1 rules of one partition: one masked rule per (clause, inport)
  /// for clauses that fit the attribute bitmap, exact-VMAC per-group rules
  /// for the overflow tail.
  std::vector<policy::Rule> partition_stage1(const Participant& owner,
                                             const CompiledPartition& part,
                                             const VmacLayout& layout) const;

  /// The partition-independent band: remote rewrites, one masked default
  /// rule per physical receiver (next-hop field), MAC learning, catch-all
  /// drop.
  std::vector<policy::Rule> shared_stage1(const VmacLayout& layout) const;

  /// Appends the remote-participant VMAC→router-MAC rewrite rules.
  void synthesize_remote_rewrites(std::vector<policy::Rule>& out) const;

  /// Serial targeted composition through prebuilt per-slot stage-2
  /// classifiers (nullptr for remote slots). Used by the per-partition
  /// compose loop and by IncrementalEngine::recompile_partition.
  std::vector<policy::Rule> compose_serial(
      std::vector<policy::Rule> stage1,
      const std::vector<std::unique_ptr<policy::Classifier>>& stage2_by_slot,
      std::size_t& compositions) const;

  const std::vector<Participant>& participants_;
  const PortMap& ports_;
  const bgp::RouteServer& server_;
  CompileOptions options_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::unordered_map<ParticipantId, std::size_t> slot_of_;
};

}  // namespace sdx::core
