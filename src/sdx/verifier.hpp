#pragma once

/// \file verifier.hpp
/// Static auditor for compiled SDX state: checks the paper's safety
/// invariants directly on the rule table, independently of the compiler
/// that produced it. Operators can run this after every (re)compilation;
/// the test suite runs it over every workload.
///
/// Checked invariants (DESIGN.md §6):
///   1. Totality — the classifier ends in a catch-all, so every packet has
///      a defined fate.
///   2. No dangling virtual ports — after composition, every output lands
///      on a physical port (a vport output would blackhole silently).
///   3. Egress MAC sanity — every rule that outputs to participant X's
///      port leaves the frame with one of X's real router MACs (or
///      untouched real MAC), never a VMAC: "without rewriting, AS B would
///      drop the traffic" (§4.1).
///   4. BGP consistency — a rule matching VMAC(group g) at sender S's port
///      may only forward to participant X if every prefix of g is exported
///      by X to S, or X is S's best-route next hop for all of g (§3.2).
///   5. Isolation — a rule constrained to sender S's ingress port was
///      produced by S's own policy or by defaults, never by another
///      participant's clauses; structurally: its match/action must be
///      consistent with some clause of S or with default forwarding.
///      (Checked in the restricted form: inbound-TE rewrites for X only
///      fire on packets at X's virtual position, which after composition
///      means rules rewriting to X's port MACs must output on X's ports.)

#include <string>
#include <vector>

#include "sdx/compiler.hpp"

namespace sdx::core {

struct Violation {
  std::size_t rule_index = 0;
  std::string what;
};

struct AuditReport {
  std::vector<Violation> violations;
  std::size_t rules_checked = 0;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// Audits a compiled SDX against the route-server state it was compiled
/// from. \p participants / \p ports must be the same objects the compiler
/// saw.
AuditReport audit(const CompiledSdx& compiled,
                  const std::vector<Participant>& participants,
                  const PortMap& ports, const bgp::RouteServer& server);

}  // namespace sdx::core

#include "sdx/multi_switch.hpp"

namespace sdx::core {

/// Audits a multi-switch deployment for topology-level safety: every rule
/// of every switch program outputs only to ports that exist on that switch
/// (local edge ports or its own trunks), exact-ingress rules reference
/// local ports, and each switch's transit band covers every router MAC on
/// every trunk (no tagged frame can arrive unroutable mid-fabric).
AuditReport audit_multi_switch(const std::vector<SwitchProgram>& programs,
                               const FabricTopology& topology,
                               const std::vector<Participant>& participants);

}  // namespace sdx::core
