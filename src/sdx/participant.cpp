#include "sdx/participant.hpp"

#include <algorithm>
#include <stdexcept>

namespace sdx::core {

policy::Predicate ClauseMatch::to_predicate() const {
  using policy::Predicate;
  std::vector<Predicate> conj;
  for (const auto& [f, v] : exact) conj.push_back(Predicate::test(f, v));
  if (!src_prefixes.empty()) {
    conj.push_back(Predicate::any_of(Field::kSrcIp, src_prefixes));
  }
  if (!dst_prefixes.empty()) {
    conj.push_back(Predicate::any_of(Field::kDstIp, dst_prefixes));
  }
  return Predicate::conjunction(std::move(conj));
}

bool ClauseMatch::matches(const net::PacketHeader& h) const {
  for (const auto& [f, v] : exact) {
    if (h.get(f) != v) return false;
  }
  auto in_any = [](Ipv4Address a, const std::vector<Ipv4Prefix>& ps) {
    return std::any_of(ps.begin(), ps.end(),
                       [a](Ipv4Prefix p) { return p.contains(a); });
  };
  if (!src_prefixes.empty() && !in_any(h.src_ip(), src_prefixes)) return false;
  if (!dst_prefixes.empty() && !in_any(h.dst_ip(), dst_prefixes)) return false;
  return true;
}

policy::Policy outbound_policy(const Participant& p, const PortMap& ports) {
  using policy::Policy;
  std::vector<Policy> terms;
  terms.reserve(p.outbound.size());
  for (const auto& c : p.outbound) {
    terms.push_back(policy::match(c.match.to_predicate()) >>
                    policy::fwd(ports.vport(c.to)));
  }
  return Policy::parallel(std::move(terms));
}

policy::Policy inbound_policy(const Participant& p, const PortMap& ports) {
  using policy::Policy;
  std::vector<Policy> terms;
  terms.reserve(p.inbound.size());
  for (const auto& c : p.inbound) {
    Policy action = policy::identity();
    for (const auto& [f, v] : c.rewrites) {
      action = std::move(action) >> policy::modify(f, v);
    }
    if (!p.is_remote()) {
      const std::size_t idx = c.to_port.value_or(0);
      const PhysicalPort& out = p.ports.at(idx);
      action = std::move(action) >>
               policy::modify(Field::kDstMac, out.router_mac) >>
               policy::fwd(out.id);
    }
    terms.push_back(policy::match(c.match.to_predicate()) >>
                    std::move(action));
  }
  (void)ports;
  return Policy::parallel(std::move(terms));
}

void validate_participant(const Participant& p,
                          const std::vector<Participant>& all) {
  auto lookup = [&all](ParticipantId id) -> const Participant* {
    for (const auto& q : all) {
      if (q.id == id) return &q;
    }
    return nullptr;
  };
  for (const auto& c : p.outbound) {
    if (c.to == p.id) {
      throw std::invalid_argument(p.name +
                                  ": outbound clause forwards to itself");
    }
    const Participant* target = lookup(c.to);
    if (target == nullptr) {
      throw std::invalid_argument(
          p.name + ": outbound clause targets unknown participant " +
          std::to_string(c.to));
    }
    if (target->is_remote()) {
      throw std::invalid_argument(
          p.name + ": outbound clause targets remote participant " +
          target->name + " (no physical port to deliver to)");
    }
  }
  if (p.is_remote() && !p.outbound.empty()) {
    throw std::invalid_argument(
        p.name + ": a remote participant sends no traffic of its own");
  }
  for (const auto& c : p.inbound) {
    if (c.to_port && *c.to_port >= p.ports.size()) {
      throw std::invalid_argument(p.name +
                                  ": inbound clause selects missing port");
    }
    if (p.is_remote() && c.rewrites.empty()) {
      throw std::invalid_argument(
          p.name + ": remote inbound clause must rewrite (it has no port)");
    }
  }
}

}  // namespace sdx::core
