#include "sdx/verifier.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace sdx::core {

namespace {

using policy::ActionSeq;
using policy::Rule;

const Participant* find_participant(const std::vector<Participant>& all,
                                    ParticipantId id) {
  for (const auto& p : all) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

bool is_router_mac(const Participant& p, std::uint64_t mac,
                   net::PortId out_port) {
  for (const auto& port : p.ports) {
    if (port.router_mac.bits() == mac && port.id == out_port) return true;
  }
  return false;
}

}  // namespace

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "audit: " << rules_checked << " rules, " << violations.size()
     << " violation(s)";
  for (const auto& v : violations) {
    os << "\n  rule " << v.rule_index << ": " << v.what;
  }
  return os.str();
}

AuditReport audit(const CompiledSdx& compiled,
                  const std::vector<Participant>& participants,
                  const PortMap& ports, const bgp::RouteServer& server) {
  AuditReport report;
  const auto& rules = compiled.fabric.rules();
  report.rules_checked = rules.size();
  auto flag = [&report](std::size_t i, std::string what) {
    report.violations.push_back(Violation{i, std::move(what)});
  };

  // Invariant 1: totality.
  if (rules.empty() || !rules.back().match.is_wildcard()) {
    flag(rules.empty() ? 0 : rules.size() - 1,
         "classifier is not total (no trailing catch-all)");
  }

  // VMAC → group index.
  std::unordered_map<std::uint64_t, std::uint32_t> group_of_vmac;
  for (std::uint32_t g = 0; g < compiled.bindings.size(); ++g) {
    group_of_vmac[compiled.bindings[g].vmac.bits()] = g;
  }

  // For the shadowing-aware consistency check: which (vmac, sender-port)
  // pairs are claimed by earlier port-specific rules.
  std::unordered_set<std::uint64_t> claimed;  // key: vmac*2^32 | port
  auto claim_key = [](std::uint64_t vmac, net::PortId port) {
    return (vmac << 20) ^ port;
  };

  // Cache of exports_to checks at (group, sender, target) granularity.
  std::unordered_map<std::uint64_t, bool> consistency_cache;
  auto group_consistent = [&](std::uint32_t g, ParticipantId sender,
                              ParticipantId target) {
    const std::uint64_t key =
        (std::uint64_t{g} << 40) ^ (std::uint64_t{sender} << 20) ^ target;
    auto it = consistency_cache.find(key);
    if (it != consistency_cache.end()) return it->second;
    bool ok = true;
    for (auto prefix : compiled.fecs.groups[g].prefixes) {
      if (!server.exports_to(target, sender, prefix)) {
        ok = false;
        break;
      }
    }
    consistency_cache.emplace(key, ok);
    return ok;
  };

  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& r = rules[i];
    if (r.drops()) continue;

    // Invariant 5': no residual virtual-port matches after composition.
    const auto& port_match = r.match.field(net::Field::kPort);
    if (port_match.is_exact() &&
        PortMap::is_virtual(static_cast<net::PortId>(port_match.value()))) {
      flag(i, "rule matches a virtual port (uncompiled stage boundary)");
      continue;
    }

    for (const ActionSeq& act : r.actions) {
      // Invariant 2: outputs land on physical ports.
      const auto out = act.written(net::Field::kPort);
      if (!out) {
        flag(i, "action has no output port");
        continue;
      }
      const auto out_port = static_cast<net::PortId>(*out);
      if (PortMap::is_virtual(out_port)) {
        flag(i, "action outputs to virtual port " + std::to_string(out_port));
        continue;
      }
      ParticipantId target;
      try {
        target = ports.phys_owner(out_port);
      } catch (const std::out_of_range&) {
        flag(i, "action outputs to unowned port " + std::to_string(out_port));
        continue;
      }
      const Participant* tp = find_participant(participants, target);
      if (tp == nullptr) {
        flag(i, "output port owner not a participant");
        continue;
      }

      // Invariant 3: the frame leaves with a real router MAC of the
      // egress port.
      std::uint64_t egress_mac = 0;
      bool mac_known = false;
      if (auto written = act.written(net::Field::kDstMac)) {
        egress_mac = *written;
        mac_known = true;
      } else if (r.match.field(net::Field::kDstMac).is_exact()) {
        egress_mac = r.match.field(net::Field::kDstMac).value();
        mac_known = true;
      }
      if (!mac_known) {
        flag(i, "egress destination MAC unconstrained");
      } else if (net::MacAddress(egress_mac) !=
                     net::MacAddress::broadcast() &&
                 !is_router_mac(*tp, egress_mac, out_port)) {
        flag(i, "egress MAC " + net::MacAddress(egress_mac).to_string() +
                    " is not the router MAC of port " +
                    std::to_string(out_port));
      }

      // Invariant 4: BGP consistency for VMAC-tagged traffic.
      const auto& dstmac_match = r.match.field(net::Field::kDstMac);
      if (!dstmac_match.is_exact()) continue;
      auto g_it = group_of_vmac.find(dstmac_match.value());
      if (g_it == group_of_vmac.end()) continue;
      const std::uint32_t g = g_it->second;

      std::vector<ParticipantId> senders;
      if (port_match.is_exact()) {
        try {
          senders.push_back(
              ports.phys_owner(static_cast<net::PortId>(port_match.value())));
        } catch (const std::out_of_range&) {
          flag(i, "rule matches unowned ingress port");
          continue;
        }
        claimed.insert(claim_key(dstmac_match.value(),
                                 static_cast<net::PortId>(
                                     port_match.value())));
      } else {
        // Global rule: every sender without an earlier port-specific rule
        // for this VMAC falls through to it.
        for (const auto& p : participants) {
          bool shadowed = true;
          for (net::PortId port : p.port_ids()) {
            if (!claimed.contains(claim_key(dstmac_match.value(), port))) {
              shadowed = false;
            }
          }
          if (!shadowed && !p.ports.empty()) senders.push_back(p.id);
        }
      }
      for (ParticipantId sender : senders) {
        if (sender == target) continue;  // hairpins are switch-dropped
        // Senders with no best route for the group never tag this VMAC.
        const std::size_t slot = [&]() {
          for (std::size_t s = 0; s < participants.size(); ++s) {
            if (participants[s].id == sender) return s;
          }
          return participants.size();
        }();
        if (slot < compiled.fecs.groups[g].defaults.size() &&
            !compiled.fecs.groups[g].defaults[slot].has_value()) {
          continue;
        }
        if (!group_consistent(g, sender, target)) {
          flag(i, "forwards group " + std::to_string(g) + " from AS" +
                      std::to_string(sender) + " to AS" +
                      std::to_string(target) +
                      " without a matching BGP export");
        }
      }
    }
  }
  return report;
}

AuditReport audit_multi_switch(const std::vector<SwitchProgram>& programs,
                               const FabricTopology& topology,
                               const std::vector<Participant>& participants) {
  AuditReport report;
  auto flag = [&report](std::size_t i, std::string what) {
    report.violations.push_back(Violation{i, std::move(what)});
  };

  std::vector<std::uint64_t> router_macs;
  for (const auto& p : participants) {
    for (const auto& port : p.ports) {
      router_macs.push_back(port.router_mac.bits());
    }
  }

  for (const auto& program : programs) {
    const SwitchId sw = program.id;
    auto local = [&topology, sw](net::PortId port) {
      if (topology.is_edge_port(port)) return topology.switch_of(port) == sw;
      if (topology.is_trunk_port(port)) {
        const auto& trunks = topology.trunks_of(sw);
        return std::find(trunks.begin(), trunks.end(), port) != trunks.end();
      }
      return false;
    };

    for (std::size_t i = 0; i < program.rules.size(); ++i) {
      const policy::Rule& r = program.rules.rules()[i];
      report.rules_checked += 1;
      const auto& port_match = r.match.field(net::Field::kPort);
      if (port_match.is_exact() &&
          !local(static_cast<net::PortId>(port_match.value()))) {
        flag(i, "switch " + std::to_string(sw) +
                    ": rule matches a non-local ingress port " +
                    std::to_string(port_match.value()));
      }
      for (const auto& act : r.actions) {
        const auto out = act.written(net::Field::kPort);
        if (!out) continue;
        if (!local(static_cast<net::PortId>(*out))) {
          flag(i, "switch " + std::to_string(sw) +
                      ": rule outputs to non-local port " +
                      std::to_string(*out));
        }
      }
    }

    // Transit coverage: for every (trunk, router MAC) a matching rule.
    for (net::PortId trunk : topology.trunks_of(sw)) {
      for (std::uint64_t mac : router_macs) {
        net::PacketHeader probe;
        probe.set_port(trunk);
        probe.set(net::Field::kDstMac, mac);
        const policy::Rule* hit = program.rules.first_match(probe);
        if (hit == nullptr || hit->drops()) {
          flag(0, "switch " + std::to_string(sw) + ": trunk " +
                      std::to_string(trunk) + " cannot forward toward " +
                      net::MacAddress(mac).to_string());
        }
      }
    }
  }
  return report;
}

}  // namespace sdx::core
