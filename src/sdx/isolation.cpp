#include "sdx/isolation.hpp"

namespace sdx::core {

policy::Predicate at_physical_ports(const Participant& p) {
  std::vector<policy::Predicate> tests;
  tests.reserve(p.ports.size());
  for (const auto& port : p.ports) {
    tests.push_back(policy::Predicate::test(Field::kPort, port.id));
  }
  return policy::Predicate::disjunction(std::move(tests));
}

policy::Predicate at_virtual_port(const Participant& p,
                                  const PortMap& ports) {
  return policy::Predicate::test(Field::kPort, ports.vport(p.id));
}

policy::Policy isolate_outbound(policy::Policy pol, const Participant& p,
                                const PortMap& ports) {
  (void)ports;
  return policy::match(at_physical_ports(p)) >> std::move(pol);
}

policy::Policy isolate_inbound(policy::Policy pol, const Participant& p,
                               const PortMap& ports) {
  return policy::match(at_virtual_port(p, ports)) >> std::move(pol);
}

}  // namespace sdx::core
