#pragma once

/// \file runtime.hpp
/// The SDX controller (paper Figure 3): route server + policy compiler +
/// incremental engine + data-plane driver, behind one facade.
///
/// Lifecycle:
///   1. add_participant() / add_remote_participant(), set policies;
///   2. announce() routes (participants' border routers feed the route
///      server);
///   3. install() — full compilation, flow-rule installation, ARP/VNH
///      bindings and BGP re-advertisement to every participant router;
///   4. further announce()/withdraw() calls run the §4.3.2 fast path
///      automatically (higher-priority rules + re-advertisement), logging
///      per-update cost. With enable_batching() they enqueue instead and a
///      flush() (explicit, size- or clock-triggered) amortizes the burst;
///      background_recompile() coalesces synchronously, while
///      start_background_recompile() runs the optimal pipeline off-thread
///      against a versioned snapshot and swaps the result in atomically.
///   5. send() pushes packets through the emulated data plane end to end.

#include <array>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "bgp/route_server.hpp"
#include "bgp/rpki.hpp"
#include "dataplane/fabric.hpp"
#include "netbase/parallel.hpp"
#include "persist/journal.hpp"
#include "sdx/bgp_frontend.hpp"
#include "sdx/compiler.hpp"
#include "sdx/incremental.hpp"
#include "sdx/participant.hpp"
#include "telemetry/telemetry.hpp"
#include "verify/safety.hpp"

namespace sdx::core {

class SdxRuntime {
 public:
  explicit SdxRuntime(bgp::DecisionConfig decision = {},
                      CompileOptions options = {});

  // --- topology -----------------------------------------------------------

  /// Adds a participant with \p port_count attachment ports (ids, MACs and
  /// IPs assigned automatically) and returns its id. (An id, not a
  /// reference: the participant table may reallocate as members join —
  /// use participant(id) for access.)
  ParticipantId add_participant(const std::string& name, net::Asn asn,
                                std::size_t port_count = 1);

  /// Adds a remote participant (no physical presence, §3.1): it can install
  /// rewrite policies and originate routes but sends no traffic.
  ParticipantId add_remote_participant(const std::string& name, net::Asn asn);

  Participant& participant(ParticipantId id);
  const Participant& participant(ParticipantId id) const;
  Participant* find(const std::string& name);
  const std::vector<Participant>& participants() const {
    return participants_;
  }
  const PortMap& ports() const { return port_map_; }

  // --- policies (recompiled on the next install()) -------------------------

  void set_outbound(ParticipantId id, std::vector<OutboundClause> clauses);
  void set_inbound(ParticipantId id, std::vector<InboundClause> clauses);

  // --- BGP ------------------------------------------------------------------

  /// Participant \p from announces \p prefix. The AS path defaults to the
  /// participant's own ASN (an originated route); longer paths model
  /// transit; communities drive the route server's export policy (RFC 1997
  /// NO_EXPORT/NO_ADVERTISE, "0:<asn>" per-peer blocking). After install(),
  /// the fast path runs (or the prefix is enqueued under batching) and the
  /// report is logged.
  void announce(ParticipantId from, Ipv4Prefix prefix,
                std::optional<net::AsPath> path = std::nullopt,
                std::vector<bgp::Community> communities = {});
  void withdraw(ParticipantId from, Ipv4Prefix prefix);

  /// A participant's BGP session drops (maintenance, failure, departure):
  /// every route it advertised is withdrawn and its policies are removed
  /// (they may reference routes that no longer exist). Its ports remain in
  /// the topology, and re-announcing later brings it back. Withdrawn
  /// prefixes are purged from any pending batch and their fast-path
  /// bindings dropped before the full recompilation runs. Returns the
  /// number of prefixes withdrawn.
  std::size_t session_down(ParticipantId id);

  bgp::RouteServer& route_server() { return server_; }
  const bgp::RouteServer& route_server() const { return server_; }

  /// Switches re-advertisement to the wire path: every UPDATE toward a
  /// border router is framed, travels through a pair of RFC 4271 sessions
  /// (BgpFrontend) and lands in the router's RIB via the decoder — instead
  /// of the default in-process delivery. Call before the first announce().
  /// Behaviour must be identical either way (property-tested).
  void use_wire_distribution();
  bool wire_distribution() const { return frontend_ != nullptr; }
  const BgpFrontend* frontend() const { return frontend_.get(); }

  /// Opt-in resilience for wire distribution: a session dropped by
  /// advance_clock() redials automatically with capped exponential
  /// backoff (the participant still goes through session_down() at drop
  /// time — reconnect restores the transport, and readvertisements reach
  /// the router again once it re-announces). Each successful redial is
  /// counted in `sdx_ingest_reconnects_total`. Throws std::logic_error
  /// without wire distribution.
  void enable_frontend_auto_reconnect(
      BgpFrontend::ReconnectPolicy policy = {});

  /// Advances the wire sessions' hold/keepalive clocks (no-op without wire
  /// distribution) and ages any pending update batch (see BatchOptions::
  /// max_delay_seconds). A session that drops is surfaced, not swallowed:
  /// the drop is counted (`sdx_frontend_session_drops_total`), the
  /// participant's routes are withdrawn and its policies removed via
  /// session_down(), and the dropped ids are returned so the operator loop
  /// can react (e.g. reconnect).
  std::vector<ParticipantId> advance_clock(double seconds);

  /// RPKI origin validation (paper §3.2: the SDX verifies prefix ownership
  /// before originating a route for a remote participant).
  enum class RpkiMode {
    kOff,         ///< no validation (default)
    kRemoteOnly,  ///< SDX-originated (remote-participant) routes must be Valid
    kStrict,      ///< additionally reject Invalid routes from anyone
  };
  void enable_rpki(bgp::RoaTable table, RpkiMode mode = RpkiMode::kRemoteOnly);
  const bgp::RoaTable& roa_table() const { return roas_; }

  // --- compilation & deployment --------------------------------------------

  /// Full compile + install: flow rules, VNH ARP bindings, re-advertising
  /// every prefix to every participant router. Returns the compile result.
  const CompiledSdx& install();

  bool installed() const { return engine_ && engine_->has_compiled(); }
  const CompiledSdx& compiled() const { return engine_->current(); }

  /// Runs the background (optimal) recompilation synchronously: rebuilds
  /// the minimal table and drops the accumulated fast-path rules. Any
  /// in-flight asynchronous recompile is superseded (its result will be
  /// discarded and counted stale).
  const CompiledSdx& background_recompile();

  // --- asynchronous optimal recompilation ----------------------------------
  //
  // The paper's §4.3.2 background stage, actually in the background: the
  // control loop keeps absorbing updates through the fast path while the
  // full pipeline runs on a worker thread over a versioned snapshot of the
  // RIB and policy state. Completion is applied on the control thread
  // (poll/wait): the compiled tables swap in atomically, superseded
  // fast-path rules drop, and updates that raced past the snapshot are
  // re-applied through one batched fast pass on top of the new base. If the
  // *policies* changed mid-flight the result is unusable — it is discarded
  // (counted in `sdx_recompile_stale_total`) and the recompile restarts.

  /// Snapshots the current RIB/policy state and starts the full pipeline on
  /// a pool worker. Returns false (and does nothing) when a job is already
  /// in flight. Throws std::logic_error before install().
  bool start_background_recompile();

  /// True while an asynchronous recompile is pending (running or finished
  /// but not yet swapped in).
  bool recompile_in_flight() const { return job_ != nullptr; }

  /// Non-blocking completion check: swaps the finished result in and
  /// returns true; returns false when no job is pending, it is still
  /// running, or it completed stale (stale results restart automatically
  /// unless superseded by a synchronous recompile).
  bool poll_background_recompile();

  /// Blocks until the pending recompile (and any automatic restart) has
  /// been swapped in — or returns immediately when none is pending. Returns
  /// the current compiled state either way.
  const CompiledSdx& wait_background_recompile();

  /// Sets the worker-thread count for subsequent compilations — install()
  /// and background_recompile(), synchronous or asynchronous — with 0
  /// meaning one thread per hardware thread. Compiled output is
  /// byte-identical for every width, so this is purely a latency knob.
  void set_compile_threads(unsigned threads);
  const CompileOptions& compile_options() const { return options_; }

  // --- burst batching (§4.3.2 "between update bursts") ----------------------

  struct BatchOptions {
    /// Auto-flush once this many distinct prefixes are dirty (0 = only
    /// explicit or clock-triggered flushes).
    std::size_t max_pending = 64;
    /// Auto-flush when the oldest dirty prefix has aged this long across
    /// advance_clock() calls (0 = no clock trigger).
    double max_delay_seconds = 0.05;
  };

  /// Switches announce()/withdraw() after install() from inline fast-path
  /// compilation to enqueueing: a burst of N updates then costs one batched
  /// pass (shared clause scan and stage-2 memo, one VNH sweep, one
  /// composition walk, de-duplicated installation) instead of N restricted
  /// compilations. Updates are *visible* only after the flush.
  void enable_batching(BatchOptions options);
  void enable_batching() { enable_batching(BatchOptions{}); }

  /// Flushes any pending updates, then returns to inline fast-path mode.
  void disable_batching();

  bool batching() const { return batching_; }
  const BatchOptions& batch_options() const { return batch_options_; }

  /// Distinct prefixes waiting for the next flush.
  std::size_t pending_updates() const { return dirty_order_.size(); }

  /// Runs one batched fast-path pass over the dirty set: rules install at
  /// high priority under one cookie, each prefix re-advertises once.
  /// Returns the number of prefixes flushed (0 when idle).
  std::size_t flush();

  struct UpdateReport {
    Ipv4Prefix prefix;
    std::size_t additional_rules = 0;
    double fast_seconds = 0;
  };

  /// The per-update fast-path log: a bounded ring (see
  /// set_update_log_capacity) holding the most recent reports. Superseded
  /// entries are cleared by a successful background recompilation.
  const std::deque<UpdateReport>& update_log() const { return update_log_; }
  void clear_update_log() { update_log_.clear(); }

  /// Caps the update log (default 4096; oldest entries drop first so long
  /// burst replays can't grow memory without bound). 0 disables logging.
  void set_update_log_capacity(std::size_t capacity);
  std::size_t update_log_capacity() const { return update_log_capacity_; }

  // --- durability & crash recovery (persist/) -------------------------------

  /// Attaches a journal at \p dir (created if missing): from here on every
  /// externally-driven mutation — participant registration, policy changes,
  /// announce/withdraw/session_down, install() — appends a WAL record, and
  /// checkpoint() serializes full snapshots. Throws std::logic_error when a
  /// journal is already attached, or when \p dir holds existing journal
  /// state (use recover() for that). Attaching to a runtime that already
  /// has state writes an initial checkpoint so the journal is complete.
  void attach_journal(const std::string& dir,
                      persist::Journal::Options options = {});

  /// True while mutations are being recorded to an attached journal.
  bool journaling() const { return journal_ != nullptr && journal_recording_; }
  const persist::Journal* journal() const { return journal_.get(); }

  /// Serializes the full runtime state (RIB, participants, policies,
  /// VNH/VMAC allocator, installed tables + fingerprint, fast-path residue)
  /// as an atomically-written checkpoint, rotating the WAL to a fresh
  /// segment anchored at the checkpoint's LSN. A pending batch is flushed
  /// first so the snapshot is externally consistent. Returns the checkpoint
  /// LSN. Throws std::logic_error without an attached journal.
  std::uint64_t checkpoint();

  struct RecoveryReport {
    bool warm = false;           ///< tables adopted without recompiling
    bool had_checkpoint = false;
    std::uint64_t checkpoint_lsn = 0;
    std::size_t replayed = 0;    ///< WAL tail records re-applied
    std::uint64_t torn_bytes = 0;///< bytes discarded by torn-tail detection
    double seconds = 0;
  };

  /// Rebuilds this (fresh) runtime from the journal at \p dir: loads the
  /// newest valid checkpoint, replays the WAL tail through the batched fast
  /// path, and resumes recording. When the restored tables' fingerprint
  /// matches the checkpointed one the restart is *warm*: the compiled state
  /// is adopted without recompiling and every persisted VNH→VMAC binding is
  /// reused, so border-router ARP caches stay valid. Throws
  /// std::logic_error on a non-fresh runtime, std::runtime_error when the
  /// directory holds neither a checkpoint nor a complete (genesis) WAL.
  RecoveryReport recover(const std::string& dir,
                         persist::Journal::Options options = {});

  // --- telemetry ------------------------------------------------------------

  /// The runtime's measurement plane. Every layer reports here: route
  /// server (RIB size, churn), compiler (per-stage spans + histograms),
  /// §4.3.2 fast path (inline and batched), background-recompile swaps,
  /// BGP frontend (updates, bytes, session drops), ARP responder and
  /// fabric flow table.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Prometheus text exposition of every metric, with occupancy gauges
  /// (flow-table rules, ARP bindings, RIB size) refreshed first. The
  /// counter series are byte-stable across CompileOptions::threads values.
  std::string dump_metrics();

  /// Chrome trace-event JSON of every recorded span (open in
  /// about:tracing or ui.perfetto.dev). Compiler-stage spans nest under
  /// their compile span.
  std::string dump_trace() const;

  // --- data plane -----------------------------------------------------------

  dp::Fabric& fabric() { return fabric_; }
  const dp::Fabric& fabric() const { return fabric_; }
  dp::BorderRouter& router(ParticipantId id, std::size_t port_index = 0);

  /// The (VNH, VMAC) binding currently advertised for \p prefix — the
  /// fast-path binding when one is live, else the compiled group binding,
  /// else the remote-participant binding for its advertiser; std::nullopt
  /// when the prefix is advertised with its real next hop.
  std::optional<VnhBinding> current_binding(Ipv4Prefix prefix) const;

  /// The next-hop binding assigned to a remote participant's own
  /// announcements (std::nullopt for physical participants).
  std::optional<VnhBinding> remote_binding(ParticipantId advertiser) const;

  /// Sends an IP payload from a participant's border router through the
  /// fabric; returns the deliveries at egress ports.
  std::vector<dp::Fabric::Delivery> send(ParticipantId from,
                                         net::PacketHeader payload,
                                         std::size_t port_index = 0);

  /// Burst counterpart of send(): every payload is framed by the same
  /// border router, then the whole burst runs through the fabric's
  /// batched classification path (FlowTable::process_batch). Per-payload
  /// deliveries are identical to calling send() in a loop.
  dp::Fabric::BatchDeliveries send_batch(
      ParticipantId from, std::span<const net::PacketHeader> payloads,
      std::size_t port_index = 0);

  // --- policy safety verification (verify/) ---------------------------------

  /// The safety checker's window onto this runtime's live deployment:
  /// compiled flow table, border routers, ARP and route server behind pure
  /// closures (see verify::DeploymentView). The view borrows the runtime —
  /// it must not outlive it. Throws std::logic_error before install().
  verify::DeploymentView deployment_view() const;

  /// Turns on the safety stage: a full check after every deploy (install,
  /// synchronous or asynchronous recompile) and an incremental re-check of
  /// only the dirty prefixes after inline fast-path updates, batched
  /// flushes and partition recompiles. Results land in
  /// last_safety_report() and telemetry (`sdx_verify_seconds`,
  /// `sdx_verify_violations_total{kind=...}`, ...). Runs immediately when
  /// already installed.
  void enable_verification(verify::SafetyChecker::Options options = {});
  void disable_verification();
  bool verification_enabled() const { return checker_ != nullptr; }

  /// One-shot full safety check — the single entry point returning both
  /// graph-level counterexamples and the local-rule audit
  /// (core::audit, folded in as kLocalRule violations). Independent of
  /// enable_verification(): no checker state or telemetry is touched.
  /// Throws std::logic_error before install().
  verify::SafetyReport verify_now() const;

  /// The report produced by the most recent safety stage (default-empty
  /// before the first; meaningful only with verification enabled).
  const verify::SafetyReport& last_safety_report() const {
    return last_safety_report_;
  }

 private:
  static constexpr std::uint32_t kBasePriority = 1000;
  static constexpr std::uint32_t kFastPriority = 1u << 24;
  static constexpr std::uint64_t kBaseCookie = 1;
  /// Partitioned mode: partition slot s installs under cookie
  /// kPartitionCookieBase + s, so one partition's band can be removed and
  /// replaced in place. Far above the fast-path cookie counter's reach, so
  /// the two spaces can never collide.
  static constexpr std::uint64_t kPartitionCookieBase = 1ull << 32;
  static constexpr std::uint64_t partition_cookie(std::size_t slot) {
    return kPartitionCookieBase + slot;
  }

  /// One asynchronous recompilation: self-contained snapshots of the
  /// compiler inputs (so the worker never touches live runtime state), the
  /// double-buffered result, and the epochs that decide staleness at swap
  /// time. Heap-held so its address is stable for the worker.
  struct RecompileJob {
    std::vector<Participant> participants;
    PortMap ports;
    bgp::RouteServer server;  ///< versioned snapshot (telemetry detached)
    std::uint64_t policy_epoch = 0;
    VnhAllocator vnh;         ///< worker-owned; swapped into vnh_ on finish
    CompiledSdx result;       ///< written by the worker, read after `done`
    std::future<void> done;
    bool superseded = false;  ///< a synchronous recompile outran this job
  };

  const CompiledSdx& deploy();
  /// Clears the flow table and installs the compiled base state: the whole
  /// fabric under kBaseCookie (pairwise), or the shared band plus one
  /// priority band per partition under per-slot cookies (partitioned),
  /// recording each partition's priority base for later in-place swaps.
  void install_base_tables(const CompiledSdx& compiled);
  /// Partitioned mode, outbound policy change after install(): recompile
  /// only \p id's partition, swap its flow-table band under its cookie,
  /// ARP-bind the fresh bindings and re-advertise the affected prefixes.
  void recompile_participant_partition(ParticipantId id);
  void readvertise(Ipv4Prefix prefix);
  void bind_arp(const CompiledSdx& compiled);
  /// Post-install update routing: raced-delta tracking, then either the
  /// inline fast path or the dirty queue (batching).
  void note_post_install_update(Ipv4Prefix prefix);
  void handle_post_install_update(Ipv4Prefix prefix);
  /// One batched fast pass over \p prefixes: compile, install, re-advertise,
  /// log. Shared by flush() and the post-swap raced-delta re-application.
  void install_batch(const std::vector<Ipv4Prefix>& prefixes);
  /// Applies a finished, non-stale job on the control thread: swap tables,
  /// drop superseded fast rules, re-apply raced deltas, re-advertise.
  void apply_recompile(RecompileJob job);
  void log_update(UpdateReport report);
  std::optional<VnhBinding> advertised_binding(Ipv4Prefix prefix) const;
  /// Registers the journal's telemetry series on the runtime registry.
  /// Runs the enabled safety stage: full when \p dirty is null, else an
  /// incremental re-check of exactly those prefixes. No-op unless
  /// verification is enabled and the runtime is installed.
  void run_safety_stage(const std::vector<Ipv4Prefix>* dirty);
  void wire_journal_hooks();
  /// Re-applies a checkpoint into this (fresh) runtime; sets report.warm
  /// when the fingerprint check allows adopting the persisted tables.
  void restore_checkpoint(const persist::CheckpointState& st,
                          RecoveryReport& report);
  /// Re-applies one WAL record (recording suppressed by the caller).
  void replay_record(const persist::WalRecord& rec);

  /// Declared first so every layer holding metric handles (route server,
  /// fabric hooks, cached counters below) is destroyed before it.
  telemetry::Telemetry telemetry_;
  /// Cached instrument handles for the per-update hot paths (registered
  /// once in the constructor; registry handles are stable).
  telemetry::Counter* fast_updates_ = nullptr;
  telemetry::Counter* fast_rules_ = nullptr;
  telemetry::Counter* fast_compositions_ = nullptr;
  telemetry::Histogram* fast_seconds_ = nullptr;
  telemetry::Counter* batch_flushes_ = nullptr;
  telemetry::Counter* batch_updates_ = nullptr;
  telemetry::Histogram* batch_size_ = nullptr;
  telemetry::Counter* async_recompiles_ = nullptr;
  telemetry::Counter* stale_recompiles_ = nullptr;
  telemetry::Histogram* swap_seconds_ = nullptr;
  telemetry::Counter* frontend_updates_ = nullptr;
  telemetry::Counter* frontend_bytes_ = nullptr;
  telemetry::Counter* frontend_drops_ = nullptr;
  telemetry::Counter* ingest_reconnects_ = nullptr;
  telemetry::Counter* partitions_recompiled_ = nullptr;
  telemetry::Counter* verify_full_runs_ = nullptr;
  telemetry::Counter* verify_incremental_runs_ = nullptr;
  telemetry::Histogram* verify_seconds_ = nullptr;
  telemetry::Counter* verify_classes_ = nullptr;
  telemetry::Counter* verify_edges_ = nullptr;
  /// Violation counters indexed by verify::ViolationKind.
  std::array<telemetry::Counter*, 4> verify_violations_{};

  bgp::RouteServer server_;
  CompileOptions options_;
  bgp::RoaTable roas_;
  RpkiMode rpki_mode_ = RpkiMode::kOff;
  std::vector<Participant> participants_;
  PortMap port_map_;
  VnhAllocator vnh_;
  dp::Fabric fabric_;
  /// Routers keyed in participant slot order, one per physical port; deque
  /// keeps addresses stable for fabric attachment.
  std::deque<dp::BorderRouter> routers_;
  std::unordered_map<ParticipantId, std::vector<std::size_t>> router_index_;
  std::unique_ptr<IncrementalEngine> engine_;
  std::unique_ptr<BgpFrontend> frontend_;
  /// Last frontend reconnect count synced into the ingest counter.
  std::uint64_t synced_frontend_reconnects_ = 0;
  std::deque<UpdateReport> update_log_;
  std::size_t update_log_capacity_ = 4096;
  /// Fast-path bindings installed since the last full compile.
  std::unordered_map<Ipv4Prefix, VnhBinding> fast_bindings_;
  /// Per-remote-participant next-hop binding so senders can frame traffic
  /// toward prefixes only a remote participant announces.
  std::unordered_map<ParticipantId, VnhBinding> remote_bindings_;

  // Burst batching state (control thread only).
  bool batching_ = false;
  BatchOptions batch_options_;
  std::vector<Ipv4Prefix> dirty_order_;  ///< arrival order, deduplicated
  std::unordered_set<Ipv4Prefix> dirty_set_;
  double pending_clock_ = 0;  ///< advance_clock() time since first dirty

  // Async recompilation state. policy_epoch_ bumps on any post-install
  // policy mutation; raced_* records prefixes updated while a job flies.
  std::uint64_t policy_epoch_ = 0;
  std::vector<Ipv4Prefix> raced_order_;
  std::unordered_set<Ipv4Prefix> raced_set_;
  std::unique_ptr<RecompileJob> job_;

  /// Partitioned mode: priority base of each partition's band in the flow
  /// table, fixed at base-table installation. A partition that grows past
  /// its original band overlaps the next band's priorities — harmless,
  /// since partitions match disjoint ingress ports.
  std::vector<std::uint32_t> partition_bases_;

  /// Safety verification stage (verify/): present iff enabled.
  std::unique_ptr<verify::SafetyChecker> checker_;
  verify::SafetyReport last_safety_report_;

  std::uint64_t next_cookie_ = kBaseCookie + 1;
  net::PortId next_port_ = 1;
  std::uint32_t next_host_ = 1;

  /// Durability (persist/): the attached journal, and whether mutations are
  /// currently recorded (off during recovery replay and inside compound
  /// operations whose effects a single record already covers).
  std::unique_ptr<persist::Journal> journal_;
  bool journal_recording_ = false;

  /// Declared last: destroyed first, joining any worker still compiling
  /// before the job buffers and telemetry above go away.
  std::unique_ptr<net::ThreadPool> async_pool_;
};

}  // namespace sdx::core
