#include "sdx/multi_switch.hpp"

#include <deque>
#include <stdexcept>

namespace sdx::core {

namespace {

using policy::ActionSeq;
using policy::Rule;
using net::Field;
using net::FlowMatch;

}  // namespace

FabricTopology::FabricTopology(std::size_t switch_count)
    : adjacency_(switch_count), trunks_(switch_count) {
  if (switch_count == 0) {
    throw std::invalid_argument("a fabric needs at least one switch");
  }
}

void FabricTopology::place_port(net::PortId port, SwitchId sw) {
  if (sw >= adjacency_.size()) {
    throw std::out_of_range("no such switch " + std::to_string(sw));
  }
  if (trunk_peer_.contains(port)) {
    throw std::invalid_argument("port already used as trunk");
  }
  location_[port] = sw;
}

void FabricTopology::add_link(SwitchId a, net::PortId port_on_a, SwitchId b,
                              net::PortId port_on_b) {
  if (a >= adjacency_.size() || b >= adjacency_.size() || a == b) {
    throw std::invalid_argument("bad link endpoints");
  }
  if (location_.contains(port_on_a) || location_.contains(port_on_b) ||
      trunk_peer_.contains(port_on_a) || trunk_peer_.contains(port_on_b)) {
    throw std::invalid_argument("trunk port id already in use");
  }
  adjacency_[a].push_back(Link{b, port_on_a});
  adjacency_[b].push_back(Link{a, port_on_b});
  trunk_peer_[port_on_a] = {b, port_on_b};
  trunk_peer_[port_on_b] = {a, port_on_a};
  trunk_home_[port_on_a] = a;
  trunk_home_[port_on_b] = b;
  trunks_[a].push_back(port_on_a);
  trunks_[b].push_back(port_on_b);
}

bool FabricTopology::remove_link(net::PortId trunk) {
  auto it = trunk_peer_.find(trunk);
  if (it == trunk_peer_.end()) return false;
  const net::PortId other = it->second.second;
  const SwitchId home = trunk_home_.at(trunk);
  const SwitchId far = trunk_home_.at(other);
  auto drop = [this](SwitchId sw, net::PortId via) {
    std::erase_if(adjacency_[sw],
                  [via](const Link& l) { return l.via == via; });
    std::erase(trunks_[sw], via);
    trunk_peer_.erase(via);
    trunk_home_.erase(via);
  };
  drop(home, trunk);
  drop(far, other);
  return true;
}

SwitchId FabricTopology::switch_of(net::PortId edge_port) const {
  auto it = location_.find(edge_port);
  if (it == location_.end()) {
    throw std::out_of_range("unplaced port " + std::to_string(edge_port));
  }
  return it->second;
}

std::pair<SwitchId, net::PortId> FabricTopology::trunk_peer(
    net::PortId port) const {
  auto it = trunk_peer_.find(port);
  if (it == trunk_peer_.end()) {
    throw std::out_of_range("not a trunk port " + std::to_string(port));
  }
  return it->second;
}

net::PortId FabricTopology::next_hop_trunk(SwitchId from, SwitchId to) const {
  if (from == to) throw std::logic_error("next hop to self");
  // BFS from `to` backward; first hop on the tree path from `from`.
  std::vector<net::PortId> toward(adjacency_.size(), 0);
  std::vector<bool> seen(adjacency_.size(), false);
  std::deque<SwitchId> queue{to};
  seen[to] = true;
  while (!queue.empty()) {
    const SwitchId cur = queue.front();
    queue.pop_front();
    for (const Link& link : adjacency_[cur]) {
      if (seen[link.to]) continue;
      seen[link.to] = true;
      // From link.to, the trunk toward `to` is the reverse port of `via`.
      toward[link.to] = trunk_peer_.at(link.via).second;
      if (link.to == from) return toward[from];
      queue.push_back(link.to);
    }
  }
  throw std::logic_error("switch graph is disconnected (" +
                         std::to_string(from) + " cannot reach " +
                         std::to_string(to) + ")");
}

std::vector<net::PortId> FabricTopology::edge_ports_of(SwitchId sw) const {
  std::vector<net::PortId> out;
  for (const auto& [port, home] : location_) {
    if (home == sw) out.push_back(port);
  }
  return out;
}

std::vector<SwitchProgram> compile_multi_switch(
    const CompiledSdx& compiled,
    const std::vector<Participant>& participants,
    const FabricTopology& topology) {
  // Collect the rendezvous tags: every router port MAC and its location.
  struct Endpoint {
    net::PortId port;
    SwitchId sw;
  };
  std::unordered_map<std::uint64_t, Endpoint> mac_location;
  for (const auto& p : participants) {
    for (const auto& port : p.ports) {
      mac_location[port.router_mac.bits()] =
          Endpoint{port.id, topology.switch_of(port.id)};
    }
  }

  std::vector<SwitchProgram> programs;
  for (SwitchId sw = 0; sw < topology.switch_count(); ++sw) {
    std::vector<Rule> rules;

    // Transit band: frames arriving on a trunk are already processed —
    // forward purely on the destination MAC.
    for (net::PortId trunk : topology.trunks_of(sw)) {
      for (const auto& [mac, endpoint] : mac_location) {
        FlowMatch m = FlowMatch::on(Field::kPort, trunk);
        m.with(Field::kDstMac, mac);
        const net::PortId out =
            endpoint.sw == sw
                ? endpoint.port
                : topology.next_hop_trunk(sw, endpoint.sw);
        rules.push_back(Rule{m, {ActionSeq::set(Field::kPort, out)}});
      }
    }

    // Policy band: the full single-switch classifier with outputs
    // translated through the topology. Wildcard-ingress rules are safe
    // here because trunk traffic is consumed by the transit band above.
    for (const Rule& r : compiled.fabric.rules()) {
      Rule translated = r;
      bool feasible = true;
      // Skip rules pinned to an ingress port on another switch.
      const auto& port_match = r.match.field(Field::kPort);
      if (port_match.is_exact()) {
        const auto in_port = static_cast<net::PortId>(port_match.value());
        if (!topology.is_edge_port(in_port) ||
            topology.switch_of(in_port) != sw) {
          continue;
        }
      }
      for (auto& act : translated.actions) {
        const auto out = act.written(Field::kPort);
        if (!out) continue;
        const auto out_port = static_cast<net::PortId>(*out);
        if (!topology.is_edge_port(out_port)) {
          feasible = false;  // rule targets a port absent from the layout
          break;
        }
        const SwitchId target_sw = topology.switch_of(out_port);
        if (target_sw != sw) {
          act.then_set(Field::kPort,
                       topology.next_hop_trunk(sw, target_sw));
        }
      }
      if (feasible) rules.push_back(std::move(translated));
    }

    programs.push_back(SwitchProgram{sw, policy::Classifier(std::move(rules))});
  }
  return programs;
}

MultiSwitchFabric::MultiSwitchFabric(
    const FabricTopology& topology,
    const std::vector<SwitchProgram>& programs)
    : topology_(topology), switches_(topology.switch_count()) {
  for (const auto& program : programs) {
    switches_.at(program.id)
        .table()
        .install_classifier(program.rules, 1000, program.id);
  }
}

std::vector<net::PacketHeader> MultiSwitchFabric::inject(
    const net::PacketHeader& frame) {
  struct InFlight {
    SwitchId sw;
    net::PacketHeader frame;
    int hops;
  };
  std::vector<net::PacketHeader> delivered;
  std::deque<InFlight> queue;
  queue.push_back(InFlight{topology_.switch_of(frame.port()), frame, 0});
  const int hop_limit = static_cast<int>(topology_.switch_count()) + 2;
  while (!queue.empty()) {
    InFlight cur = std::move(queue.front());
    queue.pop_front();
    if (cur.hops > hop_limit) {
      throw std::runtime_error("forwarding loop: hop limit exceeded");
    }
    for (auto& out : switches_[cur.sw].inject(cur.frame)) {
      if (topology_.is_trunk_port(out.port())) {
        ++trunk_hops_;
        auto [next_sw, arrival_port] = topology_.trunk_peer(out.port());
        out.set_port(arrival_port);
        queue.push_back(InFlight{next_sw, std::move(out), cur.hops + 1});
      } else {
        delivered.push_back(std::move(out));
      }
    }
  }
  return delivered;
}

}  // namespace sdx::core
