#pragma once

/// \file fec.hpp
/// Forwarding-equivalence-class computation — the Minimum Disjoint Subsets
/// algorithm of paper §4.2.
///
/// Two prefixes belong to the same group iff they behave identically
/// throughout the SDX fabric, i.e. they
///   (1) appear in exactly the same set of clause reach sets (pass 1), and
///   (2) have the same route-server default next-hop from every
///       participant's point of view (pass 2).
/// Grouping by this signature yields the maximal disjoint groups the paper
/// calls C′ (pass 3); each group then receives one (VNH, VMAC) pair.
///
/// The computation is a single hash-grouping pass over prefix signatures —
/// polynomial (in fact near-linear) as the paper requires.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"

namespace sdx::core {

using bgp::Ipv4Prefix;
using bgp::ParticipantId;

/// The reach set of one outbound clause: every prefix the clause may
/// forward (already restricted to what the target AS exported to the clause
/// owner, and to the clause's own dst-prefix constraints).
struct ClauseReach {
  ParticipantId owner = 0;
  std::size_t clause_index = 0;  ///< index within the owner's clause list
  std::vector<Ipv4Prefix> prefixes;
};

/// Per-prefix default forwarding: the best-route next-hop participant from
/// each participant's viewpoint (indexed by participant slot; nullopt =
/// that participant has no route).
using DefaultVector = std::vector<std::optional<ParticipantId>>;

struct PrefixGroup {
  std::vector<Ipv4Prefix> prefixes;      ///< sorted
  std::vector<std::uint32_t> clauses;    ///< global clause ids, sorted
  DefaultVector defaults;                ///< shared by every prefix in group
};

struct FecResult {
  std::vector<PrefixGroup> groups;
  std::unordered_map<Ipv4Prefix, std::uint32_t> group_of;

  std::size_t group_count() const { return groups.size(); }
};

/// Computes the maximal disjoint prefix groups. \p defaults_of is queried
/// once per distinct prefix appearing in any reach set; prefixes in no
/// reach set keep their default behaviour and are deliberately not grouped
/// (paper §4.2 last paragraph).
FecResult compute_fecs(const std::vector<ClauseReach>& clauses,
                       const std::function<DefaultVector(Ipv4Prefix)>&
                           defaults_of);

}  // namespace sdx::core
