#pragma once

/// \file fec.hpp
/// Forwarding-equivalence-class computation — the Minimum Disjoint Subsets
/// algorithm of paper §4.2.
///
/// Two prefixes belong to the same group iff they behave identically
/// throughout the SDX fabric, i.e. they
///   (1) appear in exactly the same set of clause reach sets (pass 1), and
///   (2) have the same route-server default next-hop from every
///       participant's point of view (pass 2).
/// Grouping by this signature yields the maximal disjoint groups the paper
/// calls C′ (pass 3); each group then receives one (VNH, VMAC) pair.
///
/// The computation is a single hash-grouping pass over prefix signatures —
/// polynomial (in fact near-linear) as the paper requires.
///
/// Grouping is canonical: prefixes are processed in sorted order and group
/// ids are assigned by first appearance, so the result depends only on the
/// input, never on hash iteration order. The parallel path shards prefixes
/// by hash, groups per shard, then merges shard groups by exact signature
/// in canonical order — byte-identical to the serial result for any shard
/// or thread count.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"

namespace sdx::net {
class ThreadPool;
}

namespace sdx::core {

using bgp::Ipv4Prefix;
using bgp::ParticipantId;

/// The reach set of one outbound clause: every prefix the clause may
/// forward (already restricted to what the target AS exported to the clause
/// owner, and to the clause's own dst-prefix constraints).
struct ClauseReach {
  ParticipantId owner = 0;
  std::size_t clause_index = 0;  ///< index within the owner's clause list
  std::vector<Ipv4Prefix> prefixes;
};

/// Per-prefix default forwarding: the best-route next-hop participant from
/// each participant's viewpoint (indexed by participant slot; nullopt =
/// that participant has no route).
using DefaultVector = std::vector<std::optional<ParticipantId>>;

struct PrefixGroup {
  std::vector<Ipv4Prefix> prefixes;      ///< sorted
  std::vector<std::uint32_t> clauses;    ///< global clause ids, sorted
  DefaultVector defaults;                ///< shared by every prefix in group
};

struct FecResult {
  std::vector<PrefixGroup> groups;
  std::unordered_map<Ipv4Prefix, std::uint32_t> group_of;

  std::size_t group_count() const { return groups.size(); }
};

/// Computes the maximal disjoint prefix groups. \p defaults_of is queried
/// once per distinct prefix appearing in any reach set; prefixes in no
/// reach set keep their default behaviour and are deliberately not grouped
/// (paper §4.2 last paragraph).
///
/// When \p pool is non-null the signature computation (including the
/// \p defaults_of calls — by far the dominant cost) and per-shard grouping
/// run on the pool, so \p defaults_of must be safe to invoke concurrently.
/// Group ids, group contents and `group_of` are identical either way.
FecResult compute_fecs(const std::vector<ClauseReach>& clauses,
                       const std::function<DefaultVector(Ipv4Prefix)>&
                           defaults_of,
                       net::ThreadPool* pool = nullptr);

}  // namespace sdx::core
