#pragma once

/// \file explain.hpp
/// Forwarding explanation — the operator's "why did this packet go
/// there?" tool. Given a sender and a packet, it walks the full decision
/// chain and attributes each step to its cause:
///
///   * the border-router step: which route the sender's router used
///     (prefix, advertiser, whether the next hop is a VNH and which
///     prefix group / VMAC it encodes);
///   * the fabric step: which installed rule matched (priority, match,
///     action) and what kind of rule it is — participant policy clause,
///     remote rewrite, per-group default, per-sender override,
///     MAC-learning passthrough, or drop;
///   * the outcome: egress port, owner, final header.
///
/// `explain` is pure (no counters touched); the scenario language exposes
/// it as the `explain` command.

#include <optional>
#include <string>

#include "sdx/runtime.hpp"

namespace sdx::core {

enum class RuleKind : std::uint8_t {
  kNoRoute,        ///< the sender's router had no route — never entered
  kArpFailure,     ///< route present but next hop unresolvable
  kPolicyClause,   ///< an outbound clause of the sender
  kRemoteRewrite,  ///< a remote participant's rewrite clause
  kGroupDefault,   ///< per-group BGP default (majority or override)
  kMacLearning,    ///< untouched prefix, real next-hop MAC passthrough
  kDropped,        ///< matched nothing useful in the fabric
};

std::string_view rule_kind_name(RuleKind k);

struct Explanation {
  RuleKind kind = RuleKind::kDropped;

  // Router step.
  std::optional<Ipv4Prefix> route_prefix;   ///< LPM hit at the sender
  ParticipantId route_via = 0;              ///< advertiser of that route
  std::optional<std::uint32_t> group;       ///< FEC when VNH-advertised
  net::PacketHeader frame;                  ///< as tagged by the router

  // Fabric step.
  std::optional<std::size_t> rule_index;    ///< index into the flow table
  std::string rule_text;

  // Outcome.
  std::optional<net::PortId> egress;
  ParticipantId receiver = 0;
  net::PacketHeader delivered;

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Explains what the installed deployment does with \p payload sent by
/// \p sender (from its port \p port_index). Requires runtime.installed().
Explanation explain(const SdxRuntime& runtime, ParticipantId sender,
                    const net::PacketHeader& payload,
                    std::size_t port_index = 0);

}  // namespace sdx::core
