#include "sdx/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "netbase/parallel.hpp"
#include "policy/compile.hpp"
#include "telemetry/telemetry.hpp"

namespace sdx::core {

namespace {

using policy::ActionSeq;
using policy::Classifier;
using policy::Rule;
using net::Field;
using net::FlowMatch;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Post-compile metric recording: stage timings as histograms (they vary
/// run to run) and the work the pipeline did as counters (deterministic —
/// the compiled output is byte-identical at any thread width, so these
/// series are too).
void record_compile_metrics(telemetry::MetricRegistry& reg,
                            const CompileStats& s) {
  static constexpr const char* kStageHelp =
      "per-stage compile wall time (seconds)";
  const std::pair<const char*, double> stages[] = {
      {"snapshot", s.snapshot_seconds}, {"reach", s.reach_seconds},
      {"fec_vnh", s.vnh_seconds},       {"synth", s.synth_seconds},
      {"compose", s.compose_seconds},
  };
  for (const auto& [stage, seconds] : stages) {
    reg.histogram("sdx_compile_stage_seconds", kStageHelp, {},
                  {{"stage", stage}})
        .observe(seconds);
  }
  reg.histogram("sdx_compile_seconds", "full compile wall time (seconds)")
      .observe(s.total_seconds);
  reg.counter("sdx_compile_runs_total", "full pipeline compilations").inc();
  reg.counter("sdx_compile_rules_total",
              "flow rules emitted by full compilations (cumulative)")
      .inc(s.final_rules);
  reg.counter("sdx_compile_pair_compositions_total",
              "stage-1 x stage-2 rule visits during targeted composition")
      .inc(s.pair_compositions);
  reg.gauge("sdx_compile_last_rules", "flow rules in the latest compile")
      .set(static_cast<double>(s.final_rules));
  reg.gauge("sdx_compile_last_groups",
            "prefix groups (FECs) in the latest compile")
      .set(static_cast<double>(s.prefix_groups));
  reg.gauge("sdx_compile_threads", "pool width of the latest compile")
      .set(static_cast<double>(s.threads_used));
}

}  // namespace

std::string CompiledSdx::fingerprint() const {
  std::string out = fabric.to_string();
  out += "--bindings--\n";
  for (const auto& b : bindings) {
    out += b.vnh.to_string();
    out += '/';
    out += b.vmac.to_string();
    out += '\n';
  }
  out += "--groups--\n";
  for (const auto& g : fecs.groups) {
    for (auto p : g.prefixes) {
      out += p.to_string();
      out += ' ';
    }
    out += '|';
    for (auto c : g.clauses) {
      out += std::to_string(c);
      out += ' ';
    }
    out += '|';
    for (const auto& d : g.defaults) {
      out += d ? std::to_string(*d) : "-";
      out += ' ';
    }
    out += '\n';
  }
  out += "--reaches--\n";
  for (const auto& r : reaches) {
    out += std::to_string(r.owner);
    out += ':';
    out += std::to_string(r.clause_index);
    out += '=';
    out += std::to_string(r.prefixes.size());
    out += '\n';
  }
  out += "--layout--\n";
  out += layout.descriptor();
  out += partitioned ? " partitioned\n" : " pairwise\n";
  if (partitioned) {
    // Per-partition structure. The fabric section above already covers every
    // rule's contents and order; this pins the partition boundaries, each
    // partition's bindings/groups/reaches and the shared band size.
    for (const auto& part : partitions) {
      out += "--partition ";
      out += std::to_string(part.owner);
      out += " rules=";
      out += std::to_string(part.rules.size());
      out += "--\n";
      for (const auto& b : part.bindings) {
        out += b.vnh.to_string();
        out += '/';
        out += b.vmac.to_string();
        out += '\n';
      }
      for (const auto& g : part.fecs.groups) {
        for (auto p : g.prefixes) {
          out += p.to_string();
          out += ' ';
        }
        out += '|';
        for (auto c : g.clauses) {
          out += std::to_string(c);
          out += ' ';
        }
        out += '|';
        for (const auto& d : g.defaults) {
          out += d ? std::to_string(*d) : "-";
          out += ' ';
        }
        out += '\n';
      }
      for (const auto& r : part.reaches) {
        out += std::to_string(r.clause_index);
        out += '=';
        out += std::to_string(r.prefixes.size());
        out += '\n';
      }
    }
    out += "--shared ";
    out += std::to_string(shared_rules.size());
    out += "--\n";
  }
  return out;
}

void CompiledSdx::rebuild_fabric() {
  std::size_t total = shared_rules.size();
  for (const auto& part : partitions) total += part.rules.size();
  std::vector<policy::Rule> all;
  all.reserve(total);
  for (const auto& part : partitions) {
    all.insert(all.end(), part.rules.rules().begin(),
               part.rules.rules().end());
  }
  all.insert(all.end(), shared_rules.rules().begin(),
             shared_rules.rules().end());
  fabric = policy::Classifier(std::move(all));
}

SdxCompiler::SdxCompiler(const std::vector<Participant>& participants,
                         const PortMap& ports,
                         const bgp::RouteServer& server,
                         CompileOptions options)
    : participants_(participants),
      ports_(ports),
      server_(server),
      options_(options) {
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    slot_of_[participants_[i].id] = i;
  }
}

std::vector<Ipv4Prefix> SdxCompiler::clause_reach(
    const Participant& owner, const OutboundClause& clause) const {
  std::vector<Ipv4Prefix> reach = server_.reachable_via(owner.id, clause.to);
  if (clause.match.dst_prefixes.empty()) return reach;
  // Clause dst constraints apply at announced-prefix granularity: a prefix
  // is eligible only when fully contained in one of the clause's blocks.
  // Containment test: p ⊆ dp(len L) ⇔ dp == p truncated to L, so one hash
  // probe per populated block length suffices.
  std::unordered_map<int, std::unordered_set<Ipv4Prefix>> by_length;
  for (auto dp : clause.match.dst_prefixes) {
    by_length[dp.length()].insert(dp);
  }
  // Probe populated lengths in sorted order, not hash order: shortest
  // blocks first, and a filter cost that doesn't vary with the hash seed.
  std::vector<int> lengths;
  lengths.reserve(by_length.size());
  for (const auto& [len, _] : by_length) lengths.push_back(len);
  std::sort(lengths.begin(), lengths.end());
  std::vector<Ipv4Prefix> filtered;
  filtered.reserve(reach.size());
  for (auto p : reach) {
    for (int len : lengths) {
      if (len > p.length()) break;  // lengths ascend: no later one can fit
      if (by_length.find(len)->second.contains(Ipv4Prefix(p.network(), len))) {
        filtered.push_back(p);
        break;
      }
    }
  }
  return filtered;
}

DefaultVector SdxCompiler::defaults_for(Ipv4Prefix prefix) const {
  DefaultVector out(participants_.size());
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    if (auto best = server_.best_route(participants_[i].id, prefix)) {
      out[i] = best->learned_from;
    }
  }
  return out;
}

DefaultVector SdxCompiler::defaults_from(const BestRouteSnapshot& snapshot,
                                         Ipv4Prefix prefix) const {
  DefaultVector out(participants_.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto& best = snapshot[i];
    if (best.empty()) continue;  // empty RIB: no probe, no allocation
    if (auto it = best.find(prefix); it != best.end()) out[i] = it->second;
  }
  return out;
}

std::vector<FlowMatch> SdxCompiler::clause_matches(
    const ClauseMatch& m, FlowMatch base, bool keep_dst_prefixes) const {
  for (const auto& [f, v] : m.exact) {
    auto merged = base.field(f).intersect(net::FieldMatch::exact(v));
    if (!merged) return {};  // contradictory clause: matches nothing
    base.set(f, *merged);
  }
  std::vector<FlowMatch> out{base};
  auto cross_with = [&out](Field f, const std::vector<Ipv4Prefix>& prefixes) {
    if (prefixes.empty()) return;
    std::vector<FlowMatch> next;
    next.reserve(out.size() * prefixes.size());
    for (const auto& fm : out) {
      for (auto p : prefixes) {
        auto merged = fm.field(f).intersect(net::FieldMatch::prefix(p));
        if (!merged) continue;
        FlowMatch widened = fm;
        widened.set(f, *merged);
        next.push_back(widened);
      }
    }
    out = std::move(next);
  };
  cross_with(Field::kSrcIp, m.src_prefixes);
  if (keep_dst_prefixes) cross_with(Field::kDstIp, m.dst_prefixes);
  return out;
}

Classifier SdxCompiler::stage2_for(const Participant& p) const {
  if (p.is_remote()) {
    throw std::logic_error("remote participant has no stage-2 classifier");
  }
  const net::PortId vp = ports_.vport(p.id);
  std::vector<Rule> rules;

  // Inbound policy clauses (inbound TE) — highest priority.
  for (const auto& c : p.inbound) {
    FlowMatch base = FlowMatch::on(Field::kPort, vp);
    const PhysicalPort& out_port = p.ports.at(c.to_port.value_or(0));
    ActionSeq act;
    for (const auto& [f, v] : c.rewrites) act.then_set(f, v);
    act.then_set(Field::kDstMac, out_port.router_mac.bits());
    act.then_set(Field::kPort, out_port.id);
    for (auto& fm : clause_matches(c.match, base, /*keep_dst_prefixes=*/true)) {
      rules.push_back(Rule{fm, {act}});
    }
  }

  // Port-specific default: frames already addressed to one of the router
  // port MACs exit on that port unchanged (multi-port participants keep
  // their BGP-chosen entry point).
  for (const auto& port : p.ports) {
    FlowMatch fm = FlowMatch::on(Field::kPort, vp);
    fm.with(Field::kDstMac, port.router_mac.bits());
    rules.push_back(Rule{fm, {ActionSeq::set(Field::kPort, port.id)}});
  }

  // Catch-all: VMAC-tagged (or rewritten) traffic exits the primary port
  // with the destination MAC restored to the router's real address —
  // "without rewriting, AS B would drop the traffic" (§4.1).
  {
    const PhysicalPort& primary = p.primary_port();
    ActionSeq act = ActionSeq::set(Field::kDstMac, primary.router_mac.bits());
    act.then_set(Field::kPort, primary.id);
    rules.push_back(Rule{FlowMatch::on(Field::kPort, vp), {act}});
  }

  // Totality for pull_back().
  rules.push_back(Rule{FlowMatch::any(), {}});
  return Classifier(std::move(rules));
}

void SdxCompiler::synthesize_group_defaults(const DefaultVector& defaults,
                                            net::MacAddress vmac,
                                            std::vector<Rule>& out) const {
  // Majority next-hop over the participants that have one (remote next-hops
  // are unreachable by default forwarding and are skipped; their traffic is
  // handled by remote rewrite clauses or dropped).
  std::unordered_map<ParticipantId, std::size_t> votes;
  for (const auto& d : defaults) {
    if (!d) continue;
    const auto slot = slot_of_.find(*d);
    if (slot == slot_of_.end() || participants_[slot->second].is_remote()) {
      continue;
    }
    ++votes[*d];
  }
  if (votes.empty()) return;
  ParticipantId majority = votes.begin()->first;
  std::size_t majority_votes = 0;
  for (const auto& [id, n] : votes) {
    if (n > majority_votes || (n == majority_votes && id < majority)) {
      majority = id;
      majority_votes = n;
    }
  }

  // Per-sender overrides for the (rare) participants whose best next-hop
  // differs from the majority — one rule per sender port, ahead of the
  // global rule.
  for (std::size_t slot = 0; slot < defaults.size(); ++slot) {
    const auto& d = defaults[slot];
    if (!d || *d == majority) continue;
    const auto target_slot = slot_of_.find(*d);
    if (target_slot == slot_of_.end() ||
        participants_[target_slot->second].is_remote()) {
      continue;
    }
    for (net::PortId port : participants_[slot].port_ids()) {
      FlowMatch fm = FlowMatch::on(Field::kPort, port);
      fm.with(Field::kDstMac, vmac.bits());
      out.push_back(
          Rule{fm, {ActionSeq::set(Field::kPort, ports_.vport(*d))}});
    }
  }
  FlowMatch fm = FlowMatch::on(Field::kDstMac, vmac.bits());
  out.push_back(
      Rule{fm, {ActionSeq::set(Field::kPort, ports_.vport(majority))}});
}

void SdxCompiler::synthesize_remote_rewrites(std::vector<Rule>& out) const {
  for (const auto& p : participants_) {
    if (!p.is_remote()) continue;
    for (const auto& c : p.inbound) {
      // Resolve the post-rewrite egress by the remote participant's own
      // BGP view of the rewritten destination.
      std::optional<net::Ipv4Address> new_dst;
      for (const auto& [f, v] : c.rewrites) {
        if (f == Field::kDstIp) {
          new_dst = net::Ipv4Address(static_cast<std::uint32_t>(v));
        }
      }
      if (!new_dst) continue;
      auto route = server_.best_route_lpm(p.id, *new_dst);
      if (!route) continue;
      const auto target_slot = slot_of_.find(route->learned_from);
      if (target_slot == slot_of_.end() ||
          participants_[target_slot->second].is_remote()) {
        continue;
      }
      ActionSeq act;
      for (const auto& [f, v] : c.rewrites) act.then_set(f, v);
      act.then_set(Field::kPort, ports_.vport(route->learned_from));
      for (auto& fm : clause_matches(c.match, FlowMatch::any(),
                                     /*keep_dst_prefixes=*/true)) {
        out.push_back(Rule{fm, {act}});
      }
    }
  }
}

Classifier SdxCompiler::compose(std::vector<Rule> stage1,
                                CompileStats& stats,
                                net::ThreadPool& pool) const {
  // Stage-2 classifiers are memoized once up front, per participant slot
  // (built concurrently, read-only afterward — no locking on the hot path).
  std::vector<std::unique_ptr<Classifier>> stage2_by_slot(
      participants_.size());
  const bool prebuild = !options_.prune_pairs || options_.memoize_stage2;
  if (prebuild) {
    pool.parallel_for(
        participants_.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            if (participants_[i].is_remote()) continue;
            stage2_by_slot[i] =
                std::make_unique<Classifier>(stage2_for(participants_[i]));
          }
        });
  }
  Classifier merged_stage2;  // used when pair pruning is disabled
  if (!options_.prune_pairs) {
    std::vector<Rule> all;
    for (const auto& s2 : stage2_by_slot) {
      if (s2 == nullptr) continue;
      // Strip the per-participant catch-all drop; one shared one suffices.
      all.insert(all.end(), s2->rules().begin(), s2->rules().end() - 1);
    }
    all.push_back(Rule{FlowMatch::any(), {}});
    merged_stage2 = Classifier(std::move(all));
  }

  // Fan pull_back out across stage-1 rules. Each rule writes its composed
  // run into its own slot; concatenating slots in order reproduces the
  // serial rule order exactly.
  std::vector<std::vector<Rule>> composed(stage1.size());
  std::vector<std::size_t> visits(stage1.size(), 0);
  pool.parallel_for(
      stage1.size(), 16, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Rule& r = stage1[i];
          if (r.drops()) {
            composed[i].push_back(std::move(r));
            continue;
          }
          const ActionSeq& act = r.actions.front();
          const auto port_written = act.written(Field::kPort);
          if (!port_written ||
              !PortMap::is_virtual(static_cast<net::PortId>(*port_written))) {
            composed[i].push_back(std::move(r));
            continue;
          }
          const auto vport = static_cast<net::PortId>(*port_written);
          const Classifier* stage2 = nullptr;
          Classifier fresh;
          if (!options_.prune_pairs) {
            stage2 = &merged_stage2;
          } else {
            const ParticipantId target = ports_.vport_owner(vport);
            const std::size_t slot = slot_of_.at(target);
            if (options_.memoize_stage2) {
              stage2 = stage2_by_slot[slot].get();
            } else {
              fresh = stage2_for(participants_[slot]);
              stage2 = &fresh;
            }
          }
          visits[i] = stage2->size();
          composed[i] = policy::pull_back(r.match, act, *stage2);
        }
      });

  std::size_t total = 0;
  for (const auto& run : composed) total += run.size();
  std::vector<Rule> out;
  out.reserve(total);
  for (std::size_t i = 0; i < composed.size(); ++i) {
    stats.pair_compositions += visits[i];
    out.insert(out.end(), std::make_move_iterator(composed[i].begin()),
               std::make_move_iterator(composed[i].end()));
  }
  Classifier c(std::move(out));
  c.optimize(false);
  return c;
}

CompiledSdx SdxCompiler::compile(VnhAllocator& vnh) const {
  if (options_.partitioned) {
    if (!options_.vmac_grouping) {
      throw std::invalid_argument(
          "partitioned compilation requires vmac_grouping: attribute bits "
          "are carried in the group VMAC tag");
    }
    return compile_partitioned(vnh);
  }
  telemetry::SpanTracer* tracer =
      telemetry_ != nullptr ? &telemetry_->tracer : nullptr;
  telemetry::Span compile_span(tracer, "compile");
  const auto t_start = std::chrono::steady_clock::now();
  net::ThreadPool pool(options_.threads);
  CompiledSdx result;
  result.layout = vnh.layout();
  CompileStats& stats = result.stats;
  stats.participants = participants_.size();
  stats.prefixes_total = server_.prefix_count();
  stats.threads_used = pool.size();

  // 0. Per-participant best-route snapshot: one RIB pass per participant,
  // taken concurrently. Every defaults lookup below hits the snapshot
  // instead of probing the route server per (participant, prefix).
  auto t0 = std::chrono::steady_clock::now();
  telemetry::Span stage_span(tracer, "snapshot");
  BestRouteSnapshot snapshot(participants_.size());
  pool.parallel_for(
      participants_.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          snapshot[i] = server_.best_nexthops(participants_[i].id);
        }
      });
  stats.snapshot_seconds = seconds_since(t0);
  stage_span.finish();

  // 1. Clause reach sets, in global clause order (participant slot-major).
  // Clauses are independent: each writes its pre-sized slot.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "reach");
  struct ClauseRef {
    const Participant* owner;
    std::size_t index;
  };
  std::vector<ClauseRef> clause_list;
  for (const auto& p : participants_) {
    for (std::size_t ci = 0; ci < p.outbound.size(); ++ci) {
      clause_list.push_back(ClauseRef{&p, ci});
    }
  }
  result.reaches.resize(clause_list.size());
  pool.parallel_for(
      clause_list.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto& [owner, ci] = clause_list[i];
          ClauseReach cr;
          cr.owner = owner->id;
          cr.clause_index = ci;
          cr.prefixes = clause_reach(*owner, owner->outbound[ci]);
          result.reaches[i] = std::move(cr);
        }
      });
  stats.clause_count = result.reaches.size();
  stats.reach_seconds = seconds_since(t0);
  stage_span.finish();

  // 2+3. FEC computation (sharded by prefix hash, canonical merge) and
  // VNH/VMAC assignment.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "fec_vnh");
  vnh.reset();
  if (options_.vmac_grouping) {
    result.fecs = compute_fecs(
        result.reaches,
        [this, &snapshot](Ipv4Prefix prefix) {
          return defaults_from(snapshot, prefix);
        },
        &pool);
    result.bindings.reserve(result.fecs.groups.size());
    for (std::size_t g = 0; g < result.fecs.groups.size(); ++g) {
      result.bindings.push_back(vnh.allocate());
    }
  }
  stats.prefix_groups = result.fecs.groups.size();
  stats.prefixes_grouped = result.fecs.group_of.size();
  stats.vnh_seconds = seconds_since(t0);
  stage_span.finish();

  // Index: global clause id → groups fully inside its reach set.
  std::vector<std::vector<std::uint32_t>> clause_groups(
      result.reaches.size());
  for (std::uint32_t g = 0; g < result.fecs.groups.size(); ++g) {
    for (auto cid : result.fecs.groups[g].clauses) {
      clause_groups[cid].push_back(g);
    }
  }

  // 4. Stage-1 synthesis.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "synth");
  std::vector<Rule> stage1;
  std::size_t clause_id = 0;
  for (const auto& p : participants_) {
    for (std::size_t ci = 0; ci < p.outbound.size(); ++ci, ++clause_id) {
      const OutboundClause& c = p.outbound[ci];
      const ActionSeq act =
          ActionSeq::set(Field::kPort, ports_.vport(c.to));
      for (net::PortId port : p.port_ids()) {
        if (options_.vmac_grouping) {
          for (auto g : clause_groups[clause_id]) {
            FlowMatch base = FlowMatch::on(Field::kPort, port);
            base.with(Field::kDstMac, result.bindings[g].vmac.bits());
            for (auto& fm :
                 clause_matches(c.match, base, /*keep_dst_prefixes=*/false)) {
              stage1.push_back(Rule{fm, {act}});
            }
          }
        } else {
          for (auto prefix : result.reaches[clause_id].prefixes) {
            FlowMatch base = FlowMatch::on(Field::kPort, port);
            base.with_prefix(Field::kDstIp, prefix);
            for (auto& fm :
                 clause_matches(c.match, base, /*keep_dst_prefixes=*/false)) {
              stage1.push_back(Rule{fm, {act}});
            }
          }
        }
      }
    }
  }

  // Remote-participant rewrite clauses (wide-area load balancing): matched
  // on destination address directly, ahead of default forwarding.
  synthesize_remote_rewrites(stage1);

  // Per-group default forwarding (VMAC mode only; without grouping the
  // route server leaves next-hops untouched and MAC learning suffices).
  if (options_.vmac_grouping) {
    for (std::uint32_t g = 0; g < result.fecs.groups.size(); ++g) {
      synthesize_group_defaults(result.fecs.groups[g].defaults,
                                result.bindings[g].vmac, stage1);
    }
  }

  // MAC-learning rules for traffic addressed to real router MACs.
  for (const auto& p : participants_) {
    for (const auto& port : p.ports) {
      FlowMatch fm = FlowMatch::on(Field::kDstMac, port.router_mac.bits());
      stage1.push_back(
          Rule{fm, {ActionSeq::set(Field::kPort, ports_.vport(p.id))}});
    }
  }

  stage1.push_back(Rule{FlowMatch::any(), {}});
  stats.stage1_rules = stage1.size();
  stats.synth_seconds = seconds_since(t0);
  stage_span.finish();

  // 5+6. Targeted composition through stage-2.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "compose");
  result.fabric = compose(std::move(stage1), stats, pool);
  stats.compose_seconds = seconds_since(t0);
  stage_span.finish();

  if (options_.full_optimize) result.fabric.optimize(/*full=*/true);
  stats.final_rules = result.fabric.size();
  stats.total_seconds = seconds_since(t_start);
  compile_span.finish();
  if (telemetry_ != nullptr) {
    record_compile_metrics(telemetry_->metrics, stats);
  }
  return result;
}

namespace {

/// One wall-time observation per physical partition. The observation count
/// is deterministic (one per participant per compile) even though the
/// timings themselves vary run to run, so counter-series byte-stability is
/// unaffected.
void record_partition_metrics(telemetry::MetricRegistry& reg,
                              const std::vector<Participant>& participants,
                              const CompiledSdx& result) {
  for (std::size_t slot = 0; slot < result.partitions.size(); ++slot) {
    if (participants[slot].is_remote()) continue;
    reg.histogram("sdx_partition_compile_seconds",
                  "per-partition compile wall time (seconds)", {},
                  {{"participant", participants[slot].name}})
        .observe(result.partitions[slot].seconds);
  }
}

}  // namespace

FecResult SdxCompiler::partition_fecs(
    const std::vector<ClauseReach>& reaches,
    const std::unordered_map<Ipv4Prefix, ParticipantId>& own_best) const {
  // Length-1 default vector: the tag only ever steers the owner's own
  // traffic (per-receiver advertisement), so only the owner's best route
  // can split groups — two prefixes with equal clause membership but
  // different owner defaults must not share a next-hop field.
  return compute_fecs(
      reaches,
      [&own_best](Ipv4Prefix prefix) {
        DefaultVector d(1);
        if (auto it = own_best.find(prefix); it != own_best.end()) {
          d[0] = it->second;
        }
        return d;
      },
      /*pool=*/nullptr);
}

void SdxCompiler::bind_partition(CompiledPartition& part,
                                 VnhAllocator& vnh) const {
  const VmacLayout& layout = vnh.layout();
  part.bindings.reserve(part.fecs.groups.size());
  for (const auto& g : part.fecs.groups) {
    std::uint64_t attrs = 0;
    for (auto cid : g.clauses) {
      // Clauses beyond the attribute budget fall back to exact-VMAC rules
      // in partition_stage1 — their membership is not encoded in the tag.
      if (cid < layout.attr_bits) attrs |= 1ull << cid;
    }
    std::uint64_t nexthop_plus1 = 0;
    if (!g.defaults.empty() && g.defaults[0]) {
      const auto slot = slot_of_.find(*g.defaults[0]);
      if (slot != slot_of_.end() &&
          !participants_[slot->second].is_remote()) {
        nexthop_plus1 = slot->second + 1;
      }
    }
    part.bindings.push_back(vnh.allocate_attributed(nexthop_plus1, attrs));
  }
}

std::vector<Rule> SdxCompiler::partition_stage1(
    const Participant& owner, const CompiledPartition& part,
    const VmacLayout& layout) const {
  std::vector<Rule> out;
  // Local clause index → groups carrying it (and hence: is it used at all).
  std::vector<std::vector<std::uint32_t>> clause_groups(
      owner.outbound.size());
  for (std::uint32_t g = 0; g < part.fecs.groups.size(); ++g) {
    for (auto cid : part.fecs.groups[g].clauses) {
      clause_groups[cid].push_back(g);
    }
  }
  for (std::size_t ci = 0; ci < owner.outbound.size(); ++ci) {
    if (clause_groups[ci].empty()) continue;  // clause reaches nothing
    const OutboundClause& c = owner.outbound[ci];
    const ActionSeq act = ActionSeq::set(Field::kPort, ports_.vport(c.to));
    for (net::PortId port : owner.port_ids()) {
      if (ci < layout.attr_bits) {
        // One masked rule per (clause, inport): matches every group tag of
        // this partition carrying the clause's attribute bit — the
        // group-count factor of the pairwise cross product disappears.
        FlowMatch base = FlowMatch::on(Field::kPort, port);
        base.set(Field::kDstMac,
                 layout.attr_bit_match(static_cast<unsigned>(ci)));
        for (auto& fm :
             clause_matches(c.match, base, /*keep_dst_prefixes=*/false)) {
          out.push_back(Rule{fm, {act}});
        }
      } else {
        // Attribute-bitmap overflow tail: exact-VMAC per group, exactly as
        // the pairwise pipeline would emit.
        for (auto g : clause_groups[ci]) {
          FlowMatch base = FlowMatch::on(Field::kPort, port);
          base.with(Field::kDstMac, part.bindings[g].vmac.bits());
          for (auto& fm :
               clause_matches(c.match, base, /*keep_dst_prefixes=*/false)) {
            out.push_back(Rule{fm, {act}});
          }
        }
      }
    }
  }
  return out;
}

std::vector<Rule> SdxCompiler::shared_stage1(const VmacLayout& layout) const {
  std::vector<Rule> out;
  synthesize_remote_rewrites(out);
  // One masked default rule per physical receiver: forwards every tag whose
  // next-hop field names that receiver's slot, for any sender and group —
  // the per-(group, sender) default rules of the pairwise pipeline collapse
  // into |participants| rules total. Tags with next-hop field 0 (owner's
  // best route absent or remote) match nothing here and fall through to the
  // catch-all drop.
  for (std::size_t slot = 0; slot < participants_.size(); ++slot) {
    const Participant& p = participants_[slot];
    if (p.is_remote()) continue;
    FlowMatch fm;
    fm.set(Field::kDstMac, layout.nexthop_match(slot + 1));
    out.push_back(
        Rule{fm, {ActionSeq::set(Field::kPort, ports_.vport(p.id))}});
  }
  // MAC-learning rules and the catch-all drop, as pairwise.
  for (const auto& p : participants_) {
    for (const auto& port : p.ports) {
      FlowMatch fm = FlowMatch::on(Field::kDstMac, port.router_mac.bits());
      out.push_back(
          Rule{fm, {ActionSeq::set(Field::kPort, ports_.vport(p.id))}});
    }
  }
  out.push_back(Rule{FlowMatch::any(), {}});
  return out;
}

std::vector<Rule> SdxCompiler::compose_serial(
    std::vector<Rule> stage1,
    const std::vector<std::unique_ptr<Classifier>>& stage2_by_slot,
    std::size_t& compositions) const {
  std::vector<Rule> out;
  out.reserve(stage1.size());
  for (Rule& r : stage1) {
    if (r.drops()) {
      out.push_back(std::move(r));
      continue;
    }
    const ActionSeq& act = r.actions.front();
    const auto port_written = act.written(Field::kPort);
    if (!port_written ||
        !PortMap::is_virtual(static_cast<net::PortId>(*port_written))) {
      out.push_back(std::move(r));
      continue;
    }
    const ParticipantId target =
        ports_.vport_owner(static_cast<net::PortId>(*port_written));
    const Classifier* stage2 = stage2_by_slot[slot_of_.at(target)].get();
    compositions += stage2->size();
    auto run = policy::pull_back(r.match, act, *stage2);
    out.insert(out.end(), std::make_move_iterator(run.begin()),
               std::make_move_iterator(run.end()));
  }
  return out;
}

CompiledSdx SdxCompiler::compile_partitioned(VnhAllocator& vnh) const {
  telemetry::SpanTracer* tracer =
      telemetry_ != nullptr ? &telemetry_->tracer : nullptr;
  telemetry::Span compile_span(tracer, "compile");
  const auto t_start = std::chrono::steady_clock::now();
  net::ThreadPool pool(options_.threads);
  CompiledSdx result;
  result.partitioned = true;
  result.layout = vnh.layout();
  CompileStats& stats = result.stats;
  stats.participants = participants_.size();
  stats.prefixes_total = server_.prefix_count();
  stats.threads_used = pool.size();
  if (participants_.size() > result.layout.nexthop_capacity()) {
    throw std::length_error(
        "partitioned compile: " + std::to_string(participants_.size()) +
        " participant slots do not fit the VMAC next-hop field (" +
        result.layout.descriptor() + ")");
  }

  // 0. Per-participant best-route snapshot (same as the pairwise pipeline).
  auto t0 = std::chrono::steady_clock::now();
  telemetry::Span stage_span(tracer, "snapshot");
  BestRouteSnapshot snapshot(participants_.size());
  pool.parallel_for(
      participants_.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          snapshot[i] = server_.best_nexthops(participants_[i].id);
        }
      });
  stats.snapshot_seconds = seconds_since(t0);
  stage_span.finish();

  // 1. Clause reach sets: one global parallel pass, then distributed to
  // partitions. The list is slot-major, so each partition receives its
  // owner's clauses in clause order with clause_index already local. The
  // global reaches/fecs/bindings of the result stay empty — a partitioned
  // artifact has no sender-independent binding map.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "reach");
  result.partitions.resize(participants_.size());
  struct ClauseRef {
    const Participant* owner;
    std::size_t slot;
    std::size_t index;
  };
  std::vector<ClauseRef> clause_list;
  for (std::size_t slot = 0; slot < participants_.size(); ++slot) {
    const Participant& p = participants_[slot];
    result.partitions[slot].owner = p.id;
    if (p.is_remote()) continue;  // no ingress ports: nothing to compile
    for (std::size_t ci = 0; ci < p.outbound.size(); ++ci) {
      clause_list.push_back(ClauseRef{&p, slot, ci});
    }
  }
  std::vector<ClauseReach> reaches(clause_list.size());
  pool.parallel_for(
      clause_list.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto& [owner, slot, ci] = clause_list[i];
          ClauseReach cr;
          cr.owner = owner->id;
          cr.clause_index = ci;
          cr.prefixes = clause_reach(*owner, owner->outbound[ci]);
          reaches[i] = std::move(cr);
        }
      });
  for (std::size_t i = 0; i < clause_list.size(); ++i) {
    result.partitions[clause_list[i].slot].reaches.push_back(
        std::move(reaches[i]));
  }
  stats.clause_count = clause_list.size();
  stats.reach_seconds = seconds_since(t0);
  stage_span.finish();

  // 2+3. Per-partition FECs (parallel — partitions are independent), then
  // one serial binding sweep in slot order: group ids and VNHs come from a
  // single counter, so the assignment is identical at any thread count.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "fec_vnh");
  vnh.reset();
  pool.parallel_for(
      participants_.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t slot = begin; slot < end; ++slot) {
          CompiledPartition& part = result.partitions[slot];
          if (part.reaches.empty()) continue;
          const auto p0 = std::chrono::steady_clock::now();
          part.fecs = partition_fecs(part.reaches, snapshot[slot]);
          part.seconds += seconds_since(p0);
        }
      });
  std::unordered_set<Ipv4Prefix> grouped;
  for (auto& part : result.partitions) {
    bind_partition(part, vnh);
    stats.prefix_groups += part.fecs.groups.size();
    for (const auto& kv : part.fecs.group_of) grouped.insert(kv.first);
  }
  stats.prefixes_grouped = grouped.size();
  stats.vnh_seconds = seconds_since(t0);
  stage_span.finish();

  // 4. Stage-1 synthesis: per partition in parallel, plus the shared band.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "synth");
  std::vector<std::vector<Rule>> stage1_by_slot(participants_.size());
  pool.parallel_for(
      participants_.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t slot = begin; slot < end; ++slot) {
          CompiledPartition& part = result.partitions[slot];
          if (part.fecs.groups.empty()) continue;
          const auto p0 = std::chrono::steady_clock::now();
          stage1_by_slot[slot] =
              partition_stage1(participants_[slot], part, result.layout);
          part.stage1_rules = stage1_by_slot[slot].size();
          part.seconds += seconds_since(p0);
        }
      });
  std::vector<Rule> shared = shared_stage1(result.layout);
  for (const auto& s : stage1_by_slot) stats.stage1_rules += s.size();
  stats.stage1_rules += shared.size();
  stats.synth_seconds = seconds_since(t0);
  stage_span.finish();

  // 5+6. Composition: stage-2 classifiers built once up front (parallel,
  // read-only afterward), each partition and the shared band composed
  // through them. Partition compositions run concurrently; each partition's
  // rule order is internally serial, and the fabric concatenation is fixed
  // by slot order — byte-identical at any width.
  t0 = std::chrono::steady_clock::now();
  stage_span = telemetry::Span(tracer, "compose");
  std::vector<std::unique_ptr<Classifier>> stage2_by_slot(
      participants_.size());
  pool.parallel_for(
      participants_.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (participants_[i].is_remote()) continue;
          stage2_by_slot[i] =
              std::make_unique<Classifier>(stage2_for(participants_[i]));
        }
      });
  pool.parallel_for(
      participants_.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t slot = begin; slot < end; ++slot) {
          CompiledPartition& part = result.partitions[slot];
          if (stage1_by_slot[slot].empty()) continue;
          const auto p0 = std::chrono::steady_clock::now();
          part.rules = Classifier(compose_serial(
              std::move(stage1_by_slot[slot]), stage2_by_slot,
              part.pair_compositions));
          part.rules.optimize(false);
          part.seconds += seconds_since(p0);
        }
      });
  std::size_t shared_compositions = 0;
  result.shared_rules = Classifier(
      compose_serial(std::move(shared), stage2_by_slot, shared_compositions));
  result.shared_rules.optimize(false);
  for (const auto& part : result.partitions) {
    stats.pair_compositions += part.pair_compositions;
  }
  stats.pair_compositions += shared_compositions;
  stats.compose_seconds = seconds_since(t0);
  stage_span.finish();

  result.rebuild_fabric();
  stats.final_rules = result.fabric.size();
  stats.total_seconds = seconds_since(t_start);
  compile_span.finish();
  if (telemetry_ != nullptr) {
    record_compile_metrics(telemetry_->metrics, stats);
    record_partition_metrics(telemetry_->metrics, participants_, result);
  }
  return result;
}

}  // namespace sdx::core
