#include "sdx/incremental.hpp"

#include <algorithm>
#include <chrono>

#include "policy/compile.hpp"

namespace sdx::core {

using policy::ActionSeq;
using policy::Rule;
using net::Field;
using net::FlowMatch;

const CompiledSdx& IncrementalEngine::full_recompile(VnhAllocator& vnh) {
  current_ = compiler_.compile(vnh);
  stage2_cache_.clear();
  return *current_;
}

const policy::Classifier& IncrementalEngine::stage2_cached(ParticipantId id) {
  auto it = stage2_cache_.find(id);
  if (it == stage2_cache_.end()) {
    for (const auto& p : compiler_.participants()) {
      if (p.id == id) {
        it = stage2_cache_.emplace(id, compiler_.stage2_for(p)).first;
        break;
      }
    }
  }
  return it->second;
}

IncrementalEngine::FastPathResult IncrementalEngine::fast_update(
    Ipv4Prefix prefix, VnhAllocator& vnh) {
  const auto t0 = std::chrono::steady_clock::now();
  FastPathResult result;
  result.prefix = prefix;

  const auto& participants = compiler_.participants();
  const PortMap& ports = compiler_.ports_;
  const bgp::RouteServer& server = compiler_.server_;

  // Which clauses does the prefix fall into now? (Restricted compilation:
  // only the parts of the policy related to p.)
  struct Hit {
    const Participant* owner;
    const OutboundClause* clause;
  };
  std::vector<Hit> hits;
  for (const auto& p : participants) {
    for (const auto& c : p.outbound) {
      if (!server.exports_to(c.to, p.id, prefix)) continue;
      if (!c.match.dst_prefixes.empty()) {
        bool contained = false;
        for (auto dp : c.match.dst_prefixes) contained |= dp.contains(prefix);
        if (!contained) continue;
      }
      hits.push_back(Hit{&p, &c});
    }
  }

  const DefaultVector defaults = compiler_.defaults_for(prefix);
  const bool any_default =
      std::any_of(defaults.begin(), defaults.end(),
                  [](const auto& d) { return d.has_value(); });

  if (hits.empty() && !any_default) {
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return result;  // prefix fully withdrawn: nothing to install
  }
  if (hits.empty() && !compiler_.options_.vmac_grouping) {
    // Without VMAC grouping there are no per-prefix default rules either.
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return result;
  }

  // Assume a new VNH is needed — no minimum-disjoint-set computation.
  const VnhBinding binding = vnh.allocate();
  result.binding = binding;

  std::vector<Rule> stage1;
  for (const auto& hit : hits) {
    const ActionSeq act = ActionSeq::set(Field::kPort,
                                         ports.vport(hit.clause->to));
    for (net::PortId port : hit.owner->port_ids()) {
      FlowMatch base = FlowMatch::on(Field::kPort, port);
      base.with(Field::kDstMac, binding.vmac.bits());
      for (auto& fm : compiler_.clause_matches(hit.clause->match, base,
                                               /*keep_dst_prefixes=*/false)) {
        stage1.push_back(Rule{fm, {act}});
      }
    }
  }
  compiler_.synthesize_group_defaults(defaults, binding.vmac, stage1);

  // Targeted composition through the memoized stage-2 classifiers.
  for (auto& r : stage1) {
    const ActionSeq& act = r.actions.front();
    const auto port_written = act.written(Field::kPort);
    if (!port_written ||
        !PortMap::is_virtual(static_cast<net::PortId>(*port_written))) {
      result.rules.push_back(std::move(r));
      continue;
    }
    const ParticipantId target =
        ports.vport_owner(static_cast<net::PortId>(*port_written));
    auto composed = policy::pull_back(r.match, act, stage2_cached(target));
    result.rules.insert(result.rules.end(),
                        std::make_move_iterator(composed.begin()),
                        std::make_move_iterator(composed.end()));
  }

  result.additional_rules = result.rules.size();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace sdx::core
