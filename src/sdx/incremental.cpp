#include "sdx/incremental.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_set>
#include <utility>

#include "policy/compile.hpp"

namespace sdx::core {

using policy::ActionSeq;
using policy::Classifier;
using policy::Rule;
using net::Field;
using net::FlowMatch;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const CompiledSdx& IncrementalEngine::full_recompile(VnhAllocator& vnh) {
  current_ = compiler_.compile(vnh);
  stage2_cache_.clear();
  return *current_;
}

const CompiledSdx& IncrementalEngine::adopt(CompiledSdx compiled) {
  current_ = std::move(compiled);
  stage2_cache_.clear();
  return *current_;
}

const policy::Classifier& IncrementalEngine::stage2_cached(ParticipantId id) {
  auto it = stage2_cache_.find(id);
  if (it == stage2_cache_.end()) {
    for (const auto& p : compiler_.participants()) {
      if (p.id == id) {
        it = stage2_cache_.emplace(id, compiler_.stage2_for(p)).first;
        break;
      }
    }
  }
  return it->second;
}

std::vector<IncrementalEngine::Hit> IncrementalEngine::hits_for(
    Ipv4Prefix prefix) const {
  // Which clauses does the prefix fall into now? (Restricted compilation:
  // only the parts of the policy related to p.)
  const bgp::RouteServer& server = compiler_.server_;
  std::vector<Hit> hits;
  std::uint32_t id = 0;
  for (const auto& p : compiler_.participants()) {
    for (const auto& c : p.outbound) {
      const std::uint32_t clause_id = id++;
      if (!server.exports_to(c.to, p.id, prefix)) continue;
      if (!c.match.dst_prefixes.empty()) {
        bool contained = false;
        for (auto dp : c.match.dst_prefixes) contained |= dp.contains(prefix);
        if (!contained) continue;
      }
      hits.push_back(Hit{&p, &c, clause_id});
    }
  }
  return hits;
}

std::size_t IncrementalEngine::synth_and_compose(
    const std::vector<Hit>& hits, const DefaultVector& defaults,
    const VnhBinding& binding, std::vector<Rule>& out,
    std::size_t& compositions) {
  const PortMap& ports = compiler_.ports_;
  std::vector<Rule> stage1;
  for (const auto& hit : hits) {
    const ActionSeq act = ActionSeq::set(Field::kPort,
                                         ports.vport(hit.clause->to));
    for (net::PortId port : hit.owner->port_ids()) {
      FlowMatch base = FlowMatch::on(Field::kPort, port);
      base.with(Field::kDstMac, binding.vmac.bits());
      for (auto& fm : compiler_.clause_matches(hit.clause->match, base,
                                               /*keep_dst_prefixes=*/false)) {
        stage1.push_back(Rule{fm, {act}});
      }
    }
  }
  compiler_.synthesize_group_defaults(defaults, binding.vmac, stage1);

  // Targeted composition through the memoized stage-2 classifiers.
  std::vector<Rule> composed;
  for (auto& r : stage1) {
    const ActionSeq& act = r.actions.front();
    const auto port_written = act.written(Field::kPort);
    if (!port_written ||
        !PortMap::is_virtual(static_cast<net::PortId>(*port_written))) {
      composed.push_back(std::move(r));
      continue;
    }
    const ParticipantId target =
        ports.vport_owner(static_cast<net::PortId>(*port_written));
    auto run = policy::pull_back(r.match, act, stage2_cached(target));
    ++compositions;
    composed.insert(composed.end(), std::make_move_iterator(run.begin()),
                    std::make_move_iterator(run.end()));
  }

  // De-duplicated installation: drop exact-duplicate matches (first wins —
  // priority-correct) so a burst never installs the same rule twice.
  Classifier dedup(std::move(composed));
  dedup.optimize(false);
  std::vector<Rule> rules = std::move(dedup.rules());
  const std::size_t appended = rules.size();
  out.insert(out.end(), std::make_move_iterator(rules.begin()),
             std::make_move_iterator(rules.end()));
  return appended;
}

IncrementalEngine::FastPathResult IncrementalEngine::fast_update(
    Ipv4Prefix prefix, VnhAllocator& vnh) {
  const auto t0 = std::chrono::steady_clock::now();
  FastPathResult result;
  result.prefix = prefix;

  const std::vector<Hit> hits = hits_for(prefix);
  const DefaultVector defaults = compiler_.defaults_for(prefix);
  const bool any_default =
      std::any_of(defaults.begin(), defaults.end(),
                  [](const auto& d) { return d.has_value(); });

  if (hits.empty() &&
      (!any_default || !compiler_.options_.vmac_grouping)) {
    // Fully withdrawn (nothing to install), or no per-prefix default rules
    // without VMAC grouping: a plain re-advertisement suffices.
    result.seconds = seconds_since(t0);
    return result;
  }

  // Assume a new VNH is needed — no minimum-disjoint-set computation.
  const VnhBinding binding = vnh.allocate();
  result.binding = binding;
  result.additional_rules = synth_and_compose(hits, defaults, binding,
                                              result.rules,
                                              result.compositions);
  result.seconds = seconds_since(t0);
  return result;
}

IncrementalEngine::PartitionUpdate IncrementalEngine::recompile_partition(
    ParticipantId owner, VnhAllocator& vnh) {
  const auto t0 = std::chrono::steady_clock::now();
  if (!current_ || !current_->partitioned) {
    throw std::logic_error(
        "recompile_partition requires a partitioned compiled state");
  }
  const std::size_t slot = compiler_.slot_of_.at(owner);
  const Participant& p = compiler_.participants()[slot];

  CompiledPartition part;
  part.owner = owner;
  for (std::size_t ci = 0; ci < p.outbound.size(); ++ci) {
    ClauseReach cr;
    cr.owner = owner;
    cr.clause_index = ci;
    cr.prefixes = compiler_.clause_reach(p, p.outbound[ci]);
    part.reaches.push_back(std::move(cr));
  }
  const auto own_best = compiler_.server_.best_nexthops(owner);
  part.fecs = compiler_.partition_fecs(part.reaches, own_best);
  // Fresh bindings continue from the allocator's watermark — the replaced
  // partition's VNHs leak until the next full recompile resets the counter,
  // exactly like fast-path bindings (§4.3.2 applied to policy changes).
  compiler_.bind_partition(part, vnh);
  auto stage1 = compiler_.partition_stage1(p, part, current_->layout);
  part.stage1_rules = stage1.size();

  // Targeted composition through the engine's stage-2 memo.
  std::vector<Rule> composed;
  composed.reserve(stage1.size());
  for (auto& r : stage1) {
    const ActionSeq& act = r.actions.front();
    const auto port_written = act.written(Field::kPort);
    if (!port_written ||
        !PortMap::is_virtual(static_cast<net::PortId>(*port_written))) {
      composed.push_back(std::move(r));
      continue;
    }
    const ParticipantId target = compiler_.ports_.vport_owner(
        static_cast<net::PortId>(*port_written));
    const Classifier& stage2 = stage2_cached(target);
    part.pair_compositions += stage2.size();
    auto run = policy::pull_back(r.match, act, stage2);
    composed.insert(composed.end(), std::make_move_iterator(run.begin()),
                    std::make_move_iterator(run.end()));
  }
  part.rules = Classifier(std::move(composed));
  part.rules.optimize(false);

  PartitionUpdate update;
  update.slot = slot;
  std::unordered_set<Ipv4Prefix> affected;
  for (const auto& kv : current_->partitions[slot].fecs.group_of) {
    affected.insert(kv.first);
  }
  for (const auto& kv : part.fecs.group_of) affected.insert(kv.first);
  update.affected.assign(affected.begin(), affected.end());
  std::sort(update.affected.begin(), update.affected.end(),
            [](Ipv4Prefix a, Ipv4Prefix b) {
              if (a.network().value() != b.network().value()) {
                return a.network().value() < b.network().value();
              }
              return a.length() < b.length();
            });
  update.rules = part.rules.size();
  update.compositions = part.pair_compositions;
  update.bindings = part.bindings;
  part.seconds = seconds_since(t0);
  update.seconds = part.seconds;

  current_->partitions[slot] = std::move(part);
  current_->rebuild_fabric();
  current_->stats.final_rules = current_->fabric.size();
  return update;
}

IncrementalEngine::BatchResult IncrementalEngine::fast_update_batch(
    const std::vector<Ipv4Prefix>& prefixes, VnhAllocator& vnh) {
  const auto t0 = std::chrono::steady_clock::now();
  BatchResult result;

  // Deduplicate, keeping first-occurrence order (the burst's arrival order
  // fixes group ids and hence the combined rule order deterministically).
  std::unordered_set<Ipv4Prefix> seen;
  seen.reserve(prefixes.size());
  for (auto prefix : prefixes) {
    if (seen.insert(prefix).second) {
      result.items.push_back(BatchItem{prefix, std::nullopt, 0});
    }
  }

  // Restricted signature per dirty prefix: (clause hit set, default
  // vector). Prefixes with equal signatures behave identically through the
  // fabric — the §4.2 argument, applied to the dirty set only — so they
  // share one fresh binding and one synthesized rule group.
  struct Group {
    std::vector<Hit> hits;
    DefaultVector defaults;
    std::vector<std::size_t> members;  ///< item indices
  };
  std::vector<Group> groups;
  using SignatureKey = std::pair<std::vector<std::uint32_t>, DefaultVector>;
  std::map<SignatureKey, std::size_t> group_of;
  for (std::size_t i = 0; i < result.items.size(); ++i) {
    const Ipv4Prefix prefix = result.items[i].prefix;
    std::vector<Hit> hits = hits_for(prefix);
    DefaultVector defaults = compiler_.defaults_for(prefix);
    const bool any_default =
        std::any_of(defaults.begin(), defaults.end(),
                    [](const auto& d) { return d.has_value(); });
    if (hits.empty() &&
        (!any_default || !compiler_.options_.vmac_grouping)) {
      continue;  // re-advertisement only, no binding, no rules
    }
    SignatureKey key;
    key.first.reserve(hits.size());
    for (const auto& h : hits) key.first.push_back(h.id);
    key.second = defaults;
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{std::move(hits), std::move(defaults), {}});
    }
    groups[it->second].members.push_back(i);
  }

  // Single VNH-allocation sweep, then one synthesis + composition walk per
  // group (not per update) through the shared stage-2 memo.
  result.groups = groups.size();
  for (const auto& g : groups) {
    const VnhBinding binding = vnh.allocate();
    const std::size_t appended = synth_and_compose(
        g.hits, g.defaults, binding, result.rules, result.compositions);
    for (std::size_t k = 0; k < g.members.size(); ++k) {
      result.items[g.members[k]].binding = binding;
      if (k == 0) result.items[g.members[k]].additional_rules = appended;
    }
    result.additional_rules += appended;
  }

  result.seconds = seconds_since(t0);
  return result;
}

}  // namespace sdx::core
