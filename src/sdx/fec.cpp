#include "sdx/fec.hpp"

#include <algorithm>
#include <utility>

#include "netbase/parallel.hpp"

namespace sdx::core {

namespace {

std::uint64_t hash_signature(const std::vector<std::uint32_t>& clauses,
                             const DefaultVector& defaults) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (auto c : clauses) mix(c + 1);
  mix(0xFEC5EB);  // separator between the two signature halves
  for (const auto& d : defaults) {
    mix(d.has_value() ? std::uint64_t{*d} + 2 : 1);
  }
  return h;
}

/// One shard-local group: prefixes of one signature that hashed into this
/// shard. `first` is the global canonical (sorted-prefix) index of the
/// group's first prefix — the merge key that makes shard merging
/// order-independent.
struct ShardGroup {
  std::vector<std::uint32_t> clauses;
  DefaultVector defaults;
  std::vector<Ipv4Prefix> prefixes;  ///< ascending (inserted in sorted order)
  std::uint64_t sig = 0;
  std::size_t first = 0;
};

struct Shard {
  std::vector<std::size_t> indices;  ///< canonical indices, ascending
  std::vector<ShardGroup> groups;
  /// signature hash → candidate group offsets (exact compare disambiguates
  /// hash collisions).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
};

}  // namespace

FecResult compute_fecs(
    const std::vector<ClauseReach>& clauses,
    const std::function<DefaultVector(Ipv4Prefix)>& defaults_of,
    net::ThreadPool* pool) {
  // Pass 1: per-prefix clause membership. Sized for the no-overlap worst
  // case (every reach entry a distinct prefix) so the hot insert loop never
  // rehashes.
  std::unordered_map<Ipv4Prefix, std::vector<std::uint32_t>> membership;
  std::size_t reach_total = 0;
  for (const auto& c : clauses) reach_total += c.prefixes.size();
  membership.reserve(reach_total);
  for (std::uint32_t cid = 0; cid < clauses.size(); ++cid) {
    for (auto prefix : clauses[cid].prefixes) {
      membership[prefix].push_back(cid);
    }
  }

  // Canonical processing order: sorted prefixes, each carrying its clause
  // set out of the membership map — built once here so the sharded pass
  // below never re-probes the map. Group ids are assigned by first
  // appearance in this order, which fixes them independently of hash
  // iteration order and of the sharding below.
  std::vector<std::pair<Ipv4Prefix, std::vector<std::uint32_t>>> order;
  order.reserve(membership.size());
  for (auto& [prefix, cids] : membership) {
    order.emplace_back(prefix, std::move(cids));
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Passes 2+3, sharded: each shard groups its own prefixes by (clause
  // set, default vector); shards are independent so they run in parallel.
  // The expensive part is defaults_of — one call per distinct prefix.
  const std::size_t width = pool != nullptr ? pool->size() : 1;
  const std::size_t n_shards =
      std::clamp<std::size_t>(width * 2, 1, std::max<std::size_t>(
                                                order.size() / 64, 1));
  std::vector<Shard> shards(n_shards);
  for (auto& shard : shards) {
    shard.indices.reserve(order.size() / n_shards + 1);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    shards[std::hash<Ipv4Prefix>{}(order[i].first) % n_shards]
        .indices.push_back(i);
  }

  auto run_shard = [&](Shard& shard) {
    for (std::size_t i : shard.indices) {
      const Ipv4Prefix prefix = order[i].first;
      auto& cids = order[i].second;
      std::sort(cids.begin(), cids.end());
      cids.erase(std::unique(cids.begin(), cids.end()), cids.end());
      DefaultVector defaults = defaults_of(prefix);
      const std::uint64_t sig = hash_signature(cids, defaults);

      // One bucket probe serves both the candidate scan and a miss insert.
      auto& bucket = shard.buckets[sig];
      ShardGroup* group = nullptr;
      for (std::uint32_t candidate : bucket) {
        ShardGroup& g = shard.groups[candidate];
        if (g.clauses == cids && g.defaults == defaults) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        bucket.push_back(static_cast<std::uint32_t>(shard.groups.size()));
        ShardGroup g;
        g.clauses = cids;
        g.defaults = std::move(defaults);
        g.sig = sig;
        g.first = i;
        shard.groups.push_back(std::move(g));
        group = &shard.groups.back();
      }
      group->prefixes.push_back(prefix);
    }
  };

  if (pool != nullptr && n_shards > 1) {
    pool->parallel_for(n_shards, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) run_shard(shards[s]);
    });
  } else {
    for (auto& shard : shards) run_shard(shard);
  }

  // Merge: shard groups ordered by their first canonical index reproduce
  // exactly the serial first-appearance order; groups with equal signatures
  // that landed in different shards concatenate.
  std::vector<ShardGroup*> merged_order;
  for (auto& shard : shards) {
    for (auto& g : shard.groups) merged_order.push_back(&g);
  }
  std::sort(merged_order.begin(), merged_order.end(),
            [](const ShardGroup* a, const ShardGroup* b) {
              return a->first < b->first;
            });

  FecResult result;
  result.group_of.reserve(membership.size());
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  for (ShardGroup* sg : merged_order) {
    std::uint32_t group_id = 0;
    bool found = false;
    for (std::uint32_t candidate : buckets[sg->sig]) {
      const PrefixGroup& g = result.groups[candidate];
      if (g.clauses == sg->clauses && g.defaults == sg->defaults) {
        group_id = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      group_id = static_cast<std::uint32_t>(result.groups.size());
      PrefixGroup g;
      g.clauses = std::move(sg->clauses);
      g.defaults = std::move(sg->defaults);
      result.groups.push_back(std::move(g));
      buckets[sg->sig].push_back(group_id);
    }
    auto& prefixes = result.groups[group_id].prefixes;
    prefixes.insert(prefixes.end(), sg->prefixes.begin(), sg->prefixes.end());
    for (auto prefix : sg->prefixes) {
      result.group_of.emplace(prefix, group_id);
    }
  }

  for (auto& g : result.groups) {
    std::sort(g.prefixes.begin(), g.prefixes.end());
  }
  return result;
}

}  // namespace sdx::core
