#include "sdx/fec.hpp"

#include <algorithm>

namespace sdx::core {

namespace {

std::uint64_t hash_signature(const std::vector<std::uint32_t>& clauses,
                             const DefaultVector& defaults) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (auto c : clauses) mix(c + 1);
  mix(0xFEC5EB);  // separator between the two signature halves
  for (const auto& d : defaults) {
    mix(d.has_value() ? std::uint64_t{*d} + 2 : 1);
  }
  return h;
}

}  // namespace

FecResult compute_fecs(
    const std::vector<ClauseReach>& clauses,
    const std::function<DefaultVector(Ipv4Prefix)>& defaults_of) {
  // Pass 1: per-prefix clause membership.
  std::unordered_map<Ipv4Prefix, std::vector<std::uint32_t>> membership;
  for (std::uint32_t cid = 0; cid < clauses.size(); ++cid) {
    for (auto prefix : clauses[cid].prefixes) {
      membership[prefix].push_back(cid);
    }
  }

  FecResult result;
  result.group_of.reserve(membership.size());

  // Passes 2+3 fused: group prefixes by (clause set, default vector).
  // Hash buckets hold candidate group indices; exact comparison guards
  // against hash collisions.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  for (auto& [prefix, cids] : membership) {
    std::sort(cids.begin(), cids.end());
    cids.erase(std::unique(cids.begin(), cids.end()), cids.end());
    DefaultVector defaults = defaults_of(prefix);
    const std::uint64_t sig = hash_signature(cids, defaults);

    std::uint32_t group_id = 0;
    bool found = false;
    for (std::uint32_t candidate : buckets[sig]) {
      const PrefixGroup& g = result.groups[candidate];
      if (g.clauses == cids && g.defaults == defaults) {
        group_id = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      group_id = static_cast<std::uint32_t>(result.groups.size());
      PrefixGroup g;
      g.clauses = cids;
      g.defaults = std::move(defaults);
      result.groups.push_back(std::move(g));
      buckets[sig].push_back(group_id);
    }
    result.groups[group_id].prefixes.push_back(prefix);
    result.group_of.emplace(prefix, group_id);
  }

  for (auto& g : result.groups) {
    std::sort(g.prefixes.begin(), g.prefixes.end());
  }
  return result;
}

}  // namespace sdx::core
