#pragma once

/// \file default_forwarding.hpp
/// Third and fourth transformations of paper §4.1 ("enforcing default
/// forwarding using the best BGP route" and "moving packets through the
/// virtual topology"), at the AST level, plus the *reference SDX compiler*
/// they add up to:
///
///     SDX = (Σ_X PX'') >> (Σ_X PX'')
///
/// compiled by the generic classifier compiler. This path takes none of the
/// §4.2/§4.3 shortcuts — no VMAC grouping (the route server leaves next
/// hops untouched, so packets carry real next-hop router MACs), no pair
/// pruning, no memoization — and is therefore only usable at small scale.
/// It exists as (a) the executable form of the paper's formulas, tested
/// against the worked Figure-1 example, and (b) the semantic baseline the
/// optimized compiler is property-tested against. Remote (port-less)
/// participants are outside its scope.

#include <vector>

#include "bgp/route_server.hpp"
#include "policy/policy.hpp"
#include "sdx/participant.hpp"
#include "sdx/port_map.hpp"

namespace sdx::core {

/// defX, outbound half: MAC-learning — traffic at X's physical ports whose
/// destination MAC is some participant port's real MAC goes to that
/// participant's virtual switch.
policy::Policy default_outbound(const Participant& x,
                                const std::vector<Participant>& all,
                                const PortMap& ports);

/// defX, inbound half: traffic at X's virtual port addressed to one of its
/// router MACs exits that port; anything else exits the primary port with
/// the destination MAC rewritten to the primary router's address.
policy::Policy default_inbound(const Participant& x, const PortMap& ports);

/// PX'': X's isolated, BGP-augmented clause policies combined with its
/// defaults via if_ (policy traffic follows the policy, everything else the
/// BGP default).
policy::Policy participant_policy(const Participant& x,
                                  const std::vector<Participant>& all,
                                  const PortMap& ports,
                                  const bgp::RouteServer& server);

/// The full reference policy (Σ PX'') >> (Σ PX'').
policy::Policy reference_sdx_policy(const std::vector<Participant>& all,
                                    const PortMap& ports,
                                    const bgp::RouteServer& server);

}  // namespace sdx::core
