#include "sdx/chaining.hpp"

#include <stdexcept>
#include <unordered_set>

namespace sdx::core {

void install_chain(SdxRuntime& runtime, const ServiceChain& chain,
                   bool announce_routes) {
  if (chain.middleboxes.empty()) {
    throw std::invalid_argument("service chain needs at least one middlebox");
  }
  if (chain.match.dst_prefixes.empty()) {
    throw std::invalid_argument(
        "service chain match must name destination prefixes");
  }
  std::unordered_set<ParticipantId> seen{chain.owner};
  for (ParticipantId mb : chain.middleboxes) {
    if (!seen.insert(mb).second) {
      throw std::invalid_argument("service chain repeats participant " +
                                  std::to_string(mb));
    }
    if (runtime.participant(mb).is_remote()) {
      throw std::invalid_argument("middlebox " + runtime.participant(mb).name +
                                  " has no physical port");
    }
  }

  // Re-announce destination routes along the chain so each steering hop is
  // BGP-consistent ("forwarding only along BGP-advertised paths", §3.2).
  if (announce_routes) {
    for (ParticipantId mb : chain.middleboxes) {
      const Participant& m = runtime.participant(mb);
      for (auto dst : chain.match.dst_prefixes) {
        for (auto prefix : runtime.route_server().all_prefixes()) {
          if (!dst.contains(prefix)) continue;
          auto best = runtime.route_server().best_route(mb, prefix);
          if (!best) continue;
          if (best->attrs.as_path.contains(m.asn)) continue;
          runtime.announce(mb, prefix,
                           best->attrs.as_path.prepended(m.asn));
        }
      }
    }
  }

  // Owner → M1, Mi → Mi+1. The final middlebox's processed traffic follows
  // its BGP default to the real destination.
  auto add_clause = [&runtime, &chain](ParticipantId from, ParticipantId to) {
    Participant& p = runtime.participant(from);
    std::vector<OutboundClause> clauses = p.outbound;
    clauses.push_back(OutboundClause{chain.match, to});
    runtime.set_outbound(from, std::move(clauses));
  };
  add_clause(chain.owner, chain.middleboxes.front());
  for (std::size_t i = 0; i + 1 < chain.middleboxes.size(); ++i) {
    add_clause(chain.middleboxes[i], chain.middleboxes[i + 1]);
  }
}

}  // namespace sdx::core
