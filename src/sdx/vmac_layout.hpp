#pragma once

/// \file vmac_layout.hpp
/// The attribute-encoded VMAC bit layout (iSDX, Gupta et al. NSDI'16).
///
/// A VMAC is a 48-bit locally-administered MAC. The top octet is fixed at
/// 0x02 (locally administered, unicast) so tags can never collide with the
/// routers' universally-administered 00:16:3e MACs; the remaining 40 bits
/// are split into three configurable fields:
///
///   47      40 39              ...               0
///   +--------+----------+-------------+-----------+
///   |  0x02  | attr     | nexthop     | group id  |
///   +--------+----------+-------------+-----------+
///              attr_bits  nexthop_bits  group_bits
///
///   group id  — the allocation counter (pairwise mode: the whole tag;
///               partitioned mode: a globally unique group ordinal).
///   nexthop   — the sender's default next-hop participant *slot + 1*
///               (0 = no default); one masked rule per receiver replaces
///               one exact rule per (group, receiver).
///   attr      — the sender's clause-membership bitmap: bit j is set iff
///               the sender's j-th outbound clause reaches the group, so
///               one masked rule per clause replaces one exact rule per
///               (clause, group).
///
/// Every masked helper below includes the full top octet in its mask:
/// without that guard a rule matching a single attribute bit would also
/// spuriously match untagged router MACs (00:16:3e:… has bits set in the
/// attribute positions).
///
/// The layout is part of the compiled artifact's fingerprint and of the
/// checkpoint encoding: changing any width changes every fingerprint, so a
/// warm restart across a layout change automatically falls back to a cold
/// install.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "dataplane/packet_classifier.hpp"
#include "netbase/field_match.hpp"
#include "netbase/mac.hpp"

namespace sdx::core {

struct VmacLayout {
  /// Widths sum to at most 40 (the bits under the fixed top octet). The
  /// defaults keep the legacy encoding intact: with zero attributes,
  /// encode(gid, 0, 0) == 0x02:00:… | gid, bit for bit.
  std::uint8_t group_bits = 20;
  std::uint8_t nexthop_bits = 12;
  std::uint8_t attr_bits = 8;

  static constexpr unsigned kUsableBits = 40;
  static constexpr std::uint64_t kTopOctetMask = 0xFFull << kUsableBits;
  static constexpr std::uint64_t kTopOctetValue = 0x02ull << kUsableBits;

  friend bool operator==(const VmacLayout&, const VmacLayout&) = default;

  /// Throws std::invalid_argument when the widths don't fit the 40 usable
  /// bits or a field is degenerate.
  void validate() const {
    const unsigned total = static_cast<unsigned>(group_bits) + nexthop_bits +
                           static_cast<unsigned>(attr_bits);
    if (group_bits == 0) {
      throw std::invalid_argument("VMAC layout: group_bits must be >= 1");
    }
    if (total > kUsableBits) {
      throw std::invalid_argument(
          "VMAC layout: " + std::to_string(total) +
          " bits requested but only 40 fit under the 0x02 octet (" +
          descriptor() + ")");
    }
  }

  std::uint64_t group_capacity() const { return 1ull << group_bits; }
  std::uint64_t group_mask() const { return group_capacity() - 1; }
  /// Highest representable slot+1 value (0 is reserved for "no default").
  std::uint64_t nexthop_capacity() const {
    return (1ull << nexthop_bits) - 1;
  }
  unsigned nexthop_shift() const { return group_bits; }
  unsigned attr_shift() const {
    return static_cast<unsigned>(group_bits) + nexthop_bits;
  }

  net::MacAddress encode(std::uint64_t group, std::uint64_t nexthop_plus1,
                         std::uint64_t attrs) const {
    return net::MacAddress(kTopOctetValue | (attrs << attr_shift()) |
                           (nexthop_plus1 << nexthop_shift()) |
                           (group & group_mask()));
  }

  std::uint64_t group_of(net::MacAddress vmac) const {
    return vmac.bits() & group_mask();
  }
  std::uint64_t nexthop_of(net::MacAddress vmac) const {
    return (vmac.bits() >> nexthop_shift()) &
           ((1ull << nexthop_bits) - 1);
  }
  std::uint64_t attrs_of(net::MacAddress vmac) const {
    return (vmac.bits() >> attr_shift()) &
           (attr_bits >= 64 ? ~0ull : (1ull << attr_bits) - 1);
  }

  /// Masked dst-MAC constraint on the next-hop field (plus the top-octet
  /// guard): matches every tag whose default next-hop slot+1 equals
  /// \p nexthop_plus1, regardless of group id or attribute bits.
  net::FieldMatch nexthop_match(std::uint64_t nexthop_plus1) const {
    const std::uint64_t field_mask = ((1ull << nexthop_bits) - 1)
                                     << nexthop_shift();
    return net::FieldMatch::masked(
        kTopOctetValue | (nexthop_plus1 << nexthop_shift()),
        kTopOctetMask | field_mask);
  }

  /// Masked dst-MAC constraint on one attribute bit (plus the top-octet
  /// guard): matches every tag carrying clause bit \p bit.
  net::FieldMatch attr_bit_match(unsigned bit) const {
    const std::uint64_t b = 1ull << (attr_shift() + bit);
    return net::FieldMatch::masked(kTopOctetValue | b, kTopOctetMask | b);
  }

  /// The data-plane view of this layout: hands the flow table's classifier
  /// enough of the bit geometry to decode masked VMAC rules into exact-match
  /// lanes, without the data plane depending on sdx::core.
  dp::VmacLaneSpec lane_spec() const {
    dp::VmacLaneSpec s;
    s.enabled = true;
    s.top_value = kTopOctetValue;
    s.top_mask = kTopOctetMask;
    s.group_bits = group_bits;
    s.nexthop_bits = nexthop_bits;
    s.attr_bits = attr_bits;
    return s;
  }

  /// Canonical one-line description — folded into CompiledSdx::fingerprint()
  /// and persisted with checkpoints, so artifacts compiled under different
  /// layouts can never compare equal.
  std::string descriptor() const {
    return "vmac-layout/v1 group=" + std::to_string(group_bits) +
           " nexthop=" + std::to_string(nexthop_bits) +
           " attr=" + std::to_string(attr_bits);
  }
};

}  // namespace sdx::core
