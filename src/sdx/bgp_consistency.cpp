#include "sdx/bgp_consistency.hpp"

namespace sdx::core {

policy::Predicate bgp_filter(ParticipantId owner, ParticipantId via,
                             const bgp::RouteServer& server) {
  return policy::Predicate::any_of(Field::kDstIp,
                                   server.reachable_via(owner, via));
}

policy::Policy augment_with_bgp(const policy::Policy& pol,
                                ParticipantId owner,
                                const bgp::RouteServer& server,
                                const PortMap& ports) {
  using policy::Policy;
  switch (pol.kind()) {
    case Policy::Kind::kMod: {
      if (pol.mod_field() == Field::kPort &&
          PortMap::is_virtual(static_cast<net::PortId>(pol.mod_value()))) {
        const ParticipantId via = ports.vport_owner(
            static_cast<net::PortId>(pol.mod_value()));
        return policy::match(bgp_filter(owner, via, server)) >>
               policy::fwd(static_cast<net::PortId>(pol.mod_value()));
      }
      return pol;
    }
    case Policy::Kind::kParallel:
    case Policy::Kind::kSequential: {
      std::vector<Policy> rewritten;
      rewritten.reserve(pol.children().size());
      for (const auto& c : pol.children()) {
        rewritten.push_back(augment_with_bgp(c, owner, server, ports));
      }
      return pol.kind() == Policy::Kind::kParallel
                 ? Policy::parallel(std::move(rewritten))
                 : Policy::sequential(std::move(rewritten));
    }
    default:
      return pol;
  }
}

}  // namespace sdx::core
