#pragma once

/// \file vnh_allocator.hpp
/// Virtual next-hop (VNH) IP and virtual MAC (VMAC) allocation (paper §4.2).
///
/// Each forwarding equivalence class gets a (VNH, VMAC) pair: the route
/// server advertises the VNH as the BGP next-hop, the ARP responder answers
/// VNH queries with the VMAC, and border routers consequently tag packets
/// with the VMAC — turning 500k prefix matches into one 48-bit tag match.
///
/// VNHs are drawn from a dedicated pool (default 172.16.0.0/12, never
/// announced); VMACs carry the locally-administered bit.

#include <cstdint>
#include <stdexcept>

#include "netbase/ip.hpp"
#include "netbase/mac.hpp"

namespace sdx::core {

struct VnhBinding {
  net::Ipv4Address vnh;
  net::MacAddress vmac;

  friend bool operator==(const VnhBinding&, const VnhBinding&) = default;
};

class VnhAllocator {
 public:
  explicit VnhAllocator(
      net::Ipv4Prefix pool = net::Ipv4Prefix::parse("172.16.0.0/12"))
      : pool_(pool) {}

  /// Allocates the next (VNH, VMAC) pair. Throws std::length_error when the
  /// pool is exhausted.
  VnhBinding allocate() {
    if (next_ >= pool_.size()) {
      throw std::length_error("VNH pool exhausted");
    }
    VnhBinding b;
    b.vnh = net::Ipv4Address(pool_.network().value() +
                             static_cast<std::uint32_t>(next_));
    // 0x02 prefix: locally administered, unicast.
    b.vmac = net::MacAddress(0x02'00'00'00'00'00ull | next_);
    ++next_;
    return b;
  }

  /// Releases everything (used before a full recompilation; the background
  /// pass re-derives a minimal set of bindings, §4.3.2).
  void reset() { next_ = 0; }

  /// Restores the high-water mark from a checkpoint, so warm restart hands
  /// out VNHs from where the crashed process left off (existing bindings —
  /// and the border-router ARP caches built on them — stay valid). Throws
  /// std::length_error when \p allocated exceeds the pool.
  void restore(std::uint64_t allocated) {
    if (allocated > pool_.size()) {
      throw std::length_error("VNH watermark exceeds pool");
    }
    next_ = allocated;
  }

  std::uint64_t allocated() const { return next_; }
  net::Ipv4Prefix pool() const { return pool_; }

 private:
  net::Ipv4Prefix pool_;
  std::uint64_t next_ = 0;
};

}  // namespace sdx::core
