#pragma once

/// \file vnh_allocator.hpp
/// Virtual next-hop (VNH) IP and virtual MAC (VMAC) allocation (paper §4.2).
///
/// Each forwarding equivalence class gets a (VNH, VMAC) pair: the route
/// server advertises the VNH as the BGP next-hop, the ARP responder answers
/// VNH queries with the VMAC, and border routers consequently tag packets
/// with the VMAC — turning 500k prefix matches into one 48-bit tag match.
///
/// VNHs are drawn from a dedicated pool (default 172.16.0.0/12, never
/// announced). VMACs follow the allocator's VmacLayout (vmac_layout.hpp):
/// the allocation counter fills the group-id field, and the partitioned
/// compiler adds default-next-hop and clause-membership attribute bits via
/// allocate_attributed(). allocate() validates the counter against the
/// layout's group-bit budget — spilling into the attribute fields would
/// silently corrupt every masked rule built on them.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "netbase/ip.hpp"
#include "netbase/mac.hpp"
#include "sdx/vmac_layout.hpp"

namespace sdx::core {

struct VnhBinding {
  net::Ipv4Address vnh;
  net::MacAddress vmac;

  friend bool operator==(const VnhBinding&, const VnhBinding&) = default;
};

class VnhAllocator {
 public:
  explicit VnhAllocator(
      net::Ipv4Prefix pool = net::Ipv4Prefix::parse("172.16.0.0/12"),
      VmacLayout layout = {})
      : pool_(pool), layout_(layout) {
    layout_.validate();
  }

  /// Allocates the next (VNH, VMAC) pair with zero attribute bits — the
  /// pairwise encoding, unchanged from before the layout existed. Throws
  /// std::length_error when the pool or the layout's group-id field is
  /// exhausted.
  VnhBinding allocate() { return allocate_attributed(0, 0); }

  /// Allocates the next (VNH, VMAC) pair carrying the given default
  /// next-hop slot+1 and clause-membership bitmap in the attribute fields
  /// (partitioned compilation). Throws std::length_error on pool/group
  /// exhaustion and std::invalid_argument when an attribute overflows its
  /// field.
  VnhBinding allocate_attributed(std::uint64_t nexthop_plus1,
                                 std::uint64_t attrs) {
    if (next_ >= pool_.size()) {
      throw std::length_error("VNH pool exhausted");
    }
    if (next_ >= layout_.group_capacity()) {
      // Without this check the counter would spill into the next-hop and
      // attribute bit positions and the masked rules matching them would
      // silently misclassify the overflowing groups.
      throw std::length_error(
          "VMAC group-id field exhausted: allocation #" +
          std::to_string(next_) + " does not fit " +
          std::to_string(layout_.group_bits) + " group bits (" +
          layout_.descriptor() + ")");
    }
    if (nexthop_plus1 > layout_.nexthop_capacity()) {
      throw std::invalid_argument(
          "VMAC next-hop slot " + std::to_string(nexthop_plus1) +
          " exceeds " + std::to_string(layout_.nexthop_bits) +
          " next-hop bits (" + layout_.descriptor() + ")");
    }
    if (layout_.attr_bits < 64 && (attrs >> layout_.attr_bits) != 0) {
      throw std::invalid_argument(
          "VMAC attribute bitmap overflows " +
          std::to_string(layout_.attr_bits) + " attribute bits (" +
          layout_.descriptor() + ")");
    }
    VnhBinding b;
    b.vnh = net::Ipv4Address(pool_.network().value() +
                             static_cast<std::uint32_t>(next_));
    b.vmac = layout_.encode(next_, nexthop_plus1, attrs);
    ++next_;
    return b;
  }

  /// Releases everything (used before a full recompilation; the background
  /// pass re-derives a minimal set of bindings, §4.3.2).
  void reset() { next_ = 0; }

  /// Restores the high-water mark from a checkpoint, so warm restart hands
  /// out VNHs from where the crashed process left off (existing bindings —
  /// and the border-router ARP caches built on them — stay valid). Throws
  /// std::length_error when \p allocated exceeds the pool or the layout's
  /// group budget.
  void restore(std::uint64_t allocated) {
    if (allocated > pool_.size()) {
      throw std::length_error("VNH watermark exceeds pool");
    }
    if (allocated > layout_.group_capacity()) {
      throw std::length_error(
          "VNH watermark exceeds the VMAC group-id budget (" +
          layout_.descriptor() + ")");
    }
    next_ = allocated;
  }

  std::uint64_t allocated() const { return next_; }
  net::Ipv4Prefix pool() const { return pool_; }
  const VmacLayout& layout() const { return layout_; }

 private:
  net::Ipv4Prefix pool_;
  VmacLayout layout_;
  std::uint64_t next_ = 0;
};

}  // namespace sdx::core
