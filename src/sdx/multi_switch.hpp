#pragma once

/// \file multi_switch.hpp
/// Multi-switch SDX fabrics (paper §4.1): "More generally, the SDX may
/// consist of multiple physical switches, each connected to a subset of
/// the participants ... we can rely on topology abstraction to combine a
/// policy written for a single SDX switch with another policy for routing
/// across multiple physical switches."
///
/// Realization (the one-big-switch pattern, matching how real IXP fabrics
/// forward): the full SDX policy runs at the *ingress* switch, which
/// rewrites the destination MAC to the egress router's real address — that
/// MAC is then the rendezvous tag. Core/egress switches only MAC-forward:
///
///   * each switch gets high-priority rules matching (trunk ingress,
///     dstmac = router MAC) → next hop toward that router's switch, along
///     a spanning tree of the switch graph (loop-free by construction);
///   * below those, the ingress switch carries the full single-switch
///     classifier with every output port translated: local ports stay,
///     remote ports become the trunk toward their switch.
///
/// compile_multi_switch() performs the translation; MultiSwitchFabric
/// simulates the resulting fabric and is property-tested to be
/// packet-for-packet equivalent to the single-switch deployment.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataplane/switch.hpp"
#include "sdx/compiler.hpp"

namespace sdx::core {

using SwitchId = std::uint32_t;

/// Physical layout of the exchange: which switch hosts which participant
/// port, and how switches interconnect.
class FabricTopology {
 public:
  explicit FabricTopology(std::size_t switch_count);

  std::size_t switch_count() const { return adjacency_.size(); }

  /// Places a participant-facing (edge) port on a switch.
  void place_port(net::PortId port, SwitchId sw);

  /// Adds a bidirectional inter-switch link using the given trunk-port ids
  /// (must not collide with edge ports).
  void add_link(SwitchId a, net::PortId port_on_a, SwitchId b,
                net::PortId port_on_b);

  /// Removes the link owning trunk port \p trunk (both directions) — the
  /// operator's link-failure event. Re-run compile_multi_switch afterwards
  /// to reroute around it; next_hop_trunk throws if the graph became
  /// disconnected. Returns false when \p trunk is not a trunk port.
  bool remove_link(net::PortId trunk);

  SwitchId switch_of(net::PortId edge_port) const;
  bool is_edge_port(net::PortId port) const {
    return location_.contains(port);
  }
  bool is_trunk_port(net::PortId port) const {
    return trunk_peer_.contains(port);
  }

  /// The switch at the far end of a trunk port, and its receiving port.
  std::pair<SwitchId, net::PortId> trunk_peer(net::PortId port) const;

  /// Next-hop trunk port on \p from toward \p to, along a BFS tree rooted
  /// per destination. Throws std::logic_error when the graph is
  /// disconnected.
  net::PortId next_hop_trunk(SwitchId from, SwitchId to) const;

  const std::vector<net::PortId>& trunks_of(SwitchId sw) const {
    return trunks_.at(sw);
  }
  std::vector<net::PortId> edge_ports_of(SwitchId sw) const;

 private:
  struct Link {
    SwitchId to;
    net::PortId via;
  };
  std::vector<std::vector<Link>> adjacency_;
  std::unordered_map<net::PortId, SwitchId> location_;  // edge ports
  std::unordered_map<net::PortId, std::pair<SwitchId, net::PortId>>
      trunk_peer_;
  std::unordered_map<net::PortId, SwitchId> trunk_home_;
  std::vector<std::vector<net::PortId>> trunks_;
};

/// One switch's rule table in the translated deployment.
struct SwitchProgram {
  SwitchId id = 0;
  policy::Classifier rules;
};

/// Translates a compiled single-switch SDX onto a topology. Every
/// participant port must be placed. Returns one program per switch.
std::vector<SwitchProgram> compile_multi_switch(
    const CompiledSdx& compiled,
    const std::vector<Participant>& participants,
    const FabricTopology& topology);

/// Simulator for the multi-switch deployment: hop-bounded forwarding
/// across the switch graph.
class MultiSwitchFabric {
 public:
  MultiSwitchFabric(const FabricTopology& topology,
                    const std::vector<SwitchProgram>& programs);

  /// Injects a frame at its (edge) ingress port; returns the frames
  /// delivered at edge ports. Throws std::runtime_error if a packet
  /// exceeds the hop bound (a forwarding loop).
  std::vector<net::PacketHeader> inject(const net::PacketHeader& frame);

  /// Frames that crossed inter-switch links (fabric load diagnostic).
  std::uint64_t trunk_hops() const { return trunk_hops_; }

  dp::SwitchSim& switch_sim(SwitchId id) { return switches_.at(id); }

 private:
  const FabricTopology& topology_;
  std::vector<dp::SwitchSim> switches_;
  std::uint64_t trunk_hops_ = 0;
};

}  // namespace sdx::core
