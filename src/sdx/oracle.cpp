#include "sdx/oracle.hpp"

#include <algorithm>

namespace sdx::core {

namespace {

const Participant* find_participant(const std::vector<Participant>& all,
                                    ParticipantId id) {
  for (const auto& p : all) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

/// Address-level match ignoring the dst-prefix constraint (which operates
/// at announced-prefix granularity for outbound clauses).
bool matches_without_dst(const ClauseMatch& m, const net::PacketHeader& h) {
  ClauseMatch copy = m;
  copy.dst_prefixes.clear();
  return copy.matches(h);
}

bool dst_constraint_contains(const ClauseMatch& m, net::Ipv4Prefix p) {
  if (m.dst_prefixes.empty()) return true;
  return std::any_of(m.dst_prefixes.begin(), m.dst_prefixes.end(),
                     [p](net::Ipv4Prefix dp) { return dp.contains(p); });
}

}  // namespace

std::vector<OracleDelivery> oracle_forward(
    const std::vector<Participant>& participants, const PortMap& ports,
    const bgp::RouteServer& server, ParticipantId sender,
    std::size_t sender_port, net::PacketHeader payload) {
  (void)ports;
  const Participant* s = find_participant(participants, sender);
  if (s == nullptr || s->is_remote() || sender_port >= s->ports.size()) {
    return {};
  }
  const net::PortId ingress = s->ports[sender_port].id;

  // 1. The sender's router must hold a route for the destination.
  auto route = server.best_route_lpm(sender, payload.dst_ip());
  if (!route) return {};
  const net::Ipv4Prefix p_star = route->prefix;

  // Is p* touched by any participant's policy (⇒ tagged with a VMAC)?
  bool grouped = false;
  for (const auto& p : participants) {
    for (const auto& c : p.outbound) {
      if (server.exports_to(c.to, p.id, p_star) &&
          dst_constraint_contains(c.match, p_star)) {
        grouped = true;
      }
    }
  }

  payload.set_port(ingress);
  payload.set_src_mac(s->ports[sender_port].router_mac);
  payload.set(net::Field::kEthType, net::kEthTypeIpv4);

  // 2-4. Pick the receiving participant.
  const Participant* receiver = nullptr;
  for (const auto& c : s->outbound) {
    if (matches_without_dst(c.match, payload) &&
        dst_constraint_contains(c.match, p_star) &&
        server.exports_to(c.to, sender, p_star)) {
      receiver = find_participant(participants, c.to);
      break;
    }
  }
  bool rewritten = false;
  if (receiver == nullptr) {
    for (const auto& d : participants) {
      if (!d.is_remote()) continue;
      for (const auto& c : d.inbound) {
        std::optional<net::Ipv4Address> new_dst;
        for (const auto& [f, v] : c.rewrites) {
          if (f == net::Field::kDstIp) {
            new_dst = net::Ipv4Address(static_cast<std::uint32_t>(v));
          }
        }
        if (!new_dst || !c.match.matches(payload)) continue;
        auto target_route = server.best_route_lpm(d.id, *new_dst);
        if (!target_route) continue;
        const Participant* t =
            find_participant(participants, target_route->learned_from);
        if (t == nullptr || t->is_remote()) continue;
        for (const auto& [f, v] : c.rewrites) payload.set(f, v);
        receiver = t;
        rewritten = true;
        break;
      }
      if (receiver != nullptr) break;
    }
  }
  if (receiver == nullptr) {
    receiver = find_participant(participants, route->learned_from);
    if (receiver == nullptr || receiver->is_remote()) return {};
  }

  // For ungrouped prefixes the frame's dst MAC is the real MAC of the BGP
  // next hop (the port whose IP the route announces); grouped traffic
  // carries a VMAC, which never matches a real port MAC.
  std::optional<net::MacAddress> frame_dst_mac;
  if (!grouped && !rewritten) {
    for (const auto& p : participants) {
      for (const auto& port : p.ports) {
        if (port.router_ip == route->attrs.next_hop) {
          frame_dst_mac = port.router_mac;
        }
      }
    }
  }

  // 5. Inbound processing at the receiver.
  const PhysicalPort* egress = nullptr;
  for (const auto& c : receiver->inbound) {
    if (!c.match.matches(payload)) continue;
    for (const auto& [f, v] : c.rewrites) payload.set(f, v);
    egress = &receiver->ports.at(c.to_port.value_or(0));
    payload.set_dst_mac(egress->router_mac);
    break;
  }
  if (egress == nullptr && frame_dst_mac) {
    for (const auto& port : receiver->ports) {
      if (port.router_mac == *frame_dst_mac) {
        egress = &port;
        payload.set_dst_mac(port.router_mac);
        break;
      }
    }
  }
  if (egress == nullptr) {
    egress = &receiver->primary_port();
    payload.set_dst_mac(egress->router_mac);
  }

  // 6. Hairpin suppression.
  if (egress->id == ingress) return {};

  payload.set_port(egress->id);
  OracleDelivery d;
  d.egress = egress->id;
  d.frame = payload;
  return {d};
}

}  // namespace sdx::core
