#include "sdx/bgp_frontend.hpp"

#include <algorithm>
#include <stdexcept>

namespace sdx::core {

BgpFrontend::BgpFrontend(net::Asn server_asn, net::Ipv4Address server_id)
    : server_asn_(server_asn), server_id_(server_id) {}

std::size_t BgpFrontend::pump(Link& link) {
  std::size_t moved = 0;
  for (int round = 0; round < 8; ++round) {
    auto to_router = link.server_side.take_output();
    auto to_server = link.router_side.take_output();
    if (to_router.empty() && to_server.empty()) break;
    moved += to_router.size() + to_server.size();
    for (auto& ev : link.router_side.receive(to_router)) {
      if (ev.kind == bgp::Session::Event::Kind::kUpdate &&
          link.router != nullptr) {
        link.router->process_update(ev.update);
      }
    }
    // The route server side of these sessions is announce-only; events
    // from the router (keepalives) need no action here.
    (void)link.server_side.receive(to_server);
  }
  return moved;
}

void BgpFrontend::connect(ParticipantId participant,
                          dp::BorderRouter& router) {
  if (links_.contains(participant)) {
    throw std::invalid_argument("participant already connected: " +
                                std::to_string(participant));
  }
  bgp::Session server_side(bgp::Session::Config{server_asn_, server_id_});
  bgp::Session router_side(
      bgp::Session::Config{router.asn(), router.ip()});
  auto [it, _] = links_.emplace(
      participant, Link(std::move(server_side), std::move(router_side),
                        &router));
  it->second.server_side.start();
  it->second.router_side.start();
  pump(it->second);
  if (it->second.server_side.state() !=
          bgp::Session::State::kEstablished ||
      it->second.router_side.state() !=
          bgp::Session::State::kEstablished) {
    links_.erase(participant);
    throw std::runtime_error("BGP handshake failed for participant " +
                             std::to_string(participant));
  }
}

bool BgpFrontend::established(ParticipantId participant) const {
  auto it = links_.find(participant);
  return it != links_.end() &&
         it->second.server_side.state() ==
             bgp::Session::State::kEstablished;
}

std::size_t BgpFrontend::distribute(ParticipantId participant,
                                    const bgp::UpdateMessage& update) {
  auto it = links_.find(participant);
  if (it == links_.end()) {
    throw std::out_of_range("participant not connected: " +
                            std::to_string(participant));
  }
  it->second.server_side.send_update(update);
  ++updates_;
  const std::size_t moved = pump(it->second);
  bytes_ += moved;
  return moved;
}

std::size_t BgpFrontend::distribute_all(const bgp::UpdateMessage& update) {
  std::size_t moved = 0;
  for (auto& [id, link] : links_) {
    link.server_side.send_update(update);
    ++updates_;
    moved += pump(link);
  }
  bytes_ += moved;
  return moved;
}

void BgpFrontend::enable_auto_reconnect(ReconnectPolicy policy) {
  auto_reconnect_ = true;
  policy_ = policy;
}

std::vector<ParticipantId> BgpFrontend::advance_clock(double seconds) {
  std::vector<ParticipantId> dropped;
  for (auto& [id, link] : links_) {
    auto a = link.server_side.advance_clock(seconds);
    auto b = link.router_side.advance_clock(seconds);
    pump(link);
    if (!a.empty() || !b.empty()) dropped.push_back(id);
  }
  // A dead FSM pair can't carry further updates: tear the links down so
  // established() reflects reality and the drop can't be re-reported.
  for (auto id : dropped) {
    auto it = links_.find(id);
    if (auto_reconnect_ && it != links_.end() &&
        it->second.router != nullptr) {
      pending_[id] = PendingReconnect{it->second.router,
                                      policy_.initial_backoff_seconds,
                                      policy_.initial_backoff_seconds};
    }
    links_.erase(id);
  }
  drops_ += dropped.size();

  // Redial sessions whose backoff has elapsed; failures re-arm with the
  // doubled (capped) backoff.
  for (auto it = pending_.begin(); it != pending_.end();) {
    it->second.wait -= seconds;
    if (it->second.wait > 0) {
      ++it;
      continue;
    }
    const auto id = it->first;
    auto* router = it->second.router;
    try {
      connect(id, *router);
      ++reconnects_;
      it = pending_.erase(it);
    } catch (const std::exception&) {
      it->second.backoff =
          std::min(it->second.backoff * 2, policy_.max_backoff_seconds);
      it->second.wait = it->second.backoff;
      ++it;
    }
  }
  return dropped;
}

}  // namespace sdx::core
