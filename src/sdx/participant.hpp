#pragma once

/// \file participant.hpp
/// The participant model and the structured SDX policy clauses.
///
/// SDX applications are written as clause lists, mirroring how every policy
/// in the paper is written: a sum of disjoint `match(...) >> action` terms
/// ("we assume that the vast majority of participants would write unicast
/// policies", §4.3.1). The structured form is what lets the compiler apply
/// the paper's optimizations — clause-level BGP filtering, FEC grouping and
/// pair-pruned composition — while `to_policy()` renders the same clauses
/// into the generic Pyretic-style AST for the unoptimized reference
/// compiler and for pretty-printing.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "netbase/mac.hpp"
#include "netbase/packet.hpp"
#include "policy/policy.hpp"
#include "sdx/port_map.hpp"

namespace sdx::core {

using net::Field;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::MacAddress;

/// A participant's attachment point: an edge port of the SDX switch with
/// the participant's border-router MAC/IP behind it.
struct PhysicalPort {
  net::PortId id = 0;
  MacAddress router_mac;
  Ipv4Address router_ip;

  friend bool operator==(const PhysicalPort&, const PhysicalPort&) = default;
};

/// The match side of a clause: a conjunction of exact header tests with
/// optional source/destination prefix lists (a non-empty list means
/// "srcip/dstip in any of these prefixes").
struct ClauseMatch {
  std::vector<std::pair<Field, std::uint64_t>> exact;  ///< non-IP fields
  std::vector<Ipv4Prefix> src_prefixes;
  std::vector<Ipv4Prefix> dst_prefixes;

  /// Fluent builders.
  ClauseMatch& field(Field f, std::uint64_t v) {
    exact.emplace_back(f, v);
    return *this;
  }
  ClauseMatch& dst_port(std::uint64_t p) { return field(Field::kDstPort, p); }
  ClauseMatch& src_port(std::uint64_t p) { return field(Field::kSrcPort, p); }
  ClauseMatch& src(Ipv4Prefix p) {
    src_prefixes.push_back(p);
    return *this;
  }
  ClauseMatch& dst(Ipv4Prefix p) {
    dst_prefixes.push_back(p);
    return *this;
  }

  /// The equivalent predicate (for the reference compiler and the oracle).
  policy::Predicate to_predicate() const;

  /// True when a header satisfies the clause match.
  bool matches(const net::PacketHeader& h) const;

  friend bool operator==(const ClauseMatch&, const ClauseMatch&) = default;
};

/// An outbound clause: traffic the participant sends that matches is handed
/// to participant `to`'s virtual switch — subject to the runtime-enforced
/// BGP filter ("forwarding only along BGP-advertised paths", §3.2).
struct OutboundClause {
  ClauseMatch match;
  ParticipantId to = 0;

  friend bool operator==(const OutboundClause&,
                         const OutboundClause&) = default;
};

/// An inbound clause: traffic arriving at the participant's virtual switch
/// that matches is optionally rewritten and steered to one of its physical
/// ports (inbound TE) — or, for a *remote* participant, rewritten and then
/// re-forwarded along the BGP route for the rewritten destination
/// (wide-area load balancing, §2/§5.2).
struct InboundClause {
  ClauseMatch match;
  std::vector<std::pair<Field, std::uint64_t>> rewrites;
  /// Index into Participant::ports; nullopt = primary port (or, for remote
  /// participants, resolve by BGP after rewriting).
  std::optional<std::size_t> to_port;

  friend bool operator==(const InboundClause&, const InboundClause&) = default;
};

struct Participant {
  ParticipantId id = 0;
  std::string name;
  net::Asn asn = 0;
  std::vector<PhysicalPort> ports;  ///< empty ⇒ remote participant (§3.1)
  std::vector<OutboundClause> outbound;
  std::vector<InboundClause> inbound;

  bool is_remote() const { return ports.empty(); }
  const PhysicalPort& primary_port() const { return ports.front(); }

  std::vector<net::PortId> port_ids() const {
    std::vector<net::PortId> out;
    out.reserve(ports.size());
    for (const auto& p : ports) out.push_back(p.id);
    return out;
  }

  /// Structural equality — used by recovery to verify that re-registering
  /// checkpointed participants regenerated the identical state.
  friend bool operator==(const Participant&, const Participant&) = default;
};

/// Renders the participant's outbound clauses into the Pyretic-style AST:
///   Σ_clauses  match(clause) >> fwd(vport(to))
policy::Policy outbound_policy(const Participant& p, const PortMap& ports);

/// Renders the inbound clauses; a clause with rewrites applies them before
/// forwarding to the selected physical port.
policy::Policy inbound_policy(const Participant& p, const PortMap& ports);

/// Validates that a participant's clauses only reference other registered
/// participants / its own ports. Throws std::invalid_argument otherwise —
/// this is the static half of isolation (§4.1).
void validate_participant(const Participant& p,
                          const std::vector<Participant>& all);

}  // namespace sdx::core
