#include "sdx/scenario.hpp"

#include <charconv>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <vector>

#include "bgp/aspath_regex.hpp"
#include "sdx/chaining.hpp"
#include "sdx/explain.hpp"
#include "sdx/monitor.hpp"
#include "sdx/multi_switch.hpp"
#include "sdx/verifier.hpp"

namespace sdx::core {

// Command table
// -------------
//   participant <name> <asn> [ports <n>]
//   remote <name> <asn>
//   announce <name> <prefix> [path <asn>...]
//   withdraw <name> <prefix>
//   outbound <name> match <field>=<v>... -> <target>
//   inbound <name> match <field>=<v>... [set <field>=<v>...] [port <idx>]
//   chain <owner> via <mb>... match <field>=<v>...
//   rpki add <prefix> as <asn> [maxlen <n>]
//   rpki mode off|remote|strict
//   install                      full compile + deploy
//   recompile                    background (optimal) recompilation
//   topology switches <n>        declare a multi-switch fabric (§4.1)
//   topology place <name> <port-idx> <switch>
//   topology link <swA> <swB>
//   install-multi                translate rules onto the topology; later
//                                send/expect run over the multi fabric
//   send <name> <field>=<v>... [from-port <idx>]
//   traffic <name> count <n> flows <k> [seed <s>] [burst <b>]
//       [from-port <idx>] <field>=<v>...
//                                generated flow mix (skewed toward the
//                                first flows) replayed in bursts through
//                                the batched data-plane path; reports
//                                per-participant delivery counts and the
//                                monitor's top heavy hitter
//   expect drop | expect port <name> <idx> | expect dstip <addr>
//   audit                        static rule-table audit
//   verify                       full safety check (loops, isolation,
//                                blackholes + local audit); prints the
//                                counterexample packet trace on failure
//   save <dir>                   attach a journal at <dir> and checkpoint
//   recover <dir>                rebuild a fresh runtime from a journal
//   journal                      journal status (LSN, bytes, checkpoint)
//   show stats|groups|log
//   show rules [n]
// Matchable/settable fields: srcip, dstip (addresses or prefixes),
// srcport, dstport, proto, ethtype, srcmac, dstmac.

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

std::optional<std::uint64_t> parse_number(const std::string& s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

struct ScenarioError {
  std::string what;
};

[[noreturn]] void fail(const std::string& what) { throw ScenarioError{what}; }

std::optional<net::Field> field_by_name(const std::string& name) {
  for (auto f : net::kAllFields) {
    if (net::field_name(f) == name) return f;
  }
  return std::nullopt;
}

/// Parses `field=value` into a clause match (prefix-aware for IP fields).
void apply_match_token(ClauseMatch& m, const std::string& tok) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) fail("expected field=value, got '" + tok + "'");
  const std::string name = tok.substr(0, eq);
  const std::string value = tok.substr(eq + 1);
  auto field = field_by_name(name);
  if (!field) fail("unknown field '" + name + "'");
  if (net::is_ip_field(*field)) {
    auto prefix = net::Ipv4Prefix::try_parse(value);
    if (!prefix) {
      auto addr = net::Ipv4Address::try_parse(value);
      if (!addr) fail("bad address '" + value + "'");
      prefix = net::Ipv4Prefix::host(*addr);
    }
    if (*field == net::Field::kSrcIp) {
      m.src(*prefix);
    } else {
      m.dst(*prefix);
    }
    return;
  }
  auto number = parse_number(value);
  if (!number) fail("bad value '" + value + "'");
  m.field(*field, *number);
}

std::pair<net::Field, std::uint64_t> parse_set_token(const std::string& tok) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) fail("expected field=value, got '" + tok + "'");
  auto field = field_by_name(tok.substr(0, eq));
  if (!field) fail("unknown field '" + tok.substr(0, eq) + "'");
  const std::string value = tok.substr(eq + 1);
  if (net::is_ip_field(*field)) {
    auto addr = net::Ipv4Address::try_parse(value);
    if (!addr) fail("bad address '" + value + "'");
    return {*field, addr->value()};
  }
  if (*field == net::Field::kSrcMac || *field == net::Field::kDstMac) {
    auto mac = net::MacAddress::try_parse(value);
    if (!mac) fail("bad MAC '" + value + "'");
    return {*field, mac->bits()};
  }
  auto number = parse_number(value);
  if (!number) fail("bad value '" + value + "'");
  return {*field, *number};
}

}  // namespace

struct ScenarioInterpreter::Impl {
  SdxRuntime runtime;
  bgp::RoaTable pending_roas;
  std::vector<dp::Fabric::Delivery> last_send;
  bool sent_anything = false;
  std::optional<FabricTopology> topology;
  std::unique_ptr<MultiSwitchFabric> multi_fabric;
  net::PortId next_trunk = 100000;

  ParticipantId lookup(const std::string& name) {
    Participant* p = runtime.find(name);
    if (p == nullptr) fail("unknown participant '" + name + "'");
    return p->id;
  }

  std::string handle(const std::vector<std::string>& t);
};

std::string ScenarioInterpreter::Impl::handle(
    const std::vector<std::string>& t) {
  const std::string& cmd = t[0];

  if (cmd == "participant" || cmd == "remote") {
    if (t.size() < 3) fail("usage: " + cmd + " <name> <asn> [ports <n>]");
    auto asn = parse_number(t[2]);
    if (!asn) fail("bad ASN '" + t[2] + "'");
    if (runtime.find(t[1]) != nullptr) {
      fail("participant '" + t[1] + "' already exists");
    }
    if (cmd == "remote") {
      runtime.add_remote_participant(t[1], static_cast<net::Asn>(*asn));
      return "remote participant " + t[1];
    }
    std::size_t ports = 1;
    if (t.size() == 5 && t[3] == "ports") {
      auto n = parse_number(t[4]);
      if (!n || *n == 0) fail("bad port count");
      ports = *n;
    } else if (t.size() != 3) {
      fail("usage: participant <name> <asn> [ports <n>]");
    }
    const auto id = runtime.add_participant(t[1], static_cast<net::Asn>(*asn),
                                            ports);
    std::ostringstream os;
    os << "participant " << t[1] << " (AS" << *asn << ") ports";
    for (auto pid : runtime.participant(id).port_ids()) os << " " << pid;
    return os.str();
  }

  if (cmd == "announce" || cmd == "withdraw") {
    if (t.size() < 3) fail("usage: " + cmd + " <name> <prefix> ...");
    const auto id = lookup(t[1]);
    auto prefix = net::Ipv4Prefix::try_parse(t[2]);
    if (!prefix) fail("bad prefix '" + t[2] + "'");
    if (cmd == "withdraw") {
      runtime.withdraw(id, *prefix);
      return "withdrawn " + prefix->to_string();
    }
    std::optional<net::AsPath> path;
    if (t.size() > 3) {
      if (t[3] != "path") fail("expected 'path', got '" + t[3] + "'");
      std::vector<net::Asn> asns;
      for (std::size_t i = 4; i < t.size(); ++i) {
        auto a = parse_number(t[i]);
        if (!a) fail("bad ASN '" + t[i] + "'");
        asns.push_back(static_cast<net::Asn>(*a));
      }
      if (asns.empty()) fail("empty AS path");
      path = net::AsPath(std::move(asns));
    }
    runtime.announce(id, *prefix, path);
    return "announced " + prefix->to_string();
  }

  if (cmd == "outbound") {
    // outbound <name> match f=v... -> <target>
    if (t.size() < 5 || t[2] != "match") {
      fail("usage: outbound <name> match <f>=<v>... -> <target>");
    }
    const auto id = lookup(t[1]);
    ClauseMatch match;
    std::size_t i = 3;
    for (; i < t.size() && t[i] != "->"; ++i) apply_match_token(match, t[i]);
    if (i + 1 != t.size() - 0 && (i >= t.size() || t[i] != "->")) {
      fail("missing '-> <target>'");
    }
    if (i + 1 >= t.size()) fail("missing target after '->'");
    const auto target = lookup(t[i + 1]);
    auto clauses = runtime.participant(id).outbound;
    clauses.push_back(OutboundClause{std::move(match), target});
    runtime.set_outbound(id, std::move(clauses));
    return "outbound clause " + std::to_string(
               runtime.participant(id).outbound.size()) + " installed";
  }

  if (cmd == "inbound") {
    // inbound <name> match f=v... [set f=v...] [port <idx>]
    if (t.size() < 4 || t[2] != "match") {
      fail("usage: inbound <name> match <f>=<v>... [set <f>=<v>...] "
           "[port <idx>]");
    }
    const auto id = lookup(t[1]);
    InboundClause clause;
    std::size_t i = 3;
    for (; i < t.size() && t[i] != "set" && t[i] != "port"; ++i) {
      apply_match_token(clause.match, t[i]);
    }
    if (i < t.size() && t[i] == "set") {
      for (++i; i < t.size() && t[i] != "port"; ++i) {
        clause.rewrites.push_back(parse_set_token(t[i]));
      }
    }
    if (i < t.size() && t[i] == "port") {
      if (i + 1 >= t.size()) fail("missing port index");
      auto idx = parse_number(t[i + 1]);
      if (!idx) fail("bad port index");
      clause.to_port = *idx;
      i += 2;
    }
    if (i != t.size()) fail("trailing tokens after inbound clause");
    auto clauses = runtime.participant(id).inbound;
    clauses.push_back(std::move(clause));
    runtime.set_inbound(id, std::move(clauses));
    return "inbound clause " +
           std::to_string(runtime.participant(id).inbound.size()) +
           " installed";
  }

  if (cmd == "chain") {
    // chain <owner> via <mb>... match f=v...
    if (t.size() < 6 || t[2] != "via") {
      fail("usage: chain <owner> via <mb>... match <f>=<v>...");
    }
    ServiceChain chain;
    chain.owner = lookup(t[1]);
    std::size_t i = 3;
    for (; i < t.size() && t[i] != "match"; ++i) {
      chain.middleboxes.push_back(lookup(t[i]));
    }
    if (i >= t.size()) fail("missing 'match' in chain");
    for (++i; i < t.size(); ++i) apply_match_token(chain.match, t[i]);
    install_chain(runtime, chain);
    return "chain installed (" + std::to_string(chain.middleboxes.size()) +
           " middleboxes)";
  }

  if (cmd == "rpki") {
    if (t.size() >= 2 && t[1] == "mode") {
      if (t.size() != 3) fail("usage: rpki mode off|remote|strict");
      using Mode = SdxRuntime::RpkiMode;
      Mode mode;
      if (t[2] == "off") {
        mode = Mode::kOff;
      } else if (t[2] == "remote") {
        mode = Mode::kRemoteOnly;
      } else if (t[2] == "strict") {
        mode = Mode::kStrict;
      } else {
        fail("unknown rpki mode '" + t[2] + "'");
      }
      runtime.enable_rpki(std::move(pending_roas), mode);
      pending_roas = {};
      return "rpki mode " + t[2];
    }
    if (t.size() >= 5 && t[1] == "add" && t[3] == "as") {
      auto prefix = net::Ipv4Prefix::try_parse(t[2]);
      auto asn = parse_number(t[4]);
      if (!prefix || !asn) fail("usage: rpki add <prefix> as <asn> [maxlen n]");
      int maxlen = -1;
      if (t.size() == 7 && t[5] == "maxlen") {
        auto n = parse_number(t[6]);
        if (!n) fail("bad maxlen");
        maxlen = static_cast<int>(*n);
      } else if (t.size() != 5) {
        fail("usage: rpki add <prefix> as <asn> [maxlen n]");
      }
      pending_roas.add(*prefix, static_cast<net::Asn>(*asn), maxlen);
      return "roa " + prefix->to_string() + " AS" + t[4];
    }
    fail("usage: rpki add ... | rpki mode ...");
  }

  if (cmd == "topology") {
    if (t.size() == 3 && t[1] == "switches") {
      auto n = parse_number(t[2]);
      if (!n || *n == 0) fail("bad switch count");
      topology.emplace(*n);
      multi_fabric.reset();
      return "topology with " + t[2] + " switches";
    }
    if (!topology) fail("declare 'topology switches <n>' first");
    if (t.size() == 5 && t[1] == "place") {
      const auto id = lookup(t[2]);
      auto idx = parse_number(t[3]);
      auto sw = parse_number(t[4]);
      if (!idx || !sw) fail("usage: topology place <name> <port-idx> <sw>");
      const auto& ports = runtime.participant(id).ports;
      if (*idx >= ports.size()) fail("participant has no port " + t[3]);
      topology->place_port(ports[*idx].id, static_cast<SwitchId>(*sw));
      return "placed " + t[2] + " port " + t[3] + " on switch " + t[4];
    }
    if (t.size() == 4 && t[1] == "link") {
      auto a = parse_number(t[2]);
      auto b = parse_number(t[3]);
      if (!a || !b) fail("usage: topology link <swA> <swB>");
      const net::PortId pa = next_trunk++;
      const net::PortId pb = next_trunk++;
      topology->add_link(static_cast<SwitchId>(*a), pa,
                         static_cast<SwitchId>(*b), pb);
      return "linked switch " + t[2] + " and " + t[3];
    }
    fail("usage: topology switches <n> | place <name> <idx> <sw> | "
         "link <a> <b>");
  }

  if (cmd == "install-multi") {
    if (!topology) fail("declare a topology first");
    if (!runtime.installed()) fail("install before install-multi");
    auto programs = compile_multi_switch(
        runtime.compiled(), runtime.participants(), *topology);
    std::size_t total_rules = 0;
    for (const auto& p : programs) total_rules += p.rules.size();
    multi_fabric = std::make_unique<MultiSwitchFabric>(*topology, programs);
    std::ostringstream os;
    os << "multi-switch deployment: " << programs.size() << " switches, "
       << total_rules << " rules total";
    return os.str();
  }

  if (cmd == "install") {
    const auto& compiled = runtime.install();
    multi_fabric.reset();  // stale after a recompile
    std::ostringstream os;
    os << "installed: " << compiled.stats.prefix_groups << " groups, "
       << compiled.stats.final_rules << " rules, "
       << compiled.stats.total_seconds * 1e3 << " ms";
    return os.str();
  }

  if (cmd == "recompile") {
    const auto& compiled = runtime.background_recompile();
    multi_fabric.reset();
    return "recompiled: " + std::to_string(compiled.stats.final_rules) +
           " rules";
  }

  if (cmd == "send") {
    if (t.size() < 3) fail("usage: send <name> <f>=<v>... [from-port <idx>]");
    const auto id = lookup(t[1]);
    net::PacketHeader h;
    h.set(net::Field::kEthType, net::kEthTypeIpv4);
    std::size_t from_port = 0;
    for (std::size_t i = 2; i < t.size(); ++i) {
      if (t[i] == "from-port") {
        if (i + 1 >= t.size()) fail("missing port index");
        auto idx = parse_number(t[i + 1]);
        if (!idx) fail("bad port index");
        from_port = *idx;
        ++i;
        continue;
      }
      auto [field, value] = parse_set_token(t[i]);
      h.set(field, value);
    }
    if (multi_fabric) {
      // Route through the multi-switch deployment instead.
      last_send.clear();
      auto frame =
          runtime.router(id, from_port).forward(h, runtime.fabric().arp());
      if (frame) {
        for (auto& delivered : multi_fabric->inject(*frame)) {
          dp::Fabric::Delivery d;
          d.port = delivered.port();
          d.receiver = runtime.fabric().router_at(d.port);
          d.accepted = d.receiver != nullptr &&
                       d.receiver->accepts(delivered);
          d.frame = std::move(delivered);
          last_send.push_back(std::move(d));
        }
      }
    } else {
      last_send = runtime.send(id, h, from_port);
    }
    sent_anything = true;
    if (last_send.empty()) return "dropped";
    std::ostringstream os;
    os << "delivered at port " << last_send[0].port
       << (last_send[0].accepted ? " (accepted)" : " (refused)") << ", dst "
       << last_send[0].frame.dst_ip().to_string();
    return os.str();
  }

  if (cmd == "traffic") {
    // Generated traffic sweep through the batched data-plane path: <k>
    // flows derived from a template header, sampled with linearly
    // decaying weights (flow 0 heaviest) into a <n>-packet stream that is
    // replayed burst by burst via send_batch, with every delivery fed to
    // a TrafficMonitor.
    if (t.size() < 4) {
      fail("usage: traffic <name> count <n> flows <k> [seed <s>] "
           "[burst <b>] [from-port <idx>] <f>=<v>...");
    }
    if (multi_fabric) fail("traffic requires the single-switch fabric");
    const auto id = lookup(t[1]);
    net::PacketHeader tmpl;
    tmpl.set(net::Field::kEthType, net::kEthTypeIpv4);
    std::size_t count = 0, flows = 0, burst = 64, from_port = 0;
    std::uint64_t seed = 1;
    for (std::size_t i = 2; i < t.size(); ++i) {
      const auto keyword = [&](const char* kw, std::size_t& dst) {
        if (t[i] != kw) return false;
        if (i + 1 >= t.size()) fail(std::string("missing value after ") + kw);
        auto v = parse_number(t[i + 1]);
        if (!v) fail("bad value after " + t[i]);
        dst = *v;
        ++i;
        return true;
      };
      std::size_t seed_tmp = 0;
      if (keyword("count", count) || keyword("flows", flows) ||
          keyword("burst", burst) || keyword("from-port", from_port)) {
        continue;
      }
      if (keyword("seed", seed_tmp)) {
        seed = seed_tmp;
        continue;
      }
      auto [field, value] = parse_set_token(t[i]);
      tmpl.set(field, value);
    }
    if (count == 0 || flows == 0 || burst == 0) {
      fail("traffic needs count, flows and burst > 0");
    }

    // Flow j: vary the source host within a handful of /24 blocks (block
    // j%4), so the monitor has real source-block aggregates to rank.
    std::vector<net::PacketHeader> flow_headers;
    flow_headers.reserve(flows);
    const std::uint64_t base_src = tmpl.get(net::Field::kSrcIp);
    for (std::size_t j = 0; j < flows; ++j) {
      net::PacketHeader h = tmpl;
      h.set(net::Field::kSrcIp,
            (base_src & ~0xFFFFull) | ((j % 4) << 8) | ((j / 4 + 1) & 0xFF));
      h.set(net::Field::kSrcPort, 1024 + j);
      flow_headers.push_back(h);
    }

    // Deterministic skewed sampling: flow rank r gets weight (flows - r).
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
    const auto next_rand = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    const std::uint64_t total_weight = flows * (flows + 1) / 2;
    std::vector<net::PacketHeader> stream;
    stream.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t z = next_rand() % total_weight;
      std::size_t r = 0;
      while (z >= flows - r) {
        z -= flows - r;
        ++r;
      }
      stream.push_back(flow_headers[r]);
    }

    TrafficMonitor monitor(/*window_s=*/3600.0);
    std::size_t delivered = 0;
    std::map<std::string, std::size_t> by_participant;
    double now = 0.0;
    for (std::size_t off = 0; off < stream.size(); off += burst) {
      const std::size_t len = std::min(burst, stream.size() - off);
      const auto batch = runtime.send_batch(
          id, std::span<const net::PacketHeader>(stream.data() + off, len),
          from_port);
      for (std::size_t i = 0; i < len; ++i) {
        now += 0.001;
        for (const auto& d : batch.of(i)) {
          ++delivered;
          ParticipantId to = 0;
          std::string who = "port" + std::to_string(d.port);
          try {
            to = runtime.ports().phys_owner(d.port);
            who = runtime.participant(to).name;
          } catch (const std::exception&) {
          }
          ++by_participant[who];
          monitor.observe(now, d.frame, to);
        }
      }
    }

    std::ostringstream os;
    os << "traffic: " << count << " pkts, " << delivered << " delivered";
    if (!by_participant.empty()) {
      os << " (";
      bool first = true;
      for (const auto& [who, cnt] : by_participant) {
        if (!first) os << ", ";
        os << who << ":" << cnt;
        first = false;
      }
      os << ")";
    }
    const auto hitters = monitor.heavy_hitters(now, delivered / 4 + 1);
    if (!hitters.empty()) {
      os << "; top " << hitters[0].source_block.to_string() << " -> "
         << runtime.participant(hitters[0].victim).name << " ("
         << hitters[0].packets << " pkts)";
    }
    sent_anything = true;
    return os.str();
  }

  if (cmd == "explain") {
    if (!runtime.installed()) fail("explain before install");
    if (t.size() < 3) fail("usage: explain <name> <f>=<v>...");
    const auto id = lookup(t[1]);
    net::PacketHeader h;
    h.set(net::Field::kEthType, net::kEthTypeIpv4);
    std::size_t from_port = 0;
    for (std::size_t i = 2; i < t.size(); ++i) {
      if (t[i] == "from-port") {
        if (i + 1 >= t.size()) fail("missing port index");
        auto idx = parse_number(t[i + 1]);
        if (!idx) fail("bad port index");
        from_port = *idx;
        ++i;
        continue;
      }
      auto [field, value] = parse_set_token(t[i]);
      h.set(field, value);
    }
    return core::explain(runtime, id, h, from_port).to_string();
  }

  if (cmd == "expect") {
    if (!sent_anything) fail("expect before any send");
    if (t.size() == 2 && t[1] == "drop") {
      if (!last_send.empty()) {
        fail("expected drop, got delivery at port " +
             std::to_string(last_send[0].port));
      }
      return "ok";
    }
    if (t.size() == 4 && t[1] == "port") {
      const auto id = lookup(t[2]);
      auto idx = parse_number(t[3]);
      if (!idx) fail("bad port index");
      const auto& ports = runtime.participant(id).ports;
      if (*idx >= ports.size()) fail("participant has no port " + t[3]);
      if (last_send.empty()) fail("expected delivery, got drop");
      if (last_send[0].port != ports[*idx].id) {
        fail("expected port " + std::to_string(ports[*idx].id) + ", got " +
             std::to_string(last_send[0].port));
      }
      return "ok";
    }
    if (t.size() == 3 && t[1] == "dstip") {
      auto addr = net::Ipv4Address::try_parse(t[2]);
      if (!addr) fail("bad address");
      if (last_send.empty()) fail("expected delivery, got drop");
      if (last_send[0].frame.dst_ip() != *addr) {
        fail("expected dstip " + addr->to_string() + ", got " +
             last_send[0].frame.dst_ip().to_string());
      }
      return "ok";
    }
    fail("usage: expect drop | expect port <name> <idx> | expect dstip <a>");
  }

  if (cmd == "audit") {
    if (!runtime.installed()) fail("audit before install");
    auto report = audit(runtime.compiled(), runtime.participants(),
                        runtime.ports(), runtime.route_server());
    if (!report.ok()) fail(report.to_string());
    return "audit clean (" + std::to_string(report.rules_checked) +
           " rules)";
  }

  if (cmd == "verify") {
    if (!runtime.installed()) fail("verify before install");
    auto report = runtime.verify_now();
    if (!report.ok()) fail(report.to_string());
    std::ostringstream os;
    os << "verify clean (" << report.classes_checked << " classes, "
       << report.prefixes_checked << " prefixes, " << report.edges_walked
       << " edges, " << report.local_rules_checked << " rules)";
    return os.str();
  }

  if (cmd == "show") {
    if (t.size() < 2) fail("usage: show stats|groups|log|rules [n]");
    if (t[1] == "stats") {
      if (!runtime.installed()) fail("show stats before install");
      const auto& s = runtime.compiled().stats;
      std::ostringstream os;
      os << "participants=" << s.participants
         << " prefixes=" << s.prefixes_total
         << " grouped=" << s.prefixes_grouped
         << " groups=" << s.prefix_groups << " rules=" << s.final_rules;
      return os.str();
    }
    if (t[1] == "groups") {
      if (!runtime.installed()) fail("show groups before install");
      std::ostringstream os;
      const auto& fecs = runtime.compiled().fecs;
      for (std::size_t g = 0; g < fecs.groups.size(); ++g) {
        os << "group " << g << ": " << fecs.groups[g].prefixes.size()
           << " prefixes, " << fecs.groups[g].clauses.size() << " clauses\n";
      }
      return os.str();
    }
    if (t[1] == "log") {
      std::ostringstream os;
      for (const auto& e : runtime.update_log()) {
        os << e.prefix.to_string() << ": " << e.additional_rules
           << " rules in " << e.fast_seconds * 1e3 << " ms\n";
      }
      return os.str();
    }
    if (t[1] == "rules") {
      if (!runtime.installed()) fail("show rules before install");
      std::size_t n = 20;
      if (t.size() == 3) {
        auto parsed = parse_number(t[2]);
        if (!parsed) fail("bad count");
        n = *parsed;
      }
      std::ostringstream os;
      const auto& rules = runtime.compiled().fabric.rules();
      for (std::size_t i = 0; i < rules.size() && i < n; ++i) {
        os << i << ": " << rules[i].to_string() << "\n";
      }
      return os.str();
    }
    fail("unknown show target '" + t[1] + "'");
  }

  if (cmd == "save") {
    if (t.size() != 2) fail("usage: save <dir>");
    if (runtime.journaling()) {
      if (runtime.journal()->directory() != t[1]) {
        fail("journal already attached at " +
             runtime.journal()->directory());
      }
    } else {
      runtime.attach_journal(t[1]);
    }
    const std::uint64_t lsn = runtime.checkpoint();
    return "checkpoint written at lsn " + std::to_string(lsn);
  }

  if (cmd == "recover") {
    if (t.size() != 2) fail("usage: recover <dir>");
    const auto report = runtime.recover(t[1]);
    std::ostringstream os;
    os << (report.warm ? "warm" : "cold") << " restart from " << t[1] << ":";
    if (report.had_checkpoint) {
      os << " checkpoint lsn " << report.checkpoint_lsn << ",";
    }
    os << " replayed " << report.replayed << " records in "
       << report.seconds * 1e3 << " ms";
    return os.str();
  }

  if (cmd == "journal") {
    const persist::Journal* j = runtime.journal();
    if (j == nullptr) return "journal: not attached";
    std::ostringstream os;
    os << "journal " << j->directory() << ": next lsn " << j->next_lsn()
       << ", " << j->bytes_appended() << " bytes appended, last checkpoint"
       << " lsn " << j->last_checkpoint_lsn();
    return os.str();
  }

  fail("unknown command '" + cmd + "'");
}

ScenarioInterpreter::ScenarioInterpreter() : impl_(std::make_unique<Impl>()) {}
ScenarioInterpreter::~ScenarioInterpreter() = default;

SdxRuntime& ScenarioInterpreter::runtime() { return impl_->runtime; }
const SdxRuntime& ScenarioInterpreter::runtime() const {
  return impl_->runtime;
}

ScenarioInterpreter::Result ScenarioInterpreter::execute_line(
    const std::string& line) {
  auto tokens = tokenize(line);
  if (tokens.empty()) return {true, ""};
  try {
    return {true, impl_->handle(tokens)};
  } catch (const ScenarioError& e) {
    return {false, e.what};
  } catch (const std::exception& e) {
    return {false, e.what()};
  }
}

std::size_t ScenarioInterpreter::run(std::istream& in, std::ostream& out,
                                     bool echo_commands) {
  std::size_t failures = 0;
  std::size_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (echo_commands && !line.empty() && line[0] != '#') {
      out << "> " << line << "\n";
    }
    auto result = execute_line(line);
    if (!result.ok) {
      ++failures;
      out << "line " << line_no << ": error: " << result.output << "\n";
    } else if (!result.output.empty()) {
      out << result.output << "\n";
    }
  }
  return failures;
}

}  // namespace sdx::core
