#pragma once

/// \file monitor.hpp
/// Traffic monitoring for reactive SDX applications (paper §2,
/// "redirection through middleboxes": "when traffic measurements suggest a
/// possible denial-of-service attack, an ISP can ... forward it through a
/// traffic scrubber").
///
/// TrafficMonitor aggregates observed packets by source block and
/// destination participant over a sliding time window and surfaces the
/// heavy hitters; examples/ddos_scrubber.cpp uses it to install a
/// scrubbing service chain automatically when a source block crosses the
/// threshold.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "netbase/ip.hpp"
#include "netbase/packet.hpp"

namespace sdx::core {

class TrafficMonitor {
 public:
  /// \p window_s — sliding window length; \p block_len — source
  /// aggregation granularity (default /24, the paper's "targeted subsets
  /// of traffic").
  explicit TrafficMonitor(double window_s = 60.0, int block_len = 24)
      : window_s_(window_s), block_len_(block_len) {}

  /// Records one delivered packet at logical time \p now.
  void observe(double now, const net::PacketHeader& frame,
               bgp::ParticipantId to);

  struct HeavyHitter {
    net::Ipv4Prefix source_block;
    bgp::ParticipantId victim = 0;
    std::uint64_t packets = 0;
  };

  /// Source blocks exceeding \p threshold packets toward one participant
  /// within the window, heaviest first. \p now prunes expired samples.
  std::vector<HeavyHitter> heavy_hitters(double now,
                                         std::uint64_t threshold);

  std::uint64_t observed_total() const { return total_; }
  int block_length() const { return block_len_; }

 private:
  struct Key {
    std::uint32_t block = 0;
    bgp::ParticipantId victim = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (std::uint64_t{k.block} << 20) ^ k.victim);
    }
  };
  struct Sample {
    double time = 0;
    Key key;
  };

  void prune(double now);

  double window_s_;
  int block_len_;
  std::deque<Sample> samples_;
  std::unordered_map<Key, std::uint64_t, KeyHash> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace sdx::core
