#pragma once

/// \file chaining.hpp
/// Service chaining — the §8 extension the paper envisions: "participant
/// ASes might eventually write policies ... to control how traffic flows
/// through middleboxes (and other cloud-hosted services) along the path
/// between source and destination, thereby enabling 'service chaining'".
///
/// A chain M₁ → M₂ → … → Mₖ over a traffic class is realized with the
/// existing primitives, keeping every hop consistent with BGP:
///
///   * the owner's outbound clause steers the class to M₁;
///   * each middlebox Mᵢ gets an outbound clause steering the class (which
///     its router re-injects after processing) to Mᵢ₊₁;
///   * Mₖ's processed traffic follows the BGP default to the destination;
///   * every chain element re-announces the destination prefixes with
///     itself prepended (the scrubbing-transit pattern), which is exactly
///     what makes each hop pass the §4.1 BGP-consistency filter.

#include <vector>

#include "sdx/runtime.hpp"

namespace sdx::core {

struct ServiceChain {
  /// Who steers its traffic into the chain.
  ParticipantId owner = 0;
  /// The traffic class; dst_prefixes must be non-empty (they determine the
  /// routes the chain elements must carry).
  ClauseMatch match;
  /// Ordered middlebox participants (≥1, physical, distinct, ≠ owner).
  std::vector<ParticipantId> middleboxes;
};

/// Installs the chain's clauses (and, when \p announce_routes, the chain
/// elements' re-announcements of the destination prefixes). Call
/// runtime.install() afterwards to deploy. Throws std::invalid_argument on
/// a malformed chain.
void install_chain(SdxRuntime& runtime, const ServiceChain& chain,
                   bool announce_routes = true);

}  // namespace sdx::core
