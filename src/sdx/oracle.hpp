#pragma once

/// \file oracle.hpp
/// Reference end-to-end forwarding semantics of the SDX, written directly
/// from the paper's prose rather than from the compiler's data structures.
/// Property tests compare the compiled fabric's packet-by-packet behaviour
/// (including border-router VMAC tagging) against this oracle — invariant 2
/// through 6 of DESIGN.md §6.
///
/// Spec implemented here, for a packet sent by participant S from port q:
///   1. S's router needs a route: the best route the route server
///      advertised to S for the longest matching prefix p*; otherwise the
///      packet never enters the fabric.
///   2. The first outbound clause of S whose match covers the packet, whose
///      dst-prefix constraint contains p*, and whose target exported p* to
///      S, wins; the packet goes to that target's virtual switch.
///   3. Otherwise the first matching remote-participant rewrite clause
///      applies; the rewritten packet goes to the virtual switch of the
///      participant owning the remote participant's best route for the
///      rewritten destination.
///   4. Otherwise the packet defaults to the virtual switch of S's best
///      route for p*.
///   5. At the receiving virtual switch: first matching inbound clause
///      (rewrites + chosen port + that port's MAC); else a frame already
///      addressed to one of the receiver's port MACs exits there; else the
///      primary port with the destination MAC rewritten.
///   6. A packet whose egress equals its ingress port is dropped.

#include <optional>
#include <vector>

#include "bgp/route_server.hpp"
#include "netbase/packet.hpp"
#include "sdx/participant.hpp"
#include "sdx/port_map.hpp"

namespace sdx::core {

struct OracleDelivery {
  net::PortId egress = 0;
  net::PacketHeader frame;  ///< final header (dst MAC as the receiver sees it)
};

/// Computes the expected delivery for \p payload sent by \p sender out of
/// its port with index \p sender_port (the frame's dst MAC is derived by
/// the oracle itself: VMAC semantics for grouped prefixes, the real
/// next-hop MAC otherwise). Empty = dropped somewhere along the path.
std::vector<OracleDelivery> oracle_forward(
    const std::vector<Participant>& participants, const PortMap& ports,
    const bgp::RouteServer& server, ParticipantId sender,
    std::size_t sender_port, net::PacketHeader payload);

}  // namespace sdx::core
