#pragma once

/// \file parallel.hpp
/// A small fixed thread pool with deterministic fork/join loops — the
/// execution layer behind the parallel SDX compilation pipeline.
///
/// Design constraints (see docs/ARCHITECTURE.md "Parallel compilation"):
///
///   * no work stealing, no task graph: one blocking `parallel_for` at a
///     time splits an index range into chunks that workers (and the calling
///     thread) claim from a shared counter;
///   * determinism is the caller's contract: loop bodies write only to
///     slots owned by their index, so the merged result is independent of
///     which thread ran which chunk and of the thread count;
///   * 1-thread pools and tiny ranges never touch the pool machinery —
///     the loop body runs inline on the caller, so a serial configuration
///     is exactly the pre-parallel code path;
///   * loop bodies may update telemetry instruments (src/telemetry/ —
///     relaxed-atomic counters/gauges/histograms) freely: no ordering is
///     promised between chunks, which is exactly what those instruments
///     need. tests/test_telemetry.cpp holds this contract under TSan.
///
/// Besides the fork/join loops the pool accepts one-off background tasks
/// (`submit`) — the execution vehicle of the runtime's asynchronous
/// background recompilation. Tasks and loops share the workers: a worker
/// busy on a task simply doesn't claim loop chunks (the caller always
/// participates, so loops still complete).
///
/// The pool is cheap to construct (workers are spawned once, parked on a
/// condition variable between loops) but it is not reentrant: calling
/// `parallel_for` from inside a loop body is undefined.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sdx::net {

class ThreadPool {
 public:
  /// \p threads = 0 picks one thread per hardware thread; 1 is fully
  /// serial (no workers are spawned).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, including the calling thread.
  unsigned size() const { return size_; }

  /// Runs \p body(begin, end) over disjoint sub-ranges covering [0, n).
  /// Blocks until every index has been processed. Chunks are at least
  /// \p grain indices so tiny per-index work amortizes the claim counter;
  /// with one thread (or when one chunk suffices) the body runs inline.
  /// The first exception thrown by any chunk is rethrown on the caller
  /// after the loop completes.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// One-off background task: runs \p task on the first free worker (FIFO)
  /// and returns a future that becomes ready when it finishes (exceptions
  /// propagate through the future). With no workers (size() == 1) the task
  /// runs inline on the submitting thread and the future is already ready.
  /// Tasks still queued when the pool is destroyed are dropped — their
  /// futures surface std::future_error(broken_promise).
  std::future<void> submit(std::function<void()> task);

  /// Index-slotted map: out[i] = fn(i), with fn invoked concurrently.
  template <typename F>
  auto parallel_map(std::size_t n, std::size_t grain, F&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    std::vector<decltype(fn(std::size_t{}))> out(n);
    parallel_for(n, grain, [&out, &fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    return out;
  }

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};      ///< next unclaimed chunk
    std::atomic<std::size_t> finished{0};  ///< chunks fully executed
    std::exception_ptr error;              ///< first failure (under mu_)
    unsigned active = 0;                   ///< workers inside drain (under mu_)
  };

  void worker_loop();
  void drain(Job& job);

  unsigned size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;  ///< workers: a new job is posted
  std::condition_variable done_;  ///< caller: job complete, workers drained
  Job* job_ = nullptr;            ///< current job (under mu_)
  std::deque<std::packaged_task<void()>> tasks_;  ///< submitted (under mu_)
  std::uint64_t epoch_ = 0;       ///< bumped per job so workers wake once
  bool stop_ = false;
};

}  // namespace sdx::net
