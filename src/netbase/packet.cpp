#include "netbase/packet.hpp"

#include <ostream>
#include <sstream>

namespace sdx::net {

std::string_view field_name(Field f) {
  switch (f) {
    case Field::kPort: return "port";
    case Field::kSrcMac: return "srcmac";
    case Field::kDstMac: return "dstmac";
    case Field::kEthType: return "ethtype";
    case Field::kSrcIp: return "srcip";
    case Field::kDstIp: return "dstip";
    case Field::kIpProto: return "ipproto";
    case Field::kSrcPort: return "srcport";
    case Field::kDstPort: return "dstport";
  }
  return "?";
}

std::string PacketHeader::to_string() const {
  std::ostringstream os;
  os << "{port=" << port() << " " << src_mac() << "->" << dst_mac()
     << " " << src_ip() << ":" << get(Field::kSrcPort) << " -> "
     << dst_ip() << ":" << get(Field::kDstPort)
     << " proto=" << get(Field::kIpProto) << "}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const PacketHeader& h) {
  return os << h.to_string();
}

}  // namespace sdx::net
