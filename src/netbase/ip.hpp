#pragma once

/// \file ip.hpp
/// IPv4 address and prefix value types used throughout the SDX.
///
/// Both types are small, trivially copyable values with total ordering so
/// they can be used as keys in ordered and unordered containers.

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace sdx::net {

/// An IPv4 address held in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  /// Builds an address from its four dotted-quad octets (a.b.c.d).
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation; returns std::nullopt on malformed input.
  static std::optional<Ipv4Address> try_parse(std::string_view text);

  /// Parses dotted-quad notation; throws std::invalid_argument on failure.
  static Ipv4Address parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address addr);

/// Returns the netmask for a prefix length in [0, 32].
constexpr std::uint32_t netmask(int prefix_len) {
  return prefix_len <= 0 ? 0u
         : prefix_len >= 32
             ? ~0u
             : ~0u << (32 - prefix_len);
}

/// An IPv4 prefix (CIDR block). The stored network address is always
/// normalized: host bits below the prefix length are zero.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Builds a prefix, masking off any host bits in \p network.
  constexpr Ipv4Prefix(Ipv4Address network, int length)
      : network_(network.value() & netmask(length)),
        length_(static_cast<std::uint8_t>(length)) {}

  /// Parses "a.b.c.d/len"; returns std::nullopt on malformed input.
  static std::optional<Ipv4Prefix> try_parse(std::string_view text);

  /// Parses "a.b.c.d/len"; throws std::invalid_argument on failure.
  static Ipv4Prefix parse(std::string_view text);

  /// A host prefix (/32) for a single address.
  static constexpr Ipv4Prefix host(Ipv4Address addr) {
    return Ipv4Prefix(addr, 32);
  }

  constexpr Ipv4Address network() const { return network_; }
  constexpr int length() const { return length_; }
  constexpr std::uint32_t mask() const { return netmask(length_); }

  /// True when \p addr falls inside this block.
  constexpr bool contains(Ipv4Address addr) const {
    return (addr.value() & mask()) == network_.value();
  }

  /// True when \p other is fully contained in this block (reflexive).
  constexpr bool contains(Ipv4Prefix other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  /// True when the two blocks share at least one address.
  constexpr bool overlaps(Ipv4Prefix other) const {
    return contains(other) || other.contains(*this);
  }

  /// The intersection of two blocks: the more specific prefix when they
  /// nest, std::nullopt when they are disjoint.
  constexpr std::optional<Ipv4Prefix> intersect(Ipv4Prefix other) const {
    if (contains(other)) return other;
    if (other.contains(*this)) return *this;
    return std::nullopt;
  }

  /// Number of addresses covered by the block (2^(32-length)).
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// Lowest and highest addresses of the block.
  constexpr Ipv4Address first_address() const { return network_; }
  constexpr Ipv4Address last_address() const {
    return Ipv4Address(network_.value() | ~mask());
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Prefix, Ipv4Prefix) = default;

 private:
  Ipv4Address network_{};
  std::uint8_t length_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Prefix prefix);

}  // namespace sdx::net

template <>
struct std::hash<sdx::net::Ipv4Address> {
  std::size_t operator()(sdx::net::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<sdx::net::Ipv4Prefix> {
  std::size_t operator()(sdx::net::Ipv4Prefix p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.network().value()} << 8) |
        static_cast<std::uint64_t>(p.length()));
  }
};
