#pragma once

/// \file packet.hpp
/// The packet-header model shared by the policy language, the flow-table
/// simulator and the SDX compiler.
///
/// Following Pyretic's "located packet" abstraction (paper §3.1), a packet's
/// current location (the switch port it sits at) is itself a header field
/// (Field::Port): forwarding is modelled as modifying that field, and policies
/// may match on it like any other field.

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "netbase/ip.hpp"
#include "netbase/mac.hpp"

namespace sdx::net {

/// Identifier of a switch port. The SDX compiler partitions the id space into
/// physical ports and per-participant virtual ports (see sdx::core::PortMap).
using PortId = std::uint32_t;

/// Packet-header fields a policy may match on or modify.
enum class Field : std::uint8_t {
  kPort = 0,   ///< current location (ingress port / chosen egress port)
  kSrcMac,     ///< Ethernet source address
  kDstMac,     ///< Ethernet destination address (carries the VMAC tag)
  kEthType,    ///< Ethernet type (0x0800 for IPv4)
  kSrcIp,      ///< IPv4 source address
  kDstIp,      ///< IPv4 destination address
  kIpProto,    ///< IP protocol (6 TCP, 17 UDP, ...)
  kSrcPort,    ///< transport source port
  kDstPort,    ///< transport destination port
};

inline constexpr int kFieldCount = 9;

/// All fields, in declaration order, for iteration.
inline constexpr std::array<Field, kFieldCount> kAllFields = {
    Field::kPort,   Field::kSrcMac,  Field::kDstMac,
    Field::kEthType, Field::kSrcIp,  Field::kDstIp,
    Field::kIpProto, Field::kSrcPort, Field::kDstPort,
};

constexpr int field_index(Field f) { return static_cast<int>(f); }

/// Short lower-case field name ("dstip", "srcport", ...), as used in the
/// paper's policy examples.
std::string_view field_name(Field f);

/// True for the two IPv4 address fields, which support prefix matches.
constexpr bool is_ip_field(Field f) {
  return f == Field::kSrcIp || f == Field::kDstIp;
}

/// Common EtherType / protocol constants used by examples and tests.
inline constexpr std::uint64_t kEthTypeIpv4 = 0x0800;
inline constexpr std::uint64_t kProtoTcp = 6;
inline constexpr std::uint64_t kProtoUdp = 17;

/// A packet header: one 64-bit value per field. MAC fields store
/// MacAddress::bits(), IP fields store Ipv4Address::value().
class PacketHeader {
 public:
  constexpr PacketHeader() = default;

  constexpr std::uint64_t get(Field f) const {
    return values_[static_cast<std::size_t>(field_index(f))];
  }
  constexpr void set(Field f, std::uint64_t v) {
    values_[static_cast<std::size_t>(field_index(f))] = v;
  }

  // Typed convenience accessors.
  constexpr PortId port() const { return static_cast<PortId>(get(Field::kPort)); }
  constexpr void set_port(PortId p) { set(Field::kPort, p); }
  MacAddress src_mac() const { return MacAddress(get(Field::kSrcMac)); }
  void set_src_mac(MacAddress m) { set(Field::kSrcMac, m.bits()); }
  MacAddress dst_mac() const { return MacAddress(get(Field::kDstMac)); }
  void set_dst_mac(MacAddress m) { set(Field::kDstMac, m.bits()); }
  Ipv4Address src_ip() const {
    return Ipv4Address(static_cast<std::uint32_t>(get(Field::kSrcIp)));
  }
  void set_src_ip(Ipv4Address a) { set(Field::kSrcIp, a.value()); }
  Ipv4Address dst_ip() const {
    return Ipv4Address(static_cast<std::uint32_t>(get(Field::kDstIp)));
  }
  void set_dst_ip(Ipv4Address a) { set(Field::kDstIp, a.value()); }

  std::string to_string() const;

  friend constexpr auto operator<=>(const PacketHeader&,
                                    const PacketHeader&) = default;

 private:
  std::array<std::uint64_t, kFieldCount> values_{};
};

std::ostream& operator<<(std::ostream& os, const PacketHeader& h);

/// Convenience builder used pervasively in tests and examples.
class PacketBuilder {
 public:
  PacketBuilder& port(PortId p) { h_.set_port(p); return *this; }
  PacketBuilder& src_mac(MacAddress m) { h_.set_src_mac(m); return *this; }
  PacketBuilder& dst_mac(MacAddress m) { h_.set_dst_mac(m); return *this; }
  PacketBuilder& eth_type(std::uint64_t t) { h_.set(Field::kEthType, t); return *this; }
  PacketBuilder& src_ip(Ipv4Address a) { h_.set_src_ip(a); return *this; }
  PacketBuilder& src_ip(std::string_view a) { h_.set_src_ip(Ipv4Address::parse(a)); return *this; }
  PacketBuilder& dst_ip(Ipv4Address a) { h_.set_dst_ip(a); return *this; }
  PacketBuilder& dst_ip(std::string_view a) { h_.set_dst_ip(Ipv4Address::parse(a)); return *this; }
  PacketBuilder& proto(std::uint64_t p) { h_.set(Field::kIpProto, p); return *this; }
  PacketBuilder& src_port(std::uint64_t p) { h_.set(Field::kSrcPort, p); return *this; }
  PacketBuilder& dst_port(std::uint64_t p) { h_.set(Field::kDstPort, p); return *this; }
  PacketHeader build() const { return h_; }

 private:
  PacketHeader h_{};
};

}  // namespace sdx::net

template <>
struct std::hash<sdx::net::PacketHeader> {
  std::size_t operator()(const sdx::net::PacketHeader& h) const noexcept {
    std::size_t seed = 0xcbf29ce484222325ull;
    for (auto f : sdx::net::kAllFields) {
      seed ^= std::hash<std::uint64_t>{}(h.get(f)) + 0x9e3779b97f4a7c15ull +
              (seed << 6) + (seed >> 2);
    }
    return seed;
  }
};
