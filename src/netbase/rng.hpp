#pragma once

/// \file rng.hpp
/// Deterministic, seedable RNG used by workload generators and property
/// tests. SplitMix64: tiny state, excellent statistical quality for this
/// purpose, and — unlike std::mt19937 — identical output across standard
/// libraries, which keeps benchmark workloads reproducible.

#include <cstdint>

namespace sdx::net {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed = 0x5DEECE66Dull)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); the tiny bias is
    // irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability \p p.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace sdx::net
