#pragma once

/// \file field_match.hpp
/// Ternary match primitives: a per-field constraint (FieldMatch) and a
/// conjunction over all header fields (FlowMatch).
///
/// These are the "match part" of OpenFlow-style rules. IP fields support
/// CIDR-prefix constraints, MAC fields additionally support arbitrary
/// value/mask (ternary) constraints for attribute-encoded VMAC tags, and
/// every other field is wildcard-or-exact. The algebra (intersection,
/// subsumption) is exact for arbitrary masks and is what classifier
/// composition in sdx::policy is built on.

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "netbase/ip.hpp"
#include "netbase/packet.hpp"

namespace sdx::net {

/// A constraint on a single header field: wildcard, exact value, or (for IP
/// fields) a CIDR prefix. Represented uniformly as value+mask over the low
/// bits: wildcard = mask 0, exact = full mask, prefix = CIDR mask.
class FieldMatch {
 public:
  /// Wildcard: matches anything.
  constexpr FieldMatch() = default;

  /// Exact-value constraint.
  static constexpr FieldMatch exact(std::uint64_t value) {
    return FieldMatch(value, ~std::uint64_t{0});
  }

  /// CIDR constraint for an IP field.
  static constexpr FieldMatch prefix(Ipv4Prefix p) {
    return FieldMatch(p.network().value(), p.mask());
  }

  /// Arbitrary value/mask (ternary) constraint — matches v iff
  /// (v & mask) == (value & mask). The attribute-encoded VMAC rules match
  /// dst-MAC bit fields this way; the FieldMatch algebra below is exact for
  /// any mask, not just prefix-shaped ones.
  static constexpr FieldMatch masked(std::uint64_t value, std::uint64_t mask) {
    return FieldMatch(value, mask);
  }

  static constexpr FieldMatch wildcard() { return FieldMatch(); }

  constexpr bool is_wildcard() const { return mask_ == 0; }
  constexpr bool is_exact() const { return mask_ == ~std::uint64_t{0}; }
  constexpr std::uint64_t value() const { return value_; }
  constexpr std::uint64_t mask() const { return mask_; }

  constexpr bool matches(std::uint64_t v) const {
    return (v & mask_) == value_;
  }

  /// When the mask is CIDR-shaped over an IPv4 field (a contiguous run of
  /// high bits within the low 32), returns the prefix length in [0, 32];
  /// std::nullopt for every other mask shape. Wildcard → 0. The packet
  /// classifier uses this to index CIDR tuples into a prefix-trie precheck.
  constexpr std::optional<int> cidr_prefix_length() const {
    if (mask_ == 0) return 0;
    if ((mask_ >> 32) != 0) return std::nullopt;
    const auto inv = static_cast<std::uint32_t>(~mask_);
    if ((inv & (inv + 1)) != 0) return std::nullopt;  // low bits not solid
    return std::popcount(static_cast<std::uint32_t>(mask_));
  }

  /// True when every value matching \p other also matches *this.
  constexpr bool subsumes(FieldMatch other) const {
    // this ⊇ other  ⇔  this's mask bits ⊆ other's mask bits and they agree.
    return (mask_ & other.mask_) == mask_ && (other.value_ & mask_) == value_;
  }

  /// Set intersection; std::nullopt when the constraints are contradictory.
  /// Exact for arbitrary masks: an intersection exists iff the values agree
  /// on the common mask bits, and is then the union of the constraints
  /// (mask = m1|m2, value = v1|v2 — each value is zero outside its mask).
  constexpr std::optional<FieldMatch> intersect(FieldMatch other) const {
    const std::uint64_t common = mask_ & other.mask_;
    if ((value_ & common) != (other.value_ & common)) return std::nullopt;
    FieldMatch out;
    out.mask_ = mask_ | other.mask_;
    out.value_ = value_ | other.value_;
    return out;
  }

  std::string to_string(Field f) const;

  friend constexpr auto operator<=>(FieldMatch, FieldMatch) = default;

 private:
  constexpr FieldMatch(std::uint64_t value, std::uint64_t mask)
      : value_(value & mask), mask_(mask) {}

  std::uint64_t value_ = 0;
  std::uint64_t mask_ = 0;
};

/// A conjunction of per-field constraints — the match of one flow rule.
class FlowMatch {
 public:
  constexpr FlowMatch() = default;

  /// The match that accepts every packet.
  static constexpr FlowMatch any() { return FlowMatch(); }

  /// Single-field exact match.
  static FlowMatch on(Field f, std::uint64_t value) {
    FlowMatch m;
    m.set(f, FieldMatch::exact(value));
    return m;
  }

  /// Single-field prefix match (IP fields only).
  static FlowMatch on_prefix(Field f, Ipv4Prefix p) {
    FlowMatch m;
    m.set(f, FieldMatch::prefix(p));
    return m;
  }

  constexpr const FieldMatch& field(Field f) const {
    return fields_[static_cast<std::size_t>(field_index(f))];
  }
  constexpr void set(Field f, FieldMatch fm) {
    fields_[static_cast<std::size_t>(field_index(f))] = fm;
  }

  /// Fluent per-field setters for building compound matches.
  FlowMatch& with(Field f, std::uint64_t value) {
    set(f, FieldMatch::exact(value));
    return *this;
  }
  FlowMatch& with_prefix(Field f, Ipv4Prefix p) {
    set(f, FieldMatch::prefix(p));
    return *this;
  }
  FlowMatch& with_masked(Field f, std::uint64_t value, std::uint64_t mask) {
    set(f, FieldMatch::masked(value, mask));
    return *this;
  }

  bool matches(const PacketHeader& h) const {
    for (auto f : kAllFields) {
      if (!field(f).matches(h.get(f))) return false;
    }
    return true;
  }

  bool is_wildcard() const {
    for (auto f : kAllFields) {
      if (!field(f).is_wildcard()) return false;
    }
    return true;
  }

  /// True when every packet matching \p other also matches *this.
  bool subsumes(const FlowMatch& other) const {
    for (auto f : kAllFields) {
      if (!field(f).subsumes(other.field(f))) return false;
    }
    return true;
  }

  /// Conjunction of two matches; std::nullopt when unsatisfiable.
  std::optional<FlowMatch> intersect(const FlowMatch& other) const {
    FlowMatch out;
    for (auto f : kAllFields) {
      auto fm = field(f).intersect(other.field(f));
      if (!fm) return std::nullopt;
      out.set(f, *fm);
    }
    return out;
  }

  /// Number of constrained (non-wildcard) fields; used as a priority hint.
  int constrained_fields() const {
    int n = 0;
    for (auto f : kAllFields) n += field(f).is_wildcard() ? 0 : 1;
    return n;
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const FlowMatch&, const FlowMatch&) =
      default;

 private:
  std::array<FieldMatch, kFieldCount> fields_{};
};

std::ostream& operator<<(std::ostream& os, const FlowMatch& m);

}  // namespace sdx::net

template <>
struct std::hash<sdx::net::FlowMatch> {
  std::size_t operator()(const sdx::net::FlowMatch& m) const noexcept {
    std::size_t seed = 0x9e3779b97f4a7c15ull;
    for (auto f : sdx::net::kAllFields) {
      const auto& fm = m.field(f);
      seed ^= std::hash<std::uint64_t>{}(fm.value() * 31 + fm.mask()) +
              0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    }
    return seed;
  }
};
