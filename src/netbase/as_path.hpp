#pragma once

/// \file as_path.hpp
/// BGP AS-path value type.
///
/// Lives in netbase (rather than sdx::bgp) because the SDX policy layer also
/// consumes AS paths, via the RIB attribute filters of paper §3.2 ("grouping
/// traffic based on BGP attributes").

#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace sdx::net {

/// An autonomous-system number (we use 4-byte ASNs throughout).
using Asn = std::uint32_t;

/// A BGP AS path, modelled as a single AS_SEQUENCE (the dominant segment
/// type; the wire codec in sdx::bgp handles segmenting).
class AsPath {
 public:
  AsPath() = default;
  AsPath(std::initializer_list<Asn> asns) : asns_(asns) {}
  explicit AsPath(std::vector<Asn> asns) : asns_(std::move(asns)) {}

  const std::vector<Asn>& asns() const { return asns_; }
  std::size_t length() const { return asns_.size(); }
  bool empty() const { return asns_.empty(); }

  /// First AS on the path — the neighbor the route was learned from.
  Asn first() const { return asns_.front(); }
  /// Last AS on the path — the origin of the prefix.
  Asn origin_as() const { return asns_.back(); }

  bool contains(Asn asn) const;

  /// A copy of this path with \p asn prepended (what a router does when
  /// advertising to an eBGP neighbor).
  AsPath prepended(Asn asn) const;

  /// Space-separated ASN list, e.g. "100 200 43515" — the form the AS-path
  /// regex filters of §3.2 are applied to.
  std::string to_string() const;

  friend auto operator<=>(const AsPath&, const AsPath&) = default;

 private:
  std::vector<Asn> asns_;
};

std::ostream& operator<<(std::ostream& os, const AsPath& path);

}  // namespace sdx::net

template <>
struct std::hash<sdx::net::AsPath> {
  std::size_t operator()(const sdx::net::AsPath& p) const noexcept {
    std::size_t seed = p.length();
    for (auto a : p.asns()) {
      seed ^= std::hash<std::uint32_t>{}(a) + 0x9e3779b97f4a7c15ull +
              (seed << 6) + (seed >> 2);
    }
    return seed;
  }
};
