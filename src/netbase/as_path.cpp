#include "netbase/as_path.hpp"

#include <algorithm>
#include <ostream>

namespace sdx::net {

bool AsPath::contains(Asn asn) const {
  return std::find(asns_.begin(), asns_.end(), asn) != asns_.end();
}

AsPath AsPath::prepended(Asn asn) const {
  std::vector<Asn> out;
  out.reserve(asns_.size() + 1);
  out.push_back(asn);
  out.insert(out.end(), asns_.begin(), asns_.end());
  return AsPath(std::move(out));
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < asns_.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += std::to_string(asns_[i]);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const AsPath& path) {
  return os << path.to_string();
}

}  // namespace sdx::net
