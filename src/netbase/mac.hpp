#pragma once

/// \file mac.hpp
/// 48-bit Ethernet MAC address value type.
///
/// The SDX uses MAC addresses both as ordinary layer-2 addresses and as
/// virtual MACs (VMACs) that tag packets with their forwarding equivalence
/// class (paper §4.2), so the type supports cheap conversion to and from a
/// 48-bit integer.

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace sdx::net {

/// A 48-bit MAC address stored as the low 48 bits of a std::uint64_t.
class MacAddress {
 public:
  static constexpr std::uint64_t kMask = 0xFFFF'FFFF'FFFFull;

  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint64_t bits) : bits_(bits & kMask) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive hex).
  static std::optional<MacAddress> try_parse(std::string_view text);
  static MacAddress parse(std::string_view text);

  /// The broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() { return MacAddress(kMask); }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (8 * (5 - i)));
  }

  /// True for the locally-administered bit (used by SDX virtual MACs).
  constexpr bool locally_administered() const {
    return (octet(0) & 0x02) != 0;
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(MacAddress, MacAddress) = default;

 private:
  std::uint64_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, MacAddress mac);

}  // namespace sdx::net

template <>
struct std::hash<sdx::net::MacAddress> {
  std::size_t operator()(sdx::net::MacAddress m) const noexcept {
    return std::hash<std::uint64_t>{}(m.bits());
  }
};
