#include "netbase/mac.hpp"

#include <ostream>
#include <stdexcept>

namespace sdx::net {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<MacAddress> MacAddress::try_parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::uint64_t bits = 0;
  for (int i = 0; i < 6; ++i) {
    if (i > 0 && text[static_cast<std::size_t>(3 * i - 1)] != ':') {
      return std::nullopt;
    }
    int hi = hex_digit(text[static_cast<std::size_t>(3 * i)]);
    int lo = hex_digit(text[static_cast<std::size_t>(3 * i + 1)]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint64_t>(hi * 16 + lo);
  }
  return MacAddress(bits);
}

MacAddress MacAddress::parse(std::string_view text) {
  auto mac = try_parse(text);
  if (!mac) {
    throw std::invalid_argument("bad MAC address: " + std::string(text));
  }
  return *mac;
}

std::string MacAddress::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(17);
  for (int i = 0; i < 6; ++i) {
    if (i > 0) out.push_back(':');
    out.push_back(kHex[octet(i) >> 4]);
    out.push_back(kHex[octet(i) & 0xF]);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, MacAddress mac) {
  return os << mac.to_string();
}

}  // namespace sdx::net
