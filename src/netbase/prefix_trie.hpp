#pragma once

/// \file prefix_trie.hpp
/// A binary (unibit) trie over IPv4 prefixes with longest-prefix-match
/// lookup. Used for border-router FIBs and for prefix bookkeeping in the
/// route server.
///
/// The trie stores one value per prefix. Nodes are kept in a contiguous
/// vector and addressed by index, which keeps the structure compact and
/// cheap to copy-construct empty.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/ip.hpp"

namespace sdx::net {

template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  /// Inserts or overwrites the value for \p prefix. Returns true when the
  /// prefix was newly inserted (false when overwritten).
  bool insert(Ipv4Prefix prefix, V value) {
    std::size_t node = walk_to(prefix, /*create=*/true);
    Node& n = nodes_[node];
    const bool fresh = !n.value.has_value();
    n.value = std::move(value);
    size_ += fresh ? 1 : 0;
    return fresh;
  }

  /// Removes the value for \p prefix; returns true when present.
  bool erase(Ipv4Prefix prefix) {
    std::size_t node = walk_to(prefix, /*create=*/false);
    if (node == kNone || !nodes_[node].value.has_value()) return false;
    nodes_[node].value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  const V* find(Ipv4Prefix prefix) const {
    std::size_t node = walk_to(prefix, /*create=*/false);
    if (node == kNone || !nodes_[node].value.has_value()) return nullptr;
    return &*nodes_[node].value;
  }

  V* find(Ipv4Prefix prefix) {
    return const_cast<V*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix-match lookup for an address; returns the matched prefix
  /// and its value, or std::nullopt when nothing covers the address.
  std::optional<std::pair<Ipv4Prefix, const V*>> lookup(
      Ipv4Address addr) const {
    std::size_t node = 0;
    std::optional<std::pair<Ipv4Prefix, const V*>> best;
    std::uint32_t bits = addr.value();
    for (int depth = 0;; ++depth) {
      const Node& n = nodes_[node];
      if (n.value.has_value()) {
        best = {Ipv4Prefix(Ipv4Address(addr.value() & netmask(depth)), depth),
                &*n.value};
      }
      if (depth == 32) break;
      const int bit = (bits >> 31) & 1;
      bits <<= 1;
      std::size_t child = n.child[bit];
      if (child == kNone) break;
      node = child;
    }
    return best;
  }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(0, 0u, 0, fn);
  }

  /// Visits the value of every stored prefix that covers \p addr, shortest
  /// prefix first — one root-to-leaf walk, no allocation. This is the
  /// data-plane tuple precheck: the packet classifier ORs per-prefix tuple
  /// bitmaps along the path to decide which CIDR tuples can possibly hold a
  /// matching rule before probing any of them.
  template <typename Fn>
  void for_each_covering(Ipv4Address addr, Fn&& fn) const {
    std::size_t node = 0;
    std::uint32_t bits = addr.value();
    for (int depth = 0;; ++depth) {
      const Node& n = nodes_[node];
      if (n.value.has_value()) fn(*n.value);
      if (depth == 32) break;
      const int bit = (bits >> 31) & 1;
      bits <<= 1;
      if (n.child[bit] == kNone) break;
      node = n.child[bit];
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    nodes_.clear();
    nodes_.emplace_back();
    size_ = 0;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Node {
    std::size_t child[2] = {kNone, kNone};
    std::optional<V> value;
  };

  std::size_t walk_to(Ipv4Prefix prefix, bool create) {
    std::size_t node = 0;
    std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> 31) & 1;
      bits <<= 1;
      std::size_t child = nodes_[node].child[bit];
      if (child == kNone) {
        if (!create) return kNone;
        child = nodes_.size();
        nodes_[node].child[bit] = child;
        nodes_.emplace_back();
      }
      node = child;
    }
    return node;
  }

  std::size_t walk_to(Ipv4Prefix prefix, bool create) const {
    // const overload never creates.
    (void)create;
    std::size_t node = 0;
    std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> 31) & 1;
      bits <<= 1;
      std::size_t child = nodes_[node].child[bit];
      if (child == kNone) return kNone;
      node = child;
    }
    return node;
  }

  template <typename Fn>
  void visit(std::size_t node, std::uint32_t acc, int depth, Fn& fn) const {
    const Node& n = nodes_[node];
    if (n.value.has_value()) {
      fn(Ipv4Prefix(Ipv4Address(acc), depth), *n.value);
    }
    if (depth == 32) return;
    if (n.child[0] != kNone) visit(n.child[0], acc, depth + 1, fn);
    if (n.child[1] != kNone) {
      visit(n.child[1], acc | (1u << (31 - depth)), depth + 1, fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace sdx::net
