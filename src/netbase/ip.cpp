#include "netbase/ip.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace sdx::net {

namespace {

/// Parses a decimal number in [0, max]; advances \p text past it.
std::optional<std::uint32_t> eat_number(std::string_view& text,
                                        std::uint32_t max) {
  std::uint32_t out = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin || out > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return out;
}

bool eat_char(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::try_parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !eat_char(text, '.')) return std::nullopt;
    auto octet = eat_number(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(value);
}

Ipv4Address Ipv4Address::parse(std::string_view text) {
  auto addr = try_parse(text);
  if (!addr) {
    throw std::invalid_argument("bad IPv4 address: " + std::string(text));
  }
  return *addr;
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Address addr) {
  return os << addr.to_string();
}

std::optional<Ipv4Prefix> Ipv4Prefix::try_parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::try_parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto rest = text.substr(slash + 1);
  auto len = eat_number(rest, 32);
  if (!len || !rest.empty()) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<int>(*len));
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view text) {
  auto prefix = try_parse(text);
  if (!prefix) {
    throw std::invalid_argument("bad IPv4 prefix: " + std::string(text));
  }
  return *prefix;
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, Ipv4Prefix prefix) {
  return os << prefix.to_string();
}

}  // namespace sdx::net
