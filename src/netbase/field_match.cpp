#include "netbase/field_match.hpp"

#include <bit>
#include <ostream>
#include <sstream>

namespace sdx::net {

std::string FieldMatch::to_string(Field f) const {
  if (is_wildcard()) return "*";
  std::ostringstream os;
  if (is_ip_field(f)) {
    const int len = std::popcount(static_cast<std::uint32_t>(mask_));
    os << Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(value_)), len);
  } else if (f == Field::kSrcMac || f == Field::kDstMac) {
    os << MacAddress(value_);
    if (!is_exact()) {
      // Masked (attribute-bit) MAC constraint: the mask is part of the
      // rule's identity, so it must be part of the printed form — the
      // compiled-artifact fingerprint is built from these strings.
      os << "/" << MacAddress(mask_);
    }
  } else {
    os << value_;
    if (!is_exact()) os << "&0x" << std::hex << mask_ << std::dec;
  }
  return os.str();
}

std::string FlowMatch::to_string() const {
  std::ostringstream os;
  os << "match(";
  bool first = true;
  for (auto f : kAllFields) {
    if (field(f).is_wildcard()) continue;
    if (!first) os << ", ";
    first = false;
    os << field_name(f) << "=" << field(f).to_string(f);
  }
  if (first) os << "*";
  os << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FlowMatch& m) {
  return os << m.to_string();
}

}  // namespace sdx::net
