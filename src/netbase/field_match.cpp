#include "netbase/field_match.hpp"

#include <bit>
#include <ostream>
#include <sstream>

namespace sdx::net {

std::string FieldMatch::to_string(Field f) const {
  if (is_wildcard()) return "*";
  std::ostringstream os;
  if (is_ip_field(f)) {
    const int len = std::popcount(static_cast<std::uint32_t>(mask_));
    os << Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(value_)), len);
  } else if (f == Field::kSrcMac || f == Field::kDstMac) {
    os << MacAddress(value_);
  } else {
    os << value_;
  }
  return os.str();
}

std::string FlowMatch::to_string() const {
  std::ostringstream os;
  os << "match(";
  bool first = true;
  for (auto f : kAllFields) {
    if (field(f).is_wildcard()) continue;
    if (!first) os << ", ";
    first = false;
    os << field_name(f) << "=" << field(f).to_string(f);
  }
  if (first) os << "*";
  os << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FlowMatch& m) {
  return os << m.to_string();
}

}  // namespace sdx::net
