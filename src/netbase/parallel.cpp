#include "netbase/parallel.hpp"

#include <algorithm>

namespace sdx::net {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_ = threads == 0 ? hw : threads;
  workers_.reserve(size_ - 1);
  for (unsigned i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) return;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    try {
      (*job.body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.chunks) {
      std::lock_guard<std::mutex> lk(mu_);
      done_.notify_all();
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> result = packaged.get_future();
  if (size_ == 1) {
    packaged();  // no workers: degenerate to synchronous execution
    return result;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push_back(std::move(packaged));
  }
  wake_.notify_all();
  return result;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    wake_.wait(lk, [this, seen] {
      return stop_ || epoch_ != seen || !tasks_.empty();
    });
    if (stop_) return;
    if (!tasks_.empty()) {
      std::packaged_task<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lk.unlock();
      task();  // exceptions land in the task's future
      lk.lock();
      continue;
    }
    seen = epoch_;
    Job* job = job_;
    if (job == nullptr) continue;  // job already retired by the caller
    ++job->active;
    lk.unlock();
    drain(*job);
    lk.lock();
    if (--job->active == 0) done_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // Cap chunk count at a small multiple of the width: enough slack that an
  // uneven chunk doesn't serialize the tail, few enough that the claim
  // counter stays cold.
  const std::size_t max_chunks = static_cast<std::size_t>(size_) * 4;
  std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  std::size_t chunks = (n + chunk - 1) / chunk;
  if (size_ == 1 || chunks <= 1) {
    body(0, n);  // serial fast path: no pool machinery at all
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  job.chunk = chunk;
  job.chunks = chunks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++epoch_;
  }
  wake_.notify_all();
  drain(job);  // the caller is a full participant
  std::unique_lock<std::mutex> lk(mu_);
  done_.wait(lk, [&job] {
    return job.finished.load(std::memory_order_acquire) == job.chunks &&
           job.active == 0;
  });
  job_ = nullptr;
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace sdx::net
