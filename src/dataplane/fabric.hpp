#pragma once

/// \file fabric.hpp
/// End-to-end IXP data-plane harness: border routers attached to the SDX
/// switch ports, plus the shared ARP responder. Used by integration tests,
/// the examples, and the Figure 5 deployment benchmark to trace real
/// packet journeys (router FIB → VMAC tag → fabric rules → egress rewrite
/// → receiving router).

#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/arp.hpp"
#include "dataplane/border_router.hpp"
#include "dataplane/switch.hpp"

namespace sdx::dp {

class Fabric {
 public:
  ArpResponder& arp() { return arp_; }
  const ArpResponder& arp() const { return arp_; }
  SwitchSim& sdx_switch() { return switch_; }
  const SwitchSim& sdx_switch() const { return switch_; }

  /// Attaches a router to its IXP port and publishes its real MAC in the
  /// ARP table. The router must outlive the fabric registration.
  void attach(BorderRouter& router);

  const BorderRouter* router_at(net::PortId port) const;

  /// One delivered (or undeliverable) frame at an egress port.
  struct Delivery {
    net::PortId port = 0;
    const BorderRouter* receiver = nullptr;  ///< nullptr: no router there
    net::PacketHeader frame;
    bool accepted = false;  ///< receiver exists and the dst MAC is its own
  };

  /// Full journey of one IP packet: \p src forwards it (FIB+ARP), the
  /// switch processes the frame, and every egress copy is offered to the
  /// router on that port. An empty result means the packet was dropped at
  /// the source router (no route / no ARP) or inside the fabric.
  std::vector<Delivery> send(const BorderRouter& src,
                             net::PacketHeader payload);

  /// Injects an already-framed packet at its current port.
  std::vector<Delivery> inject(const net::PacketHeader& frame);

  /// Flattened deliveries of a burst: packet i's deliveries are
  /// deliveries[offsets[i] .. offsets[i+1]). A packet dropped at the
  /// source router or inside the fabric gets an empty range, exactly as
  /// send()/inject() would return an empty vector.
  struct BatchDeliveries {
    std::vector<Delivery> deliveries;
    std::vector<std::uint32_t> offsets;  ///< burst size + 1 entries

    std::size_t packets() const {
      return offsets.empty() ? 0 : offsets.size() - 1;
    }
    std::span<const Delivery> of(std::size_t i) const {
      return {deliveries.data() + offsets[i], offsets[i + 1] - offsets[i]};
    }
  };

  /// Burst counterpart of send(): forwards each payload through \p src's
  /// FIB+ARP, then runs every framed packet through the switch in one
  /// process_batch pass. Per-payload results match send() exactly.
  BatchDeliveries send_batch(const BorderRouter& src,
                             std::span<const net::PacketHeader> payloads);

  /// Burst counterpart of inject().
  BatchDeliveries inject_batch(std::span<const net::PacketHeader> frames);

 private:
  ArpResponder arp_;
  SwitchSim switch_;
  std::unordered_map<net::PortId, BorderRouter*> routers_;
};

}  // namespace sdx::dp
