#include "dataplane/flow_table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sdx::dp {

std::string FlowRule::to_string() const {
  std::ostringstream os;
  os << "prio=" << priority << " " << match.to_string() << " -> ";
  if (drops()) {
    os << "drop";
  } else {
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (i > 0) os << " | ";
      os << "[" << actions[i].to_string() << "]";
    }
  }
  os << " (cookie=" << cookie << ", n=" << packet_count << ")";
  return os.str();
}

void FlowTable::install(FlowRule rule) {
  const std::uint64_t seq = next_sequence_++;
  // Insertion point: after every rule with priority >= rule.priority that
  // was installed earlier (stable within equal priority).
  auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule.priority,
      [](std::uint32_t p, const FlowRule& r) { return p > r.priority; });
  const auto idx = static_cast<std::size_t>(pos - rules_.begin());
  rules_.insert(pos, std::move(rule));
  sequence_.insert(sequence_.begin() + static_cast<std::ptrdiff_t>(idx), seq);
}

void FlowTable::install_classifier(const Classifier& c,
                                   std::uint32_t priority_base,
                                   std::uint64_t cookie) {
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    FlowRule r;
    r.priority = priority_base + static_cast<std::uint32_t>(n - 1 - i);
    r.match = c.rules()[i].match;
    r.actions = c.rules()[i].actions;
    r.cookie = cookie;
    install(std::move(r));
  }
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  std::size_t removed = 0;
  for (std::size_t i = rules_.size(); i-- > 0;) {
    if (rules_[i].cookie == cookie) {
      rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(i));
      sequence_.erase(sequence_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    }
  }
  return removed;
}

void FlowTable::clear() {
  rules_.clear();
  sequence_.clear();
}

const FlowRule* FlowTable::lookup(const PacketHeader& h) const {
  for (const auto& r : rules_) {
    if (r.match.matches(h)) return &r;
  }
  return nullptr;
}

std::vector<PacketHeader> FlowTable::process(const PacketHeader& h) const {
  const FlowRule* r = lookup(h);
  if (r == nullptr) {
    ++missed_;
    if (miss_counter_ != nullptr) miss_counter_->inc();
    return {};
  }
  ++matched_;
  if (match_counter_ != nullptr) match_counter_->inc();
  ++r->packet_count;
  std::vector<PacketHeader> out;
  out.reserve(r->actions.size());
  for (const auto& a : r->actions) out.push_back(a.apply(h));
  return out;
}

std::string FlowTable::to_string() const {
  std::ostringstream os;
  for (const auto& r : rules_) os << r.to_string() << "\n";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FlowTable& t) {
  return os << t.to_string();
}

}  // namespace sdx::dp
