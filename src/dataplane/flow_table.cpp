#include "dataplane/flow_table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sdx::dp {

std::string FlowRule::to_string() const {
  std::ostringstream os;
  os << "prio=" << priority << " " << match.to_string() << " -> ";
  if (drops()) {
    os << "drop";
  } else {
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (i > 0) os << " | ";
      os << "[" << actions[i].to_string() << "]";
    }
  }
  os << " (cookie=" << cookie << ", n=" << packet_count.value() << ")";
  return os.str();
}

void FlowTable::install(FlowRule rule) {
  const std::uint64_t seq = next_sequence_++;
  std::size_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    slots_[idx].rule = std::move(rule);
    slots_[idx].seq = seq;
    slots_[idx].alive = true;
  } else {
    idx = slots_.size();
    slots_.push_back(Slot{std::move(rule), seq, true});
  }
  cookie_index_[slots_[idx].rule.cookie].push_back(idx);
  classifier_.insert(&slots_[idx].rule, seq);
  ++alive_;
}

void FlowTable::install_classifier(const Classifier& c,
                                   std::uint32_t priority_base,
                                   std::uint64_t cookie) {
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    FlowRule r;
    r.priority = priority_base + static_cast<std::uint32_t>(n - 1 - i);
    r.match = c.rules()[i].match;
    r.actions = c.rules()[i].actions;
    r.cookie = cookie;
    install(std::move(r));
  }
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  auto it = cookie_index_.find(cookie);
  if (it == cookie_index_.end()) return 0;
  std::size_t removed = 0;
  for (const std::size_t idx : it->second) {
    Slot& s = slots_[idx];
    // A recycled slot may linger in an old cookie's index; the alive +
    // cookie check filters those out.
    if (!s.alive || s.rule.cookie != cookie) continue;
    classifier_.erase(&s.rule);
    s.alive = false;
    free_.push_back(idx);
    ++removed;
    --alive_;
  }
  cookie_index_.erase(it);
  return removed;
}

void FlowTable::clear() {
  slots_.clear();
  free_.clear();
  cookie_index_.clear();
  alive_ = 0;
  classifier_.clear();
}

const FlowRule* FlowTable::lookup(const PacketHeader& h) const {
  if (mode_ == LookupMode::kLinear) return lookup_linear(h);
  return classifier_.lookup(h);
}

const FlowRule* FlowTable::lookup_linear(const PacketHeader& h) const {
  // Reference scan: best = highest priority, ties to lowest sequence.
  // Equivalent to first-match over the old (priority desc, seq asc)
  // sorted vector, without maintaining one.
  const Slot* best = nullptr;
  for (const Slot& s : slots_) {
    if (!s.alive || !s.rule.match.matches(h)) continue;
    if (best == nullptr || s.rule.priority > best->rule.priority ||
        (s.rule.priority == best->rule.priority && s.seq < best->seq)) {
      best = &s;
    }
  }
  return best != nullptr ? &best->rule : nullptr;
}

std::vector<PacketHeader> FlowTable::process(const PacketHeader& h) const {
  const FlowRule* r = lookup(h);
  if (r == nullptr) {
    missed_.fetch_add(1, std::memory_order_relaxed);
    if (miss_counter_ != nullptr) miss_counter_->inc();
    return {};
  }
  matched_.fetch_add(1, std::memory_order_relaxed);
  if (match_counter_ != nullptr) match_counter_->inc();
  r->packet_count.inc();
  std::vector<PacketHeader> out;
  out.reserve(r->actions.size());
  for (const auto& a : r->actions) out.push_back(a.apply(h));
  return out;
}

void FlowTable::lookup_batch(std::span<const PacketHeader> pkts,
                             std::span<const FlowRule*> out) const {
  if (mode_ == LookupMode::kLinear) {
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      out[i] = lookup_linear(pkts[i]);
    }
  } else {
    classifier_.lookup_batch(pkts, out);
  }
  if (batch_desync_) {
    // Oracle test seam: the batch path "reads" a stale empty snapshot.
    for (std::size_t i = 0; i < pkts.size(); ++i) out[i] = nullptr;
  }
}

FlowTable::BatchResult FlowTable::process_batch(
    std::span<const PacketHeader> pkts) const {
  const std::size_t n = pkts.size();
  BatchResult res;
  res.offsets.reserve(n + 1);
  res.offsets.push_back(0);
  thread_local std::vector<const FlowRule*> hits;
  hits.assign(n, nullptr);
  lookup_batch(pkts, hits);
  std::uint64_t matched = 0;
  std::uint64_t missed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FlowRule* r = hits[i];
    if (r == nullptr) {
      ++missed;
    } else {
      ++matched;
      r->packet_count.inc();
      for (const auto& a : r->actions) res.frames.push_back(a.apply(pkts[i]));
    }
    res.offsets.push_back(static_cast<std::uint32_t>(res.frames.size()));
  }
  if (matched > 0) {
    matched_.fetch_add(matched, std::memory_order_relaxed);
    if (match_counter_ != nullptr) match_counter_->inc(matched);
  }
  if (missed > 0) {
    missed_.fetch_add(missed, std::memory_order_relaxed);
    if (miss_counter_ != nullptr) miss_counter_->inc(missed);
  }
  return res;
}

std::vector<const FlowRule*> FlowTable::rules() const {
  struct Ref {
    const FlowRule* rule;
    std::uint64_t seq;
  };
  std::vector<Ref> refs;
  refs.reserve(alive_);
  for (const Slot& s : slots_) {
    if (s.alive) refs.push_back({&s.rule, s.seq});
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return a.rule->priority > b.rule->priority ||
           (a.rule->priority == b.rule->priority && a.seq < b.seq);
  });
  std::vector<const FlowRule*> out;
  out.reserve(refs.size());
  for (const Ref& r : refs) out.push_back(r.rule);
  return out;
}

std::optional<std::size_t> FlowTable::index_of(const FlowRule* rule) const {
  const auto ordered = rules();
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (ordered[i] == rule) return i;
  }
  return std::nullopt;
}

void FlowTable::set_vmac_lanes(const VmacLaneSpec& spec) {
  classifier_.reset(spec);
  for (const Slot& s : slots_) {
    if (s.alive) classifier_.insert(&s.rule, s.seq);
  }
}

std::string FlowTable::to_string() const {
  std::ostringstream os;
  for (const FlowRule* r : rules()) os << r->to_string() << "\n";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FlowTable& t) {
  return os << t.to_string();
}

}  // namespace sdx::dp
