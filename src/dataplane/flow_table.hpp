#pragma once

/// \file flow_table.hpp
/// An OpenFlow-style single-table flow table: prioritized ternary rules
/// with rewrite/output actions and per-rule counters. This is the install
/// target of the SDX compiler (the paper deploys on Open vSwitch; rule
/// counts, not throughput, are what the evaluation measures — but the
/// ROADMAP's live-traffic scenarios need real per-packet performance, so
/// lookups run through a classification pipeline, see
/// packet_classifier.hpp).
///
/// Storage is arena-style: rules live in stable deque slots that are
/// tombstoned on removal and recycled on install, so install_classifier /
/// remove_by_cookie never reshuffle a giant sorted vector and rule
/// pointers stay valid across unrelated mutations.
///
/// Concurrency: lookup() and process() in the default kClassified mode are
/// read-only on the table structure and use relaxed atomics for all
/// counters — any number of threads may classify packets concurrently, as
/// long as no install/remove/clear runs at the same time (single-writer,
/// externally synchronized, exactly like a hardware table update). The
/// kLinear reference mode shares the same contract.

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataplane/packet_classifier.hpp"
#include "netbase/field_match.hpp"
#include "netbase/packet.hpp"
#include "policy/classifier.hpp"
#include "telemetry/metrics.hpp"

namespace sdx::dp {

using net::FlowMatch;
using net::PacketHeader;
using net::PortId;
using policy::ActionSeq;
using policy::Classifier;

/// A monotonically increasing counter mutable from const lookup paths.
/// Relaxed ordering is sufficient: each increment is independent and reads
/// only need eventual totals (same contract as telemetry counters). Copying
/// snapshots the value, which keeps FlowRule copyable.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& o) : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  void inc() const { v_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  operator std::uint64_t() const { return value(); }

 private:
  mutable std::atomic<std::uint64_t> v_{0};
};

/// One installed flow rule. Higher priority wins; ties break on insertion
/// order (earlier first), matching the deterministic order of a compiled
/// classifier.
struct FlowRule {
  std::uint32_t priority = 0;
  FlowMatch match;
  std::vector<ActionSeq> actions;  ///< empty = drop
  std::uint64_t cookie = 0;        ///< rule group tag, for bulk removal
  RelaxedCounter packet_count;

  bool drops() const { return actions.empty(); }
  std::string to_string() const;
};

class FlowTable {
 public:
  /// Lookup strategy. kClassified (default) runs the lane/tuple pipeline;
  /// kLinear is the O(n) reference scan kept for differential testing and
  /// as the baseline in benches. Both produce the identical rule.
  enum class LookupMode { kClassified, kLinear };

  /// Installs one rule.
  void install(FlowRule rule);

  /// Installs a whole classifier as one priority band: rule i of the
  /// classifier gets priority base + size - 1 - i, so classifier order is
  /// preserved. All rules are tagged with \p cookie.
  void install_classifier(const Classifier& c, std::uint32_t priority_base,
                          std::uint64_t cookie);

  /// Removes every rule tagged with \p cookie; returns how many.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  void clear();

  /// Highest-priority matching rule (nullptr when none matches).
  const FlowRule* lookup(const PacketHeader& h) const;

  /// Table-hit processing: applies the matching rule's actions and bumps
  /// its counter. No match or a drop rule yields an empty set.
  std::vector<PacketHeader> process(const PacketHeader& h) const;

  /// Burst lookup: out[i] = lookup(pkts[i]) for every i, amortized across
  /// the burst (see PacketClassifier::lookup_batch). In kLinear mode this
  /// degrades to the per-packet reference scan, so both modes stay
  /// differentially comparable. Requires out.size() >= pkts.size().
  void lookup_batch(std::span<const PacketHeader> pkts,
                    std::span<const FlowRule*> out) const;

  /// Flattened result of a burst of process() calls: packet i's output
  /// frames are frames[offsets[i] .. offsets[i+1]). One allocation-stable
  /// pair of arrays instead of a vector-of-vectors.
  struct BatchResult {
    std::vector<PacketHeader> frames;
    std::vector<std::uint32_t> offsets;  ///< pkts.size() + 1 entries

    std::size_t packets() const {
      return offsets.empty() ? 0 : offsets.size() - 1;
    }
    std::span<const PacketHeader> frames_of(std::size_t i) const {
      return {frames.data() + offsets[i], offsets[i + 1] - offsets[i]};
    }
  };

  /// Burst processing: per packet, exactly process()'s semantics — same
  /// rule hit, same action application, and counter totals identical to
  /// per-packet processing (match/miss totals are batch-added; per-rule
  /// packet counts bump once per hit). Same concurrency contract as
  /// process(): any number of threads may run bursts concurrently as long
  /// as no mutation runs.
  BatchResult process_batch(std::span<const PacketHeader> pkts) const;

  std::size_t size() const { return alive_; }

  /// Live rules in match order (priority desc, insertion asc). Built per
  /// call; the pointers stay valid until the rules are removed or the
  /// table cleared.
  std::vector<const FlowRule*> rules() const;

  /// Position of \p rule in the rules() match order; nullopt when the
  /// pointer is not a live rule of this table.
  std::optional<std::size_t> index_of(const FlowRule* rule) const;

  LookupMode lookup_mode() const { return mode_; }
  void set_lookup_mode(LookupMode m) { mode_ = m; }

  /// Adopts the control plane's VMAC bit layout: masked dst-MAC rules that
  /// match the layout's shapes are re-indexed into exact-match lanes. All
  /// live rules are re-indexed; semantics never change, only probe cost.
  void set_vmac_lanes(const VmacLaneSpec& spec);

  const PacketClassifier& classifier() const { return classifier_; }

  /// Test seam for the differential oracle's fault self-check: wipes the
  /// classifier index without touching rule storage, so classified lookups
  /// visibly diverge from the linear reference.
  void corrupt_classifier_for_test() { classifier_.clear(); }

  /// Test seam for the oracle's batch-desync fault (equivalence g): makes
  /// the batched path behave as if it consulted a stale, empty index
  /// snapshot — every burst packet misses — while per-packet lookups stay
  /// correct. Single lookup()/process() are unaffected.
  void plant_batch_desync_for_test() { batch_desync_ = true; }

  std::uint64_t total_matched() const {
    return matched_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_missed() const {
    return missed_.load(std::memory_order_relaxed);
  }

  /// Mirrors match/miss accounting into registry counters (either may be
  /// nullptr to detach). The counters must outlive the table's use.
  void set_counters(telemetry::Counter* matched, telemetry::Counter* missed) {
    match_counter_ = matched;
    miss_counter_ = missed;
  }

  std::string to_string() const;

 private:
  struct Slot {
    FlowRule rule;
    std::uint64_t seq = 0;
    bool alive = false;
  };

  const FlowRule* lookup_linear(const PacketHeader& h) const;

  // Deque keeps slot addresses stable across growth; tombstoned slots are
  // recycled through free_ so long-lived tables don't leak arena space.
  std::deque<Slot> slots_;
  std::vector<std::size_t> free_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cookie_index_;
  std::size_t alive_ = 0;
  std::uint64_t next_sequence_ = 0;

  PacketClassifier classifier_;
  LookupMode mode_ = LookupMode::kClassified;
  bool batch_desync_ = false;  ///< oracle test seam, see above

  mutable std::atomic<std::uint64_t> matched_{0};
  mutable std::atomic<std::uint64_t> missed_{0};
  telemetry::Counter* match_counter_ = nullptr;
  telemetry::Counter* miss_counter_ = nullptr;
};

std::ostream& operator<<(std::ostream& os, const FlowTable& t);

}  // namespace sdx::dp
