#pragma once

/// \file flow_table.hpp
/// An OpenFlow-style single-table flow table: prioritized ternary rules
/// with rewrite/output actions and per-rule counters. This is the install
/// target of the SDX compiler (the paper deploys on Open vSwitch; rule
/// counts, not throughput, are what the evaluation measures, so a faithful
/// match/action simulator is the right substrate).

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netbase/field_match.hpp"
#include "netbase/packet.hpp"
#include "policy/classifier.hpp"
#include "telemetry/metrics.hpp"

namespace sdx::dp {

using net::FlowMatch;
using net::PacketHeader;
using net::PortId;
using policy::ActionSeq;
using policy::Classifier;

/// One installed flow rule. Higher priority wins; ties break on insertion
/// order (earlier first), matching the deterministic order of a compiled
/// classifier.
struct FlowRule {
  std::uint32_t priority = 0;
  FlowMatch match;
  std::vector<ActionSeq> actions;  ///< empty = drop
  std::uint64_t cookie = 0;        ///< rule group tag, for bulk removal
  mutable std::uint64_t packet_count = 0;

  bool drops() const { return actions.empty(); }
  std::string to_string() const;
};

class FlowTable {
 public:
  /// Installs one rule.
  void install(FlowRule rule);

  /// Installs a whole classifier as one priority band: rule i of the
  /// classifier gets priority base + size - 1 - i, so classifier order is
  /// preserved. All rules are tagged with \p cookie.
  void install_classifier(const Classifier& c, std::uint32_t priority_base,
                          std::uint64_t cookie);

  /// Removes every rule tagged with \p cookie; returns how many.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  void clear();

  /// Highest-priority matching rule (nullptr when none matches).
  const FlowRule* lookup(const PacketHeader& h) const;

  /// Table-hit processing: applies the matching rule's actions and bumps
  /// its counter. No match or a drop rule yields an empty set.
  std::vector<PacketHeader> process(const PacketHeader& h) const;

  std::size_t size() const { return rules_.size(); }
  const std::vector<FlowRule>& rules() const { return rules_; }

  std::uint64_t total_matched() const { return matched_; }
  std::uint64_t total_missed() const { return missed_; }

  /// Mirrors match/miss accounting into registry counters (either may be
  /// nullptr to detach). The counters must outlive the table's use.
  void set_counters(telemetry::Counter* matched, telemetry::Counter* missed) {
    match_counter_ = matched;
    miss_counter_ = missed;
  }

  std::string to_string() const;

 private:
  // Kept sorted by (priority desc, sequence asc).
  std::vector<FlowRule> rules_;
  std::vector<std::uint64_t> sequence_;
  std::uint64_t next_sequence_ = 0;
  mutable std::uint64_t matched_ = 0;
  mutable std::uint64_t missed_ = 0;
  telemetry::Counter* match_counter_ = nullptr;
  telemetry::Counter* miss_counter_ = nullptr;
};

std::ostream& operator<<(std::ostream& os, const FlowTable& t);

}  // namespace sdx::dp
