#include "dataplane/switch.hpp"

namespace sdx::dp {

std::vector<net::PacketHeader> SwitchSim::inject(
    const net::PacketHeader& frame) {
  ++rx_[frame.port()];
  auto produced = table_.process(frame);
  std::vector<net::PacketHeader> out;
  out.reserve(produced.size());
  for (auto& p : produced) {
    if (p.port() == frame.port()) {
      ++dropped_;
      continue;
    }
    ++tx_[p.port()];
    out.push_back(std::move(p));
  }
  if (out.empty() && produced.empty()) ++dropped_;
  return out;
}

FlowTable::BatchResult SwitchSim::inject_batch(
    std::span<const net::PacketHeader> frames) {
  const FlowTable::BatchResult produced = table_.process_batch(frames);
  FlowTable::BatchResult out;
  out.offsets.reserve(frames.size() + 1);
  out.offsets.push_back(0);
  out.frames.reserve(produced.frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ++rx_[frames[i].port()];
    const auto egress = produced.frames_of(i);
    bool forwarded = false;
    for (const auto& p : egress) {
      if (p.port() == frames[i].port()) {
        ++dropped_;
        continue;
      }
      ++tx_[p.port()];
      out.frames.push_back(p);
      forwarded = true;
    }
    if (!forwarded && egress.empty()) ++dropped_;
    out.offsets.push_back(static_cast<std::uint32_t>(out.frames.size()));
  }
  return out;
}

std::uint64_t SwitchSim::tx_packets(net::PortId port) const {
  auto it = tx_.find(port);
  return it == tx_.end() ? 0 : it->second;
}

std::uint64_t SwitchSim::rx_packets(net::PortId port) const {
  auto it = rx_.find(port);
  return it == rx_.end() ? 0 : it->second;
}

void SwitchSim::reset_counters() {
  tx_.clear();
  rx_.clear();
  dropped_ = 0;
}

}  // namespace sdx::dp
