#include "dataplane/switch.hpp"

namespace sdx::dp {

std::vector<net::PacketHeader> SwitchSim::inject(
    const net::PacketHeader& frame) {
  ++rx_[frame.port()];
  auto produced = table_.process(frame);
  std::vector<net::PacketHeader> out;
  out.reserve(produced.size());
  for (auto& p : produced) {
    if (p.port() == frame.port()) {
      ++dropped_;
      continue;
    }
    ++tx_[p.port()];
    out.push_back(std::move(p));
  }
  if (out.empty() && produced.empty()) ++dropped_;
  return out;
}

std::uint64_t SwitchSim::tx_packets(net::PortId port) const {
  auto it = tx_.find(port);
  return it == tx_.end() ? 0 : it->second;
}

std::uint64_t SwitchSim::rx_packets(net::PortId port) const {
  auto it = rx_.find(port);
  return it == rx_.end() ? 0 : it->second;
}

void SwitchSim::reset_counters() {
  tx_.clear();
  rx_.clear();
  dropped_ = 0;
}

}  // namespace sdx::dp
