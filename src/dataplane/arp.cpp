// arp.hpp is header-only; this translation unit anchors the target.
#include "dataplane/arp.hpp"
