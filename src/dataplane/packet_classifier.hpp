#pragma once

/// \file packet_classifier.hpp
/// Sub-microsecond packet classification for the flow-table hot path.
///
/// The linear rule scan in FlowTable is fine for the paper's rule-count
/// experiments but collapses at iSDX scale (13.7 µs per lookup at 4096
/// rules). This classifier decomposes the installed rule set into lanes
/// ordered by how cheap they are to probe:
///
///   lane 1 — exact dst-MAC hash. Rules whose only constraint is an exact
///            dst-MAC (per-group defaults, MAC-learning entries — the
///            dominant population of a compiled stage-1 table) resolve in
///            one hash probe.
///   lane 2 — VMAC field lanes. Masked dst-MAC rules that match the active
///            VMAC layout's shapes (the next-hop field under its mask, or a
///            single attribute bit) are decoded into an exact next-hop hash
///            and per-attribute-bit buckets. A tagged packet probes the
///            next-hop lane once and one bucket per set attribute bit.
///   lane 3 — tuple-space search (Srinivasan et al.) over everything else:
///            rules grouped by mask signature, hashed on their masked field
///            values within each tuple, tuples visited in max-priority
///            order with early exit, and CIDR tuples pruned by a
///            prefix-trie set-membership precheck before any hash probe.
///
/// Priority resolution spans all lanes: the winner is the matching rule
/// with the highest priority, ties broken by insertion sequence (lowest
/// wins), exactly mirroring the linear reference scan.
///
/// Two lookup entry points share that contract: lookup() classifies one
/// packet, lookup_batch() classifies a whole burst lane-major — one pass
/// per lane over the burst, per-burst memoization of trie viability and
/// per-MAC lane results, SoA key hashing — and is bit-for-bit equivalent
/// to calling lookup() per packet (enforced by randomized tests and the
/// differential oracle's equivalence (g)).
///
/// Storage is flat for ablation-scale tables: every lane bucket lives in a
/// FlatEntryMap (see intern.hpp), and each tuple's per-field mask vector
/// is interned — stored once in the tuple index and shared by reference —
/// so a 256k-rule ungrouped table costs a handful of contiguous arrays,
/// not hundreds of thousands of node allocations.

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/intern.hpp"
#include "netbase/field_match.hpp"
#include "netbase/packet.hpp"
#include "netbase/prefix_trie.hpp"

namespace sdx::dp {

struct FlowRule;

/// The active VMAC bit layout, described without an sdx::core dependency
/// (the data plane sits below the control plane; sdx::core converts its
/// VmacLayout into this spec when wiring the runtime). When disabled, every
/// masked dst-MAC rule falls through to tuple-space search — semantics are
/// identical, only the probe cost differs.
struct VmacLaneSpec {
  bool enabled = false;
  std::uint64_t top_value = 0;  ///< fixed top-octet value (0x02 << 40)
  std::uint64_t top_mask = 0;   ///< top-octet guard mask (0xFF << 40)
  std::uint8_t group_bits = 0;
  std::uint8_t nexthop_bits = 0;
  std::uint8_t attr_bits = 0;

  unsigned nexthop_shift() const { return group_bits; }
  unsigned attr_shift() const {
    return static_cast<unsigned>(group_bits) + nexthop_bits;
  }
  std::uint64_t nexthop_field_mask() const {
    return nexthop_bits == 0
               ? 0
               : ((1ull << nexthop_bits) - 1) << nexthop_shift();
  }
};

class PacketClassifier {
 public:
  /// Drops every indexed rule and adopts \p spec. FlowTable re-inserts the
  /// live rules afterwards; the classifier itself never owns rule storage.
  void reset(const VmacLaneSpec& spec);

  /// Drops every indexed rule, keeping the current lane spec.
  void clear();

  const VmacLaneSpec& lane_spec() const { return spec_; }

  /// Indexes \p rule. The pointer must stay valid until erase()/clear();
  /// \p seq is the table-wide insertion sequence used for tie-breaking.
  void insert(const FlowRule* rule, std::uint64_t seq);

  /// Un-indexes \p rule (must have been inserted with the same match).
  void erase(const FlowRule* rule);

  /// Highest-priority matching rule, ties broken by lowest sequence;
  /// nullptr when nothing matches. Read-only: safe to call concurrently
  /// from many threads as long as no mutation runs.
  const FlowRule* lookup(const net::PacketHeader& h) const;

  /// Burst lookup: out[i] receives exactly what lookup(pkts[i]) would
  /// return, for every i. Work is amortized lane-major across the burst:
  /// duplicate headers resolve once, lanes 1+2 probe once per distinct
  /// dst-MAC, trie viability bitmaps are memoized per distinct IP within
  /// the burst, and tuple keys hash in SoA loops the compiler can
  /// vectorize. Requires out.size() >= pkts.size(). Same concurrency
  /// contract as lookup(): any number of reader threads, no concurrent
  /// mutation (all scratch is thread-local).
  void lookup_batch(std::span<const net::PacketHeader> pkts,
                    std::span<const FlowRule*> out) const;

  /// Lane population snapshot, for diagnostics and benches.
  struct Stats {
    std::size_t exact_mac_rules = 0;
    std::size_t nexthop_lane_rules = 0;
    std::size_t attr_lane_rules = 0;
    std::size_t tuple_rules = 0;
    std::size_t tuples = 0;  ///< non-empty tuples
  };
  Stats stats() const;

  using Entry = ClassifierEntry;
  using Bucket = std::vector<Entry>;  // kept sorted best-first

  using MaskSig = std::array<std::uint64_t, net::kFieldCount>;
  struct MaskSigHash {
    std::size_t operator()(const MaskSig& s) const noexcept;
  };

 private:
  /// One tuple of tuple-space search: every rule in it shares the exact
  /// per-field mask vector, so lookup is a single hash probe on the
  /// packet's masked field values. The mask vector itself is interned:
  /// \c masks points at the tuple index's key, stored once per distinct
  /// signature no matter how many rules share it.
  struct Tuple {
    const MaskSig* masks = nullptr;
    FlatEntryMap entries;
    std::uint32_t max_priority = 0;
    std::size_t size = 0;
    int dst_cidr_len = 0;  ///< >0: prunable via the dst-IP prefix trie
    int src_cidr_len = 0;  ///< >0: prunable via the src-IP prefix trie
  };

  enum class Shape { kExactMac, kNexthopLane, kAttrLane, kTuple };
  struct ShapeInfo {
    Shape shape = Shape::kTuple;
    std::uint64_t key = 0;    ///< hash key for kExactMac / kNexthopLane
    unsigned attr_bit = 0;    ///< lane index for kAttrLane
  };

  ShapeInfo classify(const FlowRule& rule) const;
  void insert_tuple(const Entry& e);
  void erase_tuple(const FlowRule* rule);
  void rebuild_tuple_order();

  /// Lanes 1+2 for one dst-MAC value — the part of lookup() that depends
  /// on nothing but the MAC, shared by the single and batched paths (the
  /// batch memoizes it per distinct MAC in the burst).
  const Entry* mac_lane_best(std::uint64_t mac) const;

  VmacLaneSpec spec_{};
  FlatEntryMap exact_mac_;
  FlatEntryMap nexthop_lane_;
  std::vector<Bucket> attr_lanes_;  // one per attribute bit

  std::vector<Tuple> tuples_;  // stable indices; empty tuples stay in place
  std::unordered_map<MaskSig, std::size_t, MaskSigHash> tuple_index_;
  std::vector<std::size_t> tuple_order_;  // non-empty, max_priority desc

  // Per-IP-field prechecks: each stored prefix maps to the bitmap of
  // tuples (index < 64) holding a rule with that CIDR constraint. Bits go
  // stale on erase — that only costs an extra probe, never a wrong result.
  net::PrefixTrie<std::uint64_t> dst_trie_;
  net::PrefixTrie<std::uint64_t> src_trie_;

  std::size_t exact_rules_ = 0;
  std::size_t nexthop_rules_ = 0;
  std::size_t attr_rules_ = 0;
  std::size_t tuple_rules_ = 0;
};

}  // namespace sdx::dp
