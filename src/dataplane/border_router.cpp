#include "dataplane/border_router.hpp"

namespace sdx::dp {

void BorderRouter::process_update(const bgp::UpdateMessage& update) {
  for (auto prefix : update.withdrawn) rib_.withdraw(prefix);
  if (update.attrs.has_value()) {
    for (auto prefix : update.nlri) {
      bgp::Route r;
      r.prefix = prefix;
      r.attrs = *update.attrs;
      rib_.add(std::move(r));
    }
  }
}

std::optional<net::PacketHeader> BorderRouter::forward(
    net::PacketHeader payload, const ArpResponder& arp) const {
  const bgp::Route* route = rib_.lookup(payload.dst_ip());
  if (route == nullptr) {
    ++blackholed_;
    return std::nullopt;
  }
  auto next_hop_mac = arp.resolve(route->attrs.next_hop);
  if (!next_hop_mac) {
    ++blackholed_;
    return std::nullopt;
  }
  payload.set_src_mac(mac_);
  payload.set_dst_mac(*next_hop_mac);
  payload.set(net::Field::kEthType, net::kEthTypeIpv4);
  payload.set_port(port_);
  ++forwarded_;
  return payload;
}

}  // namespace sdx::dp
