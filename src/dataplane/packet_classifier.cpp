#include "dataplane/packet_classifier.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "dataplane/flow_table.hpp"

namespace sdx::dp {

namespace {

using net::Field;
using net::kAllFields;
using net::kFieldCount;

/// Cross-lane rule order (see intern.hpp): priority desc, then insertion
/// sequence asc — identical to the linear reference scan's order.
bool better(const PacketClassifier::Entry& a,
            const PacketClassifier::Entry& b) {
  return entry_better(a, b);
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t mix(std::uint64_t k, std::uint64_t v) {
  return (k ^ v) * kFnvPrime;
}

// kAllFields is declaration order, so net::field_index doubles as the
// column index of the batch scratch's SoA transpose.
constexpr std::size_t kDstMacIdx =
    static_cast<std::size_t>(net::field_index(Field::kDstMac));
constexpr std::size_t kDstIpIdx =
    static_cast<std::size_t>(net::field_index(Field::kDstIp));
constexpr std::size_t kSrcIpIdx =
    static_cast<std::size_t>(net::field_index(Field::kSrcIp));

}  // namespace

std::size_t PacketClassifier::MaskSigHash::operator()(
    const MaskSig& s) const noexcept {
  std::uint64_t k = kFnvOffset;
  for (std::uint64_t m : s) k = mix(k, m);
  return static_cast<std::size_t>(k);
}

namespace {

/// Hash of a packet's field values under a tuple's masks. A rule in the
/// tuple hashes its (already-masked) match values the same way, so a
/// matching packet always lands in the rule's bucket.
std::uint64_t packet_key(const PacketClassifier::MaskSig& masks,
                         const net::PacketHeader& h) {
  std::uint64_t k = kFnvOffset;
  for (int i = 0; i < kFieldCount; ++i) {
    k = mix(k, h.get(kAllFields[static_cast<std::size_t>(i)]) &
                   masks[static_cast<std::size_t>(i)]);
  }
  return k;
}

std::uint64_t rule_key(const net::FlowMatch& m) {
  std::uint64_t k = kFnvOffset;
  for (auto f : kAllFields) k = mix(k, m.field(f).value());
  return k;
}

void bucket_insert(std::vector<PacketClassifier::Entry>& b,
                   const PacketClassifier::Entry& e) {
  b.insert(std::upper_bound(b.begin(), b.end(), e, better), e);
}

bool bucket_erase(std::vector<PacketClassifier::Entry>& b,
                  const FlowRule* rule) {
  auto it = std::find_if(b.begin(), b.end(),
                         [rule](const auto& e) { return e.rule == rule; });
  if (it == b.end()) return false;
  b.erase(it);
  return true;
}

/// Flat per-burst memo: open-addressed key table over append-only
/// key/value arrays. Rebuilding it is an O(n) memset of the slot table —
/// no node allocation, no bucket churn — which is what keeps the memo
/// cheaper than the lane/trie work it short-circuits (a node-based map
/// here costs more than mac_lane_best itself on distinct-heavy bursts).
struct FlatMemo {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> vals;
  std::vector<std::uint32_t> tab;  // open addressing: value = index + 1

  void begin(std::size_t n) {
    tab.assign(std::bit_ceil(std::max<std::size_t>(16, n * 2)), 0);
    keys.clear();
    vals.clear();
  }

  /// Returns the value slot for \p key plus whether it was just created
  /// (value zero-initialized). Capacity: at most one key per distinct
  /// header, table sized 2n — load factor stays under 1/2.
  std::pair<std::uint64_t*, bool> slot(std::uint64_t key) {
    const std::size_t mask = tab.size() - 1;
    std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
    h ^= h >> 29;
    for (std::size_t s = static_cast<std::size_t>(h) & mask;;
         s = (s + 1) & mask) {
      const std::uint32_t v = tab[s];
      if (v == 0) {
        tab[s] = static_cast<std::uint32_t>(keys.size()) + 1;
        keys.push_back(key);
        vals.push_back(0);
        return {&vals.back(), true};
      }
      if (keys[v - 1] == key) return {&vals[v - 1], false};
    }
  }
};

/// Per-thread burst workspace for lookup_batch. Everything is sized to the
/// burst on entry and keeps its capacity across bursts, so the steady
/// state allocates nothing. Hot per-field columns are SoA so the tuple key
/// loop is a plain multiply-xor stream the compiler can vectorize.
struct BatchScratch {
  // Distinct-header SoA: fields[f][u] = field f of the u-th distinct
  // header in the burst.
  std::array<std::vector<std::uint64_t>, kFieldCount> fields;
  std::vector<std::uint32_t> rep;        // distinct u -> first input index
  std::vector<std::uint32_t> unique_of;  // input index -> distinct u
  std::vector<std::uint32_t> dedup;      // open addressing: value = u + 1

  std::vector<const ClassifierEntry*> best;  // per distinct header
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> active, next_active, cand;

  // Per-burst memos: trie viability bitmaps per distinct IP, lane results
  // per distinct dst-MAC.
  std::vector<std::uint64_t> dst_bm, src_bm;     // per distinct header
  std::vector<std::uint8_t> dst_have, src_have;  // per distinct header
  FlatMemo dst_memo, src_memo, mac_memo;

  void begin(std::size_t n) {
    for (auto& col : fields) col.clear();
    rep.clear();
    unique_of.resize(n);
    dedup.assign(std::bit_ceil(std::max<std::size_t>(16, n * 2)), 0);
    dst_memo.begin(n);
    src_memo.begin(n);
    mac_memo.begin(n);
  }
};

}  // namespace

void PacketClassifier::reset(const VmacLaneSpec& spec) {
  spec_ = spec;
  clear();
}

void PacketClassifier::clear() {
  exact_mac_.clear();
  nexthop_lane_.clear();
  attr_lanes_.assign(spec_.enabled ? spec_.attr_bits : 0, {});
  tuples_.clear();
  tuple_index_.clear();
  tuple_order_.clear();
  dst_trie_.clear();
  src_trie_.clear();
  exact_rules_ = nexthop_rules_ = attr_rules_ = tuple_rules_ = 0;
}

PacketClassifier::ShapeInfo PacketClassifier::classify(
    const FlowRule& rule) const {
  const net::FlowMatch& m = rule.match;
  for (auto f : kAllFields) {
    if (f != Field::kDstMac && !m.field(f).is_wildcard()) {
      return {Shape::kTuple, 0, 0};
    }
  }
  const net::FieldMatch& dm = m.field(Field::kDstMac);
  if (dm.is_wildcard()) return {Shape::kTuple, 0, 0};
  if (dm.is_exact()) return {Shape::kExactMac, dm.value(), 0};
  // Masked dst-MAC-only rule: decode against the active layout. Both lane
  // shapes require the full top-octet guard and the layout's fixed value —
  // anything else (including guard-less masks) falls to tuple search.
  if (spec_.enabled && (dm.mask() & spec_.top_mask) == spec_.top_mask &&
      (dm.value() & spec_.top_mask) == spec_.top_value) {
    const std::uint64_t extra = dm.mask() & ~spec_.top_mask;
    if (spec_.nexthop_bits > 0 && extra == spec_.nexthop_field_mask()) {
      const std::uint64_t nh = (dm.value() >> spec_.nexthop_shift()) &
                               ((1ull << spec_.nexthop_bits) - 1);
      return {Shape::kNexthopLane, nh, 0};
    }
    if (std::has_single_bit(extra) && (dm.value() & extra) != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(extra));
      if (bit >= spec_.attr_shift() &&
          bit < spec_.attr_shift() + spec_.attr_bits) {
        return {Shape::kAttrLane, 0, bit - spec_.attr_shift()};
      }
    }
  }
  return {Shape::kTuple, 0, 0};
}

void PacketClassifier::insert(const FlowRule* rule, std::uint64_t seq) {
  const Entry e{rule, seq, rule->priority};
  const ShapeInfo s = classify(*rule);
  switch (s.shape) {
    case Shape::kExactMac:
      exact_mac_.insert(s.key, e);
      ++exact_rules_;
      break;
    case Shape::kNexthopLane:
      nexthop_lane_.insert(s.key, e);
      ++nexthop_rules_;
      break;
    case Shape::kAttrLane:
      bucket_insert(attr_lanes_[s.attr_bit], e);
      ++attr_rules_;
      break;
    case Shape::kTuple:
      insert_tuple(e);
      break;
  }
}

void PacketClassifier::erase(const FlowRule* rule) {
  const ShapeInfo s = classify(*rule);
  switch (s.shape) {
    case Shape::kExactMac:
      if (exact_mac_.erase(s.key, rule)) --exact_rules_;
      break;
    case Shape::kNexthopLane:
      if (nexthop_lane_.erase(s.key, rule)) --nexthop_rules_;
      break;
    case Shape::kAttrLane:
      if (bucket_erase(attr_lanes_[s.attr_bit], rule)) --attr_rules_;
      break;
    case Shape::kTuple:
      erase_tuple(rule);
      break;
  }
}

void PacketClassifier::insert_tuple(const Entry& e) {
  MaskSig sig;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kFieldCount); ++i) {
    sig[i] = e.rule->match.field(kAllFields[i]).mask();
  }
  auto [it, fresh] = tuple_index_.try_emplace(sig, tuples_.size());
  const std::size_t ti = it->second;
  if (fresh) {
    Tuple t;
    // Intern the mask vector: the index's key (node-stable in an
    // unordered_map) is the one copy; the tuple only references it.
    t.masks = &it->first;
    t.dst_cidr_len =
        e.rule->match.field(Field::kDstIp).cidr_prefix_length().value_or(-1);
    t.src_cidr_len =
        e.rule->match.field(Field::kSrcIp).cidr_prefix_length().value_or(-1);
    tuples_.push_back(std::move(t));
  }
  Tuple& t = tuples_[ti];
  t.entries.insert(rule_key(e.rule->match), e);
  ++t.size;
  ++tuple_rules_;
  if (t.size == 1 || e.priority > t.max_priority) t.max_priority = e.priority;
  if (ti < 64) {
    const std::uint64_t bit = 1ull << ti;
    if (t.dst_cidr_len > 0) {
      const net::Ipv4Prefix p(
          net::Ipv4Address(static_cast<std::uint32_t>(
              e.rule->match.field(Field::kDstIp).value())),
          t.dst_cidr_len);
      if (auto* v = dst_trie_.find(p)) *v |= bit;
      else dst_trie_.insert(p, bit);
    }
    if (t.src_cidr_len > 0) {
      const net::Ipv4Prefix p(
          net::Ipv4Address(static_cast<std::uint32_t>(
              e.rule->match.field(Field::kSrcIp).value())),
          t.src_cidr_len);
      if (auto* v = src_trie_.find(p)) *v |= bit;
      else src_trie_.insert(p, bit);
    }
  }
  rebuild_tuple_order();
}

void PacketClassifier::erase_tuple(const FlowRule* rule) {
  MaskSig sig;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kFieldCount); ++i) {
    sig[i] = rule->match.field(kAllFields[i]).mask();
  }
  auto ti_it = tuple_index_.find(sig);
  if (ti_it == tuple_index_.end()) return;
  Tuple& t = tuples_[ti_it->second];
  if (!t.entries.erase(rule_key(rule->match), rule)) return;
  --t.size;
  --tuple_rules_;
  if (t.size == 0) {
    t.max_priority = 0;
  } else if (rule->priority == t.max_priority) {
    std::uint32_t mx = 0;
    t.entries.for_each_head(
        [&mx](const Entry& e) { mx = std::max(mx, e.priority); });
    t.max_priority = mx;
  }
  // Precheck trie bits are left stale on purpose: a stale bit only admits
  // an extra (failed) hash probe; it can never produce a wrong match.
  rebuild_tuple_order();
}

void PacketClassifier::rebuild_tuple_order() {
  tuple_order_.clear();
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i].size > 0) tuple_order_.push_back(i);
  }
  std::sort(tuple_order_.begin(), tuple_order_.end(),
            [this](std::size_t a, std::size_t b) {
              return tuples_[a].max_priority > tuples_[b].max_priority;
            });
}

const PacketClassifier::Entry* PacketClassifier::mac_lane_best(
    std::uint64_t mac) const {
  // Lane 1: exact dst-MAC. Every entry in the chain has the identical
  // match (dst-MAC only, same value), so the head is the chain's winner.
  const Entry* best = exact_mac_.best(mac);

  // Lane 2: VMAC field lanes, probed only for layout-tagged packets.
  if (spec_.enabled && (mac & spec_.top_mask) == spec_.top_value) {
    if (spec_.nexthop_bits > 0 && !nexthop_lane_.empty()) {
      const std::uint64_t nh = (mac >> spec_.nexthop_shift()) &
                               ((1ull << spec_.nexthop_bits) - 1);
      if (const Entry* e = nexthop_lane_.best(nh);
          e != nullptr && (best == nullptr || better(*e, *best))) {
        best = e;
      }
    }
    if (!attr_lanes_.empty()) {
      std::uint64_t attrs =
          (mac >> spec_.attr_shift()) &
          (spec_.attr_bits >= 64 ? ~0ull : (1ull << spec_.attr_bits) - 1);
      while (attrs != 0) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(attrs));
        attrs &= attrs - 1;
        const Bucket& b = attr_lanes_[j];
        if (!b.empty() && (best == nullptr || better(b.front(), *best))) {
          best = &b.front();
        }
      }
    }
  }
  return best;
}

const FlowRule* PacketClassifier::lookup(const net::PacketHeader& h) const {
  const Entry* best = mac_lane_best(h.get(Field::kDstMac));

  // Lane 3: tuple-space search, highest-max-priority tuple first; stop as
  // soon as no remaining tuple can beat the current winner (strict >, so
  // priority ties still get probed and sequence decides).
  std::uint64_t dst_viable = 0, src_viable = 0;
  bool dst_done = false, src_done = false;
  for (const std::size_t ti : tuple_order_) {
    const Tuple& t = tuples_[ti];
    if (best != nullptr && best->priority > t.max_priority) break;
    if (ti < 64) {
      const std::uint64_t bit = 1ull << ti;
      if (t.dst_cidr_len > 0) {
        if (!dst_done) {
          dst_trie_.for_each_covering(
              h.dst_ip(), [&](std::uint64_t bm) { dst_viable |= bm; });
          dst_done = true;
        }
        if ((dst_viable & bit) == 0) continue;
      }
      if (t.src_cidr_len > 0) {
        if (!src_done) {
          src_trie_.for_each_covering(
              h.src_ip(), [&](std::uint64_t bm) { src_viable |= bm; });
          src_done = true;
        }
        if ((src_viable & bit) == 0) continue;
      }
    }
    t.entries.visit(packet_key(*t.masks, h), [&](const Entry& e) {
      if (best != nullptr && !better(e, *best)) return false;  // rest worse
      if (e.rule->match.matches(h)) {
        best = &e;
        return false;
      }
      return true;
    });
  }
  return best != nullptr ? best->rule : nullptr;
}

void PacketClassifier::lookup_batch(std::span<const net::PacketHeader> pkts,
                                    std::span<const FlowRule*> out) const {
  assert(out.size() >= pkts.size());
  const std::size_t n = pkts.size();
  if (n == 0) return;
  thread_local BatchScratch sc;
  sc.begin(n);

  // Pass 0 — dedup + SoA transpose. Bursts from real traffic repeat
  // headers (elephant flows); each distinct header is classified once and
  // the verdict scattered to every duplicate.
  for (std::size_t i = 0; i < n; ++i) {
    const net::PacketHeader& h = pkts[i];
    std::uint64_t k = kFnvOffset;
    for (auto f : kAllFields) k = mix(k, h.get(f));
    const std::size_t mask = sc.dedup.size() - 1;
    std::uint32_t u = 0;
    for (std::size_t s = static_cast<std::size_t>(k ^ (k >> 32)) & mask;;
         s = (s + 1) & mask) {
      const std::uint32_t v = sc.dedup[s];
      if (v == 0) {
        u = static_cast<std::uint32_t>(sc.rep.size());
        sc.dedup[s] = u + 1;
        sc.rep.push_back(static_cast<std::uint32_t>(i));
        for (std::size_t f = 0; f < static_cast<std::size_t>(kFieldCount);
             ++f) {
          sc.fields[f].push_back(h.get(kAllFields[f]));
        }
        break;
      }
      bool same = true;
      for (std::size_t f = 0;
           same && f < static_cast<std::size_t>(kFieldCount); ++f) {
        same = sc.fields[f][v - 1] == h.get(kAllFields[f]);
      }
      if (same) {
        u = v - 1;
        break;
      }
    }
    sc.unique_of[i] = u;
  }
  const std::size_t uniq = sc.rep.size();
  sc.best.assign(uniq, nullptr);

  // Pass 1 — lanes 1+2, decoded once per distinct dst-MAC in the burst
  // (many distinct flows share a VMAC next-hop MAC, so this memo hits far
  // more often than the full-header dedup).
  const std::vector<std::uint64_t>& dmac = sc.fields[kDstMacIdx];
  for (std::size_t u = 0; u < uniq; ++u) {
    auto [val, fresh] = sc.mac_memo.slot(dmac[u]);
    if (fresh) {
      *val = reinterpret_cast<std::uintptr_t>(mac_lane_best(dmac[u]));
    }
    sc.best[u] = reinterpret_cast<const Entry*>(
        static_cast<std::uintptr_t>(*val));
  }

  // Pass 2 — tuple-space search, lane-major: each tuple is visited once
  // for the whole burst. A packet retires from `active` permanently once
  // its winner beats every remaining tuple (tuple_order_ is max-priority
  // descending, so the single-lookup early exit maps to per-packet
  // retirement). Trie covering-walks run once per distinct IP per burst.
  if (!tuple_order_.empty()) {
    sc.active.resize(uniq);
    for (std::size_t u = 0; u < uniq; ++u) {
      sc.active[u] = static_cast<std::uint32_t>(u);
    }
    sc.dst_have.assign(uniq, 0);
    sc.src_have.assign(uniq, 0);
    const auto dst_viable = [this, &sc](std::uint32_t u) {
      if (!sc.dst_have[u]) {
        auto [val, fresh] = sc.dst_memo.slot(sc.fields[kDstIpIdx][u]);
        if (fresh) {
          dst_trie_.for_each_covering(
              net::Ipv4Address(
                  static_cast<std::uint32_t>(sc.fields[kDstIpIdx][u])),
              [val](std::uint64_t bm) { *val |= bm; });
        }
        sc.dst_bm.resize(sc.dst_have.size());
        sc.dst_bm[u] = *val;
        sc.dst_have[u] = 1;
      }
      return sc.dst_bm[u];
    };
    const auto src_viable = [this, &sc](std::uint32_t u) {
      if (!sc.src_have[u]) {
        auto [val, fresh] = sc.src_memo.slot(sc.fields[kSrcIpIdx][u]);
        if (fresh) {
          src_trie_.for_each_covering(
              net::Ipv4Address(
                  static_cast<std::uint32_t>(sc.fields[kSrcIpIdx][u])),
              [val](std::uint64_t bm) { *val |= bm; });
        }
        sc.src_bm.resize(sc.src_have.size());
        sc.src_bm[u] = *val;
        sc.src_have[u] = 1;
      }
      return sc.src_bm[u];
    };

    for (const std::size_t ti : tuple_order_) {
      const Tuple& t = tuples_[ti];
      sc.next_active.clear();
      for (const std::uint32_t u : sc.active) {
        const Entry* b = sc.best[u];
        if (b == nullptr || !(b->priority > t.max_priority)) {
          sc.next_active.push_back(u);
        }
      }
      sc.active.swap(sc.next_active);
      if (sc.active.empty()) break;

      const std::vector<std::uint32_t>* cand = &sc.active;
      if (ti < 64 && (t.dst_cidr_len > 0 || t.src_cidr_len > 0)) {
        sc.cand.clear();
        const std::uint64_t bit = 1ull << ti;
        for (const std::uint32_t u : sc.active) {
          if (t.dst_cidr_len > 0 && (dst_viable(u) & bit) == 0) continue;
          if (t.src_cidr_len > 0 && (src_viable(u) & bit) == 0) continue;
          sc.cand.push_back(u);
        }
        cand = &sc.cand;
      }
      if (cand->empty()) continue;

      // SoA key pass: one multiply-xor stream per field over the whole
      // candidate set — plain code the autovectorizer handles.
      const std::size_t m = cand->size();
      const std::uint32_t* cs = cand->data();
      sc.keys.assign(m, kFnvOffset);
      std::uint64_t* keys = sc.keys.data();
      for (std::size_t f = 0; f < static_cast<std::size_t>(kFieldCount);
           ++f) {
        const std::uint64_t fm = (*t.masks)[f];
        if (fm == 0) {
          for (std::size_t j = 0; j < m; ++j) keys[j] *= kFnvPrime;
          continue;
        }
        const std::uint64_t* col = sc.fields[f].data();
        for (std::size_t j = 0; j < m; ++j) {
          keys[j] = (keys[j] ^ (col[cs[j]] & fm)) * kFnvPrime;
        }
      }

      for (std::size_t j = 0; j < m; ++j) {
        const std::uint32_t u = cs[j];
        const net::PacketHeader& h = pkts[sc.rep[u]];
        t.entries.visit(keys[j], [&](const Entry& e) {
          const Entry* b = sc.best[u];
          if (b != nullptr && !better(e, *b)) return false;
          if (e.rule->match.matches(h)) {
            sc.best[u] = &e;
            return false;
          }
          return true;
        });
      }
    }
  }

  // Scatter distinct-header verdicts back to burst order.
  for (std::size_t i = 0; i < n; ++i) {
    const Entry* e = sc.best[sc.unique_of[i]];
    out[i] = e != nullptr ? e->rule : nullptr;
  }
}

PacketClassifier::Stats PacketClassifier::stats() const {
  Stats s;
  s.exact_mac_rules = exact_rules_;
  s.nexthop_lane_rules = nexthop_rules_;
  s.attr_lane_rules = attr_rules_;
  s.tuple_rules = tuple_rules_;
  for (const auto& t : tuples_) s.tuples += t.size > 0 ? 1 : 0;
  return s;
}

}  // namespace sdx::dp
