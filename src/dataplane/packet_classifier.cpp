#include "dataplane/packet_classifier.hpp"

#include <algorithm>
#include <bit>

#include "dataplane/flow_table.hpp"

namespace sdx::dp {

namespace {

using net::Field;
using net::kAllFields;
using net::kFieldCount;

/// Cross-lane rule order: priority desc, then insertion sequence asc —
/// identical to the linear reference scan's first-match order.
bool better(const PacketClassifier::Entry& a,
            const PacketClassifier::Entry& b) {
  return a.priority > b.priority ||
         (a.priority == b.priority && a.seq < b.seq);
}

std::uint64_t mix(std::uint64_t k, std::uint64_t v) {
  return (k ^ v) * 0x100000001b3ull;
}

}  // namespace

std::size_t PacketClassifier::MaskSigHash::operator()(
    const MaskSig& s) const noexcept {
  std::uint64_t k = 0xcbf29ce484222325ull;
  for (std::uint64_t m : s) k = mix(k, m);
  return static_cast<std::size_t>(k);
}

namespace {

/// Hash of a packet's field values under a tuple's masks. A rule in the
/// tuple hashes its (already-masked) match values the same way, so a
/// matching packet always lands in the rule's bucket.
std::uint64_t packet_key(const PacketClassifier::MaskSig& masks,
                         const net::PacketHeader& h) {
  std::uint64_t k = 0xcbf29ce484222325ull;
  for (int i = 0; i < kFieldCount; ++i) {
    k = mix(k, h.get(kAllFields[static_cast<std::size_t>(i)]) &
                   masks[static_cast<std::size_t>(i)]);
  }
  return k;
}

std::uint64_t rule_key(const net::FlowMatch& m) {
  std::uint64_t k = 0xcbf29ce484222325ull;
  for (auto f : kAllFields) k = mix(k, m.field(f).value());
  return k;
}

void bucket_insert(std::vector<PacketClassifier::Entry>& b,
                   const PacketClassifier::Entry& e) {
  b.insert(std::upper_bound(b.begin(), b.end(), e, better), e);
}

bool bucket_erase(std::vector<PacketClassifier::Entry>& b,
                  const FlowRule* rule) {
  auto it = std::find_if(b.begin(), b.end(),
                         [rule](const auto& e) { return e.rule == rule; });
  if (it == b.end()) return false;
  b.erase(it);
  return true;
}

}  // namespace

void PacketClassifier::reset(const VmacLaneSpec& spec) {
  spec_ = spec;
  clear();
}

void PacketClassifier::clear() {
  exact_mac_.clear();
  nexthop_lane_.clear();
  attr_lanes_.assign(spec_.enabled ? spec_.attr_bits : 0, {});
  tuples_.clear();
  tuple_index_.clear();
  tuple_order_.clear();
  dst_trie_.clear();
  src_trie_.clear();
  exact_rules_ = nexthop_rules_ = attr_rules_ = tuple_rules_ = 0;
}

PacketClassifier::ShapeInfo PacketClassifier::classify(
    const FlowRule& rule) const {
  const net::FlowMatch& m = rule.match;
  for (auto f : kAllFields) {
    if (f != Field::kDstMac && !m.field(f).is_wildcard()) {
      return {Shape::kTuple, 0, 0};
    }
  }
  const net::FieldMatch& dm = m.field(Field::kDstMac);
  if (dm.is_wildcard()) return {Shape::kTuple, 0, 0};
  if (dm.is_exact()) return {Shape::kExactMac, dm.value(), 0};
  // Masked dst-MAC-only rule: decode against the active layout. Both lane
  // shapes require the full top-octet guard and the layout's fixed value —
  // anything else (including guard-less masks) falls to tuple search.
  if (spec_.enabled && (dm.mask() & spec_.top_mask) == spec_.top_mask &&
      (dm.value() & spec_.top_mask) == spec_.top_value) {
    const std::uint64_t extra = dm.mask() & ~spec_.top_mask;
    if (spec_.nexthop_bits > 0 && extra == spec_.nexthop_field_mask()) {
      const std::uint64_t nh = (dm.value() >> spec_.nexthop_shift()) &
                               ((1ull << spec_.nexthop_bits) - 1);
      return {Shape::kNexthopLane, nh, 0};
    }
    if (std::has_single_bit(extra) && (dm.value() & extra) != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(extra));
      if (bit >= spec_.attr_shift() &&
          bit < spec_.attr_shift() + spec_.attr_bits) {
        return {Shape::kAttrLane, 0, bit - spec_.attr_shift()};
      }
    }
  }
  return {Shape::kTuple, 0, 0};
}

void PacketClassifier::insert(const FlowRule* rule, std::uint64_t seq) {
  const Entry e{rule, seq, rule->priority};
  const ShapeInfo s = classify(*rule);
  switch (s.shape) {
    case Shape::kExactMac:
      bucket_insert(exact_mac_[s.key], e);
      ++exact_rules_;
      break;
    case Shape::kNexthopLane:
      bucket_insert(nexthop_lane_[s.key], e);
      ++nexthop_rules_;
      break;
    case Shape::kAttrLane:
      bucket_insert(attr_lanes_[s.attr_bit], e);
      ++attr_rules_;
      break;
    case Shape::kTuple:
      insert_tuple(e);
      break;
  }
}

void PacketClassifier::erase(const FlowRule* rule) {
  const ShapeInfo s = classify(*rule);
  switch (s.shape) {
    case Shape::kExactMac:
      if (auto it = exact_mac_.find(s.key); it != exact_mac_.end()) {
        if (bucket_erase(it->second, rule)) --exact_rules_;
        if (it->second.empty()) exact_mac_.erase(it);
      }
      break;
    case Shape::kNexthopLane:
      if (auto it = nexthop_lane_.find(s.key); it != nexthop_lane_.end()) {
        if (bucket_erase(it->second, rule)) --nexthop_rules_;
        if (it->second.empty()) nexthop_lane_.erase(it);
      }
      break;
    case Shape::kAttrLane:
      if (bucket_erase(attr_lanes_[s.attr_bit], rule)) --attr_rules_;
      break;
    case Shape::kTuple:
      erase_tuple(rule);
      break;
  }
}

void PacketClassifier::insert_tuple(const Entry& e) {
  MaskSig sig;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kFieldCount); ++i) {
    sig[i] = e.rule->match.field(kAllFields[i]).mask();
  }
  auto [it, fresh] = tuple_index_.try_emplace(sig, tuples_.size());
  const std::size_t ti = it->second;
  if (fresh) {
    Tuple t;
    t.masks = sig;
    t.dst_cidr_len =
        e.rule->match.field(Field::kDstIp).cidr_prefix_length().value_or(-1);
    t.src_cidr_len =
        e.rule->match.field(Field::kSrcIp).cidr_prefix_length().value_or(-1);
    tuples_.push_back(std::move(t));
  }
  Tuple& t = tuples_[ti];
  bucket_insert(t.buckets[rule_key(e.rule->match)], e);
  ++t.size;
  ++tuple_rules_;
  if (t.size == 1 || e.priority > t.max_priority) t.max_priority = e.priority;
  if (ti < 64) {
    const std::uint64_t bit = 1ull << ti;
    if (t.dst_cidr_len > 0) {
      const net::Ipv4Prefix p(
          net::Ipv4Address(static_cast<std::uint32_t>(
              e.rule->match.field(Field::kDstIp).value())),
          t.dst_cidr_len);
      if (auto* v = dst_trie_.find(p)) *v |= bit;
      else dst_trie_.insert(p, bit);
    }
    if (t.src_cidr_len > 0) {
      const net::Ipv4Prefix p(
          net::Ipv4Address(static_cast<std::uint32_t>(
              e.rule->match.field(Field::kSrcIp).value())),
          t.src_cidr_len);
      if (auto* v = src_trie_.find(p)) *v |= bit;
      else src_trie_.insert(p, bit);
    }
  }
  rebuild_tuple_order();
}

void PacketClassifier::erase_tuple(const FlowRule* rule) {
  MaskSig sig;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kFieldCount); ++i) {
    sig[i] = rule->match.field(kAllFields[i]).mask();
  }
  auto ti_it = tuple_index_.find(sig);
  if (ti_it == tuple_index_.end()) return;
  Tuple& t = tuples_[ti_it->second];
  auto bit = t.buckets.find(rule_key(rule->match));
  if (bit == t.buckets.end()) return;
  if (!bucket_erase(bit->second, rule)) return;
  if (bit->second.empty()) t.buckets.erase(bit);
  --t.size;
  --tuple_rules_;
  if (t.size == 0) {
    t.max_priority = 0;
  } else if (rule->priority == t.max_priority) {
    std::uint32_t mx = 0;
    for (const auto& [k, b] : t.buckets) {
      if (!b.empty()) mx = std::max(mx, b.front().priority);
    }
    t.max_priority = mx;
  }
  // Precheck trie bits are left stale on purpose: a stale bit only admits
  // an extra (failed) hash probe; it can never produce a wrong match.
  rebuild_tuple_order();
}

void PacketClassifier::rebuild_tuple_order() {
  tuple_order_.clear();
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i].size > 0) tuple_order_.push_back(i);
  }
  std::sort(tuple_order_.begin(), tuple_order_.end(),
            [this](std::size_t a, std::size_t b) {
              return tuples_[a].max_priority > tuples_[b].max_priority;
            });
}

const FlowRule* PacketClassifier::lookup(const net::PacketHeader& h) const {
  const Entry* best = nullptr;
  const std::uint64_t mac = h.get(Field::kDstMac);

  // Lane 1: exact dst-MAC. Every entry in the bucket has the identical
  // match (dst-MAC only, same value), so the head is the bucket's winner.
  if (auto it = exact_mac_.find(mac);
      it != exact_mac_.end() && !it->second.empty()) {
    best = &it->second.front();
  }

  // Lane 2: VMAC field lanes, probed only for layout-tagged packets.
  if (spec_.enabled && (mac & spec_.top_mask) == spec_.top_value) {
    if (spec_.nexthop_bits > 0 && !nexthop_lane_.empty()) {
      const std::uint64_t nh = (mac >> spec_.nexthop_shift()) &
                               ((1ull << spec_.nexthop_bits) - 1);
      if (auto it = nexthop_lane_.find(nh);
          it != nexthop_lane_.end() && !it->second.empty()) {
        const Entry& e = it->second.front();
        if (best == nullptr || better(e, *best)) best = &e;
      }
    }
    if (!attr_lanes_.empty()) {
      std::uint64_t attrs =
          (mac >> spec_.attr_shift()) &
          (spec_.attr_bits >= 64 ? ~0ull : (1ull << spec_.attr_bits) - 1);
      while (attrs != 0) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(attrs));
        attrs &= attrs - 1;
        const Bucket& b = attr_lanes_[j];
        if (!b.empty() && (best == nullptr || better(b.front(), *best))) {
          best = &b.front();
        }
      }
    }
  }

  // Lane 3: tuple-space search, highest-max-priority tuple first; stop as
  // soon as no remaining tuple can beat the current winner (strict >, so
  // priority ties still get probed and sequence decides).
  std::uint64_t dst_viable = 0, src_viable = 0;
  bool dst_done = false, src_done = false;
  for (const std::size_t ti : tuple_order_) {
    const Tuple& t = tuples_[ti];
    if (best != nullptr && best->priority > t.max_priority) break;
    if (ti < 64) {
      const std::uint64_t bit = 1ull << ti;
      if (t.dst_cidr_len > 0) {
        if (!dst_done) {
          dst_trie_.for_each_covering(
              h.dst_ip(), [&](std::uint64_t bm) { dst_viable |= bm; });
          dst_done = true;
        }
        if ((dst_viable & bit) == 0) continue;
      }
      if (t.src_cidr_len > 0) {
        if (!src_done) {
          src_trie_.for_each_covering(
              h.src_ip(), [&](std::uint64_t bm) { src_viable |= bm; });
          src_done = true;
        }
        if ((src_viable & bit) == 0) continue;
      }
    }
    auto it = t.buckets.find(packet_key(t.masks, h));
    if (it == t.buckets.end()) continue;
    for (const Entry& e : it->second) {
      if (best != nullptr && !better(e, *best)) break;  // rest are worse
      if (e.rule->match.matches(h)) {
        best = &e;
        break;
      }
    }
  }
  return best != nullptr ? best->rule : nullptr;
}

PacketClassifier::Stats PacketClassifier::stats() const {
  Stats s;
  s.exact_mac_rules = exact_rules_;
  s.nexthop_lane_rules = nexthop_rules_;
  s.attr_lane_rules = attr_rules_;
  s.tuple_rules = tuple_rules_;
  for (const auto& t : tuples_) s.tuples += t.size > 0 ? 1 : 0;
  return s;
}

}  // namespace sdx::dp
