#include "dataplane/fabric.hpp"

#include <stdexcept>

namespace sdx::dp {

void Fabric::attach(BorderRouter& router) {
  auto [it, fresh] = routers_.emplace(router.port(), &router);
  if (!fresh) {
    throw std::invalid_argument("port " + std::to_string(router.port()) +
                                " already attached");
  }
  arp_.bind(router.ip(), router.mac());
}

const BorderRouter* Fabric::router_at(net::PortId port) const {
  auto it = routers_.find(port);
  return it == routers_.end() ? nullptr : it->second;
}

std::vector<Fabric::Delivery> Fabric::send(const BorderRouter& src,
                                           net::PacketHeader payload) {
  auto frame = src.forward(std::move(payload), arp_);
  if (!frame) return {};
  return inject(*frame);
}

std::vector<Fabric::Delivery> Fabric::inject(const net::PacketHeader& frame) {
  std::vector<Delivery> out;
  for (auto& egress : switch_.inject(frame)) {
    Delivery d;
    d.port = egress.port();
    d.receiver = router_at(d.port);
    d.accepted = d.receiver != nullptr && d.receiver->accepts(egress);
    d.frame = std::move(egress);
    out.push_back(std::move(d));
  }
  return out;
}

Fabric::BatchDeliveries Fabric::send_batch(
    const BorderRouter& src, std::span<const net::PacketHeader> payloads) {
  // Frame what the router can forward, remembering which payload each
  // frame came from so router-dropped payloads keep an empty range.
  std::vector<net::PacketHeader> frames;
  std::vector<std::size_t> origin;
  frames.reserve(payloads.size());
  origin.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (auto frame = src.forward(payloads[i], arp_)) {
      frames.push_back(std::move(*frame));
      origin.push_back(i);
    }
  }
  const FlowTable::BatchResult egress = switch_.inject_batch(frames);
  BatchDeliveries out;
  out.offsets.reserve(payloads.size() + 1);
  out.offsets.push_back(0);
  std::size_t fi = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (fi < origin.size() && origin[fi] == i) {
      for (const auto& frame : egress.frames_of(fi)) {
        Delivery d;
        d.port = frame.port();
        d.receiver = router_at(d.port);
        d.accepted = d.receiver != nullptr && d.receiver->accepts(frame);
        d.frame = frame;
        out.deliveries.push_back(std::move(d));
      }
      ++fi;
    }
    out.offsets.push_back(static_cast<std::uint32_t>(out.deliveries.size()));
  }
  return out;
}

Fabric::BatchDeliveries Fabric::inject_batch(
    std::span<const net::PacketHeader> frames) {
  const FlowTable::BatchResult egress = switch_.inject_batch(frames);
  BatchDeliveries out;
  out.offsets.reserve(frames.size() + 1);
  out.offsets.push_back(0);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    for (const auto& frame : egress.frames_of(i)) {
      Delivery d;
      d.port = frame.port();
      d.receiver = router_at(d.port);
      d.accepted = d.receiver != nullptr && d.receiver->accepts(frame);
      d.frame = frame;
      out.deliveries.push_back(std::move(d));
    }
    out.offsets.push_back(static_cast<std::uint32_t>(out.deliveries.size()));
  }
  return out;
}

}  // namespace sdx::dp
