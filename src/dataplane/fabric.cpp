#include "dataplane/fabric.hpp"

#include <stdexcept>

namespace sdx::dp {

void Fabric::attach(BorderRouter& router) {
  auto [it, fresh] = routers_.emplace(router.port(), &router);
  if (!fresh) {
    throw std::invalid_argument("port " + std::to_string(router.port()) +
                                " already attached");
  }
  arp_.bind(router.ip(), router.mac());
}

const BorderRouter* Fabric::router_at(net::PortId port) const {
  auto it = routers_.find(port);
  return it == routers_.end() ? nullptr : it->second;
}

std::vector<Fabric::Delivery> Fabric::send(const BorderRouter& src,
                                           net::PacketHeader payload) {
  auto frame = src.forward(std::move(payload), arp_);
  if (!frame) return {};
  return inject(*frame);
}

std::vector<Fabric::Delivery> Fabric::inject(const net::PacketHeader& frame) {
  std::vector<Delivery> out;
  for (auto& egress : switch_.inject(frame)) {
    Delivery d;
    d.port = egress.port();
    d.receiver = router_at(d.port);
    d.accepted = d.receiver != nullptr && d.receiver->accepts(egress);
    d.frame = std::move(egress);
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace sdx::dp
