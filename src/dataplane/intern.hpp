#pragma once

/// \file intern.hpp
/// Flat storage primitives backing the classifier at ablation scale.
///
/// PR 8's classifier kept every lane bucket as an
/// `unordered_map<uint64_t, vector<Entry>>` — fine at 4k rules, but a
/// 256k-rule ungrouped table (the "no VMAC grouping" ablation) turns that
/// into hundreds of thousands of node and vector allocations. FlatEntryMap
/// replaces it with open addressing over three contiguous arrays: slot
/// keys, slot chain heads, and an entry-node pool with intrusive
/// best-first chains. Memory stays flat per rule, and the key array gives
/// the batched lookup path (PacketClassifier::lookup_batch) cache-friendly
/// probe loops.
///
/// Mutation contract matches the classifier's: single writer, externally
/// synchronized. Probes (best / visit / for_each_head) are const, touch no
/// mutable state, and are safe from any number of concurrent readers.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace sdx::dp {

struct FlowRule;

/// One indexed rule: the owning slot's FlowRule plus cached sort keys so
/// probe loops never chase the pointer. Shared by every classifier lane.
struct ClassifierEntry {
  const FlowRule* rule = nullptr;
  std::uint64_t seq = 0;
  std::uint32_t priority = 0;
};

/// Cross-lane rule order: priority desc, then insertion sequence asc —
/// identical to the linear reference scan's first-match order.
inline bool entry_better(const ClassifierEntry& a, const ClassifierEntry& b) {
  return a.priority > b.priority ||
         (a.priority == b.priority && a.seq < b.seq);
}

/// Open-addressed map from a 64-bit key to a best-first chain of
/// ClassifierEntry. Erasing a chain's last entry tombstones the slot;
/// tombstones are reclaimed on the next rehash, and freed entry nodes are
/// recycled through a free list, so churny tables don't grow unboundedly.
class FlatEntryMap {
 public:
  bool empty() const { return entries_ == 0; }
  std::size_t entries() const { return entries_; }

  void clear() {
    keys_.clear();
    heads_.clear();
    nodes_.clear();
    free_node_ = kNil;
    live_slots_ = used_slots_ = entries_ = 0;
  }

  /// Best (priority desc, seq asc) entry chained under \p key; nullptr
  /// when the key is absent. The pointer stays valid until the next
  /// mutation of this map.
  const ClassifierEntry* best(std::uint64_t key) const {
    if (live_slots_ == 0) return nullptr;
    const std::size_t s = find(key);
    return s == kNpos ? nullptr : &nodes_[static_cast<std::size_t>(
                                       heads_[s])].entry;
  }

  /// Visits \p key's chain best-first until \p fn returns false.
  template <typename Fn>
  void visit(std::uint64_t key, Fn&& fn) const {
    if (live_slots_ == 0) return;
    const std::size_t s = find(key);
    if (s == kNpos) return;
    for (std::int32_t n = heads_[s]; n != kNil;
         n = nodes_[static_cast<std::size_t>(n)].next) {
      if (!fn(nodes_[static_cast<std::size_t>(n)].entry)) return;
    }
  }

  /// Visits every chain's head (its best entry) — enough to recompute a
  /// tuple's max priority, since chains are best-first.
  template <typename Fn>
  void for_each_head(Fn&& fn) const {
    for (std::size_t s = 0; s < heads_.size(); ++s) {
      if (heads_[s] >= 0) {
        fn(nodes_[static_cast<std::size_t>(heads_[s])].entry);
      }
    }
  }

  /// Chains \p e under \p key, keeping the chain best-first.
  void insert(std::uint64_t key, const ClassifierEntry& e) {
    if (heads_.empty() || (used_slots_ + 1) * 4 > heads_.size() * 3) {
      rehash();
    }
    const std::size_t mask = heads_.size() - 1;
    std::size_t slot = kNpos;
    std::size_t tomb = kNpos;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      if (heads_[i] == kEmpty) {
        slot = tomb != kNpos ? tomb : i;
        break;
      }
      if (heads_[i] == kTomb) {
        if (tomb == kNpos) tomb = i;
        continue;
      }
      if (keys_[i] == key) {
        slot = i;
        break;
      }
    }
    if (heads_[slot] < 0) {
      if (heads_[slot] == kEmpty) ++used_slots_;
      ++live_slots_;
      keys_[slot] = key;
      heads_[slot] = alloc_node(e, kNil);
    } else {
      const std::int32_t head = heads_[slot];
      if (entry_better(e, nodes_[static_cast<std::size_t>(head)].entry)) {
        heads_[slot] = alloc_node(e, head);
      } else {
        std::size_t prev = static_cast<std::size_t>(head);
        while (nodes_[prev].next != kNil &&
               !entry_better(
                   e, nodes_[static_cast<std::size_t>(nodes_[prev].next)]
                          .entry)) {
          prev = static_cast<std::size_t>(nodes_[prev].next);
        }
        const std::int32_t n = alloc_node(e, nodes_[prev].next);
        nodes_[prev].next = n;
      }
    }
    ++entries_;
  }

  /// Unlinks the entry for \p rule from \p key's chain; returns whether it
  /// was present.
  bool erase(std::uint64_t key, const FlowRule* rule) {
    if (live_slots_ == 0) return false;
    const std::size_t s = find(key);
    if (s == kNpos) return false;
    std::int32_t prev = kNil;
    for (std::int32_t n = heads_[s]; n != kNil;
         prev = n, n = nodes_[static_cast<std::size_t>(n)].next) {
      if (nodes_[static_cast<std::size_t>(n)].entry.rule != rule) continue;
      const std::int32_t next = nodes_[static_cast<std::size_t>(n)].next;
      if (prev == kNil) {
        heads_[s] = next;
      } else {
        nodes_[static_cast<std::size_t>(prev)].next = next;
      }
      nodes_[static_cast<std::size_t>(n)].next = free_node_;
      free_node_ = n;
      --entries_;
      if (heads_[s] == kNil) {
        heads_[s] = kTomb;
        --live_slots_;
      }
      return true;
    }
    return false;
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::int32_t kNil = -1;   ///< end of an entry chain
  static constexpr std::int32_t kEmpty = -1; ///< slot never occupied
  static constexpr std::int32_t kTomb = -2;  ///< slot's chain fully erased

  struct Node {
    ClassifierEntry entry;
    std::int32_t next = kNil;
  };

  static std::size_t hash(std::uint64_t k) {
    // splitmix64 finalizer: full-width avalanche so power-of-two masking
    // of sequential keys (MAC blocks, next-hop ids) doesn't cluster.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ull;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebull;
    k ^= k >> 31;
    return static_cast<std::size_t>(k);
  }

  /// Slot holding \p key, or kNpos. Termination is guaranteed because the
  /// load factor bound keeps at least one never-occupied slot.
  std::size_t find(std::uint64_t key) const {
    const std::size_t mask = heads_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      if (heads_[i] == kEmpty) return kNpos;
      if (heads_[i] >= 0 && keys_[i] == key) return i;
    }
  }

  std::int32_t alloc_node(const ClassifierEntry& e, std::int32_t next) {
    if (free_node_ != kNil) {
      const std::int32_t n = free_node_;
      free_node_ = nodes_[static_cast<std::size_t>(n)].next;
      nodes_[static_cast<std::size_t>(n)] = Node{e, next};
      return n;
    }
    nodes_.push_back(Node{e, next});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  /// Re-slots every live chain into a table sized for the live count,
  /// dropping tombstones. Entry nodes are untouched — only the slot
  /// arrays rebuild.
  void rehash() {
    const std::size_t want = std::max<std::size_t>(
        16, std::bit_ceil((live_slots_ + 1) * 2));
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::int32_t> old_heads = std::move(heads_);
    keys_.assign(want, 0);
    heads_.assign(want, kEmpty);
    const std::size_t mask = want - 1;
    for (std::size_t i = 0; i < old_heads.size(); ++i) {
      if (old_heads[i] < 0) continue;
      std::size_t j = hash(old_keys[i]) & mask;
      while (heads_[j] != kEmpty) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      heads_[j] = old_heads[i];
    }
    used_slots_ = live_slots_;
  }

  std::vector<std::uint64_t> keys_;  ///< slot -> key (valid where head >= 0)
  std::vector<std::int32_t> heads_;  ///< slot -> kEmpty | kTomb | node index
  std::vector<Node> nodes_;          ///< entry pool, intrusive chains
  std::int32_t free_node_ = kNil;
  std::size_t live_slots_ = 0;  ///< slots with a non-empty chain
  std::size_t used_slots_ = 0;  ///< live + tombstoned slots
  std::size_t entries_ = 0;     ///< total chained entries
};

}  // namespace sdx::dp
