#pragma once

/// \file border_router.hpp
/// An unmodified BGP border router, as the SDX sees one (paper §4.2): it
/// receives BGP UPDATEs from the route server, installs a FIB entry per
/// prefix, and when forwarding a packet it (1) looks up the longest-prefix
/// match, (2) extracts the BGP next-hop IP, (3) ARPs for it, and (4) writes
/// the answer into the destination MAC before emitting the frame on its IXP
/// port. The SDX exploits exactly this mechanic to have routers tag packets
/// with the VMAC of their prefix group — "without any additional table
/// space" and with no router modification.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "bgp/wire.hpp"
#include "dataplane/arp.hpp"
#include "netbase/mac.hpp"
#include "netbase/packet.hpp"

namespace sdx::dp {

class BorderRouter {
 public:
  BorderRouter(net::Asn asn, net::PortId ixp_port, net::MacAddress mac,
               net::Ipv4Address ip)
      : asn_(asn), port_(ixp_port), mac_(mac), ip_(ip) {}

  net::Asn asn() const { return asn_; }
  net::PortId port() const { return port_; }
  net::MacAddress mac() const { return mac_; }
  net::Ipv4Address ip() const { return ip_; }

  /// Applies a BGP UPDATE received over the route-server session.
  void process_update(const bgp::UpdateMessage& update);

  const bgp::Rib& rib() const { return rib_; }

  /// Forwards an IP packet toward \p payload's destination: LPM → next-hop
  /// IP → ARP → frame on the IXP port. Returns std::nullopt when the router
  /// has no route or the ARP query goes unanswered (packet blackholed).
  std::optional<net::PacketHeader> forward(net::PacketHeader payload,
                                           const ArpResponder& arp) const;

  /// True when a frame arriving at this router is addressed to it (the
  /// fabric must have rewritten the VMAC back to the router's real MAC —
  /// "without rewriting, AS B would drop the traffic", §4.1).
  bool accepts(const net::PacketHeader& frame) const {
    return frame.dst_mac() == mac_ || frame.dst_mac() == net::MacAddress::broadcast();
  }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t blackholed() const { return blackholed_; }

 private:
  net::Asn asn_;
  net::PortId port_;
  net::MacAddress mac_;
  net::Ipv4Address ip_;
  bgp::Rib rib_;
  mutable std::uint64_t forwarded_ = 0;
  mutable std::uint64_t blackholed_ = 0;
};

}  // namespace sdx::dp
