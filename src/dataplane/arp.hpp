#pragma once

/// \file arp.hpp
/// The SDX ARP responder (paper §4.2/§5.1): answers ARP queries for virtual
/// next-hop (VNH) IP addresses with the virtual MAC (VMAC) that tags the
/// corresponding forwarding equivalence class. Regular (non-virtual)
/// bindings for participant router ports live in the same table.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "netbase/ip.hpp"
#include "netbase/mac.hpp"
#include "telemetry/metrics.hpp"

namespace sdx::dp {

class ArpResponder {
 public:
  /// Adds or updates a binding.
  void bind(net::Ipv4Address ip, net::MacAddress mac) { table_[ip] = mac; }

  /// Removes a binding; returns true when present.
  bool unbind(net::Ipv4Address ip) { return table_.erase(ip) > 0; }

  /// Mirrors query/miss accounting into registry counters (either may be
  /// nullptr to detach). The counters must outlive the responder's use.
  void set_counters(telemetry::Counter* queries, telemetry::Counter* misses) {
    query_counter_ = queries;
    miss_counter_ = misses;
  }

  /// Answers an ARP query. std::nullopt when the address is unknown.
  std::optional<net::MacAddress> resolve(net::Ipv4Address ip) const {
    ++queries_;
    if (query_counter_ != nullptr) query_counter_->inc();
    auto it = table_.find(ip);
    if (it == table_.end()) {
      ++misses_;
      if (miss_counter_ != nullptr) miss_counter_->inc();
      return std::nullopt;
    }
    return it->second;
  }

  std::size_t size() const { return table_.size(); }
  std::uint64_t queries() const { return queries_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<net::Ipv4Address, net::MacAddress> table_;
  mutable std::uint64_t queries_ = 0;
  mutable std::uint64_t misses_ = 0;
  telemetry::Counter* query_counter_ = nullptr;
  telemetry::Counter* miss_counter_ = nullptr;
};

}  // namespace sdx::dp
