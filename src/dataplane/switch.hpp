#pragma once

/// \file switch.hpp
/// The SDX physical switch: a single flow table plus per-port accounting.
/// A packet is injected at an ingress port and the compiled SDX policy
/// (installed as flow rules) determines the egress port(s) by rewriting
/// Field::kPort. The simulator enforces the no-loop contract of paper §4.1:
/// one table traversal per packet, after which the packet either sits at a
/// physical egress port or is dropped.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/flow_table.hpp"

namespace sdx::dp {

class SwitchSim {
 public:
  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }

  /// Processes one frame: runs it through the flow table, then accounts
  /// the results per egress port. Outputs whose port equals the ingress
  /// port are dropped (a switch never hairpins a frame it just received,
  /// and the SDX never needs it).
  std::vector<net::PacketHeader> inject(const net::PacketHeader& frame);

  /// Burst inject: frame i's egress copies land in the result's
  /// frames_of(i). Classification runs through FlowTable::process_batch
  /// (amortized across the burst); per-port accounting and the hairpin
  /// drop rule are applied per frame, identical to inject().
  FlowTable::BatchResult inject_batch(std::span<const net::PacketHeader> frames);

  std::uint64_t tx_packets(net::PortId port) const;
  std::uint64_t rx_packets(net::PortId port) const;
  std::uint64_t dropped() const { return dropped_; }

  void reset_counters();

 private:
  FlowTable table_;
  std::unordered_map<net::PortId, std::uint64_t> tx_;
  std::unordered_map<net::PortId, std::uint64_t> rx_;
  std::uint64_t dropped_ = 0;
};

}  // namespace sdx::dp
