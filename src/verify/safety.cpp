#include "verify/safety.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_set>

namespace sdx::verify {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A header variant: the non-IP exact matches (proto/ports) of a deployed
/// clause plus its first source prefix. Together with a destination prefix
/// it names one packet equivalence class — headers inside a class traverse
/// identical rule sequences, so one representative proves the class.
struct Variant {
  std::vector<std::pair<net::Field, std::uint64_t>> exact;
  std::optional<Ipv4Prefix> src;

  friend bool operator==(const Variant&, const Variant&) = default;
};

bool variant_less(const Variant& a, const Variant& b) {
  if (a.exact != b.exact) return a.exact < b.exact;
  if (a.src.has_value() != b.src.has_value()) return b.src.has_value();
  if (a.src && b.src && *a.src != *b.src) return *a.src < *b.src;
  return false;
}

/// Only transport-level fields survive into a variant: L2 fields and the
/// IP addresses are owned by the framing step (router LPM/ARP) and the
/// class's own prefixes.
void append_variant_fields(const core::ClauseMatch& match,
                           std::vector<Variant>& out) {
  Variant v;
  for (const auto& [field, value] : match.exact) {
    if (field == net::Field::kIpProto || field == net::Field::kSrcPort ||
        field == net::Field::kDstPort) {
      v.exact.emplace_back(field, value);
    }
  }
  std::sort(v.exact.begin(), v.exact.end());
  if (!match.src_prefixes.empty()) v.src = match.src_prefixes.front();
  out.push_back(std::move(v));
}

std::vector<Variant> build_variants(
    const std::vector<core::Participant>& participants,
    std::size_t max_variants) {
  std::vector<Variant> out;
  out.push_back(Variant{});  // the default (unpolicied) class
  for (const auto& p : participants) {
    for (const auto& clause : p.outbound) {
      append_variant_fields(clause.match, out);
    }
    for (const auto& clause : p.inbound) {
      append_variant_fields(clause.match, out);
    }
  }
  std::sort(out.begin(), out.end(), variant_less);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.size() > max_variants) out.resize(max_variants);
  return out;
}

net::Ipv4Address representative(Ipv4Prefix prefix) {
  // network|1 avoids the network address itself on wide blocks.
  const std::uint32_t host = prefix.length() < 32 ? 1u : 0u;
  return net::Ipv4Address(prefix.network().value() | host);
}

PacketHeader make_payload(Ipv4Prefix prefix, const Variant& v) {
  PacketHeader h;
  h.set_dst_ip(representative(prefix));
  h.set_src_ip(v.src ? representative(*v.src)
                     : net::Ipv4Address::parse("192.0.2.1"));
  h.set(net::Field::kEthType, net::kEthTypeIpv4);
  for (const auto& [field, value] : v.exact) h.set(field, value);
  return h;
}

std::string name_of(const DeploymentView& view, ParticipantId id) {
  if (view.participants != nullptr) {
    for (const auto& p : *view.participants) {
      if (p.id == id) return p.name;
    }
  }
  return "P" + std::to_string(id);
}

bool is_remote(const DeploymentView& view, ParticipantId id) {
  if (view.participants == nullptr) return false;
  for (const auto& p : *view.participants) {
    if (p.id == id) return p.is_remote();
  }
  return false;
}

bool advertises(const bgp::RouteServer& server, ParticipantId id,
                Ipv4Prefix prefix) {
  const auto* routes = server.candidates(prefix);
  if (routes == nullptr) return false;
  for (const auto& r : *routes) {
    if (r.learned_from == id) return true;
  }
  return false;
}

/// True when every current advertiser of \p prefix is a remote participant:
/// traffic toward it leaves the model (or is intentionally dropped until an
/// inbound rewrite redirects it), so a dropped frame is not a blackhole.
bool only_remote_advertisers(const DeploymentView& view, Ipv4Prefix prefix) {
  const auto* routes = view.server->candidates(prefix);
  if (routes == nullptr || routes->empty()) return false;
  for (const auto& r : *routes) {
    if (!is_remote(view, r.learned_from)) return false;
  }
  return true;
}

std::string hops_string(const DeploymentView& view,
                        const std::vector<ParticipantId>& hops) {
  std::string out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out += " -> ";
    out += name_of(view, hops[i]);
  }
  return out;
}

struct WalkContext {
  const DeploymentView& view;
  const std::vector<Ipv4Prefix>& known;  ///< sorted, for rewrite re-anchoring
  std::size_t max_hops;
};

std::optional<Ipv4Prefix> containing_prefix(
    const std::vector<Ipv4Prefix>& known, net::Ipv4Address addr) {
  std::optional<Ipv4Prefix> best;
  for (auto p : known) {
    if (p.contains(addr) && (!best || p.length() > best->length())) best = p;
  }
  return best;
}

std::vector<ParticipantId> extend(std::vector<ParticipantId> hops,
                                  ParticipantId next) {
  hops.push_back(next);
  return hops;
}

/// The shared forwarding-graph walk: one (sender, class) node through the
/// deployed tables until delivery, loop, or blackhole. `first_frame` must
/// already be framed (it IS the counterexample packet); every violation
/// found along the walk is appended to `out`.
void walk_from(const WalkContext& ctx, ParticipantId sender,
               Ipv4Prefix prefix, const std::string& desc,
               const PacketHeader& first_frame,
               std::vector<SafetyViolation>& out, std::size_t& edges) {
  const DeploymentView& view = ctx.view;
  std::vector<ParticipantId> path{sender};
  ParticipantId current = sender;
  PacketHeader frame = first_frame;
  Ipv4Prefix dst_prefix = prefix;

  auto witness = [&](std::vector<ParticipantId> hops) {
    Counterexample cx;
    cx.packet = first_frame;
    cx.ingress_port = first_frame.port();
    cx.sender = sender;
    cx.prefix = prefix;
    cx.hops = std::move(hops);
    return cx;
  };

  for (;;) {
    if (path.size() > ctx.max_hops) {
      out.push_back({ViolationKind::kLoop,
                     desc + ": hop budget (" + std::to_string(ctx.max_hops) +
                         ") exhausted without reaching an egress (" +
                         hops_string(view, path) + ")",
                     witness(path)});
      return;
    }
    auto copies = view.process(frame);
    ++edges;
    // The switch never hairpins a frame back out its ingress port.
    std::erase_if(copies, [&](const PacketHeader& c) {
      return c.port() == frame.port();
    });
    if (copies.empty()) {
      if (!only_remote_advertisers(view, dst_prefix)) {
        out.push_back({ViolationKind::kBlackhole,
                       desc + ": the fabric dropped the class at " +
                           name_of(view, current) + " (no egress copy)",
                       witness(path)});
      }
      return;
    }
    // Unicast continuation: the walk follows the first viable copy; every
    // other copy still gets its per-hop checks.
    std::optional<std::pair<ParticipantId, PacketHeader>> next;
    Ipv4Prefix next_prefix = dst_prefix;
    for (const auto& copy : copies) {
      const PortId out_port = copy.port();
      const auto owner = view.owner_of(out_port);
      if (!owner) {
        out.push_back({ViolationKind::kBlackhole,
                       desc + ": frame egresses at unclaimed port " +
                           std::to_string(out_port) + " from " +
                           name_of(view, current),
                       witness(path)});
        continue;
      }
      const ParticipantId x = *owner;
      const auto mac = view.router_mac_at(out_port);
      if (!mac || (copy.dst_mac() != *mac &&
                   copy.dst_mac() != MacAddress::broadcast())) {
        out.push_back({ViolationKind::kBlackhole,
                       desc + ": " + name_of(view, x) +
                           "'s router drops the frame at port " +
                           std::to_string(out_port) + " (dst MAC " +
                           copy.dst_mac().to_string() + " is not its own)",
                       witness(extend(path, x))});
        continue;
      }
      // An inbound rewrite may have moved the destination to a different
      // prefix; re-anchor the class before the BGP-relation checks.
      Ipv4Prefix pfx = dst_prefix;
      if (!pfx.contains(copy.dst_ip())) {
        if (auto re = containing_prefix(ctx.known, copy.dst_ip())) pfx = *re;
      }
      if (!view.server->exports_to(x, current, pfx)) {
        out.push_back(
            {ViolationKind::kIsolation,
             desc + ": " + name_of(view, x) + " attracts traffic for " +
                 pfx.to_string() + " from " + name_of(view, current) +
                 " without exporting the prefix to it",
             witness(extend(path, x))});
        // Keep walking: the stale state behind an isolation breach often
        // hides a loop or blackhole one hop further.
      }
      if (std::find(path.begin(), path.end(), x) != path.end()) {
        out.push_back({ViolationKind::kLoop,
                       desc + ": forwarding loop " +
                           hops_string(view, extend(path, x)),
                       witness(extend(path, x))});
        continue;  // never walk deeper along a cycle
      }
      if (advertises(*view.server, x, pfx)) {
        // Physical egress: x advertised the prefix, so its router forwards
        // the traffic upstream. The class is delivered.
        continue;
      }
      // x attracts the class without advertising it — model its re-entry
      // through its own FIB (LPM → next hop → ARP).
      auto onward = view.forward(x, copy);
      if (!onward) {
        if (!only_remote_advertisers(view, pfx)) {
          out.push_back({ViolationKind::kBlackhole,
                         desc + ": " + name_of(view, x) +
                             " attracts traffic for " + pfx.to_string() +
                             " but its border router has no onward route "
                             "(next hop withdrawn)",
                         witness(extend(path, x))});
        }
        continue;
      }
      if (!next) {
        next = {x, *onward};
        next_prefix = pfx;
      }
    }
    if (!next) return;
    current = next->first;
    frame = next->second;
    dst_prefix = next_prefix;
    path.push_back(current);
  }
}

std::vector<Ipv4Prefix> sorted_known(const DeploymentView& view) {
  auto known = view.known_prefixes();
  std::sort(known.begin(), known.end());
  known.erase(std::unique(known.begin(), known.end()), known.end());
  return known;
}

}  // namespace

std::string_view kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kLoop: return "loop";
    case ViolationKind::kIsolation: return "isolation";
    case ViolationKind::kBlackhole: return "blackhole";
    case ViolationKind::kLocalRule: return "local_rule";
  }
  return "unknown";
}

std::string Counterexample::to_string() const {
  std::ostringstream os;
  os << "packet " << packet.to_string() << " ingress port " << ingress_port
     << " (sender " << sender << ", dst " << prefix.to_string() << "), hops";
  for (auto h : hops) os << " " << h;
  return os.str();
}

std::size_t SafetyReport::count(ViolationKind k) const {
  std::size_t n = 0;
  for (const auto& v : violations) {
    if (v.kind == k) ++n;
  }
  return n;
}

std::string SafetyReport::to_string() const {
  std::ostringstream os;
  os << "safety report (" << (incremental ? "incremental" : "full") << "): "
     << violations.size() << " violation(s), " << classes_checked
     << " classes, " << edges_walked << " edges, " << prefixes_checked
     << " prefixes, " << variants << " variants, " << local_rules_checked
     << " rules audited\n";
  for (const auto& v : violations) {
    os << "  [" << kind_name(v.kind) << "] " << v.what << "\n";
    if (v.counterexample) {
      os << "    counterexample: " << v.counterexample->to_string() << "\n";
    }
  }
  return os.str();
}

SafetyChecker::PrefixFinding SafetyChecker::check_prefix(
    const DeploymentView& view, Ipv4Prefix prefix) {
  PrefixFinding f;
  const auto variants = build_variants(*view.participants,
                                       options_.max_variants);
  for (const auto& p : *view.participants) {
    if (p.is_remote()) continue;
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      PacketHeader payload = make_payload(prefix, variants[vi]);
      auto framed = view.forward(p.id, payload);
      if (!framed) continue;  // the router holds no route: no traffic
      ++f.classes;
      const std::string desc = "class dst=" + prefix.to_string() +
                               " variant#" + std::to_string(vi) + " from " +
                               p.name;
      WalkContext ctx{view, known_, options_.max_hops};
      walk_from(ctx, p.id, prefix, desc, *framed, f.violations, f.edges);
    }
  }
  return f;
}

SafetyReport SafetyChecker::full(const DeploymentView& view) {
  const auto t0 = std::chrono::steady_clock::now();
  known_ = sorted_known(view);
  cache_.clear();
  for (auto prefix : known_) {
    cache_.emplace(prefix, check_prefix(view, prefix));
  }
  variants_seen_ =
      build_variants(*view.participants, options_.max_variants).size();
  return assemble(false, seconds_since(t0));
}

SafetyReport SafetyChecker::incremental(const DeploymentView& view,
                                        const std::vector<Ipv4Prefix>& dirty) {
  const auto t0 = std::chrono::steady_clock::now();
  known_ = sorted_known(view);
  const std::unordered_set<Ipv4Prefix> known_set(known_.begin(), known_.end());
  std::unordered_set<Ipv4Prefix> seen;
  for (auto prefix : dirty) {
    if (!seen.insert(prefix).second) continue;
    if (known_set.contains(prefix)) {
      cache_[prefix] = check_prefix(view, prefix);
    } else {
      cache_.erase(prefix);  // the prefix left the deployment entirely
    }
  }
  variants_seen_ =
      build_variants(*view.participants, options_.max_variants).size();
  return assemble(true, seconds_since(t0));
}

void SafetyChecker::set_local_findings(std::vector<SafetyViolation> findings,
                                       std::size_t rules_checked) {
  local_ = std::move(findings);
  local_rules_checked_ = rules_checked;
}

SafetyReport SafetyChecker::assemble(bool incremental, double seconds) const {
  SafetyReport report;
  report.incremental = incremental;
  report.seconds = seconds;
  report.variants = variants_seen_;
  report.local_rules_checked = local_rules_checked_;
  report.violations = local_;
  std::vector<Ipv4Prefix> order;
  order.reserve(cache_.size());
  for (const auto& [prefix, finding] : cache_) order.push_back(prefix);
  std::sort(order.begin(), order.end());
  for (auto prefix : order) {
    const auto& finding = cache_.at(prefix);
    report.classes_checked += finding.classes;
    report.edges_walked += finding.edges;
    report.violations.insert(report.violations.end(),
                             finding.violations.begin(),
                             finding.violations.end());
  }
  report.prefixes_checked = cache_.size();
  return report;
}

ReplayResult replay(const DeploymentView& view, const Counterexample& cx,
                    std::size_t max_hops) {
  std::vector<SafetyViolation> violations;
  std::size_t edges = 0;
  const auto known = sorted_known(view);
  WalkContext ctx{view, known, max_hops};
  walk_from(ctx, cx.sender, cx.prefix, "replay", cx.packet, violations, edges);
  ReplayResult result;
  result.hops = edges;
  for (const auto& v : violations) {
    result.kinds.push_back(v.kind);
    if (!result.detail.empty()) result.detail += "; ";
    result.detail += v.what;
  }
  return result;
}

}  // namespace sdx::verify
