#pragma once

/// \file safety.hpp
/// Policy safety verification: loop-freedom, isolation and no-blackhole
/// proofs over the deployed classifier + RIB relation.
///
/// The SDX lets participants compose arbitrary SDN policies on top of BGP,
/// and Prelude showed that exactly this freedom lets naïvely-composed (or
/// stale) policies create inter-domain forwarding loops that plain BGP
/// cannot. The checker here walks the *inter-participant forwarding graph*:
/// a node is (participant, packet class), where a class is a destination
/// prefix × a header variant drawn from the deployed clause matches; an
/// edge is one real data-plane step — the sender's border router frames the
/// class representative (LPM → next-hop → ARP → VMAC tag), the switch
/// processes the frame, and the egress participant either terminates the
/// traffic (it advertises the destination, so its router forwards upstream)
/// or re-enters it through its own FIB. Per class the checker proves
///
///   (a) loop-freedom  — no participant repeats on the walk,
///   (b) isolation     — every hop lands on a participant that exported the
///                       destination prefix to the hop's sender, and
///   (c) no-blackhole  — the walk ends at a participant that advertises the
///                       destination (a physical egress), never at a
///                       dropped frame, an unclaimed port, a router that
///                       rejects the dst MAC, or a router with no route.
///
/// In a consistently-deployed state every walk terminates in one hop
/// (steering implies export implies advertisement), so the clean check is
/// cheap. Violations arise from *stale* data-plane state — flow rules and
/// router FIB entries compiled against a RIB that has since changed — which
/// is exactly the window the §4.3.2 fast path and asynchronous recompiles
/// keep open. Every violation carries a concrete counterexample packet
/// (header fields + ingress port) that replays through FlowTable::process.
///
/// Layering: this library sits *below* sdx_core — it sees participants,
/// the route server and a handful of std::function seams (DeploymentView),
/// never the runtime itself. SdxRuntime builds the view and drives the
/// checker (full after a recompile, incremental over dirty prefixes after
/// fast-path updates); see SdxRuntime::enable_verification().

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bgp/route_server.hpp"
#include "netbase/packet.hpp"
#include "sdx/participant.hpp"

namespace sdx::verify {

using bgp::ParticipantId;
using net::Ipv4Prefix;
using net::MacAddress;
using net::PacketHeader;
using net::PortId;

enum class ViolationKind : std::uint8_t {
  kLoop = 0,       ///< a participant repeats on the forwarding walk
  kIsolation,      ///< traffic attracted without a matching export
  kBlackhole,      ///< the class never reaches a physical egress
  kLocalRule,      ///< a per-rule invariant (folded from core::audit)
};

/// Stable lower-case name ("loop", "isolation", ...) — used as the `kind`
/// label of `sdx_verify_violations_total` and in report text.
std::string_view kind_name(ViolationKind k);

/// A concrete packet witnessing a violation: replay it through
/// FlowTable::process at `ingress_port` and the reported walk reproduces.
struct Counterexample {
  PacketHeader packet;   ///< framed as the ingress router emits it
  PortId ingress_port = 0;
  ParticipantId sender = 0;
  Ipv4Prefix prefix;     ///< destination prefix of the packet class
  std::vector<ParticipantId> hops;  ///< participants visited, sender first

  std::string to_string() const;
};

struct SafetyViolation {
  ViolationKind kind = ViolationKind::kLoop;
  std::string what;
  /// Absent only for kLocalRule findings (those are per-rule, not per-walk).
  std::optional<Counterexample> counterexample;
};

struct SafetyReport {
  std::vector<SafetyViolation> violations;
  std::size_t classes_checked = 0;   ///< (sender, prefix, variant) walks
  std::size_t edges_walked = 0;      ///< switch traversals performed
  std::size_t prefixes_checked = 0;
  std::size_t variants = 0;          ///< header variants enumerated
  std::size_t local_rules_checked = 0;
  bool incremental = false;
  double seconds = 0;

  bool ok() const { return violations.empty(); }
  std::size_t count(ViolationKind k) const;
  std::string to_string() const;
};

/// The checker's window onto a deployed SDX. Pure seams so the library
/// never links against the runtime; all closures must stay valid for the
/// lifetime of the view. SdxRuntime::deployment_view() builds one over the
/// live fabric; tests can assemble views over hand-built tables.
struct DeploymentView {
  const std::vector<core::Participant>* participants = nullptr;
  const bgp::RouteServer* server = nullptr;

  /// One switch traversal: FlowTable::process on the deployed table.
  std::function<std::vector<PacketHeader>(const PacketHeader&)> process;

  /// The sender's border-router framing step (LPM → next hop → ARP → L2
  /// rewrite, BorderRouter::forward). nullopt = the router holds no route
  /// for the destination (the class emits no traffic at this hop).
  std::function<std::optional<PacketHeader>(ParticipantId sender,
                                            PacketHeader payload)>
      forward;

  /// Owner participant of a physical switch port; nullopt when unclaimed.
  std::function<std::optional<ParticipantId>(PortId)> owner_of;

  /// Real MAC of the border router attached at a port; nullopt when none.
  std::function<std::optional<MacAddress>(PortId)> router_mac_at;

  /// Every prefix the deployment can carry traffic for: the route server's
  /// RIB *plus* prefixes still present in border-router FIBs (stale
  /// advertisements are exactly where violations live).
  std::function<std::vector<Ipv4Prefix>()> known_prefixes;
};

/// Outcome of re-walking a counterexample packet through the view.
struct ReplayResult {
  /// Violation kinds observed on the walk, in discovery order.
  std::vector<ViolationKind> kinds;
  std::size_t hops = 0;
  std::string detail;

  bool reproduces(ViolationKind k) const {
    for (auto got : kinds) {
      if (got == k) return true;
    }
    return false;
  }
};

class SafetyChecker {
 public:
  struct Options {
    /// Walk budget per class; exhausting it without an egress is itself
    /// reported as a loop (the fabric cannot deliver in bounded hops).
    std::size_t max_hops = 32;
    /// Cap on enumerated header variants (excess clauses share classes).
    std::size_t max_variants = 64;
  };

  SafetyChecker() : SafetyChecker(Options{}) {}
  explicit SafetyChecker(Options options) : options_(options) {}

  /// Full pass: every known prefix × every sender × every header variant.
  /// Replaces the incremental cache. Local-rule findings installed via
  /// set_local_findings() are folded into the returned report.
  SafetyReport full(const DeploymentView& view);

  /// Re-checks only \p dirty prefixes (deduplicated; prefixes that left the
  /// deployment drop out of the cache) and reassembles the report from the
  /// cached remainder — the fast-path / partition-recompile stage.
  SafetyReport incremental(const DeploymentView& view,
                           const std::vector<Ipv4Prefix>& dirty);

  /// Folds per-rule audit findings (core::audit, converted to kLocalRule
  /// violations by the caller) into every subsequent report — the "one
  /// entry point" contract: graph counterexamples and local-rule
  /// violations come back in the same SafetyReport.
  void set_local_findings(std::vector<SafetyViolation> findings,
                          std::size_t rules_checked);

  const Options& options() const { return options_; }

 private:
  struct PrefixFinding {
    std::vector<SafetyViolation> violations;
    std::size_t classes = 0;
    std::size_t edges = 0;
  };

  PrefixFinding check_prefix(const DeploymentView& view, Ipv4Prefix prefix);
  SafetyReport assemble(bool incremental, double seconds) const;

  Options options_;
  std::unordered_map<Ipv4Prefix, PrefixFinding> cache_;
  std::vector<Ipv4Prefix> known_;    ///< sorted snapshot of the last pass
  std::size_t variants_seen_ = 0;
  std::vector<SafetyViolation> local_;
  std::size_t local_rules_checked_ = 0;
};

/// Re-walks a counterexample from its recorded framing — the first step is
/// literally view.process(cx.packet) — and returns every violation kind the
/// walk exhibits. A test asserting `replay(view, cx).reproduces(kind)`
/// proves the counterexample is a real packet, not a modeling artifact.
ReplayResult replay(const DeploymentView& view, const Counterexample& cx,
                    std::size_t max_hops = 32);

}  // namespace sdx::verify
