#pragma once

/// \file ixp_generator.hpp
/// Synthetic IXP generator following the evaluation methodology of paper
/// §6.1 ("emulating real-world IXP topologies"):
///
///   * participant prefix counts follow the AMS-IX skew — about 1% of the
///     ASes announce more than 50% of the prefixes, and the bottom 90%
///     combined announce less than 1%;
///   * a fixed fraction of participants have multiple ports at the
///     exchange;
///   * participants are classified as eyeball / transit / content;
///   * transit participants re-advertise a customer cone on top of their
///     own prefixes, so prefixes have multiple candidate routes.
///
/// The generator substitutes for the AMS-IX/DE-CIX/LINX censuses the paper
/// used (see DESIGN.md §2); everything is driven by a seeded RNG so every
/// benchmark run is reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/route_server.hpp"
#include "sdx/participant.hpp"
#include "sdx/port_map.hpp"

namespace sdx::ixp {

using bgp::ParticipantId;
using net::Ipv4Prefix;

enum class AsCategory : std::uint8_t { kEyeball, kTransit, kContent };

std::string_view category_name(AsCategory c);

/// Static characteristics of the three IXPs in Table 1.
struct IxpProfile {
  std::string name;
  std::size_t collector_peers = 0;
  std::size_t total_peers = 0;
  std::size_t prefixes = 0;
  std::size_t updates_per_week = 0;      ///< Table 1 "BGP updates"
  double frac_prefixes_updated = 0;      ///< Table 1 last row

  static IxpProfile amsix();
  static IxpProfile decix();
  static IxpProfile linx();
};

struct GeneratorConfig {
  std::size_t participants = 300;
  std::size_t prefixes = 25000;
  std::uint64_t seed = 1;
  double multi_port_fraction = 0.2;
  /// Category mix (renormalized): roughly matching IXP membership surveys.
  double eyeball_fraction = 0.40;
  double transit_fraction = 0.20;
  double content_fraction = 0.40;
  /// Power-law exponent of the prefix-count distribution.
  double skew_alpha = 1.9;
  /// Transit participants re-advertise cone_factor × their own prefix
  /// count from the rest of the table.
  double cone_factor = 4.0;
};

struct GeneratedIxp {
  std::vector<core::Participant> participants;
  std::vector<AsCategory> categories;  ///< parallel to participants
  core::PortMap ports;
  bgp::RouteServer server;             ///< announcements already applied
  std::vector<Ipv4Prefix> prefixes;    ///< the full prefix universe
  /// Per-participant originated prefix count (the census used to rank).
  std::vector<std::size_t> announced_counts;

  std::size_t slot_of(ParticipantId id) const;
};

/// Builds the IXP: participants, categories, announcements.
GeneratedIxp generate_ixp(const GeneratorConfig& cfg);

/// §6.1 policy assignment over a generated IXP: the top 15% of eyeballs,
/// the top 5% of transit ASes and a random 5% of content ASes install
/// custom policies (see policy_synth.cpp for the per-category shapes).
/// Returns the number of clauses installed.
struct PolicySynthConfig {
  std::uint64_t seed = 7;
  double top_eyeball_fraction = 0.15;
  double top_transit_fraction = 0.05;
  double content_fraction = 0.05;
  std::size_t content_outbound_targets = 3;
  /// The global set of prefixes that SDX policies apply to (the paper's
  /// |px| = x ∈ [0, 25000] knob, §6.2): when non-empty, every outbound
  /// clause is restricted to it, which is what produces realistic prefix
  /// group counts in Figures 6–8. Empty = clauses are unrestricted.
  std::vector<Ipv4Prefix> policy_prefixes;
};

/// Draws \p count policy prefixes at random from the IXP's table (the
/// paper's "selected at random from the default-free routing table").
std::vector<Ipv4Prefix> sample_policy_prefixes(const GeneratedIxp& ixp,
                                               std::size_t count,
                                               std::uint64_t seed);

std::size_t synthesize_policies(GeneratedIxp& ixp,
                                const PolicySynthConfig& cfg);

}  // namespace sdx::ixp
