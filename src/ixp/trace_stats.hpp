#pragma once

/// \file trace_stats.hpp
/// Streaming trace analyzer: computes the Table 1 counters and the §4.3
/// burst statistics over an update stream without materializing it.
/// Equivalent to bgp::compute_stats for in-memory streams (tested against
/// it), but O(burst) memory.

#include <unordered_set>
#include <vector>

#include "bgp/update_stream.hpp"
#include "ixp/update_trace.hpp"

namespace sdx::ixp {

class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(double burst_gap_seconds = 2.0)
      : gap_(burst_gap_seconds) {}

  /// Events must arrive in non-decreasing timestamp order.
  void feed(const TraceEvent& ev);

  /// Closes the final burst and returns the aggregate statistics.
  bgp::StreamStats finish();

 private:
  void close_burst();

  double gap_;
  bool any_ = false;
  double last_ts_ = 0;
  double burst_end_ = 0;
  std::size_t burst_updates_ = 0;
  std::unordered_set<std::size_t> burst_prefixes_;
  std::unordered_set<std::size_t> all_prefixes_;
  std::vector<double> burst_sizes_;
  std::vector<double> gaps_;
  double prev_burst_end_ = 0;
  bool have_prev_burst_ = false;
  bgp::StreamStats stats_;
};

}  // namespace sdx::ixp
