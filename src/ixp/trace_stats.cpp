#include "ixp/trace_stats.hpp"

#include <algorithm>

namespace sdx::ixp {

void TraceAnalyzer::close_burst() {
  if (burst_updates_ == 0) return;
  burst_sizes_.push_back(static_cast<double>(burst_prefixes_.size()));
  if (have_prev_burst_) {
    // Gap measured from the end of the previous burst to the start of this
    // one; burst_end_ here is the start timestamp captured at open time.
    gaps_.push_back(burst_end_ - prev_burst_end_);
  }
  prev_burst_end_ = last_ts_;
  have_prev_burst_ = true;
  burst_updates_ = 0;
  burst_prefixes_.clear();
  ++stats_.burst_count;
}

void TraceAnalyzer::feed(const TraceEvent& ev) {
  if (any_ && ev.timestamp - last_ts_ >= gap_) {
    close_burst();
  }
  if (burst_updates_ == 0) burst_end_ = ev.timestamp;  // burst start
  any_ = true;
  last_ts_ = ev.timestamp;
  ++burst_updates_;
  burst_prefixes_.insert(ev.prefix_index);
  all_prefixes_.insert(ev.prefix_index);
  ++stats_.total_updates;
  if (ev.withdrawal) {
    ++stats_.withdrawal_count;
  } else {
    ++stats_.announcement_count;
  }
}

bgp::StreamStats TraceAnalyzer::finish() {
  close_burst();
  stats_.distinct_prefixes = all_prefixes_.size();
  if (!burst_sizes_.empty()) {
    stats_.median_burst_size = bgp::quantile(burst_sizes_, 0.5);
    stats_.p75_burst_size = bgp::quantile(burst_sizes_, 0.75);
    stats_.max_burst_size =
        *std::max_element(burst_sizes_.begin(), burst_sizes_.end());
  }
  if (!gaps_.empty()) {
    stats_.median_interarrival_s = bgp::quantile(gaps_, 0.5);
    stats_.p25_interarrival_s = bgp::quantile(gaps_, 0.25);
  }
  return stats_;
}

}  // namespace sdx::ixp
