#pragma once

/// \file update_trace.hpp
/// Synthetic RIS-like BGP update traces, calibrated to the §4.3 burst
/// analysis of the paper:
///
///   * 10–14% of prefixes see any updates at all in a week (the rest are
///     stable — and the stable ones are the ones policies reference);
///   * update bursts are small: 75% touch ≤3 prefixes, with a heavy tail
///     and about one >1000-prefix burst per week;
///   * inter-burst gaps are ≥10 s 75% of the time and >60 s half the time.
///
/// Generation is streaming (callback per update) so Table-1-scale traces
/// (tens of millions of updates) need no materialized vector.

#include <cstdint>
#include <functional>
#include <vector>

#include "bgp/update_stream.hpp"

namespace sdx::ixp {

struct TraceConfig {
  std::uint64_t seed = 1;
  double duration_s = 6 * 86400.0;   ///< Table 1 window: Jan 1–6
  /// Prefix universe and the fraction of it that is update-active.
  std::size_t prefix_count = 25000;
  double frac_prefixes_updated = 0.12;
  /// Median and 25th-percentile inter-burst gap (seconds): lognormal fit,
  /// truncated at max_gap_s (the paper constrains only the lower
  /// quantiles; the cap keeps the mean finite and the burst count
  /// realistic).
  double median_gap_s = 60.0;
  double p25_gap_s = 10.0;
  double max_gap_s = 900.0;
  /// Burst-size distribution: P(size ≤ 3) and the Pareto tail exponent.
  /// Slightly above the paper's 75% so the *measured* p75 (after burst
  /// segmentation) lands at ≤3 prefixes.
  double p_small_burst = 0.80;
  double tail_alpha = 1.3;
  std::size_t max_burst = 2000;
  /// Fraction of updates that are withdrawals.
  double withdrawal_fraction = 0.08;
  /// Mean number of updates each affected prefix contributes per burst
  /// (BGP path exploration: one routing event triggers several transient
  /// announcements before converging). Geometric, ≥1.
  double churn_per_prefix = 1.0;
};

/// One generated update: offset into the prefix universe instead of a
/// concrete prefix so callers can map onto their own universe.
struct TraceEvent {
  double timestamp = 0;
  std::size_t prefix_index = 0;
  bool withdrawal = false;
};

/// Streams the trace in time order; returns the number of events emitted.
std::size_t generate_trace(const TraceConfig& cfg,
                           const std::function<void(const TraceEvent&)>& sink);

/// Materialized variant for small traces (tests, Figure 9/10 inputs).
std::vector<TraceEvent> generate_trace_vector(const TraceConfig& cfg);

}  // namespace sdx::ixp
