#include "ixp/update_trace.hpp"

#include <algorithm>
#include <cmath>

#include "netbase/rng.hpp"

namespace sdx::ixp {

namespace {

/// Standard-normal sample via Box–Muller on the deterministic RNG.
double normal(net::SplitMix64& rng) {
  double u1 = rng.uniform();
  while (u1 <= 0) u1 = rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.141592653589793 * u2);
}

}  // namespace

std::size_t generate_trace(
    const TraceConfig& cfg,
    const std::function<void(const TraceEvent&)>& sink) {
  net::SplitMix64 rng(cfg.seed);

  // Hot prefix set: the only prefixes that ever see updates.
  const std::size_t hot_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.frac_prefixes_updated *
                                  static_cast<double>(cfg.prefix_count)));
  std::vector<std::size_t> hot(cfg.prefix_count);
  for (std::size_t i = 0; i < cfg.prefix_count; ++i) hot[i] = i;
  for (std::size_t i = cfg.prefix_count; i > 1; --i) {
    std::swap(hot[i - 1], hot[rng.below(i)]);
  }
  hot.resize(hot_count);

  // Lognormal gap parameters from the two calibration quantiles:
  // median = exp(mu); p25 = exp(mu - 0.6745 sigma).
  const double mu = std::log(cfg.median_gap_s);
  const double sigma =
      (std::log(cfg.median_gap_s) - std::log(cfg.p25_gap_s)) / 0.6745;

  std::size_t emitted = 0;
  double now = 0;
  while (true) {
    now += std::clamp(std::exp(mu + sigma * normal(rng)), cfg.p25_gap_s,
                      cfg.max_gap_s);
    if (now >= cfg.duration_s) break;

    // Burst size: small with probability p_small_burst, else Pareto tail.
    std::size_t burst_prefixes;
    if (rng.chance(cfg.p_small_burst)) {
      burst_prefixes = 1 + rng.below(3);
    } else {
      const double u = std::max(rng.uniform(), 1e-12);
      burst_prefixes = static_cast<std::size_t>(
          4.0 * std::pow(u, -1.0 / cfg.tail_alpha));
      burst_prefixes = std::min(burst_prefixes, cfg.max_burst);
    }
    burst_prefixes = std::min(burst_prefixes, hot.size());

    double t = now;
    const double p_more =
        cfg.churn_per_prefix <= 1.0 ? 0.0 : 1.0 - 1.0 / cfg.churn_per_prefix;
    for (std::size_t k = 0; k < burst_prefixes; ++k) {
      const std::size_t prefix = hot[rng.below(hot.size())];
      // Path exploration: geometric number of updates for this prefix.
      std::size_t updates = 1;
      while (rng.chance(p_more)) ++updates;
      for (std::size_t u = 0; u < updates; ++u) {
        TraceEvent ev;
        ev.timestamp = t;
        ev.prefix_index = prefix;
        ev.withdrawal = rng.chance(cfg.withdrawal_fraction);
        sink(ev);
        ++emitted;
        t += rng.uniform() * 0.4;  // intra-burst spacing, well under the gap
      }
    }
    now = t;
  }
  return emitted;
}

std::vector<TraceEvent> generate_trace_vector(const TraceConfig& cfg) {
  std::vector<TraceEvent> out;
  generate_trace(cfg, [&out](const TraceEvent& ev) { out.push_back(ev); });
  return out;
}

}  // namespace sdx::ixp
